//! Property test: fault injection is independent of worker count.
//!
//! The fault layer's determinism contract says every fault decision is a
//! pure hash of `(plan seed, stable identity)` — never of evaluation
//! order or thread interleaving. This property drives the full sharded
//! generator under randomly drawn fault plans and demands the serial run
//! and the maximally parallel ([`charisma_workload::LOGICAL_SHARDS`]
//! workers) run agree on every merged record and every metric.

use charisma_ipsc::FaultPlan;
use charisma_workload::{generate_sharded, GeneratorConfig, LOGICAL_SHARDS};
use proptest::prelude::*;

proptest! {
    /// Serial and 16-worker chaos runs are identical for arbitrary plans.
    #[test]
    fn fault_injection_is_worker_count_invariant(
        draw in any::<u64>(),
        transient_ppm in 0u32..400_000,
        delay_ppm in 0u32..50_000,
        clock_ppm in 0u32..300_000,
    ) {
        // A full double pipeline run is expensive; thin to a few of the
        // shim's 64 deterministic cases.
        if draw % 21 != 0 {
            return Ok(());
        }
        let mut plan = FaultPlan::chaos_fixture();
        plan.seed = draw;
        plan.disk_transient_ppm = transient_ppm;
        plan.msg_delay_ppm = delay_ppm;
        plan.clock_jump_ppm = clock_ppm;
        let config = GeneratorConfig {
            faults: plan,
            ..GeneratorConfig::test_scale(0.01)
        };
        let serial = generate_sharded(&config, 1);
        let parallel = generate_sharded(&config, LOGICAL_SHARDS);
        let serial_events: Vec<_> = serial.merged_events().collect();
        let parallel_events: Vec<_> = parallel.merged_events().collect();
        prop_assert_eq!(serial_events, parallel_events,
            "merged chaos stream diverged across worker counts");
        prop_assert_eq!(serial.metrics.to_core_json(), parallel.metrics.to_core_json(),
            "chaos metrics diverged across worker counts");
    }
}
