//! Application templates.
//!
//! Each traced job class compiles into per-node [`Program`]s plus a table
//! of the files the job touches. The shapes are chosen so the *population*
//! of generated sessions reproduces the paper's per-file statistics; the
//! comments on each template say which figure/table it feeds.

use charisma_cfs::{Access, IoMode};
use charisma_ipsc::Duration;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::mix::{JobClass, JobPlan};
use crate::params;
use crate::program::{FileSlot, Op, Program};

/// Where a job file comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FileOrigin {
    /// One of the pre-seeded shared dataset files (inputs). The generator
    /// picks a concrete file per job and guarantees no two jobs hold the
    /// same dataset concurrently (the paper saw *no* concurrent inter-job
    /// sharing).
    SharedDataset,
    /// A file staged for this job before it starts (per-node input
    /// partitions). Created untraced — like data staged over the Ethernet.
    Staged {
        /// Size to stage, bytes.
        size: u64,
    },
    /// A file the job itself creates.
    Fresh,
}

/// One file in a job's file table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileSpec {
    /// Origin (dataset / staged / fresh).
    pub origin: FileOrigin,
    /// Name stem, used to build the path.
    pub hint: &'static str,
}

/// A compiled job: its file table and one program per node.
#[derive(Clone, Debug)]
pub struct JobBuild {
    /// Files, indexed by [`FileSlot`].
    pub files: Vec<FileSpec>,
    /// One program per compute node of the job.
    pub programs: Vec<Program>,
}

/// Declare the file table of a job (phase 1: the generator resolves
/// dataset/staged sizes before programs are built).
pub fn file_table(plan: &JobPlan) -> Vec<FileSpec> {
    let mut rng = StdRng::seed_from_u64(plan.seed ^ 0x5eed_0001);
    let p = plan.nodes as usize;
    let mut files = Vec::new();
    let fresh = |files: &mut Vec<FileSpec>, hint, n| {
        for _ in 0..n {
            files.push(FileSpec {
                origin: FileOrigin::Fresh,
                hint,
            });
        }
    };
    match plan.class {
        JobClass::StatusChecker | JobClass::UntracedSingle | JobClass::UntracedMulti => {}
        JobClass::StatusReader => files.push(FileSpec {
            origin: FileOrigin::SharedDataset,
            hint: "status",
        }),
        JobClass::Copier => {
            files.push(FileSpec {
                origin: FileOrigin::SharedDataset,
                hint: "src",
            });
            fresh(&mut files, "dst", 1);
        }
        JobClass::PostProcessor => {
            files.push(FileSpec {
                origin: FileOrigin::SharedDataset,
                hint: "run_a",
            });
            files.push(FileSpec {
                origin: FileOrigin::SharedDataset,
                hint: "run_b",
            });
            fresh(&mut files, "summary", 1);
        }
        JobClass::SmallCfd => {
            files.push(FileSpec {
                origin: FileOrigin::SharedDataset,
                hint: "params",
            });
            files.push(FileSpec {
                origin: FileOrigin::SharedDataset,
                hint: "grid",
            });
            fresh(&mut files, "flow_out", 1); // shared, mode-1
            fresh(&mut files, "status", 1); // read-write
        }
        JobClass::CfdPerNode => {
            let phases = rng.gen_range(params::CFD_PHASES);
            // slot 0: broadcast parameter file; slot 1: interleaved grid.
            files.push(FileSpec {
                origin: FileOrigin::SharedDataset,
                hint: "params",
            });
            files.push(FileSpec {
                origin: FileOrigin::SharedDataset,
                hint: "grid",
            });
            // slot 2: per-job status file (read-write).
            fresh(&mut files, "status", 1);
            // Per-node staged input partitions for most jobs.
            if rng.gen_bool(0.95) {
                for _ in 0..p {
                    let size = params::draw_mix(&params::INPUT_SIZE_MIX, &mut rng) / 2;
                    files.push(FileSpec {
                        origin: FileOrigin::Staged {
                            size: size.max(8192),
                        },
                        hint: "part_in",
                    });
                }
            }
            // Unaccessed per-node log opens for 20 % of jobs (§4.2's ~2500
            // opened-but-unaccessed files).
            if rng.gen_bool(0.4) {
                fresh(&mut files, "log", p);
            }
            // Per-phase, per-node outputs.
            fresh(&mut files, "soln", p * phases as usize);
        }
        JobClass::OutOfCore => {
            fresh(&mut files, "scratch", params::out_of_core::FILES);
        }
        JobClass::Checkpointer => {
            files.push(FileSpec {
                origin: FileOrigin::SharedDataset,
                hint: "params",
            });
            fresh(&mut files, "ckpt", p * 5);
        }
    }
    files
}

/// Compile a job's per-node programs (phase 2). `sizes[slot]` is the
/// resolved size of each dataset/staged file (0 for fresh files).
pub fn build_programs(plan: &JobPlan, sizes: &[u64]) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(plan.seed ^ 0x5eed_0002);
    let p = plan.nodes as usize;
    let mut progs = vec![Program::new(); p];
    let mut b = Builder {
        rng: &mut rng,
        progs: &mut progs,
        barrier: 0,
    };
    match plan.class {
        JobClass::StatusChecker | JobClass::UntracedSingle | JobClass::UntracedMulti => {}
        JobClass::StatusReader => b.status_reader(),
        JobClass::Copier => b.copier(),
        JobClass::PostProcessor => b.post_processor(sizes),
        JobClass::SmallCfd => b.small_cfd(),
        JobClass::CfdPerNode => b.cfd_per_node(plan, sizes),
        JobClass::OutOfCore => b.out_of_core(),
        JobClass::Checkpointer => b.checkpointer(),
    }
    progs
}

/// Convenience: file table + programs in one call (used by tests; the
/// generator calls the two phases separately).
pub fn build(plan: &JobPlan, sizes: &[u64]) -> JobBuild {
    JobBuild {
        files: file_table(plan),
        programs: build_programs(plan, sizes),
    }
}

struct Builder<'a> {
    rng: &'a mut StdRng,
    progs: &'a mut Vec<Program>,
    barrier: u32,
}

impl Builder<'_> {
    fn nodes(&self) -> usize {
        self.progs.len()
    }

    fn think(&mut self) -> Op {
        let us = params::INTER_REQUEST_COMPUTE_US;
        Op::Compute(Duration::from_micros(self.rng.gen_range(us / 2..us * 2)))
    }

    fn phase_compute(&mut self, mean: Duration) -> Op {
        let m = mean.as_micros();
        Op::Compute(Duration::from_micros(self.rng.gen_range(m / 2..m * 2)))
    }

    /// Per-node compute with independent jitter: nodes of a job drift
    /// apart, so their interleaved requests arrive at the I/O nodes spread
    /// out in time — the reuse-distance structure behind Figure 9's
    /// capacity knee.
    fn phase_compute_all(&mut self, mean: Duration) {
        let m = mean.as_micros();
        for i in 0..self.progs.len() {
            let d = Duration::from_micros(self.rng.gen_range(m / 2..m * 2));
            self.progs[i].push(Op::Compute(d));
        }
    }

    fn barrier_all(&mut self) {
        let id = self.barrier;
        self.barrier += 1;
        for prog in self.progs.iter_mut() {
            prog.push(Op::Barrier(id));
        }
    }

    /// Every node reads the whole file in one large request (B1 broadcast:
    /// Table 2 row 0, Figure 7's fully-byte-shared files).
    ///
    /// A barrier precedes the opens so every node attaches to one session
    /// (a parallel open); a per-node stagger after the open spreads the
    /// actual reads out in time, as the nodes' unequal progress did on the
    /// real machine.
    fn broadcast_one_shot(&mut self, slot: FileSlot) {
        self.barrier_all();
        for n in 0..self.nodes() {
            let stagger = self.stagger();
            let prog = &mut self.progs[n];
            prog.push(Op::Open {
                slot,
                access: Access::Read,
                mode: IoMode::Independent,
                truncate: false,
            });
            prog.push(stagger);
            prog.push(Op::Read {
                slot,
                bytes: 1 << 20,
            });
            prog.push(Op::Close { slot });
        }
    }

    /// Per-node start-of-read stagger (seconds-scale drift between nodes).
    fn stagger(&mut self) -> Op {
        Op::Compute(Duration::from_micros(self.rng.gen_range(0..40_000_000)))
    }

    /// A partitioned one-shot read: every node reads its contiguous share
    /// of the file in a single request; the last node's share carries the
    /// remainder (a second request size — Table 3's two-size row among
    /// one-request-per-node files).
    fn partitioned_read(&mut self, slot: FileSlot, size: u64) {
        self.barrier_all();
        let p = self.nodes() as u64;
        let share = (size / p).max(1024);
        for n in 0..self.nodes() {
            let stagger = self.stagger();
            let bytes = if n as u64 == p - 1 {
                (size - share * (p - 1)).min(u32::MAX as u64) as u32
            } else {
                share as u32
            };
            let prog = &mut self.progs[n];
            prog.push(Op::Open {
                slot,
                access: Access::Read,
                mode: IoMode::Independent,
                truncate: false,
            });
            prog.push(Op::Seek {
                slot,
                offset: n as u64 * share,
            });
            prog.push(stagger);
            prog.push(Op::Read { slot, bytes });
            prog.push(Op::Close { slot });
        }
    }

    /// Every node reads `total` bytes of the file consecutively in
    /// `record`-byte requests (B2 broadcast: the high compute-cache-hit
    /// clump of Figure 8; heavy interprocess locality for Figure 9).
    fn broadcast_records(&mut self, slot: FileSlot, total: u64, record: u32, reread: bool) {
        self.barrier_all();
        for n in 0..self.nodes() {
            let stagger = self.stagger();
            self.progs[n].push(Op::Open {
                slot,
                access: Access::Read,
                mode: IoMode::Independent,
                truncate: false,
            });
            self.progs[n].push(stagger);
            let passes = if reread { 2 } else { 1 };
            for pass in 0..passes {
                if pass > 0 {
                    self.progs[n].push(Op::Seek { slot, offset: 0 });
                }
                let mut done = 0u64;
                while done < total {
                    let bytes = record.min((total - done) as u32);
                    let think = self.think();
                    let prog = &mut self.progs[n];
                    prog.push(think);
                    prog.push(Op::Read { slot, bytes });
                    done += u64::from(bytes);
                }
            }
            self.progs[n].push(Op::Close { slot });
        }
    }

    /// 2-D interleaved read (the CHARISMA signature pattern): the file is
    /// rows of `nodes * chunk` bytes; node `i` owns the `i`-th chunk of
    /// every row and reads it in `pieces` consecutive sub-requests.
    /// Per node: `pieces == 1` gives one nonzero interval size (Table 2
    /// row 1's non-consecutive sliver); `pieces > 1` gives two interval
    /// sizes (row 2). Chunks smaller than a block make several nodes share
    /// each block — the interprocess spatial locality of §4.7/§4.8.
    fn interleave_2d(&mut self, slot: FileSlot, file_size: u64, chunk: u32, pieces: u32) {
        self.barrier_all();
        let p = self.nodes() as u64;
        let row = p * u64::from(chunk);
        let rows = (file_size / row).clamp(2, 64);
        let piece = chunk / pieces;
        for n in 0..self.nodes() {
            let stagger = self.stagger();
            self.progs[n].push(Op::Open {
                slot,
                access: Access::Read,
                mode: IoMode::Independent,
                truncate: false,
            });
            self.progs[n].push(stagger);
            for r in 0..rows {
                let base = r * row + n as u64 * u64::from(chunk);
                self.progs[n].push(Op::Seek { slot, offset: base });
                for _ in 0..pieces {
                    let think = self.think();
                    let prog = &mut self.progs[n];
                    prog.push(think);
                    prog.push(Op::Read { slot, bytes: piece });
                }
            }
            self.progs[n].push(Op::Close { slot });
        }
    }

    /// One node writes a whole output file. Styles (params-tuned):
    /// one-shot single request (Table 2 row 0), consecutive records with a
    /// partial tail (Tables 2-3 rows 1-2), or records plus a seek-back
    /// header patch (Figure 5's non-sequential write-only sliver).
    fn write_output(&mut self, node: usize, slot: FileSlot) {
        let size = params::draw_mix(&params::OUTPUT_SIZE_MIX, self.rng);
        let style = self.rng.gen::<f64>();
        self.progs[node].push(Op::Open {
            slot,
            access: Access::Write,
            mode: IoMode::Independent,
            truncate: false,
        });
        if style < params::ONE_SHOT_OUTPUT_FRACTION {
            // One-shot: the whole file in one request.
            let think = self.think();
            let prog = &mut self.progs[node];
            prog.push(think);
            prog.push(Op::Write {
                slot,
                bytes: size.min(8 << 20) as u32,
            });
        } else {
            // Record-structured. Files of 1 MB and up are bulk dumps with
            // 64 KB records (they carry most of the bytes — Figure 4);
            // smaller files use the small-record palette.
            let record = if size >= 1_000_000 {
                65_536
            } else {
                params::draw_mix(&params::WRITE_RECORD_MIX, self.rng)
            };
            // A partial final record gives the file two request sizes
            // (Table 3's 51.4 % two-size row).
            let total = if self.rng.gen_bool(params::PARTIAL_TAIL_FRACTION) {
                size - u64::from(record) / 3
            } else {
                size - size % u64::from(record)
            };
            let mut done = 0u64;
            while done < total {
                let bytes = record.min((total - done) as u32);
                let think = self.think();
                let prog = &mut self.progs[node];
                prog.push(think);
                prog.push(Op::Write { slot, bytes });
                done += u64::from(bytes);
            }
            if style > 1.0 - params::HEADER_PATCH_FRACTION {
                // Seek back and patch a header: breaks 100 % sequentiality.
                self.progs[node].push(Op::Seek { slot, offset: 0 });
                self.progs[node].push(Op::Write { slot, bytes: 256 });
            }
        }
        self.progs[node].push(Op::Close { slot });
    }

    /// Node 0 keeps a read-write status file: read it, then rewrite it
    /// (the small read-write population of §4.2 outside the out-of-core
    /// job).
    fn status_file(&mut self, slot: FileSlot) {
        let think = self.think();
        let prog = &mut self.progs[0];
        prog.push(Op::Open {
            slot,
            access: Access::ReadWrite,
            mode: IoMode::Independent,
            truncate: false,
        });
        prog.push(Op::Write { slot, bytes: 1024 });
        prog.push(Op::Seek { slot, offset: 0 });
        prog.push(think);
        prog.push(Op::Read { slot, bytes: 1024 });
        prog.push(Op::Seek { slot, offset: 0 });
        prog.push(Op::Write { slot, bytes: 900 });
        prog.push(Op::Close { slot });
    }

    /// A job-shared read-write metadata file: node 0 seeds it, every node
    /// reads all of it, then every node writes — either the whole file
    /// (fully byte-shared) or its private 64-byte slot (block-shared
    /// only). This is Figure 7's read-write population: about half the
    /// files 100 % byte-shared, nearly all 100 % block-shared.
    fn shared_meta_file(&mut self, slot: FileSlot, full_write: bool) {
        let size = 2048u32;
        let barrier = self.barrier;
        self.barrier += 1;
        for n in 0..self.nodes() {
            let think = self.think();
            let prog = &mut self.progs[n];
            prog.push(Op::Open {
                slot,
                access: Access::ReadWrite,
                mode: IoMode::Independent,
                truncate: false,
            });
            if n == 0 {
                prog.push(Op::Write { slot, bytes: size });
                prog.push(Op::Seek { slot, offset: 0 });
            }
            prog.push(Op::Barrier(barrier));
            prog.push(think);
            if full_write {
                // Everyone reads and rewrites the whole file: 100 %
                // byte-shared.
                prog.push(Op::Read { slot, bytes: size });
                prog.push(Op::Seek { slot, offset: 0 });
                prog.push(Op::Write { slot, bytes: size });
            } else {
                // Everyone reads the shared header, then updates a private
                // slot: blocks fully shared, bytes only partly.
                prog.push(Op::Read { slot, bytes: 512 });
                prog.push(Op::Seek {
                    slot,
                    offset: 512 + n as u64 * 64,
                });
                prog.push(Op::Write { slot, bytes: 64 });
            }
            prog.push(Op::Close { slot });
        }
    }

    // -- templates ----------------------------------------------------------

    fn status_reader(&mut self) {
        self.phase_compute_all(Duration::from_secs(15));
        self.broadcast_one_shot(0);
    }

    fn copier(&mut self) {
        let record = params::draw_mix(&params::READ_RECORD_MIX, self.rng).min(1024);
        let total = 24_000u64;
        self.progs[0].push(Op::Open {
            slot: 0,
            access: Access::Read,
            mode: IoMode::Independent,
            truncate: false,
        });
        self.progs[0].push(Op::Open {
            slot: 1,
            access: Access::Write,
            mode: IoMode::Independent,
            truncate: false,
        });
        let mut done = 0u64;
        while done < total {
            let think = self.think();
            let prog = &mut self.progs[0];
            prog.push(think);
            prog.push(Op::Read {
                slot: 0,
                bytes: record,
            });
            prog.push(Op::Write {
                slot: 1,
                bytes: record,
            });
            done += u64::from(record);
        }
        self.progs[0].push(Op::Close { slot: 0 });
        self.progs[0].push(Op::Close { slot: 1 });
    }

    fn post_processor(&mut self, sizes: &[u64]) {
        let c = self.phase_compute(Duration::from_secs(60));
        self.progs[0].push(c);
        for slot in 0..2u16 {
            // Block-sized reads: the Figure 4 peak at 4 KB.
            let blocks = (sizes[slot as usize] / 4096).clamp(4, 64);
            self.progs[0].push(Op::Open {
                slot,
                access: Access::Read,
                mode: IoMode::Independent,
                truncate: false,
            });
            for _ in 0..blocks {
                let think = self.think();
                let prog = &mut self.progs[0];
                prog.push(think);
                prog.push(Op::Read { slot, bytes: 4096 });
            }
            self.progs[0].push(Op::Close { slot });
        }
        // Summary: small consecutive writes.
        self.progs[0].push(Op::Open {
            slot: 2,
            access: Access::Write,
            mode: IoMode::Independent,
            truncate: false,
        });
        for _ in 0..20 {
            let think = self.think();
            let prog = &mut self.progs[0];
            prog.push(think);
            prog.push(Op::Write {
                slot: 2,
                bytes: 512,
            });
        }
        self.progs[0].push(Op::Write {
            slot: 2,
            bytes: 300,
        });
        self.progs[0].push(Op::Close { slot: 2 });
    }

    fn small_cfd(&mut self) {
        self.phase_compute_all(Duration::from_secs(45));
        // Parameter broadcast, then the grid: usually every node reads the
        // whole grid in small records; some runs read partitioned
        // one-shot shares instead.
        self.broadcast_one_shot(0);
        if self.rng.gen_bool(0.15) {
            self.partitioned_read(1, 200_000);
        } else {
            let record = *[256u32, 512, 1024]
                .get(self.rng.gen_range(0..3usize))
                .expect("palette");
            let reread = self.rng.gen_bool(0.10);
            self.broadcast_records(1, 24_000, record, reread);
        }
        self.barrier_all();
        // Shared output: usually mode 1 (every node appends through the
        // shared pointer — the <1 % of files not in mode 0, §4.6); some
        // runs instead use mode 0 with every node stamping a common
        // header before writing its partition (the ~10 % of write-only
        // files with some byte sharing in Figure 7).
        let wrec = params::draw_mix(&params::WRITE_RECORD_MIX, self.rng);
        let style = self.rng.gen::<f64>();
        if style < 0.12 {
            // Mode 0 with a common header: every node stamps the header
            // region before writing its partition (the ~10 % of write-only
            // files with some byte sharing in Figure 7).
            self.barrier_all();
            let part = 12 * u64::from(wrec);
            for n in 0..self.nodes() {
                let stagger = self.stagger();
                let prog = &mut self.progs[n];
                prog.push(Op::Open {
                    slot: 2,
                    access: Access::Write,
                    mode: IoMode::Independent,
                    truncate: false,
                });
                prog.push(Op::Write {
                    slot: 2,
                    bytes: 256,
                });
                prog.push(Op::Seek {
                    slot: 2,
                    offset: 256 + n as u64 * part,
                });
                prog.push(stagger);
                for _ in 0..12 {
                    prog.push(Op::Write {
                        slot: 2,
                        bytes: wrec,
                    });
                }
                prog.push(Op::Close { slot: 2 });
            }
        } else if style < 0.20 {
            // Modes 2-3: CFS-enforced round-robin ordering, realized by a
            // barrier per round (nodes then issue in node order under the
            // generator's deterministic FIFO scheduling). Mode 3
            // additionally pins the request size — which `wrec` already
            // is, per §4.6's observation that most apps *could not* use
            // these modes precisely because their sizes varied.
            let mode = if style < 0.16 {
                IoMode::RoundRobin
            } else {
                IoMode::RoundRobinFixed
            };
            for n in 0..self.nodes() {
                self.progs[n].push(Op::Open {
                    slot: 2,
                    access: Access::Write,
                    mode,
                    truncate: false,
                });
            }
            for _round in 0..12 {
                self.barrier_all();
                for n in 0..self.nodes() {
                    self.progs[n].push(Op::Write {
                        slot: 2,
                        bytes: wrec,
                    });
                }
            }
            for n in 0..self.nodes() {
                self.progs[n].push(Op::Close { slot: 2 });
            }
        } else {
            // Mode 1: every node appends through the shared pointer.
            for n in 0..self.nodes() {
                self.progs[n].push(Op::Open {
                    slot: 2,
                    access: Access::Write,
                    mode: IoMode::SharedPointer,
                    truncate: false,
                });
                for _ in 0..12 {
                    let think = self.think();
                    let prog = &mut self.progs[n];
                    prog.push(think);
                    prog.push(Op::Write {
                        slot: 2,
                        bytes: wrec,
                    });
                }
                self.progs[n].push(Op::Close { slot: 2 });
            }
        }
        self.status_file(3);
    }

    fn cfd_per_node(&mut self, plan: &JobPlan, sizes: &[u64]) {
        // Recover the file-table layout (same derivation as `file_table`).
        let mut layout_rng = StdRng::seed_from_u64(plan.seed ^ 0x5eed_0001);
        let phases = layout_rng.gen_range(params::CFD_PHASES);
        let p = self.nodes();
        let staged = layout_rng.gen_bool(0.95);
        // Consume the same draws file_table made for staged sizes.
        if staged {
            for _ in 0..p {
                let _ = params::draw_mix(&params::INPUT_SIZE_MIX, &mut layout_rng);
            }
        }
        let logs = layout_rng.gen_bool(0.4);
        let staged_base = 3u16;
        let log_base = staged_base + if staged { p as u16 } else { 0 };
        let out_base = log_base + if logs { p as u16 } else { 0 };

        // Per-node staged inputs, read once at start: 85 % in one request
        // (Table 2 row 0), the rest in consecutive records.
        if staged {
            for n in 0..p {
                let slot = staged_base + n as u16;
                self.progs[n].push(Op::Open {
                    slot,
                    access: Access::Read,
                    mode: IoMode::Independent,
                    truncate: false,
                });
                if self.rng.gen_bool(0.94) {
                    let think = self.think();
                    let prog = &mut self.progs[n];
                    prog.push(think);
                    prog.push(Op::Read {
                        slot,
                        bytes: 1 << 20,
                    });
                } else {
                    let record = params::draw_mix(&params::READ_RECORD_MIX, self.rng);
                    let total = sizes[slot as usize];
                    let mut done = 0u64;
                    while done < total {
                        let bytes = record.min((total - done) as u32);
                        let think = self.think();
                        let prog = &mut self.progs[n];
                        prog.push(think);
                        prog.push(Op::Read { slot, bytes });
                        done += u64::from(bytes);
                    }
                }
                self.progs[n].push(Op::Close { slot });
            }
        }
        // Unaccessed log opens.
        if logs {
            for n in 0..p {
                let slot = log_base + n as u16;
                self.progs[n].push(Op::Open {
                    slot,
                    access: Access::Write,
                    mode: IoMode::Independent,
                    truncate: false,
                });
                self.progs[n].push(Op::Close { slot });
            }
        }

        // The interleave shape for this job: chunk and pieces set where the
        // job lands in Figure 8's clumps (0 % / ~50 % / >75 %).
        let style = self.rng.gen::<f64>();
        let (chunk, pieces) = if style < 0.20 {
            // One request per chunk: no intraprocess locality at all.
            (
                *[512u32, 1024, 2048]
                    .get(self.rng.gen_range(0..3usize))
                    .expect("palette"),
                1,
            )
        } else if style < 0.58 {
            // Two pieces per chunk: ~50% compute-cache hit rate.
            (
                *[512u32, 1024, 2048]
                    .get(self.rng.gen_range(0..3usize))
                    .expect("palette"),
                2,
            )
        } else {
            // Eight fine pieces: ~87% hit rate (the >75% clump).
            (
                *[1024u32, 2048]
                    .get(self.rng.gen_range(0..2usize))
                    .expect("palette"),
                8,
            )
        };

        let shared_meta = self.rng.gen_bool(0.5);
        let meta_full_write = self.rng.gen_bool(0.5);
        for _phase in 0..phases {
            self.phase_compute_all(params::PHASE_COMPUTE_MEAN);
            // Broadcast parameters (sometimes twice: geometry + boundary
            // conditions), interleaved grid read, barrier, per-node
            // outputs.
            self.broadcast_one_shot(0);
            if self.rng.gen_bool(0.8) {
                self.broadcast_one_shot(0);
            }
            self.interleave_2d(1, sizes[1], chunk, pieces);
            self.barrier_all();
            for n in 0..p {
                let slot = out_base + (_phase as usize * p + n) as u16;
                self.write_output(n, slot);
            }
            self.barrier_all();
        }
        // One job-status (or shared-metadata) read-write file per job.
        if shared_meta {
            self.shared_meta_file(2, meta_full_write);
        } else {
            self.status_file(2);
        }
    }

    fn out_of_core(&mut self) {
        let p = self.nodes();
        let files = params::out_of_core::FILES;
        for f in 0..files {
            let node = f % p;
            let slot = f as u16;
            let temporary = f < params::out_of_core::TEMPORARY;
            let random =
                !temporary && f < params::out_of_core::TEMPORARY + params::out_of_core::RANDOM_RW;
            self.progs[node].push(Op::Open {
                slot,
                access: Access::ReadWrite,
                mode: IoMode::Independent,
                truncate: false,
            });
            // Lay down a few blocks.
            let blocks = self.rng.gen_range(3..10u64);
            for _ in 0..blocks {
                let think = self.think();
                let prog = &mut self.progs[node];
                prog.push(think);
                prog.push(Op::Write { slot, bytes: 4096 });
            }
            if random {
                // Out-of-core stencil: random partial-block
                // read-modify-writes in assorted sizes (Table 2's and
                // Table 3's 4+ rows; Figure 5's non-sequential read-write
                // population).
                for i in 0..6u64 {
                    let b = self.rng.gen_range(0..blocks);
                    let bytes = *[512u32, 1024, 2048, 4096, 3072]
                        .get((i % 5) as usize)
                        .expect("palette");
                    let think = self.think();
                    let prog = &mut self.progs[node];
                    prog.push(Op::Seek {
                        slot,
                        offset: b * 4096,
                    });
                    prog.push(think);
                    prog.push(Op::Read { slot, bytes });
                    prog.push(Op::Seek {
                        slot,
                        offset: b * 4096,
                    });
                    prog.push(Op::Write { slot, bytes });
                }
            } else {
                // Read back the first block.
                self.progs[node].push(Op::Seek { slot, offset: 0 });
                let think = self.think();
                self.progs[node].push(think);
                self.progs[node].push(Op::Read { slot, bytes: 4096 });
            }
            self.progs[node].push(Op::Close { slot });
            if temporary {
                self.progs[node].push(Op::Delete { slot });
            }
        }
    }

    fn checkpointer(&mut self) {
        let p = self.nodes();
        for phase in 0..5usize {
            self.phase_compute_all(Duration::from_secs(240));
            self.broadcast_one_shot(0);
            for n in 0..p {
                let slot = 1 + (phase * p + n) as u16;
                self.progs[n].push(Op::Open {
                    slot,
                    access: Access::Write,
                    mode: IoMode::Independent,
                    truncate: false,
                });
                for _ in 0..6 {
                    let think = self.think();
                    let prog = &mut self.progs[n];
                    prog.push(think);
                    // The Figure 4 spike: 1 MB write requests.
                    prog.push(Op::Write {
                        slot,
                        bytes: 1 << 20,
                    });
                }
                self.progs[n].push(Op::Close { slot });
            }
            self.barrier_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::{Mix, Scale};
    use charisma_ipsc::SimTime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan(class: JobClass, nodes: u32, seed: u64) -> JobPlan {
        JobPlan {
            id: 1,
            class,
            arrival: SimTime::ZERO,
            nodes,
            untraced_duration: Duration::from_secs(60),
            seed,
        }
    }

    fn sizes_for(files: &[FileSpec]) -> Vec<u64> {
        files
            .iter()
            .map(|f| match f.origin {
                FileOrigin::SharedDataset => 250_000,
                FileOrigin::Staged { size } => size,
                FileOrigin::Fresh => 0,
            })
            .collect()
    }

    #[test]
    fn untraced_classes_have_no_io() {
        for class in [
            JobClass::StatusChecker,
            JobClass::UntracedSingle,
            JobClass::UntracedMulti,
        ] {
            let p = plan(class, 1, 3);
            let b = build(&p, &[]);
            assert!(b.files.is_empty());
            assert!(b.programs.iter().all(|p| p.ops.is_empty()));
        }
    }

    #[test]
    fn table1_file_counts_per_class() {
        // Table 1: the class templates open 1 / 2 / 3 / 4 / 5+ files.
        for (class, nodes, expect) in [
            (JobClass::StatusReader, 4, 1),
            (JobClass::Copier, 1, 2),
            (JobClass::PostProcessor, 1, 3),
            (JobClass::SmallCfd, 4, 4),
        ] {
            let files = file_table(&plan(class, nodes, 5));
            assert_eq!(files.len(), expect, "{class:?}");
        }
        let many = file_table(&plan(JobClass::CfdPerNode, 16, 5));
        assert!(many.len() >= 5, "CfdPerNode is the 5+ bucket");
        assert_eq!(
            file_table(&plan(JobClass::OutOfCore, 16, 5)).len(),
            params::out_of_core::FILES
        );
    }

    #[test]
    fn programs_balance_opens_and_are_deterministic() {
        for class in [
            JobClass::StatusReader,
            JobClass::Copier,
            JobClass::PostProcessor,
            JobClass::SmallCfd,
            JobClass::CfdPerNode,
            JobClass::OutOfCore,
            JobClass::Checkpointer,
        ] {
            let nodes = match class {
                JobClass::Copier | JobClass::PostProcessor => 1,
                JobClass::OutOfCore => 16,
                _ => 8,
            };
            let p = plan(class, nodes, 42);
            let files = file_table(&p);
            let sizes = sizes_for(&files);
            let b1 = build_programs(&p, &sizes);
            let b2 = build_programs(&p, &sizes);
            assert_eq!(b1, b2, "{class:?} must be deterministic");
            assert_eq!(b1.len(), nodes as usize);
            for prog in &b1 {
                assert!(prog.opens_balanced(), "{class:?} leaves files open");
            }
        }
    }

    #[test]
    fn out_of_core_deletes_its_temporaries() {
        let p = plan(JobClass::OutOfCore, 16, 9);
        let b = build(&p, &sizes_for(&file_table(&p)));
        let deletes: usize = b
            .programs
            .iter()
            .flat_map(|p| &p.ops)
            .filter(|op| matches!(op, Op::Delete { .. }))
            .count();
        assert_eq!(deletes, params::out_of_core::TEMPORARY);
    }

    #[test]
    fn checkpointer_writes_megabyte_requests() {
        let p = plan(JobClass::Checkpointer, 32, 11);
        let b = build(&p, &sizes_for(&file_table(&p)));
        let mb_writes = b
            .programs
            .iter()
            .flat_map(|p| &p.ops)
            .filter(|op| matches!(op, Op::Write { bytes, .. } if *bytes == 1 << 20))
            .count();
        assert_eq!(mb_writes, 32 * 5 * 6);
    }

    #[test]
    fn cfd_outputs_cover_every_node_every_phase() {
        let p = plan(JobClass::CfdPerNode, 8, 1234);
        let files = file_table(&p);
        let progs = build_programs(&p, &sizes_for(&files));
        // Every node must write at least one output per phase: count
        // sessions opened with Write access.
        for (n, prog) in progs.iter().enumerate() {
            let writes = prog
                .ops
                .iter()
                .filter(|op| {
                    matches!(
                        op,
                        Op::Open {
                            access: Access::Write,
                            ..
                        }
                    )
                })
                .count();
            assert!(writes >= 2, "node {n} wrote only {writes} files");
        }
    }

    #[test]
    fn interleave_is_sequential_non_consecutive() {
        // Verify the signature pattern produces monotonically increasing,
        // gapped offsets per node.
        let p = plan(JobClass::CfdPerNode, 4, 77);
        let files = file_table(&p);
        let progs = build_programs(&p, &sizes_for(&files));
        // Walk node 1's ops for slot 1, tracking seeks.
        let mut offset = 0u64;
        let mut last_end: Option<u64> = None;
        let mut gaps = 0;
        let mut reads = 0;
        for op in &progs[1].ops {
            if matches!(op, Op::Close { slot: 1 }) {
                // Each phase re-opens the grid; only check the first pass.
                break;
            }
            match op {
                Op::Seek { slot: 1, offset: o } => offset = *o,
                Op::Read { slot: 1, bytes } => {
                    if let Some(end) = last_end {
                        assert!(offset >= end, "interleave must move forward");
                        if offset > end {
                            gaps += 1;
                        }
                    }
                    last_end = Some(offset + u64::from(*bytes));
                    offset += u64::from(*bytes);
                    reads += 1;
                }
                _ => {}
            }
        }
        assert!(reads > 2);
        assert!(gaps > 0, "non-consecutive per node");
    }

    #[test]
    fn full_mix_builds_every_job() {
        // Smoke: every traced job in a small mix compiles.
        let mix = Mix::plan(Scale(0.05), &mut StdRng::seed_from_u64(8));
        for j in mix.jobs.iter().filter(|j| j.class.traced()) {
            let files = file_table(j);
            let sizes = sizes_for(&files);
            let progs = build_programs(j, &sizes);
            assert_eq!(progs.len(), j.nodes as usize);
        }
    }
}
