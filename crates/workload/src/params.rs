//! Calibrated workload parameters.
//!
//! Every constant here is annotated with the paper statistic it targets.
//! The calibration is deliberately explicit and centralized so EXPERIMENTS.md
//! can audit it: anything listed here is *fitted*; anything not listed
//! (most importantly every cache-simulation result) is a prediction.

use charisma_ipsc::Duration;

/// Length of the traced period: "We collected data for about 156 hours over
/// a period of 3 weeks." We simulate one continuous 156-hour window.
pub const TRACE_HOURS: u64 = 156;

/// Total jobs run while tracing: "3016 jobs were run on the compute nodes".
pub const TOTAL_JOBS: usize = 3016;

/// Single-node jobs: "of which 2237 were only run on a single node".
pub const SINGLE_NODE_JOBS: usize = 2237;

/// Runs of the periodic machine-status checker: "there was one single-node
/// job which was run periodically, and which accounted for over 800 of the
/// single-node jobs".
pub const STATUS_CHECKER_RUNS: usize = 810;

/// Traced multi-node jobs: "We actually traced at least 429 of the 779
/// multi-node jobs".
pub const TRACED_MULTI_JOBS: usize = 429;

/// Traced single-node jobs: "and at least 41 of the single-node jobs".
pub const TRACED_SINGLE_JOBS: usize = 41;

/// Multi-node job node-count weights for 2, 4, 8, 16, 32, 64, 128 nodes
/// (Figure 2: "One-node jobs dominated the job population, although large
/// parallel jobs dominated node usage"). Weights sum to the 779 multi-node
/// jobs.
pub const MULTI_NODE_WEIGHTS: [(u32, usize); 7] = [
    (2, 60),
    (4, 90),
    (8, 120),
    (16, 120),
    (32, 180),
    (64, 150),
    (128, 59),
];

/// Offered load (mean number of concurrent jobs) contributed by the
/// *untraced-duration* estimates below. Traced jobs derive their real
/// durations from their programs (phase computes, staggered reads, I/O),
/// which adds roughly another 0.3; the machine lands near the paper's
/// Figure 1 profile (>25 % idle, ~35 % of time more than one job —
/// an M/G/∞ system at total load ρ spends e^(-ρ) of its time idle).
pub const OFFERED_LOAD: f64 = 0.95;

/// Mean duration of single-node jobs (mostly system utilities).
pub const SINGLE_NODE_MEAN_DURATION: Duration = Duration::from_secs(110);

/// Mean duration of untraced multi-node jobs. Together with
/// [`SINGLE_NODE_MEAN_DURATION`] this sets the untraced load:
/// (2237·110 s + 779·380 s) / 561,600 s ≈ 0.95 concurrent jobs.
pub const MULTI_NODE_MEAN_DURATION: Duration = Duration::from_secs(380);

/// Table 1 job-template buckets (files opened per traced job):
/// 71 jobs opened 1 file, 15 opened 2, 24 opened 3, 120 opened 4,
/// 240 opened 5+. The per-class counts below sum to 470 traced jobs.
pub mod table1 {
    /// Jobs opening one file (status readers, broadcast one-shots).
    pub const ONE_FILE_JOBS: usize = 71;
    /// Jobs opening two files (copiers).
    pub const TWO_FILE_JOBS: usize = 15;
    /// Jobs opening three files (post-processors).
    pub const THREE_FILE_JOBS: usize = 24;
    /// Jobs opening four files (small CFD runs with a shared output).
    pub const FOUR_FILE_JOBS: usize = 120;
    /// Jobs opening five or more files (per-node-output CFD runs, plus the
    /// one out-of-core job).
    pub const MANY_FILE_JOBS: usize = 240;
}

/// Output-file size mixture (Figure 3: "most of the files accessed were
/// large (10 KB to 1 MB)" with clusters "at 25 KB and 250 KB"; the tail
/// above 1 MB drags the mean write volume to the reported 1.2 MB/file).
/// Entries are `(bytes, weight)`.
pub const OUTPUT_SIZE_MIX: [(u64, u32); 5] = [
    (25_000, 40),
    (100_000, 15),
    (250_000, 24),
    (1_000_000, 9),
    (8_000_000, 12),
];

/// Input (dataset) file size mixture, same clusters.
pub const INPUT_SIZE_MIX: [(u64, u32); 6] = [
    (25_000, 22),
    (250_000, 38),
    (500_000, 15),
    (1_000_000, 12),
    (2_000_000, 8),
    (4_000_000, 5),
];

/// Small-record palette for reads (Figure 4: "96.1 % of all reads were for
/// fewer than 4000 bytes", with spikes at application-specific sizes and a
/// small peak at the 4 KB block size). Entries are `(bytes, weight)`.
pub const READ_RECORD_MIX: [(u32, u32); 5] =
    [(80, 10), (512, 30), (1024, 25), (2048, 25), (4096, 10)];

/// Small-record palette for writes (Figure 4 discussion: "89.4 % of all
/// writes were for fewer than 4000 bytes").
pub const WRITE_RECORD_MIX: [(u32, u32); 5] =
    [(128, 10), (512, 25), (1024, 30), (2048, 25), (4096, 10)];

/// Fraction of record-structured files whose size is *not* a multiple of
/// the record, leaving a partial final request. Drives Table 3:
/// "Over 90 % of the files were accessed with only one or two request
/// sizes" — 40.0 % one size, 51.4 % two sizes.
pub const PARTIAL_TAIL_FRACTION: f64 = 0.92;

/// Number of pre-seeded shared dataset (input) files. Created before
/// tracing starts (the paper's applications read datasets staged earlier);
/// sized from [`INPUT_SIZE_MIX`].
pub const DATASET_FILES: usize = 220;

/// Per-node-output CFD jobs: number of output phases (each phase writes a
/// fresh file per node). With the Figure 2 node counts this yields the
/// ~44,500 write-only files of §4.2.
pub const CFD_PHASES: std::ops::Range<u32> = 4..9;

/// The out-of-core job: "the maximum was one job that opened 2217 files";
/// "only 0.61 % of all opens were to 'temporary' files … nearly all of
/// those may have been from one application".
pub mod out_of_core {
    /// Total files the job opens.
    pub const FILES: usize = 2217;
    /// Files created and deleted by the job (temporaries; ~0.61 % of the
    /// ~64 k opens).
    pub const TEMPORARY: usize = 390;
    /// Scratch files accessed read-write with 4+ distinct seek intervals
    /// (Table 2's 4+ row: 674 files ≈ 1 %).
    pub const RANDOM_RW: usize = 600;
    /// Compute nodes the job uses.
    pub const NODES: u32 = 16;
}

/// Probability that a per-node CFD output is written in a single request
/// (Table 2 row 0: 36.5 % of files saw one request per node).
pub const ONE_SHOT_OUTPUT_FRACTION: f64 = 0.30;

/// Fraction of multi-request writers that seek back and rewrite a header
/// after the data (the small 0 %-sequential spike for write-only files in
/// Figure 5).
pub const HEADER_PATCH_FRACTION: f64 = 0.04;

/// Mean compute time between I/O phases (keeps job durations realistic so
/// Figure 1's concurrency profile emerges).
pub const PHASE_COMPUTE_MEAN: Duration = Duration::from_secs(95);

/// Mean compute time between individual small requests within a phase.
/// Short but nonzero: it interleaves concurrent jobs' requests at the I/O
/// nodes, which is what exercises interprocess locality.
pub const INTER_REQUEST_COMPUTE_US: u64 = 900;

/// How long after a job ends its files are archived to the host and
/// removed from CFS (untraced — host-side I/O was outside the paper's
/// instrumentation). Keeps the 7.6 GB file system from filling.
pub const ARCHIVE_AFTER: Duration = Duration::from_secs(1800);

/// Diurnal arrival modulation: the machine was traced "at all different
/// times of the day and of the week, including nights and weekends"
/// (§3.1), and production submission concentrates in working hours. The
/// arrival rate is scaled by [`NIGHT_RATE`] during the night third of
/// each day; days keep the remaining mass. This is what produces the
/// long idle stretches behind Figure 1's >25 % idle time.
pub const NIGHT_RATE: f64 = 0.35;

/// Fraction of each 24-hour cycle treated as night.
pub const NIGHT_FRACTION: f64 = 0.375;

/// Draw from a `(value, weight)` mixture.
pub fn draw_mix<T: Copy, R: rand::Rng>(mix: &[(T, u32)], rng: &mut R) -> T {
    let total: u32 = mix.iter().map(|&(_, w)| w).sum();
    let mut pick = rng.gen_range(0..total);
    for &(v, w) in mix {
        if pick < w {
            return v;
        }
        pick -= w;
    }
    mix.last().expect("non-empty mix").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn job_counts_are_consistent() {
        let multi: usize = MULTI_NODE_WEIGHTS.iter().map(|&(_, w)| w).sum();
        assert_eq!(multi, TOTAL_JOBS - SINGLE_NODE_JOBS, "779 multi-node jobs");
        const { assert!(STATUS_CHECKER_RUNS < SINGLE_NODE_JOBS) };
        assert!(TRACED_MULTI_JOBS <= multi);
    }

    #[test]
    fn table1_buckets_sum_to_traced_jobs() {
        let total = table1::ONE_FILE_JOBS
            + table1::TWO_FILE_JOBS
            + table1::THREE_FILE_JOBS
            + table1::FOUR_FILE_JOBS
            + table1::MANY_FILE_JOBS;
        assert_eq!(total, TRACED_MULTI_JOBS + TRACED_SINGLE_JOBS);
    }

    #[test]
    fn node_counts_are_powers_of_two() {
        for &(n, _) in &MULTI_NODE_WEIGHTS {
            assert!(n.is_power_of_two() && (2..=128).contains(&n));
        }
    }

    #[test]
    fn offered_load_matches_durations() {
        // ρ = Σ jobs·duration / trace length should be near OFFERED_LOAD.
        let single = SINGLE_NODE_JOBS as f64 * SINGLE_NODE_MEAN_DURATION.as_secs_f64();
        let multi = (TOTAL_JOBS - SINGLE_NODE_JOBS) as f64 * MULTI_NODE_MEAN_DURATION.as_secs_f64();
        let rho = (single + multi) / (TRACE_HOURS as f64 * 3600.0);
        assert!(
            (rho - OFFERED_LOAD).abs() < 0.15,
            "load {rho} vs {OFFERED_LOAD}"
        );
    }

    #[test]
    fn read_palette_is_mostly_sub_4000() {
        // Figure 4: the vast majority of reads are small.
        let small: u32 = READ_RECORD_MIX
            .iter()
            .filter(|&&(b, _)| b < 4000)
            .map(|&(_, w)| w)
            .sum();
        let total: u32 = READ_RECORD_MIX.iter().map(|&(_, w)| w).sum();
        assert!(small as f64 / total as f64 > 0.85);
    }

    #[test]
    fn draw_mix_respects_weights() {
        let mut rng = StdRng::seed_from_u64(9);
        let mix = [(1u32, 90), (2, 10)];
        let n = 10_000;
        let ones = (0..n).filter(|_| draw_mix(&mix, &mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((0.87..0.93).contains(&frac), "frac {frac}");
    }

    #[test]
    fn draw_mix_covers_all_entries() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            seen.insert(draw_mix(&OUTPUT_SIZE_MIX, &mut rng));
        }
        assert_eq!(seen.len(), OUTPUT_SIZE_MIX.len());
    }

    #[test]
    fn mean_output_size_near_reported_write_volume() {
        // §4.2: average bytes written per write-only file was 1.2 MB.
        let total_w: u64 = OUTPUT_SIZE_MIX.iter().map(|&(_, w)| u64::from(w)).sum();
        let mean: f64 = OUTPUT_SIZE_MIX
            .iter()
            .map(|&(v, w)| v as f64 * f64::from(w))
            .sum::<f64>()
            / total_w as f64;
        assert!(
            (0.5e6..1.5e6).contains(&mean),
            "mean output size {mean} must sit near 1.2 MB"
        );
    }
}
