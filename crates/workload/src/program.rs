//! Per-node op programs.
//!
//! An application template compiles into one [`Program`] per compute node:
//! a straight-line list of operations the node performs. The generator's
//! discrete-event loop interleaves the programs of all running jobs.

use charisma_cfs::{Access, IoMode};
use charisma_ipsc::Duration;

/// Index into a job's file table (templates may hold several files open).
pub type FileSlot = u16;

/// One operation in a node's program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Burn CPU time.
    Compute(Duration),
    /// Open the job file in `slot` (paths live in the job plan).
    Open {
        /// Which job file to open.
        slot: FileSlot,
        /// Open flags.
        access: Access,
        /// CFS I/O mode.
        mode: IoMode,
        /// Truncate an existing file.
        truncate: bool,
    },
    /// Reposition the node's pointer in `slot` (mode 0 only).
    Seek {
        /// Which open file.
        slot: FileSlot,
        /// Absolute target offset.
        offset: u64,
    },
    /// Read `bytes` at the current (mode-resolved) position.
    Read {
        /// Which open file.
        slot: FileSlot,
        /// Request size.
        bytes: u32,
    },
    /// Write `bytes` at the current (mode-resolved) position.
    Write {
        /// Which open file.
        slot: FileSlot,
        /// Request size.
        bytes: u32,
    },
    /// Close the node's attachment to `slot`.
    Close {
        /// Which open file.
        slot: FileSlot,
    },
    /// Delete the file in `slot` (a traced delete — temporaries).
    Delete {
        /// Which job file.
        slot: FileSlot,
    },
    /// Synchronize with the job's other nodes at barrier `id`.
    Barrier(u32),
    /// Wait for this node's round-robin turn on `slot` before the next
    /// request (modes 2-3 coordination).
    AwaitTurn {
        /// Which open file.
        slot: FileSlot,
    },
}

/// A node's complete program.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// Operations, executed in order.
    pub ops: Vec<Op>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Append an op (builder style).
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Number of read/write requests in the program.
    pub fn request_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Read { .. } | Op::Write { .. }))
            .count()
    }

    /// Total bytes this program reads and writes `(read, written)`.
    pub fn byte_totals(&self) -> (u64, u64) {
        let mut r = 0u64;
        let mut w = 0u64;
        for op in &self.ops {
            match op {
                Op::Read { bytes, .. } => r += u64::from(*bytes),
                Op::Write { bytes, .. } => w += u64::from(*bytes),
                _ => {}
            }
        }
        (r, w)
    }

    /// Whether every `Open` in the program is eventually `Close`d.
    pub fn opens_balanced(&self) -> bool {
        let mut open = std::collections::HashMap::new();
        for op in &self.ops {
            match op {
                Op::Open { slot, .. } => *open.entry(*slot).or_insert(0i32) += 1,
                Op::Close { slot } => *open.entry(*slot).or_insert(0) -= 1,
                _ => {}
            }
        }
        open.values().all(|&v| v == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_counters() {
        let mut p = Program::new();
        p.push(Op::Open {
            slot: 0,
            access: Access::Write,
            mode: IoMode::Independent,
            truncate: false,
        });
        p.push(Op::Write {
            slot: 0,
            bytes: 100,
        });
        p.push(Op::Write { slot: 0, bytes: 50 });
        p.push(Op::Close { slot: 0 });
        assert_eq!(p.request_count(), 2);
        assert_eq!(p.byte_totals(), (0, 150));
        assert!(p.opens_balanced());
    }

    #[test]
    fn unbalanced_opens_detected() {
        let mut p = Program::new();
        p.push(Op::Open {
            slot: 3,
            access: Access::Read,
            mode: IoMode::Independent,
            truncate: false,
        });
        assert!(!p.opens_balanced());
    }
}
