//! The job mix: who runs, when, and on how many nodes.
//!
//! Reproduces §4.1's population: 3016 jobs over the 156-hour traced period,
//! 2237 single-node (over 800 of them one periodic status checker), 779
//! multi-node with the Figure 2 node-count distribution, of which 429 were
//! traced. Arrivals follow a Poisson process sized so the machine's
//! concurrency profile matches Figure 1 (≈27 % idle, ≈35 % multi-job).

use charisma_ipsc::{Duration, SimTime};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::params;

/// The application class a job runs. Traced classes carry the template
/// that generates per-node programs; untraced classes only occupy nodes
/// (their CFS I/O, if any, is invisible — exactly like the system programs
/// and stale binaries of the real trace).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// The periodic machine-status check (untraced single-node; >800 runs).
    StatusChecker,
    /// Miscellaneous untraced single-node jobs (ls, cp, ftp, old binaries).
    UntracedSingle,
    /// Untraced multi-node jobs.
    UntracedMulti,
    /// Traced: opens one shared file, every node reads it whole in one
    /// request (Table 1's one-file bucket; Figure 7's fully-byte-shared
    /// population).
    StatusReader,
    /// Traced: reads one file, writes one file, small consecutive records
    /// (Table 1's two-file bucket).
    Copier,
    /// Traced single-node: reads two prior outputs block-by-block (the
    /// Figure 4 spike at 4 KB — "some users have optimized for the
    /// file-system block size"), writes a summary (three-file bucket).
    PostProcessor,
    /// Traced: small CFD run — broadcast parameter file, whole-input
    /// broadcast read in small records, one *shared* output file written in
    /// mode 1, and a read-write status file (four-file bucket).
    SmallCfd,
    /// Traced: production CFD run — per-node input partitions, broadcast
    /// parameter files and a 2-D interleaved shared input each phase,
    /// per-node output files each phase, a read-write status file, and
    /// sometimes unaccessed per-node log opens (the 5+ bucket; the source
    /// of the 44,500 write-only files).
    CfdPerNode,
    /// Traced, exactly one: the out-of-core application that opened 2217
    /// files and created nearly all of the trace's temporary files.
    OutOfCore,
    /// Traced, exactly one: a CFD variant that checkpoints in 1 MB
    /// requests (Figure 4: "one trace alone … contributed the spike at
    /// 1 MB").
    Checkpointer,
}

impl JobClass {
    /// Whether the job's CFS I/O appears in the trace.
    pub fn traced(self) -> bool {
        !matches!(
            self,
            JobClass::StatusChecker | JobClass::UntracedSingle | JobClass::UntracedMulti
        )
    }
}

/// One planned job.
#[derive(Clone, Debug)]
pub struct JobPlan {
    /// Job identity (also the trace's job id).
    pub id: u32,
    /// Application class.
    pub class: JobClass,
    /// Arrival time.
    pub arrival: SimTime,
    /// Compute nodes requested (a power of two).
    pub nodes: u32,
    /// For untraced jobs: how long the job occupies its nodes. Traced jobs
    /// derive their duration from their programs.
    pub untraced_duration: Duration,
    /// Per-job RNG seed (templates draw their shapes from this).
    pub seed: u64,
}

/// The whole planned mix, sorted by arrival.
#[derive(Clone, Debug)]
pub struct Mix {
    /// Jobs in arrival order.
    pub jobs: Vec<JobPlan>,
    /// Length of the traced period.
    pub trace_len: SimTime,
}

/// Scale factor: 1.0 is the paper's full three-week population; tests use
/// small fractions. Counts scale linearly (but the singleton jobs —
/// out-of-core, checkpointer — are kept whenever the scale admits any
/// many-file job).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    fn apply(self, n: usize) -> usize {
        ((n as f64) * self.0).round() as usize
    }
}

impl Mix {
    /// Plan the job mix at the given scale.
    pub fn plan<R: Rng>(scale: Scale, rng: &mut R) -> Mix {
        let trace_len = SimTime::from_hours(
            (params::TRACE_HOURS as f64 * scale.0.min(1.0))
                .max(2.0)
                .round() as u64,
        );

        // Build the class deck with exact (scaled) counts.
        let mut deck: Vec<JobClass> = Vec::new();
        let push = |deck: &mut Vec<JobClass>, class, n| {
            deck.extend(std::iter::repeat_n(class, n));
        };
        push(
            &mut deck,
            JobClass::UntracedSingle,
            scale.apply(
                params::SINGLE_NODE_JOBS - params::STATUS_CHECKER_RUNS - params::TRACED_SINGLE_JOBS,
            ),
        );
        push(
            &mut deck,
            JobClass::UntracedMulti,
            scale.apply(params::TOTAL_JOBS - params::SINGLE_NODE_JOBS - params::TRACED_MULTI_JOBS),
        );
        // Traced classes, Table 1 buckets. StatusReader covers the one-file
        // bucket: 69 multi-node + 2 single-node runs.
        push(
            &mut deck,
            JobClass::StatusReader,
            scale.apply(params::table1::ONE_FILE_JOBS),
        );
        push(
            &mut deck,
            JobClass::Copier,
            scale.apply(params::table1::TWO_FILE_JOBS),
        );
        push(
            &mut deck,
            JobClass::PostProcessor,
            scale.apply(params::table1::THREE_FILE_JOBS),
        );
        push(
            &mut deck,
            JobClass::SmallCfd,
            scale.apply(params::table1::FOUR_FILE_JOBS),
        );
        let many = scale.apply(params::table1::MANY_FILE_JOBS);
        if many >= 1 {
            push(&mut deck, JobClass::CfdPerNode, many.saturating_sub(2));
            push(&mut deck, JobClass::OutOfCore, 1);
            if many >= 2 {
                push(&mut deck, JobClass::Checkpointer, 1);
            }
        }
        deck.shuffle(rng);

        // Nonhomogeneous Poisson arrivals over the traced period (diurnal
        // modulation: submissions thin out at night), via thinning of a
        // homogeneous process at the peak (day) rate.
        let mut jobs = Vec::with_capacity(deck.len() + scale.apply(params::STATUS_CHECKER_RUNS));
        let horizon = trace_len.as_micros() as f64;
        let n = deck.len().max(1) as f64;
        // Average rate must deliver n arrivals; day rate compensates for
        // the thinned nights.
        let night = params::NIGHT_FRACTION;
        let mean_factor = (1.0 - night) + night * params::NIGHT_RATE;
        let day_rate = n / horizon / mean_factor;
        let day_us = 24.0 * 3600.0 * 1e6;
        let is_night = |t: f64| (t % day_us) / day_us < night;
        let mut t = 0.0f64;
        for class in deck {
            loop {
                t += -(1.0 - rng.gen::<f64>()).ln() / day_rate;
                let keep = if is_night(t) { params::NIGHT_RATE } else { 1.0 };
                if rng.gen::<f64>() < keep || t >= horizon {
                    break;
                }
            }
            let arrival = SimTime::from_micros((t.min(horizon * 0.98)) as u64);
            jobs.push(Self::make_job(class, arrival, rng));
        }

        // ... plus the periodic status checker.
        let runs = scale.apply(params::STATUS_CHECKER_RUNS);
        if runs > 0 {
            let period = horizon / runs as f64;
            for k in 0..runs {
                let jitter = rng.gen_range(-0.05..0.05) * period;
                let at = (k as f64 * period + period * 0.5 + jitter).max(0.0);
                jobs.push(Self::make_job(
                    JobClass::StatusChecker,
                    SimTime::from_micros(at as u64),
                    rng,
                ));
            }
        }

        jobs.sort_by_key(|j| j.arrival);
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = i as u32;
        }
        Mix { jobs, trace_len }
    }

    fn make_job<R: Rng>(class: JobClass, arrival: SimTime, rng: &mut R) -> JobPlan {
        let nodes = match class {
            JobClass::StatusChecker
            | JobClass::UntracedSingle
            | JobClass::PostProcessor
            | JobClass::Copier => 1,
            JobClass::StatusReader => {
                // Mostly small multi-node, a couple single-node.
                if rng.gen_bool(0.03) {
                    1
                } else {
                    *[2u32, 4, 8].choose(rng).expect("nonempty")
                }
            }
            JobClass::SmallCfd => *[2u32, 4, 8].choose(rng).expect("nonempty"),
            JobClass::OutOfCore => params::out_of_core::NODES,
            JobClass::Checkpointer => 32,
            JobClass::UntracedMulti | JobClass::CfdPerNode => {
                params::draw_mix(&params::MULTI_NODE_WEIGHTS.map(|(n, w)| (n, w as u32)), rng)
            }
        };
        let mean = if nodes == 1 {
            params::SINGLE_NODE_MEAN_DURATION
        } else {
            params::MULTI_NODE_MEAN_DURATION
        };
        // Exponential-ish duration, clamped to something sane.
        let dur = mean.as_secs_f64() * (-(1.0 - rng.gen::<f64>()).ln()).clamp(0.05, 4.0);
        JobPlan {
            id: 0,
            class,
            arrival,
            nodes,
            untraced_duration: Duration::from_secs_f64(dur),
            seed: rng.gen(),
        }
    }

    /// Number of traced jobs in the plan.
    pub fn traced_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| j.class.traced()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn full_mix(seed: u64) -> Mix {
        Mix::plan(Scale(1.0), &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn full_scale_counts_match_paper() {
        let mix = full_mix(1);
        assert_eq!(mix.jobs.len(), params::TOTAL_JOBS, "3016 jobs");
        let single = mix.jobs.iter().filter(|j| j.nodes == 1).count();
        // 2237 single-node jobs, modulo StatusReader's random 1-node draws.
        assert!(
            (single as i64 - params::SINGLE_NODE_JOBS as i64).abs() < 15,
            "single-node jobs: {single}"
        );
        assert_eq!(
            mix.traced_jobs(),
            params::TRACED_MULTI_JOBS + params::TRACED_SINGLE_JOBS
        );
        assert_eq!(
            mix.jobs
                .iter()
                .filter(|j| j.class == JobClass::StatusChecker)
                .count(),
            params::STATUS_CHECKER_RUNS
        );
        assert_eq!(
            mix.jobs
                .iter()
                .filter(|j| j.class == JobClass::OutOfCore)
                .count(),
            1,
            "exactly one out-of-core job"
        );
    }

    #[test]
    fn node_counts_are_powers_of_two_up_to_128() {
        let mix = full_mix(2);
        for j in &mix.jobs {
            assert!(j.nodes.is_power_of_two() && j.nodes <= 128, "{:?}", j);
        }
    }

    #[test]
    fn arrivals_are_sorted_and_in_horizon() {
        let mix = full_mix(3);
        let mut last = SimTime::ZERO;
        for j in &mix.jobs {
            assert!(j.arrival >= last);
            assert!(j.arrival < mix.trace_len);
            last = j.arrival;
        }
    }

    #[test]
    fn planning_is_deterministic() {
        let a = full_mix(7);
        let b = full_mix(7);
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.class, y.class);
            assert_eq!(x.arrival, y.arrival);
        }
    }

    #[test]
    fn scaling_reduces_counts_proportionally() {
        let mix = Mix::plan(Scale(0.1), &mut StdRng::seed_from_u64(4));
        let expect = params::TOTAL_JOBS / 10;
        assert!(
            (mix.jobs.len() as i64 - expect as i64).abs() < 20,
            "{} vs {}",
            mix.jobs.len(),
            expect
        );
        // Singletons survive scaling.
        assert_eq!(
            mix.jobs
                .iter()
                .filter(|j| j.class == JobClass::OutOfCore)
                .count(),
            1
        );
    }

    #[test]
    fn offered_load_is_near_target() {
        let mix = full_mix(5);
        let total: f64 = mix
            .jobs
            .iter()
            .map(|j| j.untraced_duration.as_secs_f64())
            .sum();
        let rho = total / mix.trace_len.as_secs_f64();
        assert!(
            (rho - params::OFFERED_LOAD).abs() < 0.3,
            "offered load {rho}"
        );
    }

    #[test]
    fn multi_node_distribution_tracks_figure_2() {
        let mix = full_mix(6);
        let mut counts = std::collections::HashMap::new();
        for j in mix
            .jobs
            .iter()
            .filter(|j| matches!(j.class, JobClass::UntracedMulti | JobClass::CfdPerNode))
        {
            *counts.entry(j.nodes).or_insert(0usize) += 1;
        }
        // Large jobs must exist: Figure 2's "large parallel jobs dominated
        // node usage".
        assert!(counts.get(&128).copied().unwrap_or(0) > 10);
        assert!(counts.get(&32).copied().unwrap_or(0) > 50);
    }
}
