//! Sharded workload generation: plan once, simulate in parallel, merge
//! deterministically.
//!
//! The monolithic generator ([`crate::generate`]) runs the entire
//! three-week job population through one discrete-event loop. That is
//! faithful but single-threaded — the hot path of the whole
//! reproduction. This module shards it:
//!
//! 1. **Plan** — the global [`Mix`] is planned exactly once from the
//!    master seed, then partitioned round-robin (by arrival rank) into
//!    [`LOGICAL_SHARDS`] per-shard job sets. The partition is a pure
//!    function of the plan: it never depends on how many worker threads
//!    later run it.
//! 2. **Simulate** — each shard runs its job subset on its *own* machine
//!    and CFS instance, driven by an independent `StdRng` stream derived
//!    from `(seed, shard)`. Shards share no mutable state, so any number
//!    of `std::thread::scope` workers can execute them in any order.
//! 3. **Merge** — per-shard traces are rectified independently and merged
//!    with [`charisma_trace::merge`]'s deterministic k-way merge. Session
//!    and file identifiers are rebased into per-shard namespaces (shard
//!    id in the high bits) so the merged stream stays globally coherent.
//!
//! Because the plan, the per-shard simulations, and the merge are each
//! deterministic, the merged stream is **bit-identical** for every worker
//! count — `charisma-verify determinism --shards N` proves it.
//!
//! The trade-off: shards do not contend for one 128-node allocator, so
//! machine-level concurrency (Figure 1) reflects the union of
//! [`LOGICAL_SHARDS`] lightly loaded machines rather than one saturated
//! one. Every *file-centric* statistic — sizes, request sizes,
//! sequentiality, regularity, modes, sharing — is per-job and survives
//! sharding unchanged.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use charisma_ipsc::SimTime;
use charisma_obs::MetricsSnapshot;
use charisma_trace::merge::MergedEvents;
use charisma_trace::postprocess::postprocess;

use crate::generate::{dataset_pool_size, generate_with_mix, GenStats, GeneratedWorkload};
use crate::mix::{Mix, Scale};
use crate::GeneratorConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of logical shards the job mix is partitioned into.
///
/// This is a *plan* constant, not a thread count: `workers` in
/// [`generate_sharded`] only chooses how many threads execute the shards.
/// Keeping the partition fixed is what makes the merged stream identical
/// for every worker count. Sixteen shards keep the largest shard well
/// under half the total work (the out-of-core singleton dominates its
/// shard), which is what bounds parallel speedup.
pub const LOGICAL_SHARDS: usize = 16;

/// Bits reserved for per-shard session/file counters; the shard index
/// lives above them. 24 bits ≈ 16.7 M sessions per shard — the full-scale
/// workload produces ~60 K in total.
pub const SHARD_ID_SHIFT: u32 = 24;

/// The session/file identifier base for a shard.
pub fn shard_id_base(shard: usize) -> u32 {
    (shard as u32) << SHARD_ID_SHIFT
}

/// Derive shard `shard`'s RNG seed from the master seed (splitmix64 over
/// the pair, so nearby seeds and shard indices decorrelate).
pub fn derive_shard_seed(seed: u64, shard: u64) -> u64 {
    let mut z = seed ^ shard.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Partition a planned mix into [`LOGICAL_SHARDS`] per-shard sub-mixes.
///
/// Round-robin by arrival rank: each shard sees an even slice of the
/// whole traced period, so shard workloads stay balanced in time as well
/// as in count. Job ids (assigned globally by [`Mix::plan`]) are kept, so
/// they remain unique across the merged stream.
pub fn partition_mix(mix: &Mix) -> Vec<Mix> {
    let mut shards: Vec<Mix> = (0..LOGICAL_SHARDS)
        .map(|_| Mix {
            jobs: Vec::with_capacity(mix.jobs.len() / LOGICAL_SHARDS + 1),
            trace_len: mix.trace_len,
        })
        .collect();
    for (i, job) in mix.jobs.iter().enumerate() {
        shards[i % LOGICAL_SHARDS].jobs.push(job.clone());
    }
    shards
}

/// A sharded generated workload: every shard's trace plus merged facts.
#[derive(Clone, Debug)]
pub struct ShardedWorkload {
    /// Per-shard outputs, indexed by shard. Each holds that shard's raw
    /// collected trace (session/file ids already rebased into the shard's
    /// namespace) and its local stats.
    pub shards: Vec<GeneratedWorkload>,
    /// Stats aggregated across shards.
    pub stats: GenStats,
    /// Per-shard metric snapshots merged into one (counters summed, gauges
    /// maxed, histograms added bucket-wise). Because the merge rules are
    /// associative and commutative and the partition is fixed, this is
    /// identical for every worker count.
    pub metrics: MetricsSnapshot,
}

impl ShardedWorkload {
    /// Total trace records across all shards.
    pub fn event_count(&self) -> usize {
        self.shards.iter().map(|s| s.trace.event_count()).sum()
    }

    /// Rectify every shard's trace and merge them into one globally
    /// ordered stream.
    ///
    /// Per-shard clock fitting is unchanged from the monolithic path (a
    /// shard's blocks carry its own machine's clocks); the cross-shard
    /// order is the deterministic `(time, node, shard, seq)` merge.
    pub fn merged_events(&self) -> MergedEvents {
        MergedEvents::new(self.shards.iter().map(|s| postprocess(&s.trace)).collect())
    }
}

/// Merge per-shard stats into workload-level aggregates.
fn merge_stats(shards: &[GeneratedWorkload]) -> GenStats {
    let mut out = GenStats::default();
    let mut weighted_reduction = 0.0;
    let mut weight = 0.0;
    for s in shards {
        out.jobs += s.stats.jobs;
        out.traced_jobs += s.stats.traced_jobs;
        out.sessions += s.stats.sessions;
        out.requests += s.stats.requests;
        out.end_time = out.end_time.max(s.stats.end_time);
        let w = s.trace.event_count() as f64;
        weighted_reduction += w * s.stats.message_reduction;
        weight += w;
    }
    out.message_reduction = if weight > 0.0 {
        weighted_reduction / weight
    } else {
        0.0
    };
    out
}

/// Rebase a shard trace's session/file identifiers into the shard's
/// namespace.
fn rebase_ids(workload: &mut GeneratedWorkload, shard: usize) {
    let base = shard_id_base(shard);
    if base == 0 {
        return;
    }
    for block in &mut workload.trace.blocks {
        for event in &mut block.events {
            charisma_ipsc::invariant!(
                matches!(
                    event.body,
                    charisma_trace::record::EventBody::JobStart { .. }
                        | charisma_trace::record::EventBody::JobEnd { .. }
                ) || {
                    let max = 1u32 << SHARD_ID_SHIFT;
                    match event.body {
                        charisma_trace::record::EventBody::Open { file, session, .. } => {
                            file < max && session < max
                        }
                        charisma_trace::record::EventBody::Close { session, .. }
                        | charisma_trace::record::EventBody::Read { session, .. }
                        | charisma_trace::record::EventBody::Write { session, .. } => session < max,
                        charisma_trace::record::EventBody::Delete { file, .. } => file < max,
                        _ => true,
                    }
                },
                "shard {shard} overflowed its {SHARD_ID_SHIFT}-bit id namespace"
            );
            event.body = event.body.with_id_base(base);
        }
    }
}

/// A shard worker that failed even after bounded retry.
///
/// Carried out of [`try_generate_sharded`] instead of letting the panic
/// tear down the whole pipeline: the caller learns which shard died, how
/// many attempts were made, and the panic's message.
#[derive(Clone, Debug)]
pub struct ShardFailure {
    /// Which shard failed.
    pub shard: usize,
    /// How many times it was attempted.
    pub attempts: u32,
    /// The last panic's message.
    pub message: String,
}

impl std::fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} failed after {} attempts: {}",
            self.shard, self.attempts, self.message
        )
    }
}

impl std::error::Error for ShardFailure {}

/// Bounded retry budget for a panicking shard worker.
const SHARD_ATTEMPTS: u32 = 3;

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `work` up to `attempts` times, containing panics. Returns the
/// first success together with how many retries it took, or the last
/// panic's message as a [`ShardFailure`].
///
/// Shard generation is a pure function of its inputs, so a deterministic
/// panic recurs on every attempt; the retry budget exists for the
/// environmental failures (allocation pressure, injected test panics)
/// that containment is for.
pub(crate) fn contain_panics<T>(
    shard: usize,
    attempts: u32,
    work: impl Fn() -> T,
) -> Result<(T, u32), ShardFailure> {
    let mut message = String::new();
    for attempt in 0..attempts.max(1) {
        match catch_unwind(AssertUnwindSafe(&work)) {
            Ok(out) => return Ok((out, attempt)),
            Err(payload) => message = panic_message(payload.as_ref()),
        }
    }
    Err(ShardFailure {
        shard,
        attempts: attempts.max(1),
        message,
    })
}

/// Run one shard with panic containment and bounded retry. On success
/// after a retry, records the retry count under `faults.shard_retries`
/// (absent from fault-free runs, so clean snapshots stay unchanged).
fn run_shard_guarded(
    config: &GeneratorConfig,
    shard: usize,
    mix: &Mix,
) -> Result<GeneratedWorkload, ShardFailure> {
    let (mut workload, retries) = contain_panics(shard, SHARD_ATTEMPTS, || {
        run_shard(config, shard, mix.clone())
    })?;
    if retries > 0 {
        workload
            .metrics
            .set_counter("faults.shard_retries", u64::from(retries));
    }
    Ok(workload)
}

/// Run one shard to completion and rebase its identifiers.
fn run_shard(config: &GeneratorConfig, shard: usize, mix: Mix) -> GeneratedWorkload {
    let seed = derive_shard_seed(config.seed, shard as u64);
    let datasets = dataset_pool_size(config.scale / LOGICAL_SHARDS as f64);
    let mut workload = generate_with_mix(config.clone(), seed, datasets, mix);
    rebase_ids(&mut workload, shard);
    workload.metrics.set_counter(
        &format!("workload.shard{shard:02}.jobs"),
        workload.stats.jobs as u64,
    );
    workload.metrics.set_counter(
        &format!("workload.shard{shard:02}.requests"),
        workload.stats.requests,
    );
    workload
}

/// Generate the workload sharded, on up to `workers` threads.
///
/// The output is a pure function of `config` — `workers` only sets the
/// execution width (`0` and `1` both mean "run serially on the calling
/// thread"; anything larger is capped at [`LOGICAL_SHARDS`]). Workers
/// claim shards from a shared counter, so a slow shard (the one hosting
/// the out-of-core singleton) never blocks the others.
pub fn generate_sharded(config: &GeneratorConfig, workers: usize) -> ShardedWorkload {
    match try_generate_sharded(config, workers) {
        Ok(w) => w,
        Err(failure) => panic!("{failure}"),
    }
}

/// [`generate_sharded`], but a shard worker that panics (even after
/// [`SHARD_ATTEMPTS`] contained retries) surfaces as a [`ShardFailure`]
/// instead of tearing the process down.
pub fn try_generate_sharded(
    config: &GeneratorConfig,
    workers: usize,
) -> Result<ShardedWorkload, ShardFailure> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mix = Mix::plan(Scale(config.scale), &mut rng);
    let parts = partition_mix(&mix);

    let workers = workers.clamp(1, LOGICAL_SHARDS);
    let results: Vec<Result<GeneratedWorkload, ShardFailure>> = if workers == 1 {
        parts
            .iter()
            .enumerate()
            .map(|(i, part)| run_shard_guarded(config, i, part))
            .collect()
    } else {
        let outputs: Vec<Mutex<Option<Result<GeneratedWorkload, ShardFailure>>>> =
            (0..parts.len()).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= parts.len() {
                        break;
                    }
                    let result = run_shard_guarded(config, i, &parts[i]);
                    *outputs[i].lock().expect("shard output lock") = Some(result);
                });
            }
        });
        outputs
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("shard output lock")
                    .expect("every shard ran")
            })
            .collect()
    };
    let mut shards = Vec::with_capacity(results.len());
    for result in results {
        shards.push(result?);
    }

    let stats = merge_stats(&shards);
    let mut metrics = MetricsSnapshot::new();
    for shard in &shards {
        metrics.merge(&shard.metrics);
    }
    Ok(ShardedWorkload {
        shards,
        stats,
        metrics,
    })
}

/// The end time of the merged stream (max across shards) — a convenience
/// mirroring the monolithic generator's `stats.end_time`.
pub fn merged_end_time(shards: &[GeneratedWorkload]) -> SimTime {
    shards
        .iter()
        .map(|s| s.stats.end_time)
        .max()
        .unwrap_or(SimTime::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_trace::record::EventBody;

    fn config(scale: f64) -> GeneratorConfig {
        GeneratorConfig::test_scale(scale)
    }

    /// FNV-1a over the merged stream, for equality assertions.
    fn stream_hash(w: &ShardedWorkload) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for e in w.merged_events() {
            let mut mix = |v: u64| {
                for b in v.to_le_bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
            };
            mix(e.time.as_micros());
            mix(u64::from(e.node));
            mix(u64::from(e.body.tag()));
            match e.body {
                EventBody::Open { file, session, .. } => {
                    mix(u64::from(file));
                    mix(u64::from(session));
                }
                EventBody::Read {
                    session,
                    offset,
                    bytes,
                }
                | EventBody::Write {
                    session,
                    offset,
                    bytes,
                } => {
                    mix(u64::from(session));
                    mix(offset);
                    mix(u64::from(bytes));
                }
                EventBody::Close { session, size } => {
                    mix(u64::from(session));
                    mix(size);
                }
                EventBody::JobStart { job, .. } | EventBody::JobEnd { job } => mix(u64::from(job)),
                EventBody::Delete { job, file } => {
                    mix(u64::from(job));
                    mix(u64::from(file));
                }
            }
        }
        h
    }

    #[test]
    fn partition_is_a_cover_and_preserves_ids() {
        let mut rng = StdRng::seed_from_u64(9);
        let mix = Mix::plan(Scale(0.05), &mut rng);
        let parts = partition_mix(&mix);
        assert_eq!(parts.len(), LOGICAL_SHARDS);
        let mut ids: Vec<u32> = parts
            .iter()
            .flat_map(|p| p.jobs.iter().map(|j| j.id))
            .collect();
        ids.sort_unstable();
        let mut want: Vec<u32> = mix.jobs.iter().map(|j| j.id).collect();
        want.sort_unstable();
        assert_eq!(ids, want, "every job lands in exactly one shard");
    }

    #[test]
    fn worker_count_does_not_change_the_stream() {
        let serial = generate_sharded(&config(0.02), 1);
        let two = generate_sharded(&config(0.02), 2);
        let eight = generate_sharded(&config(0.02), 8);
        let h = stream_hash(&serial);
        assert_eq!(h, stream_hash(&two), "2 workers diverged from serial");
        assert_eq!(h, stream_hash(&eight), "8 workers diverged from serial");
        assert_eq!(serial.stats.jobs, eight.stats.jobs);
        assert_eq!(serial.stats.requests, eight.stats.requests);
    }

    #[test]
    fn shard_ids_are_disjoint_across_shards() {
        let w = generate_sharded(&config(0.02), 4);
        for (shard, g) in w.shards.iter().enumerate() {
            let base = shard_id_base(shard);
            for (_, e) in g.trace.raw_events() {
                if let EventBody::Open { file, session, .. } = e.body {
                    assert_eq!(file >> SHARD_ID_SHIFT, shard as u32, "file {file}");
                    assert_eq!(session >> SHARD_ID_SHIFT, shard as u32, "session {session}");
                    assert!(file >= base && session >= base);
                }
            }
        }
    }

    #[test]
    fn merged_stream_is_ordered_and_complete() {
        let w = generate_sharded(&config(0.02), 4);
        let merged: Vec<_> = w.merged_events().collect();
        assert_eq!(merged.len(), w.event_count());
        for pair in merged.windows(2) {
            assert!(
                (pair[0].time, pair[0].node) <= (pair[1].time, pair[1].node),
                "merged stream out of order"
            );
        }
        // Jobs remain globally unique: every start has exactly one end.
        let mut starts = std::collections::HashSet::new();
        for e in &merged {
            if let EventBody::JobStart { job, .. } = e.body {
                assert!(starts.insert(job), "job {job} started twice across shards");
            }
        }
        assert_eq!(starts.len(), w.stats.jobs);
    }

    #[test]
    fn merged_metrics_are_worker_count_invariant() {
        let serial = generate_sharded(&config(0.02), 1);
        let four = generate_sharded(&config(0.02), 4);
        assert_eq!(serial.metrics, four.metrics, "metrics diverged");
        // The full export (timings included) varies run to run, but the
        // deterministic core must be byte-identical.
        assert_eq!(serial.metrics.to_core_json(), four.metrics.to_core_json());
        // Per-shard keys survive the merge and sum to the total.
        let shard_jobs: u64 = (0..LOGICAL_SHARDS)
            .map(|i| serial.metrics.counters[&format!("workload.shard{i:02}.jobs")])
            .sum();
        assert_eq!(shard_jobs, serial.stats.jobs as u64);
        assert_eq!(
            serial.metrics.counters["workload.requests"],
            serial.stats.requests
        );
        assert!(serial.metrics.counters["engine.events_dispatched"] > 0);
        assert!(serial.metrics.counters["cfs.cache_hits"] > 0);
        assert!(serial.metrics.histograms["cfs.disk_service_us"].count > 0);
        assert!(serial.metrics.gauges["engine.queue_depth_high_water"] > 0);
    }

    #[test]
    fn contained_panic_retries_then_succeeds() {
        use std::sync::atomic::AtomicU32;
        let calls = AtomicU32::new(0);
        let out = contain_panics(3, 3, || {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("transient shard failure");
            }
            42u32
        });
        let (value, retries) = out.expect("third attempt succeeds");
        assert_eq!(value, 42);
        assert_eq!(retries, 2);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn persistent_panic_surfaces_as_shard_failure() {
        let err = contain_panics::<()>(7, 3, || panic!("wedged")).unwrap_err();
        assert_eq!(err.shard, 7);
        assert_eq!(err.attempts, 3);
        assert!(err.message.contains("wedged"), "{}", err.message);
        assert!(err.to_string().contains("shard 7"), "{err}");
    }

    #[test]
    fn fault_plan_outcome_is_worker_count_invariant() {
        use charisma_ipsc::FaultPlan;
        let mut cfg = config(0.01);
        cfg.faults = FaultPlan::chaos_fixture();
        let serial = generate_sharded(&cfg, 1);
        let four = generate_sharded(&cfg, 4);
        assert_eq!(
            stream_hash(&serial),
            stream_hash(&four),
            "chaos stream diverged across worker counts"
        );
        assert_eq!(serial.metrics.to_core_json(), four.metrics.to_core_json());
        assert!(
            serial.metrics.counters["faults.injected"] > 0,
            "the chaos fixture injects faults at this scale"
        );
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        use charisma_ipsc::FaultPlan;
        let clean = generate_sharded(&config(0.01), 2);
        let mut cfg = config(0.01);
        cfg.faults = FaultPlan::none();
        let with_empty_plan = generate_sharded(&cfg, 2);
        assert_eq!(stream_hash(&clean), stream_hash(&with_empty_plan));
        assert_eq!(
            clean.metrics.to_core_json(),
            with_empty_plan.metrics.to_core_json()
        );
        assert!(
            !clean.metrics.to_core_json().contains("faults."),
            "clean runs register no fault metrics"
        );
    }

    #[test]
    fn sharded_stats_roughly_match_monolithic() {
        let mono = crate::generate(config(0.05));
        let sharded = generate_sharded(&config(0.05), 4);
        assert_eq!(mono.stats.jobs, sharded.stats.jobs, "same planned jobs");
        assert_eq!(mono.stats.traced_jobs, sharded.stats.traced_jobs);
        // Sessions/requests drift slightly (independent per-shard RNG
        // streams resize template draws) but stay in the same regime.
        let ratio = sharded.stats.requests as f64 / mono.stats.requests.max(1) as f64;
        assert!((0.5..2.0).contains(&ratio), "request ratio {ratio}");
    }
}
