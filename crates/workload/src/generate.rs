//! The generator: runs the job mix on the simulated machine and CFS, and
//! collects the CHARISMA trace exactly the way the paper's instrumentation
//! did (per-node buffers, service-node collector, drifting clocks).

use std::collections::HashMap;

use charisma_cfs::{Access, Cfs, CfsConfig, CfsError, CfsFaults, CfsMetrics, IoMode};
use charisma_ipsc::alloc::Subcube;
use charisma_ipsc::{
    faults, Duration, EventQueue, FaultMetrics, FaultPlan, Machine, MachineConfig, MachineMetrics,
    NetFaultState, QueueMetrics, SimTime,
};
use charisma_obs::{MetricsRegistry, MetricsSnapshot};
use charisma_trace::record::{AccessKind, EventBody, TraceHeader};
use charisma_trace::{Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::apps::{self, FileOrigin, FileSpec};
use crate::mix::{Mix, Scale};
use crate::params;
use crate::program::{Op, Program};

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Workload scale: 1.0 reproduces the paper's full three-week
    /// population (~3000 jobs, ~60k file sessions, millions of requests);
    /// tests use small fractions.
    pub scale: f64,
    /// Master RNG seed (the default everywhere is 4994, for SC '94).
    pub seed: u64,
    /// Machine to simulate.
    pub machine: MachineConfig,
    /// File system to simulate.
    pub cfs: CfsConfig,
    /// Fault-injection plan. The default ([`FaultPlan::none`]) attaches
    /// no fault state at all: the generated trace and metrics snapshot
    /// are byte-identical to a build without the chaos layer.
    pub faults: FaultPlan,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            scale: 1.0,
            seed: 4994,
            machine: MachineConfig::nas_ipsc860(),
            cfs: CfsConfig::nas(),
            faults: FaultPlan::none(),
        }
    }
}

impl GeneratorConfig {
    /// A small configuration for tests: a fraction of the workload on the
    /// full machine.
    pub fn test_scale(scale: f64) -> Self {
        GeneratorConfig {
            scale,
            ..Default::default()
        }
    }
}

/// Aggregate facts about a generated workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct GenStats {
    /// Jobs that ran (traced and untraced).
    pub jobs: usize,
    /// Jobs whose I/O was traced.
    pub traced_jobs: usize,
    /// File-open sessions created by traced jobs.
    pub sessions: u64,
    /// Read + write requests issued by traced jobs.
    pub requests: u64,
    /// Simulated time when the last job finished.
    pub end_time: SimTime,
    /// Fraction of trace messages saved by the 4 KB node buffers.
    pub message_reduction: f64,
}

/// A generated workload: the collected trace plus bookkeeping.
#[derive(Clone, Debug)]
pub struct GeneratedWorkload {
    /// The collected (raw, unsorted) trace.
    pub trace: Trace,
    /// Aggregate facts.
    pub stats: GenStats,
    /// Snapshot of the generator's metrics registry: engine, machine, CFS,
    /// and workload counters. Deterministic for a fixed seed.
    pub metrics: MetricsSnapshot,
}

/// Run the generator.
pub fn generate(config: GeneratorConfig) -> GeneratedWorkload {
    Generator::new(config).run()
}

/// Run one shard: a pre-planned job subset on its own machine and CFS.
pub(crate) fn generate_with_mix(
    config: GeneratorConfig,
    seed: u64,
    dataset_count: usize,
    mix: Mix,
) -> GeneratedWorkload {
    Generator::with_mix(config, seed, dataset_count, mix).run()
}

// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Ev {
    Arrival(usize),
    NodeStep { job: u32, local: usize },
    UntracedEnd { job: u32 },
    Archive { files: Vec<u32> },
}

struct SlotState {
    path: String,
    /// Dataset-pool index, if the slot is a shared dataset.
    dataset: Option<usize>,
    session: Option<u32>,
    file: Option<u32>,
}

struct RunningJob {
    plan_idx: usize,
    subcube: Subcube,
    programs: Vec<Program>,
    pc: Vec<usize>,
    slots: Vec<SlotState>,
    /// Barrier id → locals arrived so far.
    barriers: HashMap<u32, Vec<usize>>,
    active_nodes: usize,
    /// Files to archive (delete untraced) after the job.
    cleanup: Vec<u32>,
}

struct Dataset {
    file: u32,
    size: u64,
    in_use: bool,
}

/// Size of the shared-dataset pool staged before tracing begins, for a
/// generator hosting `scale` worth of the job population.
pub(crate) fn dataset_pool_size(scale: f64) -> usize {
    let count = ((params::DATASET_FILES as f64) * scale.clamp(0.1, 1.0)).round() as usize;
    count.max(4)
}

struct Generator {
    /// RNG seed for this generator's machine boot and dataset staging (the
    /// config seed for the monolithic path; a shard-derived seed when
    /// sharded).
    seed: u64,
    /// Shared-dataset pool size to stage.
    dataset_count: usize,
    machine: Machine,
    cfs: Cfs,
    trace: Option<TraceBuilder>,
    queue: EventQueue<Ev>,
    mix: Mix,
    running: HashMap<u32, RunningJob>,
    waiting: Vec<usize>,
    datasets: Vec<Dataset>,
    next_dataset: usize,
    stats: GenStats,
    /// Per-generator registry: every subsystem this generator owns reports
    /// here, so sharded runs produce one mergeable snapshot per shard.
    metrics: MetricsRegistry,
}

impl Generator {
    fn new(config: GeneratorConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let machine = Machine::boot(config.machine.clone(), &mut rng);
        let mix = Mix::plan(Scale(config.scale), &mut rng);
        let seed = config.seed;
        let dataset_count = dataset_pool_size(config.scale);
        Self::from_parts(config, seed, dataset_count, machine, mix)
    }

    /// Build a generator over a pre-planned job set.
    ///
    /// This is the sharded entry point: the caller plans the global mix
    /// once, partitions it, and hands each shard its own sub-mix plus a
    /// shard-derived `seed` (used for the machine's clock drifts, the
    /// dataset staging, and the trace header's provenance field). The
    /// shard's dataset pool is sized by the caller — a shard hosts only a
    /// fraction of the jobs, so it needs only a fraction of the pool.
    pub(crate) fn with_mix(
        config: GeneratorConfig,
        seed: u64,
        dataset_count: usize,
        mix: Mix,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let machine = Machine::boot(config.machine.clone(), &mut rng);
        Self::from_parts(config, seed, dataset_count, machine, mix)
    }

    fn from_parts(
        config: GeneratorConfig,
        seed: u64,
        dataset_count: usize,
        mut machine: Machine,
        mix: Mix,
    ) -> Self {
        let metrics = MetricsRegistry::new();
        machine.attach_metrics(MachineMetrics::register(&metrics));
        let mut cfs = Cfs::new(config.cfs.clone());
        cfs.attach_metrics(CfsMetrics::register(&metrics));
        if !config.faults.is_empty() {
            // Fault decisions draw from a dedicated seed stream mixed
            // from the plan seed and this generator's (shard-derived)
            // seed: injection never perturbs the workload RNG, and the
            // outcome is identical for every worker count. Clock jumps
            // must land before the TraceBuilder copies the clocks below.
            let fseed = faults::mix_seed(config.faults.seed, seed);
            let fm = FaultMetrics::register(&metrics);
            machine.apply_clock_faults(&config.faults, fseed, mix.trace_len, Some(&fm));
            machine.attach_faults(NetFaultState::new(&config.faults, fseed, Some(fm.clone())));
            cfs.attach_faults(CfsFaults::new(&config.faults, fseed, Some(fm)));
        }
        let header = TraceHeader {
            version: TraceHeader::VERSION,
            compute_nodes: config.machine.compute_nodes() as u32,
            io_nodes: config.machine.io_nodes as u32,
            block_bytes: 4096,
            seed,
        };
        let clocks = (0..config.machine.compute_nodes())
            .map(|n| *machine.clock(n))
            .collect();
        let latencies = (0..config.machine.compute_nodes())
            .map(|n| machine.service_message_latency(n, 4096))
            .collect();
        let trace = TraceBuilder::new(header, clocks, *machine.service_clock(), latencies);
        let mut queue = EventQueue::with_capacity(mix.jobs.len() + 1);
        queue.attach_metrics(QueueMetrics::register(&metrics));
        Generator {
            seed,
            dataset_count,
            machine,
            cfs,
            trace: Some(trace),
            queue,
            mix,
            running: HashMap::new(),
            waiting: Vec::new(),
            datasets: Vec::new(),
            next_dataset: 0,
            stats: GenStats::default(),
            metrics,
        }
    }

    fn run(mut self) -> GeneratedWorkload {
        self.seed_datasets();
        for (i, job) in self.mix.jobs.iter().enumerate() {
            self.queue.push(job.arrival, Ev::Arrival(i));
        }
        let mut end = SimTime::ZERO;
        while let Some((t, ev)) = self.queue.pop() {
            end = end.max(t);
            match ev {
                Ev::Arrival(i) => self.try_start(i, t),
                Ev::NodeStep { job, local } => self.step_node(job, local, t),
                Ev::UntracedEnd { job } => self.finish_job(job, t),
                Ev::Archive { files } => {
                    for f in files {
                        // Temporaries may already be gone.
                        let _ = self.cfs.delete(f);
                    }
                }
            }
        }
        self.stats.jobs = self.mix.jobs.len();
        self.stats.traced_jobs = self.mix.traced_jobs();
        self.stats.end_time = end;
        let trace = self.trace.take().expect("builder present");
        self.stats.message_reduction = trace.message_reduction();
        self.metrics
            .counter("workload.jobs")
            .add(self.stats.jobs as u64);
        self.metrics
            .counter("workload.traced_jobs")
            .add(self.stats.traced_jobs as u64);
        self.metrics
            .counter("workload.sessions")
            .add(self.stats.sessions);
        self.metrics
            .counter("workload.requests")
            .add(self.stats.requests);
        GeneratedWorkload {
            trace: trace.finish(end),
            stats: self.stats,
            metrics: self.metrics.snapshot(),
        }
    }

    /// Stage the shared dataset files before tracing begins (untraced:
    /// they were written before the instrumentation window, or arrived by
    /// Ethernet from the host).
    fn seed_datasets(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xda7a);
        for i in 0..self.dataset_count {
            let size = params::draw_mix(&params::INPUT_SIZE_MIX, &mut rng);
            let path = format!("dataset/{i}");
            let open = self
                .cfs
                .open(
                    u32::MAX,
                    &path,
                    Access::Write,
                    IoMode::Independent,
                    0,
                    false,
                )
                .expect("dataset creation");
            let mut written = 0u64;
            while written < size {
                let chunk = (size - written).min(1 << 20) as u32;
                if self
                    .cfs
                    .write(&self.machine, open.session, 0, chunk, SimTime::ZERO)
                    .is_err()
                {
                    // Out of space or every stripe target down: stage what
                    // fit. Jobs read whatever the dataset ended up holding.
                    break;
                }
                written += u64::from(chunk);
            }
            self.cfs.close(open.session, 0).expect("dataset close");
            self.datasets.push(Dataset {
                file: open.file,
                size,
                in_use: false,
            });
        }
    }

    fn try_start(&mut self, plan_idx: usize, t: SimTime) {
        let plan = &self.mix.jobs[plan_idx];
        let job = plan.id;
        let nodes = plan.nodes as usize;
        let Some(subcube) = self.machine.allocator_mut().allocate_nodes(nodes) else {
            self.waiting.push(plan_idx);
            return;
        };
        let traced = plan.class.traced();
        self.log_service(
            t,
            EventBody::JobStart {
                job,
                nodes: nodes as u16,
                traced,
            },
        );
        if !traced {
            let end = t + self.mix.jobs[plan_idx].untraced_duration;
            self.running.insert(
                job,
                RunningJob {
                    plan_idx,
                    subcube,
                    programs: Vec::new(),
                    pc: Vec::new(),
                    slots: Vec::new(),
                    barriers: HashMap::new(),
                    active_nodes: 0,
                    cleanup: Vec::new(),
                },
            );
            self.queue.push(end, Ev::UntracedEnd { job });
            return;
        }

        // Resolve the file table: datasets, staged inputs, fresh paths.
        let plan = self.mix.jobs[plan_idx].clone();
        let specs = apps::file_table(&plan);
        let mut slots = Vec::with_capacity(specs.len());
        let mut sizes = Vec::with_capacity(specs.len());
        let mut cleanup = Vec::new();
        for (idx, spec) in specs.iter().enumerate() {
            let (state, size) = self.resolve_slot(job, idx, spec, &mut cleanup);
            sizes.push(size);
            slots.push(state);
        }
        let programs = apps::build_programs(&plan, &sizes);
        let pc = vec![0; programs.len()];
        self.running.insert(
            job,
            RunningJob {
                plan_idx,
                subcube,
                programs,
                pc,
                slots,
                barriers: HashMap::new(),
                active_nodes: nodes,
                cleanup,
            },
        );
        for local in 0..nodes {
            self.queue.push(
                t + Duration::from_micros(local as u64),
                Ev::NodeStep { job, local },
            );
        }
    }

    fn resolve_slot(
        &mut self,
        job: u32,
        idx: usize,
        spec: &FileSpec,
        cleanup: &mut Vec<u32>,
    ) -> (SlotState, u64) {
        match spec.origin {
            FileOrigin::SharedDataset => {
                // Pick the next free dataset (round-robin); never share one
                // between concurrent jobs.
                let n = self.datasets.len();
                let mut pick = None;
                for k in 0..n {
                    let cand = (self.next_dataset + k) % n;
                    if !self.datasets[cand].in_use {
                        pick = Some(cand);
                        break;
                    }
                }
                let pick = pick.unwrap_or(self.next_dataset % n);
                self.next_dataset = pick + 1;
                self.datasets[pick].in_use = true;
                (
                    SlotState {
                        path: format!("dataset/{pick}"),
                        dataset: Some(pick),
                        session: None,
                        file: Some(self.datasets[pick].file),
                    },
                    self.datasets[pick].size,
                )
            }
            FileOrigin::Staged { size } => {
                let path = format!("job{job}/{}{idx}", spec.hint);
                let open = self
                    .cfs
                    .open(
                        u32::MAX,
                        &path,
                        Access::Write,
                        IoMode::Independent,
                        0,
                        false,
                    )
                    .expect("staging open");
                // Out of space or every stripe target down: stage a short
                // input; reads past its end clamp to the actual size.
                let _ = self
                    .cfs
                    .write(&self.machine, open.session, 0, size as u32, SimTime::ZERO);
                self.cfs.close(open.session, 0).expect("staging close");
                cleanup.push(open.file);
                (
                    SlotState {
                        path,
                        dataset: None,
                        session: None,
                        file: Some(open.file),
                    },
                    size,
                )
            }
            FileOrigin::Fresh => (
                SlotState {
                    path: format!("job{job}/{}{idx}", spec.hint),
                    dataset: None,
                    session: None,
                    file: None,
                },
                0,
            ),
        }
    }

    /// Execute ops for (job, local) until one blocks; schedule the next
    /// step.
    fn step_node(&mut self, job: u32, local: usize, t: SimTime) {
        loop {
            // Fetch the next op, releasing the borrow before acting on it.
            let (op, node) = {
                let Some(run) = self.running.get_mut(&job) else {
                    return;
                };
                if run.pc[local] >= run.programs[local].ops.len() {
                    run.active_nodes -= 1;
                    if run.active_nodes == 0 {
                        self.finish_job(job, t);
                    }
                    return;
                }
                let op = run.programs[local].ops[run.pc[local]].clone();
                run.pc[local] += 1;
                (op, run.subcube.base + local)
            };
            match op {
                Op::Compute(d) => {
                    self.queue.push(t + d, Ev::NodeStep { job, local });
                    return;
                }
                Op::Open {
                    slot,
                    access,
                    mode,
                    truncate,
                } => {
                    let path = self.running[&job].slots[slot as usize].path.clone();
                    let open = self
                        .cfs
                        .open(job, &path, access, mode, node as u16, truncate)
                        .expect("template opens are well-formed");
                    let run = self.running.get_mut(&job).expect("running");
                    let s = &mut run.slots[slot as usize];
                    s.session = Some(open.session);
                    let is_dataset = s.dataset.is_some();
                    s.file = Some(open.file);
                    if open.created && !is_dataset && !run.cleanup.contains(&open.file) {
                        // Track job-created files for archiving, once.
                        run.cleanup.push(open.file);
                    }
                    let kind = match access {
                        Access::Read => AccessKind::Read,
                        Access::Write => AccessKind::Write,
                        Access::ReadWrite => AccessKind::ReadWrite,
                    };
                    self.stats.sessions += 1;
                    self.log_node(
                        node,
                        t,
                        EventBody::Open {
                            job,
                            file: open.file,
                            session: open.session,
                            mode: mode.code(),
                            access: kind,
                            created: open.created,
                        },
                    );
                    // Opens cost a round trip to the I/O subsystem.
                    let cost = Duration::from_millis(3);
                    self.queue.push(t + cost, Ev::NodeStep { job, local });
                    return;
                }
                Op::Seek { slot, offset } => {
                    let session = self.slot_session(job, slot);
                    self.cfs
                        .seek(session, node as u16, offset)
                        .expect("seek is valid");
                    // Seeks are client-local: free, keep executing.
                }
                Op::Read { slot, bytes } => {
                    let session = self.slot_session(job, slot);
                    match self.cfs.read(&self.machine, session, node as u16, bytes, t) {
                        Ok(out) => {
                            self.stats.requests += 1;
                            self.log_node(
                                node,
                                t,
                                EventBody::Read {
                                    session,
                                    offset: out.offset,
                                    bytes: out.bytes,
                                },
                            );
                            self.queue.push(out.completion, Ev::NodeStep { job, local });
                            return;
                        }
                        Err(CfsError::Degraded { .. }) => {
                            // Every replica of a stripe is down: the read
                            // fails back to the application, which skips
                            // it and keeps going (degraded mode).
                            continue;
                        }
                        Err(e) => panic!("unexpected CFS error: {e}"),
                    }
                }
                Op::Write { slot, bytes } => {
                    let session = self.slot_session(job, slot);
                    match self
                        .cfs
                        .write(&self.machine, session, node as u16, bytes, t)
                    {
                        Ok(out) => {
                            self.stats.requests += 1;
                            self.log_node(
                                node,
                                t,
                                EventBody::Write {
                                    session,
                                    offset: out.offset,
                                    bytes: out.bytes,
                                },
                            );
                            self.queue.push(out.completion, Ev::NodeStep { job, local });
                            return;
                        }
                        Err(CfsError::NoSpace { .. }) | Err(CfsError::Degraded { .. }) => {
                            // Disk full (users of the real machine hit
                            // this too — §4.2 suspects capacity limited
                            // file sizes) or every target I/O node down:
                            // the job skips the write and keeps going.
                            continue;
                        }
                        Err(e) => panic!("unexpected CFS error: {e}"),
                    }
                }
                Op::Close { slot } => {
                    let session = self.slot_session(job, slot);
                    let size = self.cfs.close(session, node as u16).expect("close valid");
                    self.log_node(node, t, EventBody::Close { session, size });
                }
                Op::Delete { slot } => {
                    let file = self.running[&job].slots[slot as usize]
                        .file
                        .expect("delete after open");
                    self.cfs.delete(file).expect("delete valid");
                    self.log_node(node, t, EventBody::Delete { job, file });
                }
                Op::Barrier(id) => {
                    let run = self.running.get_mut(&job).expect("running");
                    let total = run.programs.len();
                    let arrived = run.barriers.entry(id).or_default();
                    arrived.push(local);
                    if arrived.len() == total {
                        let mut locals = run.barriers.remove(&id).expect("entry");
                        locals.sort_unstable();
                        for (k, l) in locals.into_iter().enumerate() {
                            self.queue.push(
                                t + Duration::from_micros(k as u64),
                                Ev::NodeStep { job, local: l },
                            );
                        }
                    }
                    return;
                }
                Op::AwaitTurn { .. } => {
                    // Turn order is realized by barrier-per-round plus
                    // deterministic FIFO scheduling; nothing to wait for.
                }
            }
        }
    }

    fn slot_session(&self, job: u32, slot: u16) -> u32 {
        self.running[&job].slots[slot as usize]
            .session
            .expect("request after open")
    }

    fn finish_job(&mut self, job: u32, t: SimTime) {
        let Some(run) = self.running.remove(&job) else {
            return;
        };
        self.log_service(t, EventBody::JobEnd { job });
        self.machine.allocator_mut().release(run.subcube);
        for slot in &run.slots {
            if let Some(d) = slot.dataset {
                self.datasets[d].in_use = false;
            }
        }
        if !run.cleanup.is_empty() {
            self.queue.push(
                t + params::ARCHIVE_AFTER,
                Ev::Archive { files: run.cleanup },
            );
        }
        // Node space freed: retry waiting jobs (FIFO).
        let waiting = std::mem::take(&mut self.waiting);
        for idx in waiting {
            self.try_start(idx, t);
        }
        let _ = run.plan_idx;
    }

    fn log_node(&mut self, node: usize, t: SimTime, body: EventBody) {
        self.trace
            .as_mut()
            .expect("builder present")
            .log(node, t, body);
    }

    fn log_service(&mut self, t: SimTime, body: EventBody) {
        self.trace
            .as_mut()
            .expect("builder present")
            .log_service(t, body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_trace::postprocess;

    fn small() -> GeneratedWorkload {
        generate(GeneratorConfig::test_scale(0.02))
    }

    #[test]
    fn generates_a_nonempty_trace() {
        let w = small();
        assert!(w.trace.event_count() > 1000, "{}", w.trace.event_count());
        assert!(w.stats.sessions > 100);
        assert!(w.stats.requests > 500);
        assert!(w.stats.end_time > SimTime::from_hours(1));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(GeneratorConfig::test_scale(0.01));
        let b = generate(GeneratorConfig::test_scale(0.01));
        assert_eq!(a.trace.event_count(), b.trace.event_count());
        assert_eq!(a.trace.blocks.len(), b.trace.blocks.len());
        // Spot-check exact equality of a few blocks.
        for (x, y) in a.trace.blocks.iter().zip(&b.trace.blocks).take(20) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn every_job_starts_and_ends() {
        let w = small();
        let mut starts = std::collections::HashSet::new();
        let mut ends = std::collections::HashSet::new();
        for (_, e) in w.trace.raw_events() {
            match e.body {
                EventBody::JobStart { job, .. } => {
                    assert!(starts.insert(job), "job {job} started twice");
                }
                EventBody::JobEnd { job } => {
                    assert!(ends.insert(job), "job {job} ended twice");
                }
                _ => {}
            }
        }
        assert_eq!(starts, ends, "every started job ends");
        assert_eq!(starts.len(), w.stats.jobs);
    }

    #[test]
    fn sessions_open_and_close_consistently() {
        let w = small();
        let mut opens: HashMap<u32, i64> = HashMap::new();
        for (_, e) in w.trace.raw_events() {
            match e.body {
                EventBody::Open { session, .. } => *opens.entry(session).or_insert(0) += 1,
                EventBody::Close { session, .. } => *opens.entry(session).or_insert(0) -= 1,
                _ => {}
            }
        }
        assert!(!opens.is_empty());
        let unbalanced = opens.values().filter(|&&v| v != 0).count();
        assert_eq!(unbalanced, 0, "all sessions fully closed");
    }

    #[test]
    fn requests_reference_open_sessions() {
        let w = small();
        let ordered = postprocess(&w.trace);
        let mut live: std::collections::HashMap<u32, u32> = HashMap::new();
        let mut errors = 0;
        for e in &ordered {
            match e.body {
                EventBody::Open { session, .. } => *live.entry(session).or_insert(0) += 1,
                EventBody::Close { session, .. } => {
                    *live.entry(session).or_insert(1) -= 1;
                }
                EventBody::Read { session, .. } | EventBody::Write { session, .. }
                    // Post-processed order is approximate; count, don't
                    // assert, misorderings.
                    if live.get(&session).copied().unwrap_or(0) == 0 => {
                        errors += 1;
                    }
                _ => {}
            }
        }
        let total: usize = ordered.len();
        assert!(
            errors * 50 < total,
            "{errors}/{total} requests outside open windows (ordering noise)"
        );
    }

    #[test]
    fn trace_buffering_saves_messages() {
        let w = small();
        assert!(
            w.stats.message_reduction > 0.9,
            "paper: >90% message reduction; got {}",
            w.stats.message_reduction
        );
    }

    #[test]
    fn deletes_only_follow_creates() {
        let w = small();
        let mut created = std::collections::HashSet::new();
        let mut created_by: HashMap<u32, u32> = HashMap::new();
        let mut temp = 0u32;
        for (_, e) in w.trace.raw_events() {
            match e.body {
                EventBody::Open {
                    job,
                    file,
                    created: c,
                    ..
                } if c => {
                    created.insert(file);
                    created_by.insert(file, job);
                }
                EventBody::Delete { job, file } => {
                    // Traced deletes come from the out-of-core app deleting
                    // its own temporaries.
                    assert_eq!(created_by.get(&file), Some(&job));
                    temp += 1;
                }
                _ => {}
            }
        }
        assert!(temp > 0, "temporary files exist at this scale");
    }
}
