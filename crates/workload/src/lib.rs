//! Synthetic production workload, calibrated to the CHARISMA paper.
//!
//! The NASA Ames traces were never released, so this crate substitutes a
//! *generator*: a job-mix model plus a library of application templates
//! whose generated trace reproduces the paper's published statistics —
//! job concurrency (Fig 1), node counts (Fig 2), file sizes (Fig 3),
//! request sizes (Fig 4), sequentiality (Figs 5-6), interval/request-size
//! regularity (Tables 2-3), I/O-mode usage (§4.6), sharing (Fig 7), and the
//! file census of §4.2. The cache experiments (Figs 8-9) are *not* fitted:
//! they are predictions from this workload's locality structure.
//!
//! * [`params`] — every calibrated constant, annotated with its paper
//!   target;
//! * [`program`] — the per-node op programs jobs execute;
//! * [`apps`] — application templates (CFD solvers, post-processors,
//!   broadcast readers, the out-of-core oddball, ...);
//! * [`mix`] — the job arrival/sizing model;
//! * [`generate`] — the discrete-event executor that runs the mix on the
//!   simulated machine + CFS and emits a CHARISMA trace;
//! * [`shard`] — the sharded parallel driver: partition the mix into
//!   logical shards, simulate them on worker threads, merge
//!   deterministically.

pub mod apps;
pub mod generate;
pub mod mix;
pub mod params;
pub mod program;
pub mod shard;

pub use generate::{generate, GenStats, GeneratedWorkload, GeneratorConfig};
pub use mix::{JobClass, JobPlan, Mix};
pub use program::{FileSlot, Op, Program};
pub use shard::{
    generate_sharded, try_generate_sharded, ShardFailure, ShardedWorkload, LOGICAL_SHARDS,
};
