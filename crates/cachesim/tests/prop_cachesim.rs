//! Property tests for the cache simulators: the LRU inclusion property
//! and accounting invariants on arbitrary traces.

use charisma_cachesim::{
    combined_simulation, compute_cache_sim, io_cache_sim, Policy, SessionIndex,
};
use charisma_ipsc::SimTime;
use charisma_trace::record::{AccessKind, EventBody};
use charisma_trace::OrderedEvent;
use proptest::prelude::*;

/// Build a one-session trace from `(node, offset, bytes, is_write)` tuples.
fn trace(requests: &[(u16, u64, u32, bool)]) -> Vec<OrderedEvent> {
    let mut events = vec![OrderedEvent {
        time: SimTime::ZERO,
        node: 0,
        body: EventBody::Open {
            job: 1,
            file: 1,
            session: 1,
            mode: 0,
            access: AccessKind::ReadWrite,
            created: false,
        },
    }];
    for (i, &(node, offset, bytes, is_write)) in requests.iter().enumerate() {
        let body = if is_write {
            EventBody::Write {
                session: 1,
                offset,
                bytes,
            }
        } else {
            EventBody::Read {
                session: 1,
                offset,
                bytes,
            }
        };
        events.push(OrderedEvent {
            time: SimTime::from_micros(1 + i as u64),
            node,
            body,
        });
    }
    events
}

proptest! {
    /// LRU's inclusion property: the request-level hit rate never
    /// decreases when the cache grows, on arbitrary traces.
    #[test]
    fn lru_hit_rate_is_monotone_in_capacity(
        requests in proptest::collection::vec(
            (0u16..4, 0u64..400_000, 1u32..20_000, any::<bool>()), 1..250),
    ) {
        let events = trace(&requests);
        let idx = SessionIndex::build(&events);
        let mut last = -1.0f64;
        for buffers in [4usize, 16, 64, 256] {
            let r = io_cache_sim(&events, &idx, 2, buffers, Policy::Lru);
            prop_assert!(
                r.hit_rate() >= last - 1e-12,
                "hit rate dropped from {last} at {buffers} buffers"
            );
            last = r.hit_rate();
        }
    }

    /// Accounting invariants hold for every policy: hits ≤ accesses, and
    /// request counts match the trace.
    #[test]
    fn counters_are_consistent(
        requests in proptest::collection::vec(
            (0u16..4, 0u64..100_000, 1u32..9_000, any::<bool>()), 1..150),
        policy_pick in 0u8..3,
    ) {
        let policy = [Policy::Lru, Policy::Fifo, Policy::Ipl][policy_pick as usize];
        let events = trace(&requests);
        let idx = SessionIndex::build(&events);
        let r = io_cache_sim(&events, &idx, 3, 32, policy);
        prop_assert_eq!(r.accesses, requests.len() as u64);
        prop_assert!(r.hits <= r.accesses);
        prop_assert!(r.block_hits <= r.block_accesses);
        prop_assert!(r.block_accesses >= r.accesses);
    }

    /// The compute-node cache never simulates writes or read-write files,
    /// and its per-job totals add up.
    #[test]
    fn compute_cache_only_sees_read_only(
        requests in proptest::collection::vec(
            (0u16..4, 0u64..50_000, 1u32..5_000, any::<bool>()), 1..120),
    ) {
        let any_write = requests.iter().any(|r| r.3);
        let events = trace(&requests);
        let idx = SessionIndex::build(&events);
        let r = compute_cache_sim(&events, &idx, 1);
        if any_write {
            prop_assert_eq!(r.requests, 0, "read-write session must be excluded");
        } else {
            prop_assert_eq!(r.requests, requests.len() as u64);
            let total: u64 = r.per_job.values().map(|&(_, t)| t).sum();
            let hits: u64 = r.per_job.values().map(|&(h, _)| h).sum();
            prop_assert_eq!(total, r.requests);
            prop_assert_eq!(hits, r.hits);
        }
    }

    /// In the combined simulation, the filtered I/O stream never sees more
    /// requests than the baseline, and all rates stay in [0, 1].
    #[test]
    fn combined_filtering_never_adds_traffic(
        requests in proptest::collection::vec(
            (0u16..4, 0u64..80_000, 1u32..6_000), 1..150),
    ) {
        // All reads: the read-only path is exercised.
        let reads: Vec<(u16, u64, u32, bool)> =
            requests.iter().map(|&(n, o, b)| (n, o, b, false)).collect();
        let events = trace(&reads);
        let idx = SessionIndex::build(&events);
        let r = combined_simulation(&events, &idx, 1, 4, 16);
        for rate in [r.io_only_hit_rate, r.combined_io_hit_rate, r.compute_hit_rate] {
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }
}

proptest! {
    /// The one-pass stack-distance profile predicts the direct LRU
    /// simulation's block hit rate exactly, at every capacity, for
    /// arbitrary block streams.
    #[test]
    fn stack_distance_equals_direct_lru(
        blocks in proptest::collection::vec((0u32..3, 0u64..40), 1..400),
        capacity in 1usize..24,
    ) {
        use charisma_cachesim::StackDistances;
        use charisma_cfs::{BlockCache, LruCache};
        let mut sd = StackDistances::new(4096);
        let mut lru = LruCache::new(capacity);
        let mut hits = 0u64;
        for &(f, b) in &blocks {
            sd.access((f, b));
            if lru.access((f, b), 1) {
                hits += 1;
            }
        }
        let profile = sd.finish();
        let direct = hits as f64 / blocks.len() as f64;
        prop_assert!((profile.hit_rate_at(capacity) - direct).abs() < 1e-12);
    }
}
