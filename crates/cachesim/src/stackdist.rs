//! Mattson stack-distance analysis: the *entire* LRU hit-rate curve from
//! one pass over the trace.
//!
//! The Figure 9 sweep re-simulates the trace once per cache size. For LRU
//! that is wasteful: by the inclusion property, an access hits in a cache
//! of capacity `c` iff its *reuse (stack) distance* — the number of
//! distinct blocks touched since the previous access to the same block —
//! is at most `c`. One pass computing stack distances therefore yields the
//! hit count for every capacity at once (Mattson et al., 1970).
//!
//! The implementation keeps the classic structure: a hash map from block
//! to its node in an order-statistics tree (here a Fenwick tree over
//! access timestamps), giving O(log n) per access.

use std::collections::BTreeMap;

use charisma_cfs::BlockKey;
use charisma_trace::record::EventBody;
use charisma_trace::OrderedEvent;

use crate::prep::SessionIndex;

const BLOCK: u64 = 4096;

/// Fenwick (binary indexed) tree counting live timestamps.
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + i64::from(delta)) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of live entries in positions `[0, i]`.
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0u64;
        while i > 0 {
            s += u64::from(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }

    fn grow(&mut self, n: usize) {
        if n + 1 > self.tree.len() {
            // Rebuild preserving counts (amortized by doubling).
            let mut bigger = Fenwick::new((n + 1).next_power_of_two());
            // Recover point values via prefix differences.
            for i in 0..self.tree.len() - 1 {
                let v = (self.prefix(i) - if i == 0 { 0 } else { self.prefix(i - 1) }) as i32;
                if v != 0 {
                    bigger.add(i, v);
                }
            }
            *self = bigger;
        }
    }
}

/// The stack-distance profile of a trace.
#[derive(Clone, Debug)]
pub struct StackDistanceProfile {
    /// `histogram[d]` = number of block accesses with stack distance
    /// exactly `d+1` (i.e. hits in any LRU cache of capacity > d).
    /// Saturated at `histogram.len()`.
    pub histogram: Vec<u64>,
    /// Accesses with no prior reference (compulsory misses).
    pub cold: u64,
    /// Total block accesses.
    pub total: u64,
}

impl StackDistanceProfile {
    /// LRU block-level hit rate at the given cache capacity (in blocks).
    pub fn hit_rate_at(&self, capacity: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .histogram
            .iter()
            .take(capacity.min(self.histogram.len()))
            .sum();
        hits as f64 / self.total as f64
    }

    /// Smallest capacity reaching `target` block hit rate, if any
    /// capacity within the histogram bound does.
    pub fn capacity_for(&self, target: f64) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let mut hits = 0u64;
        for (d, &count) in self.histogram.iter().enumerate() {
            hits += count;
            if hits as f64 / self.total as f64 >= target {
                return Some(d + 1);
            }
        }
        None
    }

    /// The maximum achievable hit rate (1 − compulsory-miss rate … within
    /// the histogram bound).
    pub fn ceiling(&self) -> f64 {
        self.hit_rate_at(usize::MAX)
    }

    /// Record this profile under the `cachesim.stack_distance` keys of
    /// `registry`: the distance distribution goes into a log2 histogram
    /// (each access recorded at its stack distance), cold misses and the
    /// access total into counters.
    pub fn record_metrics(&self, registry: &charisma_obs::MetricsRegistry) {
        let histogram = registry.histogram("cachesim.stack_distance");
        for (d, &count) in self.histogram.iter().enumerate() {
            histogram.record_n(d as u64 + 1, count);
        }
        registry
            .counter("cachesim.stack_distance.cold")
            .add(self.cold);
        registry
            .counter("cachesim.stack_distance.total")
            .add(self.total);
    }
}

/// Streaming stack-distance computer over block accesses.
pub struct StackDistances {
    /// block → timestamp of its last access.
    last: BTreeMap<BlockKey, usize>,
    /// Fenwick over timestamps: 1 where a block's latest access lives.
    live: Fenwick,
    clock: usize,
    histogram: Vec<u64>,
    cold: u64,
    total: u64,
    max_tracked: usize,
}

impl StackDistances {
    /// Track distances up to `max_tracked` (larger distances count toward
    /// the ceiling bucket as misses at any capacity ≤ max_tracked).
    pub fn new(max_tracked: usize) -> Self {
        StackDistances {
            last: BTreeMap::new(),
            live: Fenwick::new(1024),
            clock: 0,
            histogram: vec![0; max_tracked],
            cold: 0,
            total: 0,
            max_tracked,
        }
    }

    /// Record one block access.
    pub fn access(&mut self, key: BlockKey) {
        self.total += 1;
        self.live.grow(self.clock + 1);
        if let Some(&prev) = self.last.get(&key) {
            // Distinct blocks touched since prev = live stamps in (prev,
            // clock).
            let later = self.live.prefix(self.clock.saturating_sub(1)) - self.live.prefix(prev);
            let distance = later as usize + 1; // include the block itself
            charisma_ipsc::invariant!(
                distance <= self.last.len(),
                "stack distance {distance} exceeds the {} distinct blocks seen",
                self.last.len()
            );
            if distance <= self.max_tracked {
                self.histogram[distance - 1] += 1;
            }
            self.live.add(prev, -1);
        } else {
            self.cold += 1;
        }
        self.live.add(self.clock, 1);
        self.last.insert(key, self.clock);
        self.clock += 1;
    }

    /// Finish and return the profile.
    pub fn finish(self) -> StackDistanceProfile {
        StackDistanceProfile {
            histogram: self.histogram,
            cold: self.cold,
            total: self.total,
        }
    }
}

/// Compute the block-level LRU profile of a whole trace in one pass.
/// With `io_nodes > 1` a separate profile is kept per I/O node (blocks are
/// striped round-robin) and the histograms are summed — capacity `c` in
/// the result means `c` buffers *per I/O node*.
pub fn lru_profile(
    events: &[OrderedEvent],
    index: &SessionIndex,
    io_nodes: usize,
    max_tracked: usize,
) -> StackDistanceProfile {
    assert!(io_nodes > 0);
    let mut per_io: Vec<StackDistances> = (0..io_nodes)
        .map(|_| StackDistances::new(max_tracked))
        .collect();
    for e in events {
        let (session, offset, bytes) = match e.body {
            EventBody::Read {
                session,
                offset,
                bytes,
            }
            | EventBody::Write {
                session,
                offset,
                bytes,
            } => (session, offset, bytes),
            _ => continue,
        };
        if bytes == 0 {
            continue;
        }
        let Some(facts) = index.get(session) else {
            continue;
        };
        let first = offset / BLOCK;
        let last = (offset + u64::from(bytes) - 1) / BLOCK;
        for b in first..=last {
            let io = (b % io_nodes as u64) as usize;
            per_io[io].access((facts.file, b));
        }
    }
    let mut histogram = vec![0u64; max_tracked];
    let mut cold = 0;
    let mut total = 0;
    for sd in per_io {
        let p = sd.finish();
        for (h, v) in histogram.iter_mut().zip(&p.histogram) {
            *h += v;
        }
        cold += p.cold;
        total += p.total;
    }
    StackDistanceProfile {
        histogram,
        cold,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn distances(blocks: &[u64]) -> StackDistanceProfile {
        let mut sd = StackDistances::new(64);
        for &b in blocks {
            sd.access((0, b));
        }
        sd.finish()
    }

    #[test]
    fn repeated_block_has_distance_one() {
        let p = distances(&[5, 5, 5, 5]);
        assert_eq!(p.cold, 1);
        assert_eq!(p.histogram[0], 3);
        assert!((p.hit_rate_at(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn scan_has_no_reuse() {
        let p = distances(&[1, 2, 3, 4, 5]);
        assert_eq!(p.cold, 5);
        assert_eq!(p.hit_rate_at(1000), 0.0);
    }

    #[test]
    fn textbook_distances() {
        // a b c a: 'a' re-touched after {b, c} → distance 3.
        let p = distances(&[1, 2, 3, 1]);
        assert_eq!(p.histogram[2], 1);
        assert_eq!(p.hit_rate_at(2), 0.0);
        assert!((p.hit_rate_at(3) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn loop_distance_equals_loop_size() {
        // Cyclic scan over 8 blocks: every re-access has distance 8.
        let blocks: Vec<u64> = (0..40).map(|i| i % 8).collect();
        let p = distances(&blocks);
        assert_eq!(p.cold, 8);
        assert_eq!(p.histogram[7], 32);
        assert_eq!(p.hit_rate_at(7), 0.0, "loop thrashes a smaller cache");
        assert!((p.hit_rate_at(8) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn profile_matches_direct_lru_simulation() {
        use charisma_cfs::{BlockCache, LruCache};
        // Pseudo-random but deterministic block stream.
        let mut x = 12345u64;
        let blocks: Vec<u64> = (0..4000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % 97
            })
            .collect();
        let profile = distances(&blocks);
        for capacity in [1usize, 4, 16, 50] {
            let mut cache = LruCache::new(capacity);
            let mut hits = 0u64;
            for &b in &blocks {
                if cache.access((0, b), 1) {
                    hits += 1;
                }
            }
            let direct = hits as f64 / blocks.len() as f64;
            let predicted = profile.hit_rate_at(capacity);
            assert!(
                (direct - predicted).abs() < 1e-12,
                "capacity {capacity}: direct {direct} vs stack-distance {predicted}"
            );
        }
    }

    #[test]
    fn capacity_for_target() {
        let blocks: Vec<u64> = (0..60).map(|i| i % 6).collect();
        let p = distances(&blocks);
        // 54/60 accesses are reuses at distance 6.
        assert_eq!(p.capacity_for(0.5), Some(6));
        assert_eq!(p.capacity_for(0.99), None, "compulsory misses cap it");
        assert!((p.ceiling() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn record_metrics_mirrors_the_profile() {
        let p = distances(&[1, 2, 3, 1, 1]);
        let registry = charisma_obs::MetricsRegistry::new();
        p.record_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["cachesim.stack_distance.cold"], 3);
        assert_eq!(snap.counters["cachesim.stack_distance.total"], 5);
        let h = &snap.histograms["cachesim.stack_distance"];
        assert_eq!(h.count, 2, "two reuses recorded");
        assert_eq!(h.sum, 3 + 1, "distances 3 and 1");
    }

    #[test]
    fn fenwick_grow_preserves_counts() {
        let mut sd = StackDistances::new(8);
        // Force several grows with a long alternating stream.
        for i in 0..10_000u64 {
            sd.access((0, i % 3));
        }
        let p = sd.finish();
        assert_eq!(p.total, 10_000);
        assert_eq!(p.cold, 3);
        assert_eq!(p.histogram[2], 10_000 - 3, "every reuse has distance 3");
    }
}
