//! Prefetching at the I/O nodes.
//!
//! The paper's related-work section leans on Kotz & Ellis's finding that
//! "caching and prefetching are successful in multiprocessor file
//! systems" [19, 20], and Miller & Katz's observation that their Cray
//! workload benefited from prefetching even where caching failed. This
//! module adds prefetching to the I/O-node cache simulation so the
//! reproduction can quantify that claim on the CHARISMA workload:
//!
//! * [`Prefetcher::None`] — the plain cache (the Figure 9 baseline);
//! * [`Prefetcher::OneBlockLookahead`] — classic OBL: fetching block `b`
//!   also brings in `b+1` of the same file;
//! * [`Prefetcher::Strided`] — per-file stride detection: after two
//!   accesses with the same block stride, the next block in the
//!   progression is prefetched (the interleaved-access-aware variant the
//!   paper's recommendations point toward).
//!
//! Cost accounting: a prefetch that is never referenced before eviction
//! is wasted disk work; the simulator reports hits, misses, and wasted
//! prefetches so the benefit/cost trade-off is visible.

use std::collections::BTreeMap;

use charisma_cfs::{BlockCache, LruCache};
use charisma_trace::record::EventBody;
use charisma_trace::OrderedEvent;

use crate::prep::SessionIndex;

const BLOCK: u64 = 4096;

/// Prefetch policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Prefetcher {
    /// No prefetching.
    None,
    /// Fetching block `b` also loads `b+1`.
    OneBlockLookahead,
    /// Detect a per-file block stride and run one block ahead of it.
    Strided,
}

/// Result of a prefetching cache run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrefetchResult {
    /// Policy used.
    pub prefetcher: Prefetcher,
    /// Block accesses that hit (demand traffic only).
    pub hits: u64,
    /// Hits that were satisfied by a prefetched (not yet demanded) block.
    pub prefetch_hits: u64,
    /// Total demand block accesses.
    pub accesses: u64,
    /// Prefetched blocks evicted without ever being referenced.
    pub wasted_prefetches: u64,
    /// Total prefetch fetches issued.
    pub prefetches: u64,
}

impl PrefetchResult {
    /// Demand hit rate.
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / self.accesses.max(1) as f64
    }

    /// Fraction of prefetches that were never used.
    pub fn waste_rate(&self) -> f64 {
        self.wasted_prefetches as f64 / self.prefetches.max(1) as f64
    }
}

/// Per-file stride-detection state.
#[derive(Clone, Copy, Debug, Default)]
struct StrideState {
    last_block: u64,
    stride: i64,
    confirmed: bool,
    seen: bool,
}

/// Run an I/O-node cache simulation with prefetching.
///
/// One cache of `buffers_per_io_node` blocks per I/O node, LRU demand
/// replacement; prefetched blocks enter the same cache.
pub fn prefetch_sim(
    events: &[OrderedEvent],
    index: &SessionIndex,
    io_nodes: usize,
    buffers_per_io_node: usize,
    prefetcher: Prefetcher,
) -> PrefetchResult {
    assert!(io_nodes > 0);
    let mut caches: Vec<LruCache> = (0..io_nodes)
        .map(|_| LruCache::new(buffers_per_io_node))
        .collect();
    // Blocks fetched by prefetch and not yet demanded.
    let mut pending: BTreeMap<(u32, u64), ()> = BTreeMap::new();
    let mut strides: BTreeMap<u32, StrideState> = BTreeMap::new();
    let mut out = PrefetchResult {
        prefetcher,
        hits: 0,
        prefetch_hits: 0,
        accesses: 0,
        wasted_prefetches: 0,
        prefetches: 0,
    };

    let fetch_ahead = |caches: &mut Vec<LruCache>,
                       pending: &mut BTreeMap<(u32, u64), ()>,
                       out: &mut PrefetchResult,
                       file: u32,
                       block: u64| {
        let io = (block % io_nodes as u64) as usize;
        let key = (file, block);
        if caches[io].contains(key) {
            return;
        }
        out.prefetches += 1;
        // Eviction of an unused prefetched block is wasted work; detect by
        // sweeping pending entries no longer resident (cheap amortized:
        // check this key later on demand or at the end).
        caches[io].access(key, 0);
        pending.insert(key, ());
    };

    for e in events {
        let (session, offset, bytes) = match e.body {
            EventBody::Read {
                session,
                offset,
                bytes,
            }
            | EventBody::Write {
                session,
                offset,
                bytes,
            } => (session, offset, bytes),
            _ => continue,
        };
        if bytes == 0 {
            continue;
        }
        let Some(facts) = index.get(session) else {
            continue;
        };
        let first = offset / BLOCK;
        let last = (offset + u64::from(bytes) - 1) / BLOCK;
        for b in first..=last {
            let io = (b % io_nodes as u64) as usize;
            let key = (facts.file, b);
            out.accesses += 1;
            let resident = caches[io].access(key, 1);
            if resident {
                out.hits += 1;
                if pending.remove(&key).is_some() {
                    out.prefetch_hits += 1;
                }
            } else if pending.remove(&key).is_some() {
                // Was prefetched once but evicted before use.
                out.wasted_prefetches += 1;
            }
            // Issue prefetches for the *next* block(s).
            match prefetcher {
                Prefetcher::None => {}
                Prefetcher::OneBlockLookahead => {
                    fetch_ahead(&mut caches, &mut pending, &mut out, facts.file, b + 1);
                }
                Prefetcher::Strided => {
                    let st = strides.entry(facts.file).or_default();
                    if st.seen {
                        let stride = b as i64 - st.last_block as i64;
                        if stride != 0 {
                            if st.stride == stride {
                                st.confirmed = true;
                            } else {
                                st.confirmed = false;
                                st.stride = stride;
                            }
                        }
                        if st.confirmed {
                            let next = b as i64 + st.stride;
                            if next >= 0 {
                                fetch_ahead(
                                    &mut caches,
                                    &mut pending,
                                    &mut out,
                                    facts.file,
                                    next as u64,
                                );
                            }
                        }
                    }
                    st.seen = true;
                    st.last_block = b;
                }
            }
        }
    }
    // Every prefetched block never demanded by the end of the trace was
    // wasted disk work, whether it is still resident or already evicted.
    out.wasted_prefetches += pending.len() as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_ipsc::SimTime;
    use charisma_trace::record::AccessKind;

    fn open(file: u32, session: u32) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::ZERO,
            node: 0,
            body: EventBody::Open {
                job: 1,
                file,
                session,
                mode: 0,
                access: AccessKind::Read,
                created: false,
            },
        }
    }

    fn read(session: u32, offset: u64, bytes: u32) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::ZERO,
            node: 0,
            body: EventBody::Read {
                session,
                offset,
                bytes,
            },
        }
    }

    fn sequential_trace(blocks: u64) -> Vec<OrderedEvent> {
        let mut events = vec![open(1, 1)];
        for b in 0..blocks {
            events.push(read(1, b * 4096, 4096));
        }
        events
    }

    #[test]
    fn obl_turns_a_scan_into_hits() {
        // A pure sequential scan: no reuse, so the plain cache gets 0%;
        // one-block lookahead converts all but the first access to hits.
        let events = sequential_trace(64);
        let idx = SessionIndex::build(&events);
        let none = prefetch_sim(&events, &idx, 2, 32, Prefetcher::None);
        let obl = prefetch_sim(&events, &idx, 2, 32, Prefetcher::OneBlockLookahead);
        assert_eq!(none.hits, 0);
        assert_eq!(obl.hits, 63);
        assert_eq!(obl.prefetch_hits, 63);
        assert!(obl.hit_rate() > 0.95);
    }

    #[test]
    fn strided_prefetch_learns_the_interleave() {
        // One node's share of an 8-way interleave: blocks 0, 8, 16, ...
        let mut events = vec![open(1, 1)];
        for k in 0..50u64 {
            events.push(read(1, k * 8 * 4096, 4096));
        }
        let idx = SessionIndex::build(&events);
        let obl = prefetch_sim(&events, &idx, 2, 64, Prefetcher::OneBlockLookahead);
        let strided = prefetch_sim(&events, &idx, 2, 64, Prefetcher::Strided);
        assert_eq!(obl.hits, 0, "lookahead fetches the wrong blocks");
        assert!(obl.waste_rate() > 0.9);
        assert!(
            strided.hits >= 47,
            "stride detection locks on after two accesses: {} hits",
            strided.hits
        );
    }

    #[test]
    fn none_is_the_plain_cache() {
        let events = sequential_trace(16);
        let idx = SessionIndex::build(&events);
        let r = prefetch_sim(&events, &idx, 1, 8, Prefetcher::None);
        assert_eq!(r.prefetches, 0);
        assert_eq!(r.wasted_prefetches, 0);
        assert_eq!(r.accesses, 16);
    }

    #[test]
    fn prefetching_never_reduces_demand_hits_on_miller_katz_style_scans() {
        // The Miller & Katz observation: sequential workloads with no
        // reuse gain from prefetching even though caching alone fails.
        let events = sequential_trace(200);
        let idx = SessionIndex::build(&events);
        let none = prefetch_sim(&events, &idx, 4, 16, Prefetcher::None);
        let obl = prefetch_sim(&events, &idx, 4, 16, Prefetcher::OneBlockLookahead);
        assert!(obl.hits > none.hits);
    }
}
