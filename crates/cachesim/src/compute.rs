//! Compute-node caching — Figure 8.
//!
//! "The results of a simple trace-driven simulation of a compute-node
//! cache of 4 KB (one block), read-only buffers with LRU replacement …
//! We consider a hit to be any request that was fully satisfied from the
//! local buffer (i.e., with no request sent to an I/O node)."
//!
//! Each compute node gets its own small LRU cache of 4 KB blocks; only
//! requests to read-only files participate. Hit rates are reported per
//! job, which is what exposes the three clumps.

use std::collections::BTreeMap;

use charisma_cfs::{BlockCache, LruCache};
use charisma_trace::record::EventBody;
use charisma_trace::OrderedEvent;

use crate::prep::SessionIndex;

const BLOCK: u64 = 4096;

/// Result of a compute-node cache simulation.
#[derive(Clone, Debug, Default)]
pub struct ComputeCacheResult {
    /// Per-job `(hits, requests)` over read-only files.
    pub per_job: BTreeMap<u32, (u64, u64)>,
    /// Total hits.
    pub hits: u64,
    /// Total read requests simulated.
    pub requests: u64,
}

impl ComputeCacheResult {
    /// Overall hit rate.
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / self.requests.max(1) as f64
    }

    /// Per-job hit rates (only jobs with at least one read-only read),
    /// sorted ascending — the Figure 8 CDF data.
    pub fn job_hit_rates(&self) -> Vec<f64> {
        let mut rates: Vec<f64> = self
            .per_job
            .values()
            .filter(|&&(_, total)| total > 0)
            .map(|&(h, total)| h as f64 / total as f64)
            .collect();
        rates.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        rates
    }

    /// Fraction of jobs with a hit rate above `threshold`.
    pub fn fraction_of_jobs_above(&self, threshold: f64) -> f64 {
        let rates = self.job_hit_rates();
        if rates.is_empty() {
            return 0.0;
        }
        rates.iter().filter(|&&r| r > threshold).count() as f64 / rates.len() as f64
    }

    /// Fraction of jobs with a 0 % hit rate.
    pub fn fraction_of_jobs_at_zero(&self) -> f64 {
        let rates = self.job_hit_rates();
        if rates.is_empty() {
            return 0.0;
        }
        rates.iter().filter(|&&r| r == 0.0).count() as f64 / rates.len() as f64
    }

    /// Record this run's raw counters under the `cachesim.compute.` prefix
    /// of `registry`.
    pub fn record_metrics(&self, registry: &charisma_obs::MetricsRegistry) {
        registry
            .counter("cachesim.compute.requests")
            .add(self.requests);
        registry.counter("cachesim.compute.hits").add(self.hits);
        registry
            .counter("cachesim.compute.jobs")
            .add(self.per_job.len() as u64);
    }
}

/// Run the simulation with `buffers` one-block buffers per compute node.
pub fn compute_cache_sim(
    events: &[OrderedEvent],
    index: &SessionIndex,
    buffers: usize,
) -> ComputeCacheResult {
    let mut sim = ComputeCacheSim::new(index, buffers);
    for e in events {
        sim.observe(e, |_, _| {});
    }
    sim.result
}

/// Streaming form of the simulation; [`ComputeCacheSim::observe`] reports
/// each block access that *misses* (and therefore reaches the I/O nodes)
/// to a callback, which is how the combined experiment chains the two
/// levels.
pub struct ComputeCacheSim<'a> {
    index: &'a SessionIndex,
    buffers: usize,
    caches: BTreeMap<u16, LruCache>,
    /// The accumulated result.
    pub result: ComputeCacheResult,
}

impl<'a> ComputeCacheSim<'a> {
    /// Create a simulator with `buffers` blocks per compute node.
    pub fn new(index: &'a SessionIndex, buffers: usize) -> Self {
        ComputeCacheSim {
            index,
            buffers,
            caches: BTreeMap::new(),
            result: ComputeCacheResult::default(),
        }
    }

    /// Feed one event. Read requests on read-only sessions are simulated;
    /// when a request cannot be fully satisfied locally, the blocks it
    /// must fetch are passed to `forward(file, missing_blocks)` as one
    /// I/O-node request.
    pub fn observe<F: FnMut(u32, &[(u64, u32)])>(&mut self, e: &OrderedEvent, mut forward: F) {
        let EventBody::Read {
            session,
            offset,
            bytes,
        } = e.body
        else {
            return;
        };
        let Some(facts) = self.index.get(session) else {
            return;
        };
        if !facts.read_only {
            return;
        }
        if bytes == 0 {
            return;
        }
        let buffers = self.buffers;
        let cache = self
            .caches
            .entry(e.node)
            .or_insert_with(|| LruCache::new(buffers));
        let first = offset / BLOCK;
        let last = (offset + u64::from(bytes) - 1) / BLOCK;
        // "Fully satisfied": every touched block must be resident.
        let mut all_resident = true;
        for b in first..=last {
            if !cache.contains((facts.file, b)) {
                all_resident = false;
            }
        }
        self.result.requests += 1;
        let entry = self.result.per_job.entry(facts.job).or_insert((0, 0));
        entry.1 += 1;
        if all_resident {
            self.result.hits += 1;
            entry.0 += 1;
            // Touch for recency.
            for b in first..=last {
                cache.access((facts.file, b), 0);
            }
        } else {
            let mut missing: Vec<(u64, u32)> = Vec::new();
            for b in first..=last {
                let bstart = b * BLOCK;
                let bend = bstart + BLOCK;
                let touched = offset.max(bstart)..(offset + u64::from(bytes)).min(bend);
                let touched = (touched.end - touched.start) as u32;
                if !cache.contains((facts.file, b)) {
                    missing.push((b, touched));
                }
                cache.access((facts.file, b), touched);
            }
            forward(facts.file, &missing);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_ipsc::SimTime;
    use charisma_trace::record::AccessKind;

    fn open(job: u32, file: u32, session: u32) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::ZERO,
            node: 0,
            body: EventBody::Open {
                job,
                file,
                session,
                mode: 0,
                access: AccessKind::Read,
                created: false,
            },
        }
    }

    fn read(session: u32, node: u16, offset: u64, bytes: u32) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::ZERO,
            node,
            body: EventBody::Read {
                session,
                offset,
                bytes,
            },
        }
    }

    fn run(events: &[OrderedEvent], buffers: usize) -> ComputeCacheResult {
        let idx = SessionIndex::build(events);
        compute_cache_sim(events, &idx, buffers)
    }

    #[test]
    fn small_consecutive_reads_hit_seven_of_eight() {
        // 512-byte consecutive reads: one miss per block, 7 hits.
        let mut events = vec![open(1, 1, 1)];
        for k in 0..16u64 {
            events.push(read(1, 0, k * 512, 512));
        }
        let r = run(&events, 1);
        assert_eq!(r.requests, 16);
        assert_eq!(r.hits, 14, "2 blocks x 1 miss each");
        let rates = r.job_hit_rates();
        assert_eq!(rates.len(), 1);
        assert!((rates[0] - 14.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn block_sized_reads_never_hit() {
        let mut events = vec![open(1, 1, 1)];
        for k in 0..8u64 {
            events.push(read(1, 0, k * 4096, 4096));
        }
        let r = run(&events, 1);
        assert_eq!(r.hits, 0);
        assert!((r.fraction_of_jobs_at_zero() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn large_stride_interleave_never_hits_one_buffer() {
        // Node reads 1 KB every 32 KB: every request a new block.
        let mut events = vec![open(1, 1, 1)];
        for k in 0..10u64 {
            events.push(read(1, 0, k * 32768, 1024));
        }
        let r = run(&events, 1);
        assert_eq!(r.hits, 0);
    }

    #[test]
    fn writes_and_rw_files_are_excluded() {
        let mut events = vec![open(1, 1, 1)];
        events.push(OrderedEvent {
            time: SimTime::ZERO,
            node: 0,
            body: EventBody::Write {
                session: 1,
                offset: 0,
                bytes: 512,
            },
        });
        for k in 0..8u64 {
            events.push(read(1, 0, k * 512, 512));
        }
        let r = run(&events, 1);
        assert_eq!(r.requests, 0, "read-write session excluded entirely");
    }

    #[test]
    fn caches_are_per_node() {
        // Two nodes read the same small file; each must miss its own first
        // block (no magic sharing between compute nodes).
        let mut events = vec![open(1, 1, 1)];
        for k in 0..8u64 {
            events.push(read(1, 0, k * 512, 512));
            events.push(read(1, 1, k * 512, 512));
        }
        let r = run(&events, 1);
        assert_eq!(r.requests, 16);
        assert_eq!(r.hits, 14, "each node misses once");
    }

    #[test]
    fn one_buffer_thrashes_on_interspersed_files_ten_does_not() {
        // The paper's "very few jobs" where multiple buffers helped:
        // alternating reads from two files.
        let mut events = vec![open(1, 1, 1), open(1, 2, 2)];
        for k in 0..16u64 {
            events.push(read(1, 0, k * 512, 512));
            events.push(read(2, 0, k * 512, 512));
        }
        let one = run(&events, 1);
        let ten = run(&events, 10);
        assert_eq!(one.hits, 0, "ping-pong evicts every time");
        assert!(ten.hit_rate() > 0.8);
    }

    #[test]
    fn forwarding_reports_only_misses() {
        let events = vec![open(1, 1, 1), read(1, 0, 0, 512), read(1, 0, 512, 512)];
        let idx = SessionIndex::build(&events);
        let mut sim = ComputeCacheSim::new(&idx, 1);
        let mut forwarded = Vec::new();
        for e in &events {
            sim.observe(e, |file, missing| {
                for &(block, touched) in missing {
                    forwarded.push((file, block, touched));
                }
            });
        }
        assert_eq!(forwarded, vec![(1, 0, 512)], "second read hit locally");
    }
}
