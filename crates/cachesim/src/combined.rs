//! The combined experiment — §4.8's final test.
//!
//! "As a final test, we simulated the combination of a single buffer per
//! compute node and a cache at each of 10 I/O nodes. The result was only
//! a 3 % reduction in the I/O node hit rate when each I/O node had a
//! small cache of 50 buffers. This further suggests that most of the hits
//! in the I/O node cache were indeed a result of interprocess locality."
//!
//! Mechanically: read-only requests first try the compute-node buffer;
//! only its misses — plus all non-read-only traffic — reach the I/O-node
//! caches.

use charisma_trace::record::EventBody;
use charisma_trace::OrderedEvent;

use crate::compute::ComputeCacheSim;
use crate::ionode::{access_request, IoCacheBank, Policy};
use crate::prep::SessionIndex;

/// Result of the combined simulation, with the I/O-only baseline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CombinedResult {
    /// I/O-node hit rate with no compute-node caches (the baseline).
    pub io_only_hit_rate: f64,
    /// I/O-node hit rate when compute nodes filter with one buffer each.
    pub combined_io_hit_rate: f64,
    /// Compute-node hit rate in the combined configuration.
    pub compute_hit_rate: f64,
}

impl CombinedResult {
    /// The paper's headline: how much the compute-node buffer reduced the
    /// I/O-node hit rate (3 percentage points in the paper).
    pub fn io_hit_rate_reduction(&self) -> f64 {
        self.io_only_hit_rate - self.combined_io_hit_rate
    }

    /// Record this run's hit rates, in basis points (1/100 of a percent),
    /// under the `cachesim.combined.` prefix of `registry`. Gauges, since
    /// rates are not summable across runs.
    pub fn record_metrics(&self, registry: &charisma_obs::MetricsRegistry) {
        let bp = |rate: f64| (rate * 10_000.0).round().max(0.0) as u64;
        registry
            .gauge("cachesim.combined.io_only_hit_rate_bp")
            .record_max(bp(self.io_only_hit_rate));
        registry
            .gauge("cachesim.combined.io_hit_rate_bp")
            .record_max(bp(self.combined_io_hit_rate));
        registry
            .gauge("cachesim.combined.compute_hit_rate_bp")
            .record_max(bp(self.compute_hit_rate));
    }
}

/// Run both configurations over the same trace.
///
/// `compute_buffers` is the per-compute-node buffer count (1 in the
/// paper's final test); `io_nodes` × `buffers_per_io_node` describes the
/// I/O-node bank (10 × 50 in the paper).
pub fn combined_simulation(
    events: &[OrderedEvent],
    index: &SessionIndex,
    compute_buffers: usize,
    io_nodes: usize,
    buffers_per_io_node: usize,
) -> CombinedResult {
    // Baseline: everything reaches the I/O nodes.
    let mut baseline = IoCacheBank::new(io_nodes, io_nodes * buffers_per_io_node, Policy::Lru);
    // Combined: compute sim forwards read-only misses; other traffic is
    // fed directly.
    let mut combined = IoCacheBank::new(io_nodes, io_nodes * buffers_per_io_node, Policy::Lru);
    let mut compute = ComputeCacheSim::new(index, compute_buffers);

    for e in events {
        let (session, offset, bytes, is_read) = match e.body {
            EventBody::Read {
                session,
                offset,
                bytes,
            } => (session, offset, bytes, true),
            EventBody::Write {
                session,
                offset,
                bytes,
            } => (session, offset, bytes, false),
            _ => continue,
        };
        let Some(facts) = index.get(session) else {
            continue;
        };
        access_request(&mut baseline, facts.file, offset, bytes, !is_read);
        if is_read && facts.read_only {
            compute.observe(e, |file, missing| {
                combined.access_blocks(file, missing);
            });
        } else {
            access_request(&mut combined, facts.file, offset, bytes, !is_read);
        }
    }
    CombinedResult {
        io_only_hit_rate: baseline.hit_rate(),
        combined_io_hit_rate: combined.hit_rate(),
        compute_hit_rate: compute.result.hit_rate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_ipsc::SimTime;
    use charisma_trace::record::AccessKind;

    fn open(file: u32, session: u32) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::ZERO,
            node: 0,
            body: EventBody::Open {
                job: 1,
                file,
                session,
                mode: 0,
                access: AccessKind::Read,
                created: false,
            },
        }
    }

    fn read(session: u32, node: u16, offset: u64, bytes: u32) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::ZERO,
            node,
            body: EventBody::Read {
                session,
                offset,
                bytes,
            },
        }
    }

    #[test]
    fn interprocess_hits_survive_compute_filtering() {
        // 8 nodes interleave 512-byte records: each node touches each block
        // once, so the compute buffer filters *nothing* — the I/O hit rate
        // barely moves. (This is the paper's core §4.8 finding.)
        let mut events = vec![open(1, 1)];
        for r in 0..64u64 {
            for n in 0..8u64 {
                events.push(read(1, n as u16, (r * 8 + n) * 512, 512));
            }
        }
        let idx = SessionIndex::build(&events);
        let r = combined_simulation(&events, &idx, 1, 10, 50);
        assert!(r.io_only_hit_rate > 0.8);
        assert!(
            r.io_hit_rate_reduction().abs() < 0.05,
            "reduction {}",
            r.io_hit_rate_reduction()
        );
    }

    #[test]
    fn intraprocess_hits_are_filtered_out() {
        // One node reading small consecutive records: all the locality is
        // intraprocess, so the compute buffer absorbs it and the I/O-node
        // cache sees only compulsory misses.
        let mut events = vec![open(1, 1)];
        for k in 0..256u64 {
            events.push(read(1, 0, k * 512, 512));
        }
        let idx = SessionIndex::build(&events);
        let r = combined_simulation(&events, &idx, 1, 10, 50);
        assert!(r.io_only_hit_rate > 0.8, "I/O cache alone looks great");
        assert!(
            r.combined_io_hit_rate < 0.1,
            "with the compute buffer, almost nothing is left: {}",
            r.combined_io_hit_rate
        );
        assert!(r.compute_hit_rate > 0.8);
    }

    #[test]
    fn non_read_only_traffic_reaches_io_unfiltered() {
        let mut events = vec![open(1, 1)];
        events.push(OrderedEvent {
            time: SimTime::ZERO,
            node: 0,
            body: EventBody::Write {
                session: 1,
                offset: 0,
                bytes: 512,
            },
        });
        for k in 0..8u64 {
            events.push(read(1, 0, k * 512, 512));
        }
        let idx = SessionIndex::build(&events);
        let r = combined_simulation(&events, &idx, 1, 2, 8);
        // Session is read-write: the baseline and combined banks see the
        // same stream.
        assert!((r.io_only_hit_rate - r.combined_io_hit_rate).abs() < 1e-12);
        assert_eq!(r.compute_hit_rate, 0.0);
    }
}
