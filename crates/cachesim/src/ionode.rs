//! I/O-node caching — Figure 9.
//!
//! "We ran a trace-driven simulation of I/O-node caches, with 4-KB buffers
//! managed by either a LRU or FIFO replacement policy. These I/O-node
//! caches served all compute nodes, all files, and all jobs … We assumed
//! the file was striped in a round-robin fashion at a one-block
//! granularity. No compute-node cache was used."
//!
//! The sweep dimensions match the figure: total buffers across the system
//! (x axis), replacement policy (LRU vs FIFO), and the number of I/O
//! nodes the buffers are spread over (1-20 lines in the figure).

use charisma_cfs::{BlockCache, FifoCache, IplCache, LruCache};
use charisma_trace::record::EventBody;
use charisma_trace::OrderedEvent;

const BLOCK: u64 = 4096;

/// Replacement policy under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Least recently used.
    Lru,
    /// First in, first out.
    Fifo,
    /// The §5 future-work policy: evict blocks whose bytes have been fully
    /// consumed by the interleaved readers.
    Ipl,
}

impl Policy {
    fn make(self, capacity: usize) -> Box<dyn BlockCache> {
        match self {
            Policy::Lru => Box::new(LruCache::new(capacity)),
            Policy::Fifo => Box::new(FifoCache::new(capacity)),
            Policy::Ipl => Box::new(IplCache::new(capacity, BLOCK)),
        }
    }
}

/// Result of one I/O-node cache run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IoCacheResult {
    /// Number of I/O nodes the buffers were spread over.
    pub io_nodes: usize,
    /// Total buffers across all I/O nodes.
    pub total_buffers: usize,
    /// Policy used.
    pub policy: Policy,
    /// Requests fully satisfied from cache.
    pub hits: u64,
    /// Total requests.
    pub accesses: u64,
    /// Block accesses served from cache.
    pub block_hits: u64,
    /// Total block accesses.
    pub block_accesses: u64,
}

impl IoCacheResult {
    /// Request-level hit rate (the paper's "fully satisfied" definition).
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / self.accesses.max(1) as f64
    }

    /// Block-level hit rate.
    pub fn block_hit_rate(&self) -> f64 {
        self.block_hits as f64 / self.block_accesses.max(1) as f64
    }

    /// Record this run's raw counters under the `cachesim.io.` prefix of
    /// `registry` (counts, never rates — snapshots stay mergeable).
    pub fn record_metrics(&self, registry: &charisma_obs::MetricsRegistry) {
        registry.counter("cachesim.io.requests").add(self.accesses);
        registry.counter("cachesim.io.request_hits").add(self.hits);
        registry
            .counter("cachesim.io.block_accesses")
            .add(self.block_accesses);
        registry
            .counter("cachesim.io.block_hits")
            .add(self.block_hits);
    }
}

/// The streaming I/O-node cache bank (one cache per I/O node, blocks
/// striped round-robin).
///
/// Hit accounting is per *request*, consistent with the paper's Figure 8
/// definition ("fully satisfied from the buffer"): a request counts as a
/// hit only when every block it touches is resident. Block-level counters
/// are kept alongside.
pub struct IoCacheBank {
    caches: Vec<Box<dyn BlockCache>>,
    hits: u64,
    accesses: u64,
    block_hits: u64,
    block_accesses: u64,
}

impl IoCacheBank {
    /// `total_buffers` spread evenly over `io_nodes` caches.
    pub fn new(io_nodes: usize, total_buffers: usize, policy: Policy) -> Self {
        assert!(io_nodes > 0);
        let per = total_buffers / io_nodes;
        IoCacheBank {
            caches: (0..io_nodes).map(|_| policy.make(per)).collect(),
            hits: 0,
            accesses: 0,
            block_hits: 0,
            block_accesses: 0,
        }
    }

    /// Access one block of one file, touching `touched` bytes of it, as a
    /// single-block request.
    pub fn access(&mut self, file: u32, block: u64, touched: u32) {
        let io = (block % self.caches.len() as u64) as usize;
        self.accesses += 1;
        self.block_accesses += 1;
        if self.caches[io].access((file, block), touched) {
            self.hits += 1;
            self.block_hits += 1;
        }
    }

    /// Serve a whole request: a hit only if every touched block was
    /// satisfied from cache. A *write* that covers a whole block is
    /// satisfied even when the block is absent — with write-behind the
    /// I/O node simply allocates a buffer, no disk read is needed (only a
    /// partial overwrite of an uncached block forces a fetch).
    pub fn access_request(&mut self, file: u32, offset: u64, bytes: u32, is_write: bool) {
        if bytes == 0 {
            return;
        }
        let first = offset / BLOCK;
        let last = (offset + u64::from(bytes) - 1) / BLOCK;
        self.accesses += 1;
        let mut all = true;
        for b in first..=last {
            let bstart = b * BLOCK;
            let bend = bstart + BLOCK;
            let touched = ((offset + u64::from(bytes)).min(bend) - offset.max(bstart)) as u32;
            let io = (b % self.caches.len() as u64) as usize;
            self.block_accesses += 1;
            let resident = self.caches[io].access((file, b), touched);
            if resident || (is_write && touched == BLOCK as u32) {
                self.block_hits += 1;
            } else {
                all = false;
            }
        }
        if all {
            self.hits += 1;
        }
    }

    /// Serve an explicit block list as one request: a hit only if every
    /// listed block was resident. Empty lists are ignored (the request was
    /// fully satisfied upstream).
    pub fn access_blocks(&mut self, file: u32, blocks: &[(u64, u32)]) {
        if blocks.is_empty() {
            return;
        }
        self.accesses += 1;
        let mut all = true;
        for &(b, touched) in blocks {
            let io = (b % self.caches.len() as u64) as usize;
            self.block_accesses += 1;
            if self.caches[io].access((file, b), touched) {
                self.block_hits += 1;
            } else {
                all = false;
            }
        }
        if all {
            self.hits += 1;
        }
    }

    /// Current request-level hit counters `(hits, accesses)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.accesses)
    }

    /// Current block-level hit counters `(hits, accesses)`.
    pub fn block_counters(&self) -> (u64, u64) {
        (self.block_hits, self.block_accesses)
    }

    /// Request-level hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / self.accesses.max(1) as f64
    }
}

/// Expand a request against the bank (free-function form used by the
/// combined experiment).
pub fn access_request(bank: &mut IoCacheBank, file: u32, offset: u64, bytes: u32, is_write: bool) {
    bank.access_request(file, offset, bytes, is_write);
}

/// Run one full-trace I/O-node cache simulation.
pub fn io_cache_sim(
    events: &[OrderedEvent],
    session_file: &crate::prep::SessionIndex,
    io_nodes: usize,
    total_buffers: usize,
    policy: Policy,
) -> IoCacheResult {
    let mut bank = IoCacheBank::new(io_nodes, total_buffers, policy);
    for e in events {
        let (session, offset, bytes, is_write) = match e.body {
            EventBody::Read {
                session,
                offset,
                bytes,
            } => (session, offset, bytes, false),
            EventBody::Write {
                session,
                offset,
                bytes,
            } => (session, offset, bytes, true),
            _ => continue,
        };
        let Some(facts) = session_file.get(session) else {
            continue;
        };
        bank.access_request(facts.file, offset, bytes, is_write);
    }
    let (hits, accesses) = bank.counters();
    let (block_hits, block_accesses) = bank.block_counters();
    IoCacheResult {
        io_nodes,
        total_buffers,
        policy,
        hits,
        accesses,
        block_hits,
        block_accesses,
    }
}

/// The Figure 9 sweep: hit rate for every `(io_nodes, buffers, policy)`
/// combination. Runs are independent; they execute on a scoped thread pool
/// so multi-core hosts sweep in parallel.
pub fn sweep(
    events: &[OrderedEvent],
    index: &crate::prep::SessionIndex,
    io_node_counts: &[usize],
    buffer_counts: &[usize],
    policies: &[Policy],
) -> Vec<IoCacheResult> {
    let mut configs = Vec::new();
    for &n in io_node_counts {
        for &b in buffer_counts {
            for &p in policies {
                configs.push((n, b, p));
            }
        }
    }
    let results: Vec<IoCacheResult> = std::thread::scope(|scope| {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(configs.len().max(1));
        let chunks: Vec<&[(usize, usize, Policy)]> =
            configs.chunks(configs.len().div_ceil(threads)).collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|&(n, b, p)| io_cache_sim(events, index, n, b, p))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep thread"))
            .collect()
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::SessionIndex;
    use charisma_ipsc::SimTime;
    use charisma_trace::record::AccessKind;

    fn open(job: u32, file: u32, session: u32) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::ZERO,
            node: 0,
            body: EventBody::Open {
                job,
                file,
                session,
                mode: 0,
                access: AccessKind::Read,
                created: false,
            },
        }
    }

    fn read(session: u32, node: u16, offset: u64, bytes: u32) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::ZERO,
            node,
            body: EventBody::Read {
                session,
                offset,
                bytes,
            },
        }
    }

    /// 8 nodes interleave 512-byte records round-robin through a file:
    /// the canonical interprocess-spatial-locality pattern.
    fn interleaved_trace(rounds: u64) -> Vec<OrderedEvent> {
        let mut events = vec![open(1, 1, 1)];
        for r in 0..rounds {
            for n in 0..8u64 {
                events.push(read(1, n as u16, (r * 8 + n) * 512, 512));
            }
        }
        events
    }

    #[test]
    fn interprocess_locality_yields_high_hit_rate() {
        let events = interleaved_trace(64);
        let idx = SessionIndex::build(&events);
        let r = io_cache_sim(&events, &idx, 10, 100, Policy::Lru);
        // 8 accesses per block, 1 compulsory miss → 87.5%.
        assert!((r.hit_rate() - 0.875).abs() < 0.01, "{}", r.hit_rate());
    }

    #[test]
    fn zero_buffers_never_hit() {
        let events = interleaved_trace(4);
        let idx = SessionIndex::build(&events);
        let r = io_cache_sim(&events, &idx, 10, 0, Policy::Lru);
        assert_eq!(r.hits, 0);
    }

    #[test]
    fn lru_beats_fifo_under_reuse() {
        // Hot blocks re-touched among a cold scan: LRU keeps them.
        let mut events = vec![open(1, 1, 1), open(1, 2, 2)];
        for k in 0..2000u64 {
            events.push(read(1, 0, (k % 4) * 4096, 4096)); // hot set: 4 blocks
            events.push(read(2, 1, k * 4096, 4096)); // cold scan
        }
        let idx = SessionIndex::build(&events);
        let lru = io_cache_sim(&events, &idx, 1, 16, Policy::Lru);
        let fifo = io_cache_sim(&events, &idx, 1, 16, Policy::Fifo);
        assert!(
            lru.hit_rate() > fifo.hit_rate() + 0.1,
            "LRU {} vs FIFO {}",
            lru.hit_rate(),
            fifo.hit_rate()
        );
    }

    #[test]
    fn hit_rate_monotone_in_buffers_for_lru() {
        let events = interleaved_trace(128);
        let idx = SessionIndex::build(&events);
        let mut last = -1.0;
        for buffers in [2, 8, 32, 128] {
            let r = io_cache_sim(&events, &idx, 4, buffers, Policy::Lru);
            assert!(r.hit_rate() >= last - 1e-12, "LRU inclusion property");
            last = r.hit_rate();
        }
    }

    #[test]
    fn spreading_over_io_nodes_changes_little() {
        // The paper: "It made little difference whether the buffers were
        // focused on a few I/O nodes or spread over many."
        let events = interleaved_trace(256);
        let idx = SessionIndex::build(&events);
        let few = io_cache_sim(&events, &idx, 2, 200, Policy::Lru);
        let many = io_cache_sim(&events, &idx, 20, 200, Policy::Lru);
        assert!((few.hit_rate() - many.hit_rate()).abs() < 0.05);
    }

    #[test]
    fn sweep_covers_all_configs() {
        let events = interleaved_trace(16);
        let idx = SessionIndex::build(&events);
        let results = sweep(
            &events,
            &idx,
            &[1, 10],
            &[10, 100],
            &[Policy::Lru, Policy::Fifo],
        );
        assert_eq!(results.len(), 8);
        // Every config present exactly once.
        let mut keys: Vec<_> = results
            .iter()
            .map(|r| (r.io_nodes, r.total_buffers, r.policy))
            .collect();
        keys.sort_by_key(|&(n, b, p)| (n, b, p as u8));
        keys.dedup();
        assert_eq!(keys.len(), 8);
    }

    #[test]
    fn writes_count_in_the_io_simulation() {
        let mut events = vec![open(1, 1, 1)];
        events.push(OrderedEvent {
            time: SimTime::ZERO,
            node: 0,
            body: EventBody::Write {
                session: 1,
                offset: 0,
                bytes: 512,
            },
        });
        events.push(OrderedEvent {
            time: SimTime::ZERO,
            node: 0,
            body: EventBody::Write {
                session: 1,
                offset: 512,
                bytes: 512,
            },
        });
        let idx = SessionIndex::build(&events);
        let r = io_cache_sim(&events, &idx, 1, 8, Policy::Lru);
        assert_eq!(r.accesses, 2);
        assert_eq!(r.hits, 1, "second write hits the write-allocated block");
    }
}
