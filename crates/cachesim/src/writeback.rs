//! Write-behind and write absorption at the I/O nodes.
//!
//! "One advantage of buffers is to combine several small requests (which
//! were common in this workload) into a few larger requests that can be
//! more efficiently served by disk hardware. Indeed, with RAID disk
//! arrays … it is even more important to avoid small requests at the disk
//! level." (paper §4.8; the mechanism is studied in Kotz & Ellis's
//! "Caching and writeback policies in parallel file systems" [19].)
//!
//! This simulator measures exactly that: how many *disk* writes result
//! from the workload's stream of small write requests under
//!
//! * [`FlushPolicy::WriteThrough`] — every request goes to disk as-is
//!   (the baseline the paper argues against);
//! * [`FlushPolicy::WriteBehind`] — dirty blocks accumulate in the
//!   I/O-node cache and are written once, on eviction or at the end;
//! * [`FlushPolicy::Watermark`] — write-behind with a high-watermark
//!   flusher that cleans the oldest dirty blocks in batches, modeling a
//!   syncer daemon that bounds the amount of dirty data at risk.

use std::collections::{BTreeMap, VecDeque};

use charisma_trace::record::EventBody;
use charisma_trace::OrderedEvent;

use crate::prep::SessionIndex;

const BLOCK: u64 = 4096;

/// When dirty blocks are written to disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlushPolicy {
    /// Each write request is sent to disk immediately.
    WriteThrough,
    /// Dirty blocks flush only on eviction (or at trace end).
    WriteBehind,
    /// Write-behind, but when dirty blocks exceed `high` the flusher
    /// cleans the oldest down to `low`.
    Watermark {
        /// Dirty-block count that triggers the flusher.
        high: usize,
        /// Dirty-block count the flusher drains to.
        low: usize,
    },
}

/// Result of a write-absorption run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WritebackResult {
    /// Policy used.
    pub policy: FlushPolicy,
    /// Write requests observed.
    pub write_requests: u64,
    /// Distinct block-touches by those writes.
    pub block_writes: u64,
    /// Writes actually issued to disk.
    pub disk_writes: u64,
    /// Peak number of dirty blocks held in memory.
    pub peak_dirty: usize,
}

impl WritebackResult {
    /// Absorption factor: application block-writes per disk write (the
    /// "combine several small requests" win; 1.0 means no absorption).
    pub fn absorption(&self) -> f64 {
        self.block_writes as f64 / self.disk_writes.max(1) as f64
    }

    /// Record this run's raw counters (write-back volume and peak dirty
    /// footprint) under the `cachesim.writeback.` prefix of `registry`.
    pub fn record_metrics(&self, registry: &charisma_obs::MetricsRegistry) {
        registry
            .counter("cachesim.writeback.write_requests")
            .add(self.write_requests);
        registry
            .counter("cachesim.writeback.block_writes")
            .add(self.block_writes);
        registry
            .counter("cachesim.writeback.disk_writes")
            .add(self.disk_writes);
        registry
            .gauge("cachesim.writeback.peak_dirty")
            .record_max(self.peak_dirty as u64);
    }
}

/// Run the write-absorption simulation over a trace's write stream.
///
/// `capacity` is the total dirty-block budget across the I/O nodes (clean
/// data is assumed to be managed separately, so this isolates the
/// write-behind question).
pub fn writeback_sim(
    events: &[OrderedEvent],
    index: &SessionIndex,
    capacity: usize,
    policy: FlushPolicy,
) -> WritebackResult {
    let mut out = WritebackResult {
        policy,
        write_requests: 0,
        block_writes: 0,
        disk_writes: 0,
        peak_dirty: 0,
    };
    // Dirty set with FIFO age order (oldest first out).
    let mut dirty: BTreeMap<(u32, u64), u64> = BTreeMap::new();
    let mut age: VecDeque<((u32, u64), u64)> = VecDeque::new();
    let mut stamp = 0u64;

    let flush_oldest = |dirty: &mut BTreeMap<(u32, u64), u64>,
                        age: &mut VecDeque<((u32, u64), u64)>,
                        out: &mut WritebackResult| {
        while let Some((key, s)) = age.pop_front() {
            if dirty.get(&key) == Some(&s) {
                dirty.remove(&key);
                out.disk_writes += 1;
                return;
            }
            // Stale entry (block re-dirtied later): skip.
        }
    };

    for e in events {
        let EventBody::Write {
            session,
            offset,
            bytes,
        } = e.body
        else {
            continue;
        };
        if bytes == 0 {
            continue;
        }
        let Some(facts) = index.get(session) else {
            continue;
        };
        out.write_requests += 1;
        let first = offset / BLOCK;
        let last = (offset + u64::from(bytes) - 1) / BLOCK;
        for b in first..=last {
            out.block_writes += 1;
            match policy {
                FlushPolicy::WriteThrough => {
                    out.disk_writes += 1;
                }
                FlushPolicy::WriteBehind | FlushPolicy::Watermark { .. } => {
                    stamp += 1;
                    let key = (facts.file, b);
                    // Re-dirtying refreshes the age.
                    dirty.insert(key, stamp);
                    age.push_back((key, stamp));
                    if dirty.len() > capacity {
                        flush_oldest(&mut dirty, &mut age, &mut out);
                    }
                    if let FlushPolicy::Watermark { high, low } = policy {
                        if dirty.len() >= high {
                            while dirty.len() > low {
                                flush_oldest(&mut dirty, &mut age, &mut out);
                            }
                        }
                    }
                    out.peak_dirty = out.peak_dirty.max(dirty.len());
                }
            }
        }
    }
    // End of trace: everything dirty goes to disk once.
    out.disk_writes += dirty.len() as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_ipsc::SimTime;
    use charisma_trace::record::AccessKind;

    fn small_writer_trace(records: u64, record: u32) -> Vec<OrderedEvent> {
        let mut events = vec![OrderedEvent {
            time: SimTime::ZERO,
            node: 0,
            body: EventBody::Open {
                job: 1,
                file: 1,
                session: 1,
                mode: 0,
                access: AccessKind::Write,
                created: true,
            },
        }];
        for k in 0..records {
            events.push(OrderedEvent {
                time: SimTime::from_micros(k),
                node: 0,
                body: EventBody::Write {
                    session: 1,
                    offset: k * u64::from(record),
                    bytes: record,
                },
            });
        }
        events
    }

    #[test]
    fn write_through_issues_one_disk_write_per_block_touch() {
        let events = small_writer_trace(64, 512);
        let idx = SessionIndex::build(&events);
        let r = writeback_sim(&events, &idx, 1024, FlushPolicy::WriteThrough);
        assert_eq!(r.write_requests, 64);
        assert_eq!(r.disk_writes, r.block_writes);
        assert!((r.absorption() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn write_behind_absorbs_small_sequential_writes() {
        // 64 x 512 B = 8 blocks of data: write-behind should reach the
        // ideal 8 disk writes, an 8x absorption (4096/512).
        let events = small_writer_trace(64, 512);
        let idx = SessionIndex::build(&events);
        let r = writeback_sim(&events, &idx, 1024, FlushPolicy::WriteBehind);
        assert_eq!(r.disk_writes, 8);
        assert!((r.absorption() - 8.0).abs() < 1e-12);
        assert!(r.peak_dirty <= 8);
    }

    #[test]
    fn tiny_dirty_budget_limits_absorption() {
        let events = small_writer_trace(64, 512);
        let idx = SessionIndex::build(&events);
        let unlimited = writeback_sim(&events, &idx, 1024, FlushPolicy::WriteBehind);
        let tight = writeback_sim(&events, &idx, 1, FlushPolicy::WriteBehind);
        assert!(tight.disk_writes >= unlimited.disk_writes);
        // Even one dirty buffer still absorbs the 8 writes landing in the
        // same block before it moves on.
        assert!(tight.absorption() > 4.0);
    }

    #[test]
    fn watermark_bounds_dirty_data() {
        let events = small_writer_trace(512, 512);
        let idx = SessionIndex::build(&events);
        let r = writeback_sim(
            &events,
            &idx,
            1024,
            FlushPolicy::Watermark { high: 16, low: 4 },
        );
        assert!(r.peak_dirty <= 16);
        assert!(
            r.absorption() > 4.0,
            "batched cleaning keeps most absorption"
        );
    }

    #[test]
    fn rewrites_are_fully_absorbed() {
        // The same block rewritten 100 times: write-behind sends it to
        // disk once.
        let mut events = small_writer_trace(0, 512);
        for k in 0..100u64 {
            events.push(OrderedEvent {
                time: SimTime::from_micros(k),
                node: 0,
                body: EventBody::Write {
                    session: 1,
                    offset: 0,
                    bytes: 512,
                },
            });
        }
        let idx = SessionIndex::build(&events);
        let r = writeback_sim(&events, &idx, 64, FlushPolicy::WriteBehind);
        assert_eq!(r.disk_writes, 1);
        assert!((r.absorption() - 100.0).abs() < 1e-12);
    }
}
