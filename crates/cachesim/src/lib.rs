//! Trace-driven buffer-cache simulation — the paper's §4.8.
//!
//! Three experiments, reimplemented from the paper's description:
//!
//! * [`compute`] — per-compute-node caches of one-block (4 KB) read-only
//!   buffers with LRU replacement; per-job hit-rate distributions for 1,
//!   10, and 50 buffers (Figure 8);
//! * [`ionode`] — I/O-node caches of 4 KB buffers under LRU or FIFO,
//!   swept over the number of I/O nodes and total buffer count, with the
//!   file striped round-robin at one-block granularity (Figure 9);
//! * [`combined`] — both at once: a single buffer per compute node plus a
//!   50-buffer cache at each of 10 I/O nodes (the "only a 3 % reduction"
//!   result);
//!
//! plus [`prep`], which indexes sessions by class so the compute-node
//! simulation can restrict itself to read-only files, exactly as the
//! paper did.
//!
//! None of these results is calibrated: the workload generator never saw a
//! hit rate. Whatever comes out is a *prediction* from the synthetic
//! workload's locality structure.

pub mod combined;
pub mod compute;
pub mod ionode;
pub mod prefetch;
pub mod prep;
pub mod stackdist;
pub mod writeback;

pub use combined::{combined_simulation, CombinedResult};
pub use compute::{compute_cache_sim, ComputeCacheResult};
pub use ionode::{io_cache_sim, sweep, IoCacheResult, Policy};
pub use prefetch::{prefetch_sim, PrefetchResult, Prefetcher};
pub use prep::SessionIndex;
pub use stackdist::{lru_profile, StackDistanceProfile, StackDistances};
pub use writeback::{writeback_sim, FlushPolicy, WritebackResult};
