//! Session indexing for the cache simulations.
//!
//! The compute-node simulation needs to know, per session, whether the
//! file ended up read-only (the paper restricted compute-node caching to
//! read-only files) and which job issued it (hit rates are reported per
//! job). That classification is only known once the whole trace has been
//! seen, so the simulators make one indexing pass first — the same
//! two-pass structure a trace-driven simulator of the real data would use.

use std::collections::BTreeMap;

use charisma_trace::record::EventBody;
use charisma_trace::OrderedEvent;

/// Facts about one session needed by the cache simulators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionFacts {
    /// Owning job.
    pub job: u32,
    /// Path identity (cache-block identity).
    pub file: u32,
    /// Whether the session saw reads and no writes.
    pub read_only: bool,
}

/// Index of all sessions in a trace.
#[derive(Clone, Debug, Default)]
pub struct SessionIndex {
    map: BTreeMap<u32, SessionFacts>,
}

impl SessionIndex {
    /// Build the index (the first pass).
    pub fn build(events: &[OrderedEvent]) -> SessionIndex {
        let mut map: BTreeMap<u32, SessionFacts> = BTreeMap::new();
        let mut wrote: BTreeMap<u32, bool> = BTreeMap::new();
        let mut read: BTreeMap<u32, bool> = BTreeMap::new();
        for e in events {
            match e.body {
                EventBody::Open {
                    job, file, session, ..
                } => {
                    map.entry(session).or_insert(SessionFacts {
                        job,
                        file,
                        read_only: false,
                    });
                }
                EventBody::Read { session, .. } => {
                    read.insert(session, true);
                }
                EventBody::Write { session, .. } => {
                    wrote.insert(session, true);
                }
                _ => {}
            }
        }
        for (session, facts) in map.iter_mut() {
            facts.read_only = read.get(session).copied().unwrap_or(false)
                && !wrote.get(session).copied().unwrap_or(false);
        }
        SessionIndex { map }
    }

    /// Look up a session.
    pub fn get(&self, session: u32) -> Option<&SessionFacts> {
        self.map.get(&session)
    }

    /// Number of indexed sessions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_ipsc::SimTime;
    use charisma_trace::record::AccessKind;

    fn ev(body: EventBody) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::ZERO,
            node: 0,
            body,
        }
    }

    #[test]
    fn classifies_read_only_sessions() {
        let events = vec![
            ev(EventBody::Open {
                job: 1,
                file: 10,
                session: 1,
                mode: 0,
                access: AccessKind::Read,
                created: false,
            }),
            ev(EventBody::Read {
                session: 1,
                offset: 0,
                bytes: 100,
            }),
            ev(EventBody::Open {
                job: 2,
                file: 11,
                session: 2,
                mode: 0,
                access: AccessKind::ReadWrite,
                created: true,
            }),
            ev(EventBody::Read {
                session: 2,
                offset: 0,
                bytes: 100,
            }),
            ev(EventBody::Write {
                session: 2,
                offset: 0,
                bytes: 100,
            }),
            ev(EventBody::Open {
                job: 3,
                file: 12,
                session: 3,
                mode: 0,
                access: AccessKind::Read,
                created: false,
            }),
        ];
        let idx = SessionIndex::build(&events);
        assert_eq!(idx.len(), 3);
        assert!(idx.get(1).unwrap().read_only);
        assert!(!idx.get(2).unwrap().read_only, "read-write");
        assert!(!idx.get(3).unwrap().read_only, "unaccessed is not RO");
        assert_eq!(idx.get(1).unwrap().job, 1);
        assert_eq!(idx.get(2).unwrap().file, 11);
        assert!(idx.get(9).is_none());
    }
}
