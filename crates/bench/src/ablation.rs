//! §5 interface ablations: strided requests and collective I/O.
//!
//! These run on a dedicated CFS instance (not the big trace): the paper's
//! recommendation is about the *interface*, so the experiment compares
//! the same logical transfer expressed three ways — a loop of small
//! requests (what CFS forced), one strided request per node, and one
//! collective request for the whole job.

use std::fmt::Write as _;

use charisma_cfs::{Access, Cfs, CfsConfig, CollectiveShare, IoMode, StridedSpec};
use charisma_ipsc::{Machine, MachineConfig, SimTime};

/// One row of the ablation table.
#[derive(Clone, Copy, Debug)]
pub struct AblationRow {
    /// Interface under test.
    pub interface: &'static str,
    /// Total network messages.
    pub messages: u64,
    /// Simulated wall time of the whole transfer, seconds.
    pub elapsed_s: f64,
    /// I/O-node cache hits among block accesses.
    pub cache_hits: u64,
    /// Bytes moved.
    pub bytes: u64,
}

/// The interleaved-read scenario from the traced workload: `nodes`
/// compute nodes each read their records of a shared file (record
/// `record` bytes, interleaved round-robin), expressed via each
/// interface.
pub fn strided_ablation(nodes: u16, record: u32, records_per_node: u32) -> Vec<AblationRow> {
    ablation(nodes, record, records_per_node, false)
}

/// The same comparison with the I/O-node caches dropped after staging:
/// every block comes off the disk, so the collective's disk-order
/// scheduling advantage is visible.
pub fn strided_ablation_cold(nodes: u16, record: u32, records_per_node: u32) -> Vec<AblationRow> {
    ablation(nodes, record, records_per_node, true)
}

fn ablation(nodes: u16, record: u32, records_per_node: u32, cold: bool) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for interface in [
        "small-request loop",
        "strided request",
        "collective request",
    ] {
        let machine = Machine::boot_synchronized(MachineConfig::nas_ipsc860());
        let mut cfs = Cfs::new(CfsConfig::nas());
        let t0 = SimTime::from_secs(1);
        // Stage the shared input.
        let total = u64::from(nodes) * u64::from(record) * u64::from(records_per_node);
        let o = cfs
            .open(1, "input", Access::Write, IoMode::Independent, 0, false)
            .expect("stage open");
        let mut done = 0u64;
        while done < total {
            let chunk = (total - done).min(1 << 20) as u32;
            cfs.write(&machine, o.session, 0, chunk, t0).expect("stage");
            done += u64::from(chunk);
        }
        cfs.close(o.session, 0).expect("close");
        if cold {
            cfs.drop_caches();
        }
        let stats_before = cfs.stats();

        // All nodes open for reading.
        let mut session = 0;
        for n in 0..nodes {
            session = cfs
                .open(2, "input", Access::Read, IoMode::Independent, n, false)
                .expect("read open")
                .session;
        }

        let stride = u64::from(record) * u64::from(nodes);
        let mut end = t0;
        let mut bytes = 0u64;
        match interface {
            "small-request loop" => {
                for n in 0..nodes {
                    let spec = StridedSpec {
                        start: u64::from(n) * u64::from(record),
                        record_bytes: record,
                        stride,
                        count: records_per_node,
                    };
                    let out = cfs
                        .strided_as_loop(&machine, session, n, spec, t0, false)
                        .expect("loop");
                    end = end.max(out.completion);
                    bytes += u64::from(out.bytes);
                }
            }
            "strided request" => {
                for n in 0..nodes {
                    let spec = StridedSpec {
                        start: u64::from(n) * u64::from(record),
                        record_bytes: record,
                        stride,
                        count: records_per_node,
                    };
                    let out = cfs
                        .read_strided(&machine, session, n, spec, t0)
                        .expect("strided");
                    end = end.max(out.completion);
                    bytes += u64::from(out.bytes);
                }
            }
            "collective request" => {
                // The collective interface also lets the application ask
                // for its natural contiguous partitioning.
                let share = total / u64::from(nodes);
                let shares: Vec<CollectiveShare> = (0..nodes)
                    .map(|n| CollectiveShare {
                        node: n,
                        offset: u64::from(n) * share,
                        bytes: share as u32,
                    })
                    .collect();
                let out = cfs
                    .collective_read(&machine, session, &shares, t0)
                    .expect("collective");
                end = end.max(out.completion);
                bytes += out.bytes;
            }
            _ => unreachable!(),
        }
        let stats = cfs.stats();
        rows.push(AblationRow {
            interface,
            messages: stats.messages - stats_before.messages,
            elapsed_s: (end - t0).as_secs_f64(),
            cache_hits: stats.cache_hits - stats_before.cache_hits,
            bytes,
        });
    }
    rows
}

/// Render the ablation as a table.
pub fn render(rows: &[AblationRow]) -> String {
    render_titled(
        rows,
        "== §5 ablation: the same parallel read through three interfaces ==",
    )
}

/// Render with an explicit title (warm vs cold variants).
pub fn render_titled(rows: &[AblationRow], title: &str) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    writeln!(
        out,
        "  {:<22} {:>10} {:>12} {:>12} {:>12}",
        "interface", "messages", "elapsed (s)", "cache hits", "MB moved"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "  {:<22} {:>10} {:>12.3} {:>12} {:>12.1}",
            r.interface,
            r.messages,
            r.elapsed_s,
            r.cache_hits,
            r.bytes as f64 / 1e6
        )
        .unwrap();
    }
    writeln!(
        out,
        "  (paper: strided requests would 'effectively increase the request"
    )
    .unwrap();
    writeln!(
        out,
        "   size, lowering overhead'; collective I/O better still)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_beats_loop_and_collective_beats_strided() {
        let rows = strided_ablation(16, 512, 64);
        assert_eq!(rows.len(), 3);
        let by_name = |n: &str| rows.iter().find(|r| r.interface == n).expect("row");
        let lp = by_name("small-request loop");
        let st = by_name("strided request");
        let co = by_name("collective request");
        assert_eq!(lp.bytes, st.bytes, "same transfer");
        assert_eq!(lp.bytes, co.bytes);
        assert!(st.messages < lp.messages / 5, "strided slashes messages");
        assert!(co.messages <= st.messages);
        assert!(st.elapsed_s < lp.elapsed_s);
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = strided_ablation(4, 512, 8);
        let text = render(&rows);
        for r in &rows {
            assert!(text.contains(r.interface));
        }
    }
}
