//! Text rendering of the cache-simulation figures (the characterization
//! figures render through `charisma_core::report`).

use std::fmt::Write as _;

use charisma_cachesim::{IoCacheResult, Policy};

use crate::Pipeline;

/// Render Figure 8: compute-node cache per-job hit-rate CDF for 1/10/50
/// buffers.
pub fn render_figure8(p: &Pipeline) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== Figure 8: compute-node caching (per-job hit rates) =="
    )
    .unwrap();
    for buffers in [1usize, 10, 50] {
        let r = p.figure8(buffers);
        let rates = r.job_hit_rates();
        writeln!(
            out,
            "  {buffers:>2} buffer(s): {} jobs, overall hit rate {:4.1}%",
            rates.len(),
            100.0 * r.hit_rate()
        )
        .unwrap();
        // CDF at the paper's interesting thresholds.
        writeln!(
            out,
            "     jobs at 0%: {:4.1}%  (paper ~30%)   jobs >75%: {:4.1}%  (paper ~40%)",
            100.0 * r.fraction_of_jobs_at_zero(),
            100.0 * r.fraction_of_jobs_above(0.75)
        )
        .unwrap();
        let mut line = String::from("     hit-rate CDF:");
        for pct in [0u32, 25, 50, 75, 90, 100] {
            let frac = rates
                .iter()
                .filter(|&&x| x * 100.0 <= f64::from(pct) + 1e-9)
                .count() as f64
                / rates.len().max(1) as f64;
            write!(line, "  ≤{pct}%:{:4.0}%", 100.0 * frac).unwrap();
        }
        writeln!(out, "{line}").unwrap();
    }
    writeln!(
        out,
        "  (paper: three clumps; one buffer nearly as good as many)"
    )
    .unwrap();
    out
}

/// Render Figure 9: I/O-node cache hit rate vs total buffers.
pub fn render_figure9(p: &Pipeline, io_nodes: &[usize], buffers: &[usize]) -> String {
    let mut out = String::new();
    writeln!(out, "== Figure 9: I/O-node caching ==").unwrap();
    let results = p.figure9(io_nodes, buffers, &[Policy::Lru, Policy::Fifo]);
    for &policy in &[Policy::Lru, Policy::Fifo] {
        writeln!(
            out,
            "  {policy:?} hit rate (rows: I/O nodes; cols: total buffers)"
        )
        .unwrap();
        let mut header = String::from("    io\\buf");
        for &b in buffers {
            write!(header, " {b:>7}").unwrap();
        }
        writeln!(out, "{header}").unwrap();
        for &n in io_nodes {
            let mut line = format!("    {n:>6}");
            for &b in buffers {
                let r = find(&results, n, b, policy);
                write!(line, " {:>6.1}%", 100.0 * r.hit_rate()).unwrap();
            }
            writeln!(out, "{line}").unwrap();
        }
    }
    // The knee: buffers needed to reach 90% (paper: LRU ~4000, FIFO ~20000,
    // at the machine's 10 I/O nodes).
    for &policy in &[Policy::Lru, Policy::Fifo] {
        let knee = buffers
            .iter()
            .find(|&&b| find(&results, 10, b, policy).hit_rate() >= 0.90);
        writeln!(
            out,
            "  {policy:?}: 90% reached at {} total buffers (paper: {})",
            knee.map(|b| b.to_string())
                .unwrap_or_else(|| "not reached".into()),
            if policy == Policy::Lru {
                "~4000"
            } else {
                "~20000"
            }
        )
        .unwrap();
    }
    out
}

fn find(
    results: &[IoCacheResult],
    io_nodes: usize,
    buffers: usize,
    policy: Policy,
) -> IoCacheResult {
    *results
        .iter()
        .find(|r| r.io_nodes == io_nodes && r.total_buffers == buffers && r.policy == policy)
        .expect("config present in sweep")
}

/// Render the §4.8 combined experiment.
pub fn render_combined(p: &Pipeline) -> String {
    let r = p.combined();
    let mut out = String::new();
    writeln!(
        out,
        "== Combined compute + I/O-node caching (paper §4.8) =="
    )
    .unwrap();
    writeln!(
        out,
        "  I/O-node hit rate, no compute cache:   {:5.1}%",
        100.0 * r.io_only_hit_rate
    )
    .unwrap();
    writeln!(
        out,
        "  I/O-node hit rate, 1-buffer filtering: {:5.1}%",
        100.0 * r.combined_io_hit_rate
    )
    .unwrap();
    writeln!(
        out,
        "  reduction: {:4.1} points (paper: ~3)",
        100.0 * r.io_hit_rate_reduction()
    )
    .unwrap();
    writeln!(
        out,
        "  compute-node hit rate meanwhile: {:5.1}%",
        100.0 * r.compute_hit_rate
    )
    .unwrap();
    out
}

/// Render the Mattson stack-distance view of Figure 9: the whole LRU
/// curve from one pass, plus the capacity needed for a 90 % block hit
/// rate.
pub fn render_stackdist(p: &Pipeline) -> String {
    use charisma_cachesim::lru_profile;
    let mut out = String::new();
    writeln!(
        out,
        "== Figure 9 via stack distances (exact LRU curve, one pass) =="
    )
    .unwrap();
    let profile = lru_profile(&p.events, &p.index, 10, 100_000);
    writeln!(
        out,
        "  {} block accesses, {} compulsory misses (ceiling {:.1}%)",
        profile.total,
        profile.cold,
        100.0 * profile.ceiling()
    )
    .unwrap();
    writeln!(out, "  buffers/io-node  block hit rate").unwrap();
    for per_node in [5usize, 25, 50, 100, 200, 400, 800, 1600, 2500] {
        writeln!(
            out,
            "  {:>15}  {:>6.1}%",
            per_node,
            100.0 * profile.hit_rate_at(per_node)
        )
        .unwrap();
    }
    for target in [0.80, 0.85] {
        match profile.capacity_for(target) {
            Some(c) => writeln!(
                out,
                "  {:.0}% block hit rate needs {} buffers/io-node ({} total)",
                100.0 * target,
                c,
                c * 10
            )
            .unwrap(),
            None => writeln!(
                out,
                "  {:.0}% block hit rate is above the compulsory-miss ceiling",
                100.0 * target
            )
            .unwrap(),
        }
    }
    out
}

/// Render the prefetching extension (§2.3's companion claim).
pub fn render_prefetch(p: &Pipeline) -> String {
    use charisma_cachesim::{prefetch_sim, Prefetcher};
    let mut out = String::new();
    writeln!(
        out,
        "== Extension: I/O-node prefetching (paper §2.3 context) =="
    )
    .unwrap();
    writeln!(
        out,
        "  {:<22} {:>9} {:>14} {:>12}",
        "prefetcher", "hit rate", "prefetch hits", "waste rate"
    )
    .unwrap();
    for (name, pf) in [
        ("none", Prefetcher::None),
        ("one-block lookahead", Prefetcher::OneBlockLookahead),
        ("stride-detecting", Prefetcher::Strided),
    ] {
        let r = prefetch_sim(&p.events, &p.index, 10, 50, pf);
        writeln!(
            out,
            "  {:<22} {:>8.1}% {:>14} {:>11.1}%",
            name,
            100.0 * r.hit_rate(),
            r.prefetch_hits,
            100.0 * r.waste_rate()
        )
        .unwrap();
    }
    writeln!(
        out,
        "  (Miller & Katz found prefetching helps where caching alone fails;\n   \
         the workload's sequential runs make lookahead cheap and effective)"
    )
    .unwrap();
    out
}

/// Render the write-absorption extension (§4.8's "combine several small
/// requests" mechanism, quantified).
pub fn render_writeback(p: &Pipeline) -> String {
    use charisma_cachesim::{writeback_sim, FlushPolicy};
    let mut out = String::new();
    writeln!(
        out,
        "== Extension: write-behind absorption (paper §4.8 mechanism) =="
    )
    .unwrap();
    writeln!(
        out,
        "  {:<24} {:>12} {:>12} {:>11} {:>10}",
        "policy", "block writes", "disk writes", "absorption", "peak dirty"
    )
    .unwrap();
    for (name, policy) in [
        ("write-through", FlushPolicy::WriteThrough),
        ("write-behind", FlushPolicy::WriteBehind),
        (
            "watermark 400/100",
            FlushPolicy::Watermark {
                high: 400,
                low: 100,
            },
        ),
    ] {
        let r = writeback_sim(&p.events, &p.index, 5000, policy);
        writeln!(
            out,
            "  {:<24} {:>12} {:>12} {:>10.2}x {:>10}",
            name,
            r.block_writes,
            r.disk_writes,
            r.absorption(),
            r.peak_dirty
        )
        .unwrap();
    }
    // The paper's concern is specifically the *small* requests (89.4 % of
    // writes, 3 % of bytes): measure their absorption in isolation.
    let small: Vec<charisma_trace::OrderedEvent> = p
        .events
        .iter()
        .filter(|e| match e.body {
            charisma_trace::record::EventBody::Write { bytes, .. } => bytes < 4000,
            _ => false,
        })
        .copied()
        .collect();
    let wt = writeback_sim(&small, &p.index, 5000, FlushPolicy::WriteThrough);
    let wb = writeback_sim(&small, &p.index, 5000, FlushPolicy::WriteBehind);
    writeln!(
        out,
        "  sub-4000-byte writes alone: {} requests -> {} disk writes under\n  \
         write-through vs {} under write-behind ({:.1}x absorption)",
        wt.write_requests,
        wt.disk_writes,
        wb.disk_writes,
        wb.absorption()
    )
    .unwrap();
    writeln!(
        out,
        "  (every disk write saved is a positioning delay avoided — the\n   \
         reason the paper wants buffers between small requests and RAIDs)"
    )
    .unwrap();
    out
}

/// Render the paper's figures as terminal plots (`repro --plots`).
pub fn render_plots(p: &Pipeline) -> String {
    use charisma_core::plot::{bar_chart, cdf_plot_log, cdf_plot_percent, line_plot_log};
    use charisma_core::sequential::Metric;
    use charisma_core::{census, jobs, sequential, sharing};

    let chars = &p.report.chars;
    let mut out = String::new();

    // Figure 1.
    let profile = jobs::concurrency_profile(chars);
    let rows: Vec<(String, f64)> = profile
        .iter()
        .enumerate()
        .map(|(k, f)| (format!("{k} jobs"), 100.0 * f))
        .collect();
    out.push_str(&bar_chart(
        "Figure 1: % of traced time at each concurrency level",
        &rows,
        "%",
    ));
    out.push('\n');

    // Figure 2.
    let rows: Vec<(String, f64)> = jobs::node_usage(chars)
        .into_iter()
        .map(|(n, pct)| (format!("{n} nodes"), pct))
        .collect();
    out.push_str(&bar_chart("Figure 2: % of jobs by node count", &rows, "%"));
    out.push('\n');

    // Figure 3.
    let sizes = census::size_cdf(chars);
    out.push_str(&cdf_plot_log(
        "Figure 3: CDF of file size at close",
        &[("files", &sizes)],
        10,
        10_000_000,
    ));
    out.push('\n');

    // Figure 4.
    out.push_str(&cdf_plot_log(
        "Figure 4: read request sizes (fraction of reads vs of data)",
        &[
            ("reads", &p.report.request_sizes.reads_by_count),
            ("data", &p.report.request_sizes.reads_by_bytes),
        ],
        10,
        2_000_000,
    ));
    out.push('\n');

    // Figures 5-6.
    for (title, metric) in [
        (
            "Figure 5: % of accesses sequential, per file",
            Metric::Sequential,
        ),
        (
            "Figure 6: % of accesses consecutive, per file",
            Metric::Consecutive,
        ),
    ] {
        let cdfs = sequential::cdfs(chars, metric);
        out.push_str(&cdf_plot_percent(
            title,
            &[
                ("read-only", &cdfs.read_only),
                ("write-only", &cdfs.write_only),
                ("read-write", &cdfs.read_write),
            ],
        ));
        out.push('\n');
    }

    // Figure 7.
    let sh = sharing::sharing_cdfs(chars);
    out.push_str(&cdf_plot_percent(
        "Figure 7: % of file shared between nodes (byte vs block)",
        &[
            ("RO bytes", &sh.read_bytes),
            ("RO blocks", &sh.read_blocks),
            ("WO bytes", &sh.write_bytes),
        ],
    ));
    out.push('\n');

    // Figure 8: per-job hit-rate CDF.
    let mut f8 = charisma_core::cdf::Cdf::new();
    for rate in p.figure8(1).job_hit_rates() {
        f8.add((rate * 100.0).round() as u64);
    }
    f8.seal();
    out.push_str(&cdf_plot_percent(
        "Figure 8: per-job compute-node hit rate (1 buffer)",
        &[("jobs", &f8)],
    ));
    out.push('\n');

    // Figure 9: hit rate vs buffers, LRU vs FIFO.
    let buffers: Vec<usize> = [250usize, 500, 1000, 2000, 4000, 8000, 16000, 25000]
        .iter()
        .map(|&b| ((b as f64 * p.scale.min(1.0)).round() as usize).max(8))
        .collect();
    let results = p.figure9(&[10], &buffers, &[Policy::Lru, Policy::Fifo]);
    let series: Vec<(&str, Vec<(u64, f64)>)> = [Policy::Lru, Policy::Fifo]
        .iter()
        .map(|&policy| {
            let pts: Vec<(u64, f64)> = buffers
                .iter()
                .map(|&b| (b as u64, find(&results, 10, b, policy).hit_rate()))
                .collect();
            (if policy == Policy::Lru { "LRU" } else { "FIFO" }, pts)
        })
        .collect();
    let series_refs: Vec<(&str, &[(u64, f64)])> = series
        .iter()
        .map(|(name, pts)| (*name, pts.as_slice()))
        .collect();
    out.push_str(&line_plot_log(
        "Figure 9: I/O-node hit rate vs total buffers (10 I/O nodes)",
        &series_refs,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_pipeline;

    #[test]
    fn figures_render() {
        let p = run_pipeline(0.02, 4994);
        let f8 = render_figure8(&p);
        assert!(f8.contains("Figure 8"));
        let f9 = render_figure9(&p, &[1, 10], &[100, 1000]);
        assert!(f9.contains("Lru"));
        assert!(f9.contains("Fifo"));
        let c = render_combined(&p);
        assert!(c.contains("reduction"));
    }
}
