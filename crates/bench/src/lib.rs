//! The reproduction harness: one pipeline that generates the workload,
//! collects and rectifies the trace, and regenerates every table and
//! figure of the paper's evaluation, plus the §5 ablations.
//!
//! The `repro` binary drives this end to end:
//!
//! ```text
//! cargo run -p charisma-bench --release --bin repro -- --scale 0.25
//! cargo run -p charisma-bench --release --bin repro -- --exp fig9
//! ```

use charisma_cachesim::{combined_simulation, compute_cache_sim, sweep, Policy, SessionIndex};
use charisma_core::report::Report;
use charisma_trace::{postprocess, OrderedEvent};
use charisma_workload::{generate, GeneratorConfig};

pub mod ablation;
pub mod figures;

/// Everything the experiments need, computed once.
pub struct Pipeline {
    /// The rectified, globally ordered event stream.
    pub events: Vec<OrderedEvent>,
    /// The full §4 characterization.
    pub report: Report,
    /// Session index for the cache simulations.
    pub index: SessionIndex,
    /// Generator bookkeeping.
    pub stats: charisma_workload::generate::GenStats,
    /// Scale the pipeline ran at.
    pub scale: f64,
}

/// Run generation → collection → postprocessing → characterization.
pub fn run_pipeline(scale: f64, seed: u64) -> Pipeline {
    let workload = generate(GeneratorConfig {
        scale,
        seed,
        ..Default::default()
    });
    let events = postprocess(&workload.trace);
    let report = Report::from_events(&events);
    let index = SessionIndex::build(&events);
    Pipeline {
        events,
        report,
        index,
        stats: workload.stats,
        scale,
    }
}

impl Pipeline {
    /// Figure 8 for a given per-node buffer count.
    pub fn figure8(&self, buffers: usize) -> charisma_cachesim::ComputeCacheResult {
        compute_cache_sim(&self.events, &self.index, buffers)
    }

    /// Figure 9 sweep.
    pub fn figure9(
        &self,
        io_nodes: &[usize],
        buffers: &[usize],
        policies: &[Policy],
    ) -> Vec<charisma_cachesim::IoCacheResult> {
        sweep(&self.events, &self.index, io_nodes, buffers, policies)
    }

    /// §4.8's combined experiment.
    pub fn combined(&self) -> charisma_cachesim::CombinedResult {
        combined_simulation(&self.events, &self.index, 1, 10, 50)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_runs_end_to_end_at_small_scale() {
        let p = run_pipeline(0.02, 4994);
        assert!(p.events.len() > 1000);
        assert!(!p.index.is_empty());
        let text = p.report.render();
        assert!(text.contains("Table 2"));
        let f8 = p.figure8(1);
        assert!(f8.requests > 100);
        let combined = p.combined();
        assert!(combined.io_only_hit_rate > 0.0);
    }
}
