//! Trace-file utility: generate, inspect, validate, and analyze CHARISMA
//! trace files on disk — the generate-once / analyze-many workflow the
//! paper's group used on their 700 MB of traces.
//!
//! ```text
//! tracetool gen --scale 0.2 --seed 4994 -o nas.trace
//! tracetool info nas.trace
//! tracetool validate nas.trace
//! tracetool analyze nas.trace
//! tracetool csv nas.trace -o csv_out/
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use charisma_core::export::{export_csv, summary_csv};
use charisma_core::report::Report;
use charisma_trace::file::{read_trace, write_trace, TraceStream};
use charisma_trace::postprocess;
use charisma_workload::{generate, GeneratorConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("usage: tracetool <gen|info|validate|analyze|csv> ...");
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "gen" => cmd_gen(&args[1..]),
        "info" => cmd_info(&args[1..]),
        "validate" => cmd_validate(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "csv" => cmd_csv(&args[1..]),
        other => {
            eprintln!("unknown command {other}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn positional(args: &[String]) -> Option<&String> {
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") || a == "-o" {
            skip = true;
            continue;
        }
        return Some(a);
    }
    None
}

fn cmd_gen(args: &[String]) -> ExitCode {
    let scale: f64 = flag(args, "--scale")
        .map(|v| v.parse().expect("--scale takes a number"))
        .unwrap_or(0.1);
    let seed: u64 = flag(args, "--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(4994);
    let out = flag(args, "-o").unwrap_or_else(|| "charisma.trace".into());
    eprintln!("generating scale {scale}, seed {seed}...");
    let w = generate(GeneratorConfig {
        scale,
        seed,
        ..Default::default()
    });
    let file = File::create(&out).expect("create output");
    write_trace(&w.trace, BufWriter::new(file)).expect("write trace");
    let bytes = std::fs::metadata(&out).expect("stat").len();
    println!(
        "{out}: {} blocks, {} records, {:.1} MB",
        w.trace.blocks.len(),
        w.trace.event_count(),
        bytes as f64 / 1e6
    );
    ExitCode::SUCCESS
}

fn cmd_info(args: &[String]) -> ExitCode {
    let Some(path) = positional(args) else {
        eprintln!("usage: tracetool info <file>");
        return ExitCode::FAILURE;
    };
    let file = File::open(path).expect("open trace");
    let mut stream = TraceStream::open(BufReader::new(file)).expect("parse header");
    println!("trace file      : {path}");
    println!("format version  : {}", stream.header.version);
    println!("compute nodes   : {}", stream.header.compute_nodes);
    println!("I/O nodes       : {}", stream.header.io_nodes);
    println!("block size      : {} bytes", stream.header.block_bytes);
    println!("generator seed  : {}", stream.header.seed);
    println!("blocks          : {}", stream.blocks_remaining());
    // Stream through for record counts without holding the trace.
    let mut records = 0u64;
    let mut first = None;
    let mut last = None;
    while let Some(block) = stream.next_block().expect("read block") {
        records += block.events.len() as u64;
        if first.is_none() {
            first = Some(block.recv_service);
        }
        last = Some(block.recv_service);
    }
    println!("records         : {records}");
    if let (Some(a), Some(b)) = (first, last) {
        println!(
            "collection span : {:.2} h",
            (b.as_secs_f64() - a.as_secs_f64()) / 3600.0
        );
    }
    ExitCode::SUCCESS
}

fn cmd_validate(args: &[String]) -> ExitCode {
    let Some(path) = positional(args) else {
        eprintln!("usage: tracetool validate <file>");
        return ExitCode::FAILURE;
    };
    let file = File::open(path).expect("open trace");
    let mut stream = match TraceStream::open(BufReader::new(file)) {
        Ok(s) => s,
        Err(e) => {
            println!("INVALID: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut blocks = 0u64;
    let mut records = 0u64;
    let mut non_monotone_blocks = 0u64;
    loop {
        match stream.next_block() {
            Ok(Some(block)) => {
                blocks += 1;
                records += block.events.len() as u64;
                // Within a block, a node's local timestamps must be
                // non-decreasing (they were generated in program order).
                if block
                    .events
                    .windows(2)
                    .any(|w| w[1].local_time < w[0].local_time)
                {
                    non_monotone_blocks += 1;
                }
            }
            Ok(None) => break,
            Err(e) => {
                println!("INVALID after {blocks} blocks: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if non_monotone_blocks > 0 {
        println!("SUSPECT: {non_monotone_blocks}/{blocks} blocks with non-monotone local clocks");
        return ExitCode::FAILURE;
    }
    println!("OK: {blocks} blocks, {records} records");
    ExitCode::SUCCESS
}

fn load_report(path: &str) -> Report {
    let file = File::open(path).expect("open trace");
    let trace = read_trace(BufReader::new(file)).expect("parse trace");
    let events = postprocess(&trace);
    Report::from_events(&events)
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    let Some(path) = positional(args) else {
        eprintln!("usage: tracetool analyze <file>");
        return ExitCode::FAILURE;
    };
    let report = load_report(path);
    // Tolerate a closed pipe (`tracetool analyze x | head`).
    use std::io::Write as _;
    let stdout = std::io::stdout();
    let _ = stdout.lock().write_all(report.render().as_bytes());
    ExitCode::SUCCESS
}

fn cmd_csv(args: &[String]) -> ExitCode {
    let Some(path) = positional(args) else {
        eprintln!("usage: tracetool csv <file> -o <dir>");
        return ExitCode::FAILURE;
    };
    let dir = flag(args, "-o").unwrap_or_else(|| "charisma_csv".into());
    let report = load_report(path);
    std::fs::create_dir_all(&dir).expect("create dir");
    let mut files = export_csv(&report);
    files.push(summary_csv(&report));
    for f in &files {
        std::fs::write(format!("{dir}/{}.csv", f.name), &f.contents).expect("write csv");
    }
    println!("wrote {} CSV files to {dir}/", files.len());
    ExitCode::SUCCESS
}
