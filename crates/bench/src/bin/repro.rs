//! Regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale S] [--seed N] [--exp ID]...
//! ```
//!
//! `--scale 1.0` reproduces the full three-week population (minutes of
//! run time); the default 0.25 keeps the shapes with a faster run.
//! `--exp` selects sections: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//! table1 table2 table3 census modes combined strided (default: all).

use charisma_bench::{ablation, figures, run_pipeline};

fn main() {
    let mut scale = 0.25f64;
    let mut seed = 4994u64;
    let mut exps: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale takes a number");
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--exp" => {
                exps.push(args.next().expect("--exp takes a section id"));
            }
            "--csv" => {
                csv_dir = Some(args.next().expect("--csv takes a directory"));
            }
            "--plots" => {
                exps.push("plots".into());
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale S] [--seed N] [--csv DIR] [--exp ID]...\n\
                     sections: fig1-fig9 table1-table3 census modes combined\n\
                     strided stackdist prefetch writeback"
                );
                return;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    let want = |id: &str| exps.is_empty() || exps.iter().any(|e| e == id);

    eprintln!("[repro] generating workload at scale {scale} (seed {seed})...");
    let start = std::time::Instant::now();
    let p = run_pipeline(scale, seed);
    eprintln!(
        "[repro] {} events, {} sessions, {} requests, {:.1} simulated hours, {:.1}s real",
        p.events.len(),
        p.stats.sessions,
        p.stats.requests,
        p.stats.end_time.as_secs_f64() / 3600.0,
        start.elapsed().as_secs_f64()
    );
    println!(
        "CHARISMA reproduction — scale {scale}, seed {seed} (counts scale with --scale; \
         percentages are comparable to the paper)\n"
    );

    let mut out = String::new();
    if want("fig1") || want("fig2") || want("table1") {
        p.report.render_jobs(&mut out);
    }
    if want("fig3") || want("census") {
        p.report.render_census(&mut out);
    }
    if want("fig4") {
        p.report.render_requests(&mut out);
    }
    if want("fig5") || want("fig6") {
        p.report.render_sequentiality(&mut out);
    }
    if want("table2") || want("table3") {
        p.report.render_regularity(&mut out);
    }
    if want("modes") {
        p.report.render_modes(&mut out);
    }
    if want("fig7") {
        p.report.render_sharing(&mut out);
    }
    println!("{out}");

    if want("fig8") {
        println!("{}", figures::render_figure8(&p));
    }
    if want("fig9") {
        // Buffer counts scale with the workload so the knee is visible at
        // any --scale; at scale 1.0 this is the paper's 0-25000 range.
        let buffers: Vec<usize> = [250, 500, 1000, 2000, 4000, 8000, 16000, 25000]
            .iter()
            .map(|&b| ((b as f64 * scale.min(1.0)).round() as usize).max(8))
            .collect();
        println!("{}", figures::render_figure9(&p, &[1, 5, 10, 20], &buffers));
    }
    if want("combined") {
        println!("{}", figures::render_combined(&p));
    }
    if want("strided") || want("collective") {
        let rows = ablation::strided_ablation(64, 512, 128);
        println!("{}", ablation::render(&rows));
        let cold = ablation::strided_ablation_cold(64, 512, 128);
        println!(
            "{}",
            ablation::render_titled(
                &cold,
                "== same ablation, cold I/O-node caches (disk scheduling visible) =="
            )
        );
    }
    if want("stackdist") {
        println!("{}", figures::render_stackdist(&p));
    }
    if want("prefetch") {
        println!("{}", figures::render_prefetch(&p));
    }
    if want("writeback") {
        println!("{}", figures::render_writeback(&p));
    }
    if exps.iter().any(|e| e == "plots") {
        println!("{}", figures::render_plots(&p));
    }

    if let Some(dir) = csv_dir {
        use charisma_core::export::{export_csv, summary_csv};
        std::fs::create_dir_all(&dir).expect("create csv dir");
        let mut files = export_csv(&p.report);
        files.push(summary_csv(&p.report));
        for f in &files {
            let path = format!("{dir}/{}.csv", f.name);
            std::fs::write(&path, &f.contents).expect("write csv");
        }
        eprintln!("[repro] wrote {} CSV files to {dir}/", files.len());
    }
}
