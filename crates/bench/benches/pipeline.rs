//! Benches for the generation/collection/postprocessing pipeline: how
//! fast can the simulator produce and rectify a trace.

use charisma_trace::file::{read_trace, write_trace};
use charisma_trace::postprocess;
use charisma_workload::shard::generate_sharded;
use charisma_workload::{generate, GeneratorConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let w = generate(GeneratorConfig::test_scale(0.02));
    let events = w.trace.event_count() as u64;

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(events));

    g.bench_function("generate_workload_0.01", |b| {
        b.iter(|| black_box(generate(GeneratorConfig::test_scale(0.01))))
    });
    g.bench_function("postprocess", |b| {
        b.iter(|| black_box(postprocess(black_box(&w.trace))))
    });
    g.bench_function("trace_encode", |b| {
        b.iter(|| {
            let mut bytes = Vec::new();
            write_trace(black_box(&w.trace), &mut bytes).expect("write");
            black_box(bytes)
        })
    });
    let mut encoded = Vec::new();
    write_trace(&w.trace, &mut encoded).expect("write");
    g.bench_function("trace_decode", |b| {
        b.iter(|| black_box(read_trace(black_box(encoded.as_slice())).expect("read")))
    });
    g.finish();
}

/// Serial vs parallel sharded generation at a realistic scale: the same
/// fixed 16-shard plan executed on 1 worker thread vs 8. Both produce
/// byte-identical merged streams (charisma-verify proves it), so this
/// measures pure execution-width speedup.
fn bench_sharded(c: &mut Criterion) {
    let config = GeneratorConfig::test_scale(0.25);
    let events = generate_sharded(&config, 1).event_count() as u64;

    let mut g = c.benchmark_group("sharded_generation");
    g.sample_size(10);
    g.throughput(Throughput::Elements(events));

    for workers in [1usize, 2, 4, 8] {
        g.bench_function(&format!("scale_0.25_workers_{workers}"), |b| {
            b.iter(|| black_box(generate_sharded(black_box(&config), workers)))
        });
    }
    g.bench_function("scale_0.25_merge", |b| {
        let sharded = generate_sharded(&config, 8);
        b.iter(|| black_box(sharded.merged_events().count()))
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline, bench_sharded);
criterion_main!(benches);
