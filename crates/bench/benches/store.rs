//! Benches for the columnar trace archive: encode throughput, open cost,
//! and the payoff of zone-map pruning — a pruned time-window query versus
//! the full scan that a store without zone maps would be forced to run.

use charisma_ipsc::SimTime;
use charisma_store::{write_archive, Archive, ArchiveMeta, OpSet, Query};
use charisma_trace::postprocess::postprocess;
use charisma_workload::{generate, GeneratorConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_store(c: &mut Criterion) {
    let w = generate(GeneratorConfig::test_scale(0.02));
    let events = postprocess(&w.trace);
    let meta = ArchiveMeta {
        seed: 4994,
        scale: 0.02,
    };
    let bytes = write_archive(&events, meta);
    let archive = Archive::from_bytes(bytes.clone()).expect("parses");
    let (t0, t1) = archive.time_span().expect("non-empty");
    let span = t1.as_micros() - t0.as_micros();
    let window = Query::all().time_window(
        SimTime::from_micros(t0.as_micros() + span / 3),
        SimTime::from_micros(t0.as_micros() + 2 * span / 3),
    );

    let mut g = c.benchmark_group("store");
    g.sample_size(10);
    g.throughput(Throughput::Elements(events.len() as u64));

    g.bench_function("archive_encode", |b| {
        b.iter(|| black_box(write_archive(black_box(&events), meta)))
    });
    g.bench_function("archive_open", |b| {
        b.iter(|| black_box(Archive::from_bytes(black_box(bytes.clone())).expect("parses")))
    });
    g.bench_function("full_scan_serial", |b| {
        b.iter(|| black_box(archive.query(Query::all()).events().expect("scans")))
    });
    g.bench_function("full_scan_4_workers", |b| {
        b.iter(|| {
            black_box(
                archive
                    .query(Query::all())
                    .workers(4)
                    .events()
                    .expect("scans"),
            )
        })
    });
    g.bench_function("pruned_time_window", |b| {
        b.iter(|| {
            black_box(
                archive
                    .query(window.clone())
                    .workers(4)
                    .events()
                    .expect("scans"),
            )
        })
    });
    g.bench_function("request_class_report", |b| {
        b.iter(|| {
            black_box(
                archive
                    .query(Query::all().ops(OpSet::requests()))
                    .workers(4)
                    .report()
                    .expect("scans"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
