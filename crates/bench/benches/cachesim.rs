//! Benches for the trace-driven cache simulations (Figures 8-9 and the
//! §4.8 combined experiment).

use charisma_cachesim::{combined_simulation, compute_cache_sim, io_cache_sim, Policy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cachesim(c: &mut Criterion) {
    let p = charisma_bench::run_pipeline(0.02, 4994);
    let events = &p.events;
    let index = &p.index;

    let mut g = c.benchmark_group("cachesim");
    g.sample_size(10);

    g.bench_function("fig8_compute_cache_1buf", |b| {
        b.iter(|| black_box(compute_cache_sim(black_box(events), index, 1)))
    });
    g.bench_function("fig8_compute_cache_50buf", |b| {
        b.iter(|| black_box(compute_cache_sim(black_box(events), index, 50)))
    });
    g.bench_function("fig9_io_cache_lru_10x50", |b| {
        b.iter(|| black_box(io_cache_sim(black_box(events), index, 10, 500, Policy::Lru)))
    });
    g.bench_function("fig9_io_cache_fifo_10x50", |b| {
        b.iter(|| {
            black_box(io_cache_sim(
                black_box(events),
                index,
                10,
                500,
                Policy::Fifo,
            ))
        })
    });
    g.bench_function("fig9_io_cache_ipl_10x50", |b| {
        b.iter(|| black_box(io_cache_sim(black_box(events), index, 10, 500, Policy::Ipl)))
    });
    g.bench_function("combined_experiment", |b| {
        b.iter(|| black_box(combined_simulation(black_box(events), index, 1, 10, 50)))
    });
    g.finish();
}

criterion_group!(benches, bench_cachesim);
criterion_main!(benches);
