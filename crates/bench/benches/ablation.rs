//! The §5 interface ablation as benchmarks: the *simulator cost* of
//! expressing the same parallel read through each interface. (The modeled
//! message counts and latencies are printed by `repro --exp strided`.)

use charisma_bench::ablation::strided_ablation;
use charisma_cfs::{Access, Cfs, CfsConfig, IoMode, StridedSpec};
use charisma_ipsc::{Machine, MachineConfig, SimTime};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn staged() -> (Machine, Cfs, u32) {
    let machine = Machine::boot_synchronized(MachineConfig::nas_ipsc860());
    let mut cfs = Cfs::new(CfsConfig::nas());
    let t0 = SimTime::from_secs(1);
    let o = cfs
        .open(1, "in", Access::Write, IoMode::Independent, 0, false)
        .expect("open");
    for _ in 0..4 {
        cfs.write(&machine, o.session, 0, 1 << 20, t0)
            .expect("stage");
    }
    cfs.close(o.session, 0).expect("close");
    (machine, cfs, 4 << 20)
}

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_strided");
    g.sample_size(10);

    // Full three-way comparison (messages/latency are the science; this
    // measures the harness's own cost).
    g.bench_function("three_interface_comparison", |b| {
        b.iter(|| black_box(strided_ablation(16, 512, 64)))
    });

    // Single-node strided vs loop on a shared staged file.
    let spec = StridedSpec {
        start: 0,
        record_bytes: 512,
        stride: 4096,
        count: 512,
    };
    g.bench_function("strided_request_path", |b| {
        let (machine, mut cfs, _) = staged();
        let mut job = 100;
        b.iter(|| {
            job += 1;
            let o = cfs
                .open(job, "in", Access::Read, IoMode::Independent, 0, false)
                .expect("open");
            let out = cfs
                .read_strided(&machine, o.session, 0, spec, SimTime::from_secs(2))
                .expect("strided");
            cfs.close(o.session, 0).expect("close");
            black_box(out)
        })
    });
    g.bench_function("small_request_loop_path", |b| {
        let (machine, mut cfs, _) = staged();
        let mut job = 100;
        b.iter(|| {
            job += 1;
            let o = cfs
                .open(job, "in", Access::Read, IoMode::Independent, 0, false)
                .expect("open");
            let out = cfs
                .strided_as_loop(&machine, o.session, 0, spec, SimTime::from_secs(2), false)
                .expect("loop");
            cfs.close(o.session, 0).expect("close");
            black_box(out)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
