//! Microbenches for the substrates: cache policies, hypercube routing,
//! the subcube allocator, and the CFS request path.

use charisma_cfs::{Access, BlockCache, Cfs, CfsConfig, FifoCache, IoMode, IplCache, LruCache};
use charisma_ipsc::{Hypercube, Machine, MachineConfig, SimTime, SubcubeAllocator};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_caches(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_policies");
    g.sample_size(20);
    // A mixed trace: hot set + scan, 64k accesses.
    let accesses: Vec<(u32, u64)> = (0..65_536u64)
        .map(|i| if i % 3 == 0 { (1, i % 16) } else { (2, i) })
        .collect();
    g.throughput(Throughput::Elements(accesses.len() as u64));
    g.bench_function("lru_access", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(4096);
            let mut hits = 0u64;
            for &(f, blk) in &accesses {
                if cache.access((f, blk), 512) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("fifo_access", |b| {
        b.iter(|| {
            let mut cache = FifoCache::new(4096);
            let mut hits = 0u64;
            for &(f, blk) in &accesses {
                if cache.access((f, blk), 512) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("ipl_access", |b| {
        b.iter(|| {
            let mut cache = IplCache::new(4096, 4096);
            let mut hits = 0u64;
            for &(f, blk) in &accesses {
                if cache.access((f, blk), 512) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    g.sample_size(20);
    let h = Hypercube::new(7);
    g.bench_function("ecube_route_128", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for src in 0..128 {
                total += black_box(h.ecube_route(src, 127 - src)).len();
            }
            black_box(total)
        })
    });
    g.bench_function("subcube_alloc_release_cycle", |b| {
        b.iter(|| {
            let mut alloc = SubcubeAllocator::new(7);
            let mut cubes = Vec::new();
            for dim in [0u32, 3, 5, 2, 4, 1, 0, 3] {
                if let Some(cube) = alloc.allocate(dim) {
                    cubes.push(cube);
                }
            }
            for cube in cubes {
                alloc.release(cube);
            }
            black_box(alloc.free_nodes())
        })
    });
    g.finish();
}

fn bench_cfs_request_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("cfs_request_path");
    g.sample_size(20);
    let machine = Machine::boot_synchronized(MachineConfig::nas_ipsc860());
    g.bench_function("write_1k_requests", |b| {
        b.iter(|| {
            let mut cfs = Cfs::new(CfsConfig::nas());
            let o = cfs
                .open(1, "bench", Access::Write, IoMode::Independent, 0, false)
                .expect("open");
            let mut t = SimTime::from_secs(1);
            for _ in 0..1000 {
                let out = cfs.write(&machine, o.session, 0, 1024, t).expect("write");
                t = out.completion;
            }
            black_box(cfs.stats())
        })
    });
    g.bench_function("interleaved_read_1k_requests", |b| {
        // Pre-stage once per iteration batch is too costly; stage inside.
        b.iter(|| {
            let mut cfs = Cfs::new(CfsConfig::nas());
            let o = cfs
                .open(1, "bench", Access::Write, IoMode::Independent, 0, false)
                .expect("open");
            cfs.write(&machine, o.session, 0, 1 << 20, SimTime::from_secs(1))
                .expect("stage");
            cfs.close(o.session, 0).expect("close");
            let mut session = 0;
            for n in 0..8 {
                session = cfs
                    .open(2, "bench", Access::Read, IoMode::Independent, n, false)
                    .expect("open")
                    .session;
            }
            let t = SimTime::from_secs(2);
            for k in 0..125u64 {
                for n in 0..8u16 {
                    let offset = (k * 8 + u64::from(n)) * 512;
                    cfs.seek(session, n, offset).expect("seek");
                    cfs.read(&machine, session, n, 512, t).expect("read");
                }
            }
            black_box(cfs.stats())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_caches, bench_machine, bench_cfs_request_path);
criterion_main!(benches);
