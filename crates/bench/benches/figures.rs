//! One bench per characterization table/figure: how fast each §4 analysis
//! runs over a generated trace. (The `repro` binary prints the actual
//! figures; these measure the machinery that regenerates them.)

use charisma_core::sequential::Metric;
use charisma_core::{census, intervals, jobs, modes, requests, sequential, sharing};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    // One pipeline for all benches: generation dominates, do it once.
    let p = charisma_bench::run_pipeline(0.02, 4994);
    let events = &p.events;
    let chars = &p.report.chars;

    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig1_concurrency_profile", |b| {
        b.iter(|| black_box(jobs::concurrency_profile(black_box(chars))))
    });
    g.bench_function("fig2_node_usage", |b| {
        b.iter(|| black_box(jobs::node_usage(black_box(chars))))
    });
    g.bench_function("table1_files_per_job", |b| {
        b.iter(|| black_box(jobs::files_per_job(black_box(chars))))
    });
    g.bench_function("fig3_size_cdf", |b| {
        b.iter(|| black_box(census::size_cdf(black_box(chars))))
    });
    g.bench_function("census", |b| {
        b.iter(|| black_box(census::census(black_box(chars))))
    });
    g.bench_function("fig4_request_sizes", |b| {
        b.iter(|| black_box(requests::request_sizes(black_box(events))))
    });
    g.bench_function("fig5_sequential_cdfs", |b| {
        b.iter(|| black_box(sequential::cdfs(black_box(chars), Metric::Sequential)))
    });
    g.bench_function("fig6_consecutive_cdfs", |b| {
        b.iter(|| black_box(sequential::cdfs(black_box(chars), Metric::Consecutive)))
    });
    g.bench_function("table2_intervals", |b| {
        b.iter(|| black_box(intervals::interval_table(black_box(chars))))
    });
    g.bench_function("table3_request_sizes", |b| {
        b.iter(|| black_box(intervals::request_size_table(black_box(chars))))
    });
    g.bench_function("modes_usage", |b| {
        b.iter(|| black_box(modes::mode_usage(black_box(chars))))
    });
    g.bench_function("fig7_sharing_cdfs", |b| {
        b.iter(|| black_box(sharing::sharing_cdfs(black_box(chars))))
    });
    g.bench_function("full_analyze_pass", |b| {
        b.iter(|| black_box(charisma_core::analyze(black_box(events))))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
