//! Benches for the observability layer: the per-event instrumentation
//! cost the simulation pays (counter/gauge/histogram updates) and the
//! per-run cost of snapshotting, merging, and rendering the metrics.
//!
//! The hot-path numbers are the ones that matter: every simulated event
//! touches a handful of these cells, so a regression here is a regression
//! in everything.

use charisma_obs::{MetricsRegistry, MetricsSnapshot};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const UPDATES: u64 = 10_000;

fn bench_hot_path(c: &mut Criterion) {
    let registry = MetricsRegistry::new();
    let counter = registry.counter("bench.counter");
    let gauge = registry.gauge("bench.gauge");
    let histogram = registry.histogram("bench.histogram");

    let mut g = c.benchmark_group("obs_hot_path");
    g.sample_size(10);
    g.throughput(Throughput::Elements(UPDATES));

    g.bench_function("counter_inc_10k", |b| {
        b.iter(|| {
            for _ in 0..UPDATES {
                counter.inc();
            }
        })
    });
    g.bench_function("gauge_record_max_10k", |b| {
        b.iter(|| {
            for v in 0..UPDATES {
                gauge.record_max(black_box(v));
            }
        })
    });
    g.bench_function("histogram_record_10k", |b| {
        b.iter(|| {
            for v in 0..UPDATES {
                histogram.record(black_box(v.wrapping_mul(0x9e37_79b9)));
            }
        })
    });
    g.finish();
}

/// A registry shaped like one real shard's: a few dozen named series with
/// populated histograms.
fn populated_registry() -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    for i in 0..32 {
        registry
            .counter(&format!("bench.counter.{i:02}"))
            .add(i * 1000 + 7);
        registry
            .gauge(&format!("bench.gauge.{i:02}"))
            .record_max(i * 31);
    }
    for i in 0..8 {
        let h = registry.histogram(&format!("bench.histogram.{i}"));
        for v in 0..1000u64 {
            h.record(v.wrapping_mul(6_364_136_223_846_793_005));
        }
    }
    registry
}

fn bench_snapshot(c: &mut Criterion) {
    let registry = populated_registry();
    let snap = registry.snapshot();
    let shard = registry.snapshot();

    let mut g = c.benchmark_group("obs_snapshot");
    g.sample_size(10);

    g.bench_function("registry_snapshot", |b| {
        b.iter(|| black_box(registry.snapshot()))
    });
    g.bench_function("merge_16_shards", |b| {
        b.iter(|| {
            let mut merged = MetricsSnapshot::new();
            for _ in 0..16 {
                merged.merge(black_box(&shard));
            }
            black_box(merged)
        })
    });
    g.bench_function("to_core_json", |b| {
        b.iter(|| black_box(snap.to_core_json()))
    });
    g.finish();
}

criterion_group!(benches, bench_hot_path, bench_snapshot);
criterion_main!(benches);
