//! Property tests for the columnar archive.
//!
//! Three layers, three promises:
//! * every column codec is a bijection on arbitrary value sequences;
//! * the archive round-trips arbitrary record streams exactly (and the
//!   bytes are canonical — re-encoding yields the same bytes);
//! * zone-map pruning is *conservative*: for an arbitrary query over an
//!   arbitrary stream, the pruned parallel scan returns exactly the
//!   records a plain filter over the full stream returns — pruning can
//!   skip work but never drop a match.

use charisma_ipsc::SimTime;
use charisma_store::{
    decode_delta_column, decode_delta_column_into, decode_dict_column, decode_varint_column,
    decode_varint_column_into, encode_delta_column, encode_dict_column, encode_varint_column,
    unzigzag, write_archive, zigzag, Archive, ArchiveMeta, ArchiveReader, OpClass, OpSet, Query,
    SealedSegment, SegmentBuilder,
};
use charisma_trace::record::{AccessKind, EventBody};
use charisma_trace::OrderedEvent;
use proptest::prelude::*;

/// Bodies with deliberately small id alphabets so queries actually hit.
fn arb_body() -> impl Strategy<Value = EventBody> {
    prop_oneof![
        (0u32..12, any::<u16>(), any::<bool>())
            .prop_map(|(job, nodes, traced)| EventBody::JobStart { job, nodes, traced }),
        (0u32..12).prop_map(|job| EventBody::JobEnd { job }),
        (0u32..12, 0u32..24, 0u32..40, 0u8..4, 0u8..3, any::<bool>()).prop_map(
            |(job, file, session, mode, acc, created)| EventBody::Open {
                job,
                file,
                session,
                mode,
                access: AccessKind::from_code(acc).expect("0..3"),
                created,
            }
        ),
        (0u32..40, any::<u64>()).prop_map(|(session, size)| EventBody::Close { session, size }),
        (0u32..40, any::<u64>(), any::<u32>()).prop_map(|(session, offset, bytes)| {
            EventBody::Read {
                session,
                offset,
                bytes,
            }
        }),
        (0u32..40, any::<u64>(), any::<u32>()).prop_map(|(session, offset, bytes)| {
            EventBody::Write {
                session,
                offset,
                bytes,
            }
        }),
        (0u32..12, 0u32..24).prop_map(|(job, file)| EventBody::Delete { job, file }),
    ]
}

fn arb_stream() -> impl Strategy<Value = Vec<OrderedEvent>> {
    proptest::collection::vec((0u64..100_000, 0u16..8, arb_body()), 0..600).prop_map(|raw| {
        let mut events: Vec<OrderedEvent> = raw
            .into_iter()
            .map(|(t, node, body)| OrderedEvent {
                time: SimTime::from_micros(t),
                node,
                body,
            })
            .collect();
        // Archives are written from the merged stream, which is ordered.
        events.sort_by_key(|e| (e.time, e.node));
        events
    })
}

/// A stream repeating one body: every segment's op (and often mode/flags)
/// dictionary is constant, exercising the index-elision decode path.
fn arb_uniform_stream() -> impl Strategy<Value = Vec<OrderedEvent>> {
    (arb_body(), 0usize..400).prop_map(|(body, n)| {
        (0..n)
            .map(|i| OrderedEvent {
                time: SimTime::from_micros(i as u64 * 5),
                node: (i % 4) as u16,
                body,
            })
            .collect()
    })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        proptest::option::of((0u64..100_000, 0u64..100_000)),
        proptest::option::of(proptest::collection::vec(0u32..14, 0..4)),
        proptest::option::of(proptest::collection::vec(0u32..26, 0..4)),
        proptest::option::of(proptest::collection::vec(0u16..9, 0..3)),
        proptest::option::of(0u8..128),
    )
        .prop_map(|(time, jobs, files, nodes, ops)| {
            let mut q = Query::all();
            if let Some((a, b)) = time {
                q = q.time_window(
                    SimTime::from_micros(a.min(b)),
                    SimTime::from_micros(a.max(b)),
                );
            }
            // Exercise both the set predicates and the single-element
            // wrappers (a one-member set goes through the wrapper).
            if let Some(jobs) = jobs {
                q = match jobs.as_slice() {
                    [one] => q.job(*one),
                    set => q.jobs(set),
                };
            }
            if let Some(files) = files {
                q = match files.as_slice() {
                    [one] => q.file(*one),
                    set => q.files(set),
                };
            }
            if let Some(nodes) = nodes {
                q = match nodes.as_slice() {
                    [one] => q.node(*one),
                    set => q.nodes(set),
                };
            }
            if let Some(bits) = ops {
                let mut set = OpSet::empty();
                for (bit, op) in [
                    OpClass::JobStart,
                    OpClass::JobEnd,
                    OpClass::Open,
                    OpClass::Close,
                    OpClass::Read,
                    OpClass::Write,
                    OpClass::Delete,
                ]
                .into_iter()
                .enumerate()
                {
                    if bits & (1 << bit) != 0 {
                        set = set.with(op);
                    }
                }
                q = q.ops(set);
            }
            q
        })
}

const META: ArchiveMeta = ArchiveMeta {
    seed: 4994,
    scale: 0.05,
};

proptest! {
    /// Varint columns are a bijection on arbitrary u64 sequences.
    #[test]
    fn varint_column_round_trips(values in proptest::collection::vec(any::<u64>(), 0..200)) {
        let mut out = Vec::new();
        encode_varint_column(&values, &mut out);
        let mut buf = out.as_slice();
        prop_assert_eq!(decode_varint_column(&mut buf, values.len()).unwrap(), values);
        prop_assert!(buf.is_empty(), "no trailing bytes");
    }

    /// Delta columns are a bijection even on unsorted, wrapping sequences.
    #[test]
    fn delta_column_round_trips(values in proptest::collection::vec(any::<u64>(), 0..200)) {
        let mut out = Vec::new();
        encode_delta_column(&values, &mut out);
        let mut buf = out.as_slice();
        prop_assert_eq!(decode_delta_column(&mut buf, values.len()).unwrap(), values);
        prop_assert!(buf.is_empty());
    }

    /// Zigzag is a bijection on all of i64.
    #[test]
    fn zigzag_round_trips(v in any::<i64>()) {
        prop_assert_eq!(unzigzag(zigzag(v)), v);
    }

    /// Dictionary columns are a bijection on arbitrary byte sequences.
    #[test]
    fn dict_column_round_trips(values in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut out = Vec::new();
        encode_dict_column(&values, &mut out);
        let mut buf = out.as_slice();
        prop_assert_eq!(decode_dict_column(&mut buf, values.len()).unwrap(), values);
        prop_assert!(buf.is_empty());
    }

    /// An archive reproduces any record stream exactly, and re-encoding
    /// the stream reproduces the bytes (canonical form).
    #[test]
    fn archive_round_trips_any_stream(events in arb_stream()) {
        let bytes = write_archive(&events, META);
        let archive = Archive::from_bytes(bytes.clone()).unwrap();
        prop_assert_eq!(archive.rows(), events.len() as u64);
        prop_assert_eq!(archive.events().unwrap(), events.clone());
        prop_assert_eq!(write_archive(&events, META), bytes);
    }

    /// Pruned, parallel scans agree exactly with a plain filter of the
    /// full stream — zone maps never drop a matching record.
    #[test]
    fn pruning_never_drops_a_match(events in arb_stream(), q in arb_query(), workers in 1usize..5) {
        let archive = Archive::from_bytes(write_archive(&events, META)).unwrap();
        let got = archive.query(q.clone()).workers(workers).events().unwrap();
        let want: Vec<OrderedEvent> =
            events.iter().filter(|e| q.matches(e)).copied().collect();
        prop_assert_eq!(got, want);
    }

    /// The `_into` decoders (the batched u64-probe / prefix-sum loops
    /// behind the predicate-first scan) append exactly what the
    /// allocating decoders return, even onto a non-empty buffer — over
    /// both one-byte-dominated and multi-byte varint mixes.
    #[test]
    fn batched_decode_into_matches_the_allocating_decoders(
        values in prop_oneof![
            proptest::collection::vec(0u64..128, 0..300),
            proptest::collection::vec(any::<u64>(), 0..300),
        ],
        prefix in proptest::collection::vec(any::<u64>(), 0..5),
    ) {
        let mut enc = Vec::new();
        encode_varint_column(&values, &mut enc);
        let mut out = prefix.clone();
        let mut buf = enc.as_slice();
        decode_varint_column_into(&mut buf, values.len(), &mut out).unwrap();
        prop_assert!(buf.is_empty());
        prop_assert_eq!(&out[prefix.len()..], values.as_slice());

        let mut enc = Vec::new();
        encode_delta_column(&values, &mut enc);
        let mut out = prefix.clone();
        let mut buf = enc.as_slice();
        decode_delta_column_into(&mut buf, values.len(), &mut out).unwrap();
        prop_assert!(buf.is_empty());
        prop_assert_eq!(&out[prefix.len()..], values.as_slice());
    }

    /// The late-materialized scan is exactly a filter for arbitrary
    /// queries, worker counts, and *segment boundaries* — down to
    /// one-row segments — including uniform streams (constant-column
    /// dictionary elision) and the guaranteed-empty selection.
    #[test]
    fn late_materialized_scan_is_a_filter_across_segment_boundaries(
        events in prop_oneof![arb_stream(), arb_uniform_stream()],
        seg_rows in 1usize..80,
        q in arb_query(),
        workers in 1usize..5,
    ) {
        let segments: Vec<SealedSegment> = events
            .chunks(seg_rows)
            .map(|chunk| {
                let mut b = SegmentBuilder::default();
                for e in chunk {
                    b.push(e);
                }
                b.seal()
            })
            .collect();
        let reader = ArchiveReader::new(META, segments);
        let got = reader.query(q.clone()).workers(workers).events().unwrap();
        let want: Vec<OrderedEvent> =
            events.iter().filter(|e| q.matches(e)).copied().collect();
        prop_assert_eq!(got, want);

        // Empty-selection edge: an empty job set matches nothing, so the
        // predicate phase must reject every row and the materialize
        // phase must never run — on every segment geometry.
        let empty = reader.query(q.jobs(&[])).workers(workers).events().unwrap();
        prop_assert!(empty.is_empty());
    }
}
