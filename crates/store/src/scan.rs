//! Predicate-first segment scan: decode what the query asks about,
//! materialize only what survives.
//!
//! The original read path decoded all ten columns of every admitted
//! segment and then filtered row-by-row — a two-predicate query paid the
//! full ten-column decode for every row it was about to throw away. This
//! module restructures the per-segment scan into two phases over the same
//! length-prefixed column layout (the *format* is untouched; canonical
//! bytes stay canonical):
//!
//! 1. **Predicate phase** — decode only the columns the [`Query`]'s
//!    predicates reference (time, node, op, job, file; the op column also
//!    rides along with job/file predicates because those predicates are
//!    op-conditional) and evaluate them into a [`RowSelection`] bitmap.
//! 2. **Materialize phase** — decode the remaining columns just far
//!    enough to cover the last selected row, then build events for the
//!    selected rows alone, skipping unselected runs a 64-row word at a
//!    time via the bitmap.
//!
//! Both phases run the batched decoders in [`crate::codec`]
//! (u64-at-a-time varint probing, chunked delta prefix sums). A query
//! with no predicates takes the same machinery with an all-ones
//! selection, so the full decode is the identity case of the scan, not a
//! separate code path.
//!
//! Partial decode changes *when* corruption is observed, not whether the
//! structure is validated: every scanned segment still has its row count
//! and all ten column frames checked ([`SegmentColumns::parse`]), but a
//! corrupt cell in a row no selected query ever materializes is not an
//! error — exactly as a pruned segment's cells never were.

use bytes::Buf;
use charisma_trace::OrderedEvent;

use crate::codec::{decode_delta_column_into, decode_dict_column, decode_varint_column_into};
use crate::query::Query;
use crate::segment::{event_from_row, Row, COLUMN_COUNT};
use crate::StoreError;

/// Fixed column order within a segment blob (see the schema table in
/// [`crate::segment`]).
const COL_TIME: usize = 0;
const COL_NODE: usize = 1;
const COL_OP: usize = 2;
const COL_JOB: usize = 3;
const COL_FILE: usize = 4;
const COL_SESSION: usize = 5;
const COL_MODE: usize = 6;
const COL_FLAGS: usize = 7;
const COL_OFFSET: usize = 8;
const COL_SIZE: usize = 9;

/// A parsed segment frame: the row count plus one borrowed byte slice per
/// column. Parsing validates the segment's *structure* — row count
/// agreement with the index, ten well-formed length prefixes, no trailing
/// bytes — without decoding a single value, which is what makes partial
/// decode safe to offer.
pub(crate) struct SegmentColumns<'a> {
    cols: [&'a [u8]; COLUMN_COUNT],
    rows: usize,
}

impl<'a> SegmentColumns<'a> {
    pub(crate) fn parse(mut buf: &'a [u8], expected_rows: u32) -> Result<Self, StoreError> {
        let n = buf
            .try_get_varint_u64()
            .ok_or(StoreError::Corrupt("truncated row count"))?;
        if n != u64::from(expected_rows) {
            return Err(StoreError::Corrupt(
                "segment row count disagrees with index",
            ));
        }
        let mut cols = [&[] as &[u8]; COLUMN_COUNT];
        for col in &mut cols {
            *col = take_column(&mut buf)?;
        }
        if !buf.is_empty() {
            return Err(StoreError::Corrupt("trailing bytes in segment"));
        }
        Ok(SegmentColumns {
            cols,
            rows: expected_rows as usize,
        })
    }

    /// Rows in the segment.
    pub(crate) fn rows(&self) -> usize {
        self.rows
    }

    /// Decode the first `upto` values of a varint or delta u64 column.
    /// A full decode (`upto == rows`) also enforces the per-column
    /// trailing-bytes check; a partial decode cannot (the tail is
    /// legitimately unread).
    fn u64s(&self, idx: usize, delta: bool, upto: usize) -> Result<Vec<u64>, StoreError> {
        let mut col = self.cols[idx];
        let mut values = Vec::new();
        if delta {
            decode_delta_column_into(&mut col, upto, &mut values)?;
        } else {
            decode_varint_column_into(&mut col, upto, &mut values)?;
        }
        if upto == self.rows && !col.is_empty() {
            return Err(StoreError::Corrupt("trailing bytes in column"));
        }
        Ok(values)
    }

    /// Decode the first `upto` values of a dictionary column. Constant
    /// columns (one-entry dictionary, indices elided) materialize `upto`
    /// copies without reading any index bytes at all.
    fn u8s(&self, idx: usize, upto: usize) -> Result<Vec<u8>, StoreError> {
        let mut col = self.cols[idx];
        let values = decode_dict_column(&mut col, upto)?;
        if upto == self.rows && !col.is_empty() {
            return Err(StoreError::Corrupt("trailing bytes in column"));
        }
        Ok(values)
    }
}

/// Borrow one length-prefixed column out of `buf`.
fn take_column<'a>(buf: &mut &'a [u8]) -> Result<&'a [u8], StoreError> {
    let len = buf
        .try_get_varint_u64()
        .ok_or(StoreError::Corrupt("truncated column length"))?;
    let len = usize::try_from(len).map_err(|_| StoreError::Corrupt("column length overflow"))?;
    if buf.remaining() < len {
        return Err(StoreError::Corrupt("column extends past segment"));
    }
    let (col, rest) = buf.split_at(len);
    *buf = rest;
    Ok(col)
}

/// A per-segment row-selection bitmap: which rows survived the predicate
/// phase. One bit per row, packed into u64 words so the materialize phase
/// can skip 64 unselected rows with a single zero-word test.
pub(crate) struct RowSelection {
    words: Vec<u64>,
    selected: usize,
    last: Option<usize>,
}

impl RowSelection {
    pub(crate) fn empty(rows: usize) -> Self {
        RowSelection {
            words: vec![0; rows.div_ceil(64)],
            selected: 0,
            last: None,
        }
    }

    /// Mark row `i` selected. Rows must be selected in ascending order
    /// (the predicate phase walks rows forward), which keeps `last` a
    /// plain assignment.
    pub(crate) fn select(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
        self.selected += 1;
        self.last = Some(i);
    }

    /// Selected row count.
    pub(crate) fn count(&self) -> usize {
        self.selected
    }

    /// Highest selected row index, if any row is selected.
    pub(crate) fn last(&self) -> Option<usize> {
        self.last
    }

    /// Iterate the selected row indices in ascending order, skipping
    /// all-zero words wholesale.
    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0)
            .flat_map(|(wi, &w)| {
                let mut bits = w;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + bit)
                })
            })
    }
}

/// What one segment scan produced: the matching events plus the effort
/// accounting the `store.cols_decoded` / `store.rows_skipped_late`
/// counters aggregate.
pub(crate) struct SegmentScan {
    /// Matching events, in row order.
    pub(crate) events: Vec<OrderedEvent>,
    /// Column *values* decoded (cells). A full-decode scan charges
    /// `10 × rows`; dividing by rows scanned gives the average columns
    /// touched per row.
    pub(crate) values_decoded: u64,
    /// Rows in the segment the materialize phase never built an event
    /// for — the late-materialization win on top of segment pruning.
    pub(crate) rows_skipped: u64,
}

/// Scan one segment blob under `query`: predicate-column decode into a
/// [`RowSelection`], then late materialization of the survivors.
pub(crate) fn scan_segment(
    buf: &[u8],
    expected_rows: u32,
    query: &Query,
) -> Result<SegmentScan, StoreError> {
    let cols = SegmentColumns::parse(buf, expected_rows)?;
    let rows = cols.rows();

    // Phase 1: decode exactly the predicate columns and evaluate the
    // selection. Column-wise evaluation is short-circuit in column order:
    // a row rejected by the time window never has its node or op looked
    // at, but the *decode* is whole-column (that is what the batched
    // loops want).
    let time_pred = query.time_pred();
    let nodes_pred = query.nodes_pred();
    let ops_pred = query.ops_pred();
    let jobs_pred = query.jobs_pred();
    let files_pred = query.files_pred();
    // Job/file predicates match only rows whose op *names* a job or file,
    // so they pull the op column into the predicate set.
    let need_op = ops_pred.is_some() || jobs_pred.is_some() || files_pred.is_some();

    let mut values_decoded = 0u64;
    let mut decode_full_u64 = |idx: usize, delta: bool| -> Result<Vec<u64>, StoreError> {
        values_decoded += rows as u64;
        cols.u64s(idx, delta, rows)
    };

    let mut times = time_pred
        .map(|_| decode_full_u64(COL_TIME, true))
        .transpose()?;
    let mut nodes = nodes_pred
        .map(|_| decode_full_u64(COL_NODE, false))
        .transpose()?;
    let mut jobs = jobs_pred
        .map(|_| decode_full_u64(COL_JOB, false))
        .transpose()?;
    let mut files = files_pred
        .map(|_| decode_full_u64(COL_FILE, false))
        .transpose()?;
    let mut ops = if need_op {
        values_decoded += rows as u64;
        Some(cols.u8s(COL_OP, rows)?)
    } else {
        None
    };

    let mut selection = RowSelection::empty(rows);
    for i in 0..rows {
        if let (Some((from, to)), Some(times)) = (time_pred, &times) {
            let t = times[i];
            if t < from || t > to {
                continue;
            }
        }
        if let (Some(want), Some(nodes)) = (nodes_pred, &nodes) {
            if !want.iter().any(|&n| u64::from(n) == nodes[i]) {
                continue;
            }
        }
        let op = ops.as_ref().map(|ops| ops[i]);
        if let (Some(set), Some(op)) = (ops_pred, op) {
            // An out-of-range tag cannot be in any op set; it only
            // becomes a decode error if the row is otherwise selected
            // and materialized.
            if !(1..=7).contains(&op) || !set.intersects_bits(1 << (op - 1)) {
                continue;
            }
        }
        if let (Some(want), Some(jobs)) = (jobs_pred, &jobs) {
            // Rows name a job only for JobStart/JobEnd/Open/Delete.
            let names_job = matches!(op, Some(1 | 2 | 3 | 7));
            if !names_job || !want.iter().any(|&j| u64::from(j) == jobs[i]) {
                continue;
            }
        }
        if let (Some(want), Some(files)) = (files_pred, &files) {
            // Rows name a file only for Open/Delete.
            let names_file = matches!(op, Some(3 | 7));
            if !names_file || !want.iter().any(|&f| u64::from(f) == files[i]) {
                continue;
            }
        }
        selection.select(i);
    }

    let matched = selection.count();
    if matched == 0 {
        return Ok(SegmentScan {
            events: Vec::new(),
            values_decoded,
            rows_skipped: rows as u64,
        });
    }

    // Phase 2: late materialization. Decode every column the predicate
    // phase did not touch, but only up to the last selected row — the
    // tail beyond it is never read.
    let upto = selection.last().map_or(0, |i| i + 1);
    let mut materialize_u64 =
        |slot: &mut Option<Vec<u64>>, idx: usize, delta: bool| -> Result<(), StoreError> {
            if slot.is_none() {
                values_decoded += upto as u64;
                *slot = Some(cols.u64s(idx, delta, upto)?);
            }
            Ok(())
        };
    materialize_u64(&mut times, COL_TIME, true)?;
    materialize_u64(&mut nodes, COL_NODE, false)?;
    materialize_u64(&mut jobs, COL_JOB, false)?;
    materialize_u64(&mut files, COL_FILE, false)?;
    let mut sessions = None;
    materialize_u64(&mut sessions, COL_SESSION, false)?;
    let mut offsets = None;
    materialize_u64(&mut offsets, COL_OFFSET, true)?;
    let mut sizes = None;
    materialize_u64(&mut sizes, COL_SIZE, true)?;
    if ops.is_none() {
        values_decoded += upto as u64;
        ops = Some(cols.u8s(COL_OP, upto)?);
    }
    values_decoded += 2 * upto as u64;
    let modes = cols.u8s(COL_MODE, upto)?;
    let flags = cols.u8s(COL_FLAGS, upto)?;

    let (times, nodes, ops) = (unwrapped(&times), unwrapped(&nodes), unwrapped(&ops));
    let (jobs, files) = (unwrapped(&jobs), unwrapped(&files));
    let (sessions, offsets, sizes) = (unwrapped(&sessions), unwrapped(&offsets), unwrapped(&sizes));

    let mut events = Vec::with_capacity(matched);
    for i in selection.iter() {
        let row = Row {
            time: times[i],
            node: narrow(nodes[i], "node id exceeds u16")?,
            op: ops[i],
            job: narrow(jobs[i], "job id exceeds u32")?,
            file: narrow(files[i], "file id exceeds u32")?,
            session: narrow(sessions[i], "session id exceeds u32")?,
            mode: modes[i],
            flags: flags[i],
            offset: offsets[i],
            size: sizes[i],
        };
        events.push(event_from_row(&row)?);
    }
    Ok(SegmentScan {
        events,
        values_decoded,
        rows_skipped: rows as u64 - matched as u64,
    })
}

/// Every column is `Some` by the end of the materialize phase; keep the
/// accessor panic-free anyway (CH003) by mapping an impossible `None`
/// onto an empty slice, which would fail the indexed reads as a bug, not
/// a panic in release builds of callers.
fn unwrapped<T>(slot: &Option<Vec<T>>) -> &[T] {
    slot.as_deref().unwrap_or(&[])
}

fn narrow<T: TryFrom<u64>>(v: u64, what: &'static str) -> Result<T, StoreError> {
    T::try_from(v).map_err(|_| StoreError::Corrupt(what))
}

/// Decode one segment blob back into *all* its records, in row order —
/// the identity-query case of [`scan_segment`].
pub(crate) fn decode_segment(
    buf: &[u8],
    expected_rows: u32,
) -> Result<Vec<OrderedEvent>, StoreError> {
    Ok(scan_segment(buf, expected_rows, &Query::all())?.events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{OpClass, OpSet};
    use crate::segment::SegmentBuilder;
    use charisma_ipsc::SimTime;
    use charisma_trace::record::{AccessKind, EventBody};

    fn stream(n: u64) -> Vec<OrderedEvent> {
        (0..n)
            .map(|i| OrderedEvent {
                time: SimTime::from_micros(i * 3),
                node: (i % 5) as u16,
                body: match i % 3 {
                    0 => EventBody::Open {
                        job: (i / 10) as u32,
                        file: (i % 40) as u32,
                        session: i as u32,
                        mode: 1,
                        access: AccessKind::ReadWrite,
                        created: i % 2 == 0,
                    },
                    1 => EventBody::Read {
                        session: i as u32,
                        offset: i * 100,
                        bytes: 256,
                    },
                    _ => EventBody::Write {
                        session: i as u32,
                        offset: i * 100,
                        bytes: 512,
                    },
                },
            })
            .collect()
    }

    fn sealed(events: &[OrderedEvent]) -> crate::SealedSegment {
        let mut b = SegmentBuilder::default();
        for e in events {
            b.push(e);
        }
        b.seal()
    }

    #[test]
    fn selection_bitmap_iterates_in_order_and_skips_runs() {
        let mut sel = RowSelection::empty(300);
        assert_eq!(sel.count(), 0);
        assert_eq!(sel.last(), None);
        for i in [0usize, 63, 64, 200, 299] {
            sel.select(i);
        }
        assert_eq!(sel.count(), 5);
        assert_eq!(sel.last(), Some(299));
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![0, 63, 64, 200, 299]);
    }

    #[test]
    fn predicate_scan_agrees_with_full_decode_and_filter() {
        let events = stream(500);
        let seg = sealed(&events);
        let queries = [
            Query::all(),
            Query::all().time_window(SimTime::from_micros(90), SimTime::from_micros(600)),
            Query::all().node(2),
            Query::all().ops(OpSet::empty().with(OpClass::Open)),
            Query::all().job(7),
            Query::all().file(13),
            Query::all()
                .time_window(SimTime::from_micros(0), SimTime::from_micros(900))
                .ops(OpSet::requests()),
            Query::all().jobs(&[]),
        ];
        for q in queries {
            let scan = scan_segment(seg.bytes(), seg.rows(), &q).expect("scans");
            let want: Vec<OrderedEvent> = events.iter().filter(|e| q.matches(e)).copied().collect();
            assert_eq!(scan.events, want, "query {q:?}");
            assert_eq!(
                scan.rows_skipped,
                events.len() as u64 - want.len() as u64,
                "query {q:?}"
            );
        }
    }

    #[test]
    fn full_scan_charges_every_cell_and_pruned_scans_charge_fewer() {
        let events = stream(500);
        let seg = sealed(&events);
        let full = scan_segment(seg.bytes(), seg.rows(), &Query::all()).expect("scans");
        assert_eq!(full.values_decoded, 10 * 500);
        assert_eq!(full.rows_skipped, 0);

        // A time window covering the first 31 rows: 1 predicate column at
        // 500 values + 9 late columns at 31 values each.
        let q = Query::all().time_window(SimTime::from_micros(0), SimTime::from_micros(90));
        let narrow = scan_segment(seg.bytes(), seg.rows(), &q).expect("scans");
        assert_eq!(narrow.events.len(), 31);
        assert_eq!(narrow.values_decoded, 500 + 9 * 31);
        assert_eq!(narrow.rows_skipped, 500 - 31);
        assert!(narrow.values_decoded < full.values_decoded);
    }

    #[test]
    fn empty_selection_skips_materialization_entirely() {
        let events = stream(128);
        let seg = sealed(&events);
        let q = Query::all().time_window(
            SimTime::from_micros(1_000_000),
            SimTime::from_micros(u64::MAX),
        );
        let scan = scan_segment(seg.bytes(), seg.rows(), &q).expect("scans");
        assert!(scan.events.is_empty());
        assert_eq!(scan.values_decoded, 128, "only the time column");
        assert_eq!(scan.rows_skipped, 128);
    }

    #[test]
    fn structural_corruption_is_caught_even_when_pruning_rows() {
        let events = stream(64);
        let seg = sealed(&events);
        let q = Query::all().time_window(
            SimTime::from_micros(1_000_000),
            SimTime::from_micros(u64::MAX),
        );
        // Row-count disagreement and truncation fail even for a query
        // whose selection would be empty.
        assert!(scan_segment(seg.bytes(), seg.rows() + 1, &q).is_err());
        for cut in 0..seg.bytes().len() {
            assert!(
                scan_segment(&seg.bytes()[..cut], seg.rows(), &q).is_err(),
                "cut {cut}"
            );
        }
    }
}
