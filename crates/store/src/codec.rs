//! Column encoders: the three primitive encodings every archive column
//! uses.
//!
//! * [`encode_varint_column`] — one LEB128 varint per value; right for
//!   identifier columns (node, job, file, session) whose values are small
//!   but not ordered.
//! * [`encode_delta_column`] — zigzag-encoded wrapping deltas between
//!   successive values, each written as a varint; right for columns that
//!   are sorted or locally clustered (times, offsets, sizes), where the
//!   deltas are tiny even when the absolute values are not.
//! * [`encode_dict_column`] — a per-segment dictionary of the distinct
//!   byte values in first-appearance order, followed by one index byte per
//!   row (omitted entirely when the segment is constant); right for the
//!   op-tag, I/O-mode, and flags columns, which draw from single-digit
//!   alphabets.
//!
//! Every encoding is a pure function of the value sequence — no
//! timestamps, no randomness, no map iteration — which is what lets the
//! archive promise canonical bytes. Every decoder is total: corrupt input
//! yields [`StoreError`], never a panic.
//!
//! # Batched decode
//!
//! The decoders come in two shapes: the original `decode_*_column`
//! functions allocate and return a vector, and the `decode_*_column_into`
//! variants append into a caller-owned buffer. Both run the same batched
//! core: varints are probed a u64 window (eight bytes) at a time — when no
//! byte in the window carries a continuation bit, all eight are complete
//! one-byte varints and are emitted without per-value branching, which is
//! the common case for identifier columns and for the tiny zigzag deltas
//! of sorted time/offset columns. Delta columns decode their zigzag
//! varints first, then rebuild absolute values with a chunked wrapping
//! prefix sum over the decoded buffer. The predicate-first segment scan
//! (`scan` module) and the full decode share these exact loops.

use bytes::{Buf, BufMut};

use crate::StoreError;

/// Continuation-bit mask over an eight-byte varint probe window.
const VARINT_PROBE_MASK: u64 = 0x8080_8080_8080_8080;

/// Map a signed delta onto an unsigned varint-friendly value: small
/// magnitudes of either sign get small codes (0 → 0, -1 → 1, 1 → 2, ...).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// The inverse of [`zigzag`].
#[inline]
pub fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Append `values` as one varint each.
pub fn encode_varint_column(values: &[u64], out: &mut Vec<u8>) {
    for &v in values {
        out.put_varint_u64(v);
    }
}

/// Decode `n` varints written by [`encode_varint_column`].
pub fn decode_varint_column(buf: &mut &[u8], n: usize) -> Result<Vec<u64>, StoreError> {
    let mut values = Vec::with_capacity(n);
    decode_varint_column_into(buf, n, &mut values)?;
    Ok(values)
}

/// Append `n` varints from `buf` onto `out` — the batched core shared by
/// every varint-shaped decode.
///
/// The hot loop probes eight input bytes as one u64: if no byte in the
/// window has its continuation bit set, the window is eight complete
/// one-byte varints, emitted in one branch-light burst. Windows holding a
/// multi-byte varint fall back to the per-byte decoder for one value and
/// re-probe. Identifier columns and sorted-column deltas are dominated by
/// one-byte codes, so most of a segment decodes eight values per probe.
pub fn decode_varint_column_into(
    buf: &mut &[u8],
    n: usize,
    out: &mut Vec<u64>,
) -> Result<(), StoreError> {
    out.reserve(n);
    let mut remaining = n;
    while remaining >= 8 && buf.len() >= 8 {
        let window = [
            buf[0], buf[1], buf[2], buf[3], buf[4], buf[5], buf[6], buf[7],
        ];
        if u64::from_le_bytes(window) & VARINT_PROBE_MASK == 0 {
            for b in window {
                out.push(u64::from(b));
            }
            *buf = &buf[8..];
            remaining -= 8;
        } else {
            out.push(
                buf.try_get_varint_u64()
                    .ok_or(StoreError::Corrupt("truncated varint column"))?,
            );
            remaining -= 1;
        }
    }
    for _ in 0..remaining {
        out.push(
            buf.try_get_varint_u64()
                .ok_or(StoreError::Corrupt("truncated varint column"))?,
        );
    }
    Ok(())
}

/// Append `values` as zigzag varints of the wrapping delta from the
/// previous value (the first delta is taken from 0).
pub fn encode_delta_column(values: &[u64], out: &mut Vec<u8>) {
    let mut prev = 0u64;
    for &v in values {
        out.put_varint_u64(zigzag(v.wrapping_sub(prev) as i64));
        prev = v;
    }
}

/// Decode `n` values written by [`encode_delta_column`].
pub fn decode_delta_column(buf: &mut &[u8], n: usize) -> Result<Vec<u64>, StoreError> {
    let mut values = Vec::with_capacity(n);
    decode_delta_column_into(buf, n, &mut values)?;
    Ok(values)
}

/// Append `n` values written by [`encode_delta_column`] onto `out`.
///
/// Two batched passes over the same buffer region: the raw zigzag varints
/// decode through [`decode_varint_column_into`]'s u64-probe loop, then a
/// chunked wrapping prefix sum rewrites them in place into absolute
/// values — eight values per chunk with the running value kept in a
/// register, so the transform never re-reads what it just wrote.
pub fn decode_delta_column_into(
    buf: &mut &[u8],
    n: usize,
    out: &mut Vec<u64>,
) -> Result<(), StoreError> {
    let start = out.len();
    decode_varint_column_into(buf, n, out)
        .map_err(|_| StoreError::Corrupt("truncated delta column"))?;
    let mut prev = 0u64;
    let mut chunks = out[start..].chunks_exact_mut(8);
    for chunk in &mut chunks {
        for z in chunk {
            prev = prev.wrapping_add(unzigzag(*z) as u64);
            *z = prev;
        }
    }
    for z in chunks.into_remainder() {
        prev = prev.wrapping_add(unzigzag(*z) as u64);
        *z = prev;
    }
    Ok(())
}

/// Append `values` dictionary-encoded: distinct bytes in first-appearance
/// order, then one dictionary index per row. A constant column (dictionary
/// of one entry) stores no indices at all; an empty column stores only the
/// zero dictionary length.
pub fn encode_dict_column(values: &[u8], out: &mut Vec<u8>) {
    let mut dict: Vec<u8> = Vec::new();
    for &v in values {
        if !dict.contains(&v) {
            dict.push(v);
        }
    }
    out.put_varint_u64(dict.len() as u64);
    out.put_slice(&dict);
    if dict.len() > 1 {
        for &v in values {
            // Present by construction; fall back to 0 rather than panic.
            // The dictionary holds distinct u8 values, so the index always
            // fits a byte — try_from keeps that assumption checked.
            let idx = dict.iter().position(|&d| d == v).unwrap_or(0);
            out.put_u8(u8::try_from(idx).unwrap_or(0));
        }
    }
}

/// Decode `n` values written by [`encode_dict_column`].
pub fn decode_dict_column(buf: &mut &[u8], n: usize) -> Result<Vec<u8>, StoreError> {
    let dict_len = buf
        .try_get_varint_u64()
        .ok_or(StoreError::Corrupt("truncated dictionary length"))?;
    if dict_len > 256 {
        return Err(StoreError::Corrupt("dictionary larger than a byte index"));
    }
    let dict_len = dict_len as usize;
    let mut dict = vec![0u8; dict_len];
    buf.try_copy_to_slice(&mut dict)
        .ok_or(StoreError::Corrupt("truncated dictionary"))?;
    match dict_len {
        0 if n == 0 => Ok(Vec::new()),
        0 => Err(StoreError::Corrupt("empty dictionary for non-empty column")),
        1 => Ok(vec![dict[0]; n]),
        _ => {
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                let idx = buf
                    .try_get_u8()
                    .ok_or(StoreError::Corrupt("truncated dictionary indices"))?;
                let v = dict
                    .get(idx as usize)
                    .ok_or(StoreError::Corrupt("dictionary index out of range"))?;
                values.push(*v);
            }
            Ok(values)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_bijection_on_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 4994, -4994] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn varint_column_round_trips() {
        let values = [0u64, 1, 127, 128, u64::MAX, 4994];
        let mut out = Vec::new();
        encode_varint_column(&values, &mut out);
        let mut buf = out.as_slice();
        assert_eq!(
            decode_varint_column(&mut buf, values.len()).unwrap(),
            values
        );
        assert!(buf.is_empty());
    }

    #[test]
    fn delta_column_round_trips_and_compresses_sorted_data() {
        let sorted: Vec<u64> = (0..1000u64).map(|i| 1_000_000 + i * 3).collect();
        let mut out = Vec::new();
        encode_delta_column(&sorted, &mut out);
        assert!(
            out.len() < 1010,
            "sorted u64s should take ~1 byte each, got {}",
            out.len()
        );
        let mut buf = out.as_slice();
        assert_eq!(decode_delta_column(&mut buf, sorted.len()).unwrap(), sorted);

        // Wrapping deltas survive arbitrary jumps, including u64::MAX.
        let wild = [u64::MAX, 0, u64::MAX / 2, 1, u64::MAX];
        let mut out = Vec::new();
        encode_delta_column(&wild, &mut out);
        let mut buf = out.as_slice();
        assert_eq!(decode_delta_column(&mut buf, wild.len()).unwrap(), wild);
    }

    #[test]
    fn dict_column_round_trips_and_elides_constant_indices() {
        let constant = vec![5u8; 100];
        let mut out = Vec::new();
        encode_dict_column(&constant, &mut out);
        assert_eq!(out.len(), 2, "constant column stores only the dictionary");
        let mut buf = out.as_slice();
        assert_eq!(decode_dict_column(&mut buf, 100).unwrap(), constant);

        let mixed = [1u8, 3, 1, 7, 3, 3, 1];
        let mut out = Vec::new();
        encode_dict_column(&mixed, &mut out);
        let mut buf = out.as_slice();
        assert_eq!(decode_dict_column(&mut buf, mixed.len()).unwrap(), mixed);

        let empty: [u8; 0] = [];
        let mut out = Vec::new();
        encode_dict_column(&empty, &mut out);
        let mut buf = out.as_slice();
        assert!(decode_dict_column(&mut buf, 0).unwrap().is_empty());
    }

    #[test]
    fn corrupt_columns_error_instead_of_panicking() {
        let mut buf: &[u8] = &[0x80]; // truncated varint
        assert!(decode_varint_column(&mut buf, 1).is_err());
        let mut buf: &[u8] = &[];
        assert!(decode_delta_column(&mut buf, 1).is_err());
        let mut buf: &[u8] = &[2, 9]; // dict says 2 entries, only 1 present
        assert!(decode_dict_column(&mut buf, 1).is_err());
        let mut buf: &[u8] = &[2, 9, 8, 5]; // index 5 out of range
        assert!(decode_dict_column(&mut buf, 1).is_err());
        let mut buf: &[u8] = &[0]; // empty dict but a row to decode
        assert!(decode_dict_column(&mut buf, 1).is_err());
    }
}
