//! `store.*` observability: what the archive wrote and what queries
//! touched versus skipped.
//!
//! All handles are plain [`Counter`]s — pure functions of the archived
//! stream and the query, so they live in the deterministic metrics core
//! and are pinned by the `charisma-verify metrics` fixture. The write-side
//! counters are a function of the merged stream alone; the scan-side
//! counters (`segments_pruned` in particular) are the query engine's proof
//! of work: a predicate-pushdown query that prunes nothing is just an
//! expensive filter.

use charisma_obs::{Counter, MetricsRegistry};

/// Metric handles for one archive writer or query scan.
#[derive(Clone, Debug, Default)]
pub struct StoreMetrics {
    /// Segments encoded by the writer.
    pub segments_written: Counter,
    /// Rows (records) encoded by the writer.
    pub rows_written: Counter,
    /// Total archive bytes produced (header + segments + footer).
    pub bytes_written: Counter,
    /// Segments a query rejected from the zone map alone — never decoded.
    pub segments_pruned: Counter,
    /// Segments a query decoded and filtered row-by-row.
    pub segments_scanned: Counter,
    /// Rows decoded during scans.
    pub rows_scanned: Counter,
    /// Rows that satisfied the query predicate.
    pub rows_matched: Counter,
    /// Column values (cells) decoded during scans. A full-decode scan
    /// charges ten per row; `cols_decoded / rows_scanned` is the average
    /// column width the scan actually paid for.
    pub cols_decoded: Counter,
    /// Rows inside scanned segments that late materialization never built
    /// an event for — the win on top of `segments_pruned`.
    pub rows_skipped_late: Counter,
}

impl StoreMetrics {
    /// Handles registered under the `store.` prefix of `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        StoreMetrics {
            segments_written: registry.counter("store.segments_written"),
            rows_written: registry.counter("store.rows_written"),
            bytes_written: registry.counter("store.bytes_written"),
            segments_pruned: registry.counter("store.segments_pruned"),
            segments_scanned: registry.counter("store.segments_scanned"),
            rows_scanned: registry.counter("store.rows_scanned"),
            rows_matched: registry.counter("store.rows_matched"),
            cols_decoded: registry.counter("store.cols_decoded"),
            rows_skipped_late: registry.counter("store.rows_skipped_late"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_under_the_store_prefix() {
        let registry = MetricsRegistry::new();
        let m = StoreMetrics::register(&registry);
        m.segments_written.inc();
        m.rows_written.add(7);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["store.segments_written"], 1);
        assert_eq!(snap.counters["store.rows_written"], 7);
        assert_eq!(snap.counters["store.segments_pruned"], 0);
    }
}
