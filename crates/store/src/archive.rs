//! The on-disk archive: header, segment blobs, indexed footer.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────┐
//! │ magic "CHSTOR01"  version  seed  scale-bits              │  header
//! ├──────────────────────────────────────────────────────────┤
//! │ segment 0 (columnar blob)                                │
//! │ segment 1                                                │
//! │ ...                                                      │
//! ├──────────────────────────────────────────────────────────┤
//! │ zone-map directory (one fixed-width entry per segment)   │  footer
//! │ total row count                                          │
//! ├──────────────────────────────────────────────────────────┤
//! │ footer length (u64)   magic "CHSTOR01"                   │  tail
//! └──────────────────────────────────────────────────────────┘
//! ```
//!
//! The tail carries the footer length so a reader can locate the
//! directory without scanning segments, and repeats the magic so
//! truncation is detected before any parsing.
//!
//! **Canonical bytes.** The writer consumes the deterministic merged
//! stream serially, every encoding is a pure function of the record
//! sequence, and the header carries only provenance (seed, scale) — no
//! timestamps, hostnames, or worker counts. Same seed and scale therefore
//! produce a byte-identical archive on any machine and any `shards(n)`,
//! which is what lets `charisma-verify archive` pin the whole file to one
//! fixture hash.

use bytes::{Buf, BufMut, Bytes};
use charisma_ipsc::SimTime;
use charisma_trace::OrderedEvent;

use crate::metrics::StoreMetrics;
use crate::query::{Query, Scan};
use crate::sealed::{ArchiveReader, SealedSegment};
use crate::segment::{SegmentBuilder, ZoneMap, SEGMENT_ROWS};
use crate::StoreError;

/// Archive file magic, doubling as the version-0 marker of the container
/// (the header's own `version` field versions the column schema).
pub const MAGIC: &[u8; 8] = b"CHSTOR01";

/// Current column-schema version.
pub const VERSION: u32 = 1;

const HEADER_LEN: usize = 8 + 4 + 8 + 8;
const TAIL_LEN: usize = 8 + 8;

/// Provenance recorded in the archive header.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArchiveMeta {
    /// Generator seed the archived stream came from.
    pub seed: u64,
    /// Workload scale of the run.
    pub scale: f64,
}

/// Streaming archive writer: push the merged stream, then [`finish`].
///
/// [`finish`]: ArchiveWriter::finish
#[derive(Debug)]
pub struct ArchiveWriter {
    buf: Vec<u8>,
    seg: SegmentBuilder,
    zones: Vec<ZoneMap>,
    rows: u64,
    metrics: Option<StoreMetrics>,
}

impl ArchiveWriter {
    /// A writer for a stream with the given provenance.
    pub fn new(meta: ArchiveMeta) -> Self {
        let mut buf = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(meta.seed);
        buf.put_u64_le(meta.scale.to_bits());
        ArchiveWriter {
            buf,
            seg: SegmentBuilder::default(),
            zones: Vec::new(),
            rows: 0,
            metrics: None,
        }
    }

    /// Report writer throughput through `metrics` from now on.
    pub fn attach_metrics(&mut self, metrics: StoreMetrics) {
        self.metrics = Some(metrics);
    }

    /// Append one record. Records must arrive in merged stream order for
    /// the canonical-bytes guarantee (the writer does not re-sort).
    pub fn push(&mut self, e: &OrderedEvent) {
        self.seg.push(e);
        self.rows += 1;
        if self.seg.len() >= SEGMENT_ROWS {
            self.seal_segment();
        }
    }

    fn seal_segment(&mut self) {
        let seg = std::mem::take(&mut self.seg);
        let rows = seg.len() as u64;
        let zone = seg.finish(&mut self.buf);
        self.zones.push(zone);
        if let Some(m) = &self.metrics {
            m.segments_written.inc();
            m.rows_written.add(rows);
        }
    }

    /// Seal the final segment, append the footer, and return the complete
    /// canonical archive bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if !self.seg.is_empty() {
            self.seal_segment();
        }
        let footer_start = self.buf.len();
        self.buf.put_varint_u64(self.zones.len() as u64);
        for zone in &self.zones {
            zone.encode(&mut self.buf);
        }
        self.buf.put_u64_le(self.rows);
        let footer_len = (self.buf.len() - footer_start) as u64;
        self.buf.put_u64_le(footer_len);
        self.buf.put_slice(MAGIC);
        if let Some(m) = &self.metrics {
            m.bytes_written.add(self.buf.len() as u64);
        }
        self.buf
    }
}

/// Archive every record of `events`, returning the canonical bytes.
pub fn write_archive<'a, I>(events: I, meta: ArchiveMeta) -> Vec<u8>
where
    I: IntoIterator<Item = &'a OrderedEvent>,
{
    let mut w = ArchiveWriter::new(meta);
    for e in events {
        w.push(e);
    }
    w.finish()
}

/// An opened archive file: a thin wrapper over an [`ArchiveReader`].
///
/// Since the build/serve split, all read behavior lives in
/// [`ArchiveReader`]; `Archive` only adds the container parsing
/// (`from_bytes`/`open`) and remembers the file size. Opening parses the
/// header and footer, then slices one shared [`Bytes`] allocation into
/// per-segment [`SealedSegment`] handles — no segment bytes are copied,
/// and decoding stays lazy, per query, only for segments the zone maps
/// cannot rule out.
#[derive(Clone, Debug)]
pub struct Archive {
    reader: ArchiveReader,
    size_bytes: usize,
}

impl Archive {
    /// Parse an archive from its bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Archive, StoreError> {
        if bytes.len() < HEADER_LEN + TAIL_LEN {
            return Err(StoreError::Corrupt("archive shorter than header + tail"));
        }
        let mut head = bytes.as_slice();
        let mut magic = [0u8; 8];
        head.try_copy_to_slice(&mut magic)
            .ok_or(StoreError::Corrupt("unreadable header"))?;
        if &magic != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = head
            .try_get_u32_le()
            .ok_or(StoreError::Corrupt("unreadable version"))?;
        if version != VERSION {
            return Err(StoreError::BadVersion(version));
        }
        let seed = head
            .try_get_u64_le()
            .ok_or(StoreError::Corrupt("unreadable seed"))?;
        let scale_bits = head
            .try_get_u64_le()
            .ok_or(StoreError::Corrupt("unreadable scale"))?;

        let mut tail = &bytes[bytes.len() - TAIL_LEN..];
        let footer_len = tail
            .try_get_u64_le()
            .ok_or(StoreError::Corrupt("unreadable tail"))?;
        let mut tail_magic = [0u8; 8];
        tail.try_copy_to_slice(&mut tail_magic)
            .ok_or(StoreError::Corrupt("unreadable tail magic"))?;
        if &tail_magic != MAGIC {
            return Err(StoreError::Corrupt(
                "archive truncated (tail magic missing)",
            ));
        }
        let footer_len = usize::try_from(footer_len)
            .map_err(|_| StoreError::Corrupt("footer length overflow"))?;
        let footer_end = bytes.len() - TAIL_LEN;
        let footer_start = footer_end
            .checked_sub(footer_len)
            .filter(|&s| s >= HEADER_LEN)
            .ok_or(StoreError::Corrupt("footer length exceeds archive"))?;

        let mut footer = &bytes[footer_start..footer_end];
        let seg_count = footer
            .try_get_varint_u64()
            .ok_or(StoreError::Corrupt("truncated segment count"))?;
        let seg_count = usize::try_from(seg_count)
            .map_err(|_| StoreError::Corrupt("segment count overflow"))?;
        if footer.remaining() < seg_count.saturating_mul(ZoneMap::ENCODED_LEN) {
            return Err(StoreError::Corrupt("zone-map directory truncated"));
        }
        let mut zones = Vec::with_capacity(seg_count);
        for _ in 0..seg_count {
            let zone = ZoneMap::decode(&mut footer)?;
            let end = zone
                .offset
                .checked_add(zone.len)
                .ok_or(StoreError::Corrupt("segment range overflow"))?;
            if (zone.offset as usize) < HEADER_LEN || end as usize > footer_start {
                return Err(StoreError::Corrupt("segment range outside archive body"));
            }
            zones.push(zone);
        }
        let rows = footer
            .try_get_u64_le()
            .ok_or(StoreError::Corrupt("truncated row count"))?;
        if !footer.is_empty() {
            return Err(StoreError::Corrupt("trailing bytes in footer"));
        }
        if rows != zones.iter().map(|z| u64::from(z.rows)).sum::<u64>() {
            return Err(StoreError::Corrupt("row count disagrees with directory"));
        }
        // One shared allocation; each segment handle is a zero-copy slice
        // of it, so cloning the archive or its reader never copies bytes.
        let size_bytes = bytes.len();
        let shared = Bytes::from(bytes);
        let segments = zones
            .into_iter()
            .map(|zone| {
                let start = zone.offset as usize;
                let end = (zone.offset + zone.len) as usize;
                SealedSegment::from_parts(shared.slice(start..end), zone)
            })
            .collect();
        Ok(Archive {
            reader: ArchiveReader::new(
                ArchiveMeta {
                    seed,
                    scale: f64::from_bits(scale_bits),
                },
                segments,
            ),
            size_bytes,
        })
    }

    /// Read and parse an archive file.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Archive, StoreError> {
        let bytes = std::fs::read(path).map_err(StoreError::Io)?;
        Archive::from_bytes(bytes)
    }

    /// The read view this archive wraps. Use it to hand segments to a
    /// service, clone cheap read handles, or re-serialize via
    /// [`ArchiveReader::to_bytes`].
    pub fn reader(&self) -> &ArchiveReader {
        &self.reader
    }

    /// Unwrap into the underlying [`ArchiveReader`].
    pub fn into_reader(self) -> ArchiveReader {
        self.reader
    }

    /// Provenance recorded at write time.
    pub fn meta(&self) -> ArchiveMeta {
        self.reader.meta()
    }

    /// Total records archived.
    pub fn rows(&self) -> u64 {
        self.reader.rows()
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.reader.segment_count()
    }

    /// Total archive size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// The archived time span `(first, last)` from the zone maps alone,
    /// or `None` for an empty archive.
    pub fn time_span(&self) -> Option<(SimTime, SimTime)> {
        self.reader.time_span()
    }

    /// Begin a query over the archive. The returned [`Scan`] is a builder:
    /// set `.workers(n)` / `.attach_metrics(..)`, then consume it with
    /// `.events()`, `.report()`, or `.session_index()`.
    pub fn query(&self, query: Query) -> Scan<'_> {
        self.reader.query(query)
    }

    /// Decode every record (the identity query, serially) — delegates to
    /// [`ArchiveReader::events`], which itself runs the one scan path.
    pub fn events(&self) -> Result<Vec<OrderedEvent>, StoreError> {
        self.reader.events()
    }
}

impl ArchiveReader {
    /// Serialize the catalog into the canonical container format — the
    /// exact bytes [`ArchiveWriter`] would produce from the same records.
    /// This is the publication path of the serve layer: because sealed
    /// segments are immutable and the layout below is a pure function of
    /// the catalog, two readers over equal catalogs serialize to
    /// bit-identical bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let meta = self.meta();
        let mut buf = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(meta.seed);
        buf.put_u64_le(meta.scale.to_bits());
        let mut zones: Vec<ZoneMap> = Vec::with_capacity(self.segment_count());
        for seg in self.segments() {
            zones.push(seg.zone_at(buf.len() as u64));
            buf.put_slice(seg.bytes());
        }
        let footer_start = buf.len();
        buf.put_varint_u64(zones.len() as u64);
        for zone in &zones {
            zone.encode(&mut buf);
        }
        buf.put_u64_le(self.rows());
        let footer_len = (buf.len() - footer_start) as u64;
        buf.put_u64_le(footer_len);
        buf.put_slice(MAGIC);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_trace::record::EventBody;

    fn stream(n: u64) -> Vec<OrderedEvent> {
        (0..n)
            .map(|i| OrderedEvent {
                time: SimTime::from_micros(i * 10),
                node: (i % 64) as u16,
                body: EventBody::Read {
                    session: (i % 100) as u32,
                    offset: i * 512,
                    bytes: 512,
                },
            })
            .collect()
    }

    const META: ArchiveMeta = ArchiveMeta {
        seed: 4994,
        scale: 0.05,
    };

    #[test]
    fn archive_round_trips_across_segment_boundaries() {
        for n in [0u64, 1, 4095, 4096, 4097, 10_000] {
            let events = stream(n);
            let bytes = write_archive(&events, META);
            let archive = Archive::from_bytes(bytes).expect("parses");
            assert_eq!(archive.rows(), n);
            assert_eq!(
                archive.segments(),
                events.len().div_ceil(SEGMENT_ROWS),
                "n = {n}"
            );
            assert_eq!(archive.events().expect("decodes"), events);
            assert_eq!(archive.meta().seed, 4994);
            assert!((archive.meta().scale - 0.05).abs() < 1e-12);
        }
    }

    #[test]
    fn archive_bytes_are_canonical() {
        let events = stream(5000);
        assert_eq!(write_archive(&events, META), write_archive(&events, META));
    }

    #[test]
    fn writer_metrics_count_the_write() {
        use charisma_obs::MetricsRegistry;
        let registry = MetricsRegistry::new();
        let events = stream(5000);
        let mut w = ArchiveWriter::new(META);
        w.attach_metrics(StoreMetrics::register(&registry));
        for e in &events {
            w.push(e);
        }
        let bytes = w.finish();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["store.segments_written"], 2);
        assert_eq!(snap.counters["store.rows_written"], 5000);
        assert_eq!(snap.counters["store.bytes_written"], bytes.len() as u64);
    }

    #[test]
    fn time_span_comes_from_zone_maps() {
        let events = stream(100);
        let archive = Archive::from_bytes(write_archive(&events, META)).expect("parses");
        assert_eq!(
            archive.time_span(),
            Some((SimTime::ZERO, SimTime::from_micros(990)))
        );
        let empty = Archive::from_bytes(write_archive(&[], META)).expect("parses");
        assert_eq!(empty.time_span(), None);
    }

    #[test]
    fn corruption_is_detected_not_panicked_on() {
        let events = stream(100);
        let good = write_archive(&events, META);
        // Every truncation parses to an error or decodes to an error.
        for cut in 0..good.len() {
            let outcome = Archive::from_bytes(good[..cut].to_vec()).and_then(|a| a.events());
            assert!(outcome.is_err(), "truncation at {cut} went unnoticed");
        }
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            Archive::from_bytes(bad),
            Err(StoreError::BadMagic)
        ));
        // Future version.
        let mut bad = good.clone();
        bad[8] = 0xee;
        assert!(matches!(
            Archive::from_bytes(bad),
            Err(StoreError::BadVersion(_))
        ));
    }

    #[test]
    fn open_reads_files() {
        let events = stream(100);
        let bytes = write_archive(&events, META);
        let dir = std::env::temp_dir().join("charisma-store-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("roundtrip.chst");
        std::fs::write(&path, &bytes).expect("write");
        let archive = Archive::open(&path).expect("opens");
        assert_eq!(archive.events().expect("decodes"), events);
        assert!(matches!(
            Archive::open(dir.join("missing.chst")),
            Err(StoreError::Io(_))
        ));
    }
}
