//! Predicates, zone-map pruning, and the parallel segment scan.
//!
//! A [`Query`] is a conjunction of optional predicates — time window,
//! job set, file set, node set, op class. Running one compiles the
//! predicates twice:
//!
//! 1. **Segment pruning** — [`Query::admits`] asks each zone map whether
//!    any row could match; segments that cannot are skipped without
//!    decoding a byte (`store.segments_pruned`).
//! 2. **Row filtering** — surviving segments are decoded and each record
//!    tested with [`Query::matches`].
//!
//! Pruning is conservative by construction: `admits` may keep a segment
//!    that holds no matching row, but it never rejects one that does (the
//!    property suite pins `pruned scan ≡ filtered full scan`).
//!
//! The scan parallelizes the way the generator does: `workers` threads
//! under [`std::thread::scope`] claim segment indices from an atomic
//! cursor. Matches are collected per segment and reassembled in segment
//! order, so the output — and anything computed from it — is byte-identical
//! for every worker count. [`Scan::report`] streams the matches into the
//! push-based [`charisma_core::Analyzer`]/`RequestSizes`, yielding the
//! paper's full characterization for any archive subset without
//! re-running the generator; [`Scan::session_index`] does the same for
//! the cache simulators' indexing pass.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use charisma_cachesim::SessionIndex;
use charisma_core::report::Report;
use charisma_core::requests::RequestSizes;
use charisma_core::Analyzer;
use charisma_ipsc::SimTime;
use charisma_trace::record::EventBody;
use charisma_trace::OrderedEvent;

use crate::metrics::StoreMetrics;
use crate::sealed::ArchiveReader;
use crate::segment::ZoneMap;
use crate::StoreError;

/// The record-type classes a query can select.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Job starts.
    JobStart,
    /// Job ends.
    JobEnd,
    /// Opens.
    Open,
    /// Closes.
    Close,
    /// Read requests.
    Read,
    /// Write requests.
    Write,
    /// Deletions.
    Delete,
}

impl OpClass {
    fn bit(self) -> u8 {
        // Bit `tag - 1`, matching the zone map's op bitset.
        match self {
            OpClass::JobStart => 1 << 0,
            OpClass::JobEnd => 1 << 1,
            OpClass::Open => 1 << 2,
            OpClass::Close => 1 << 3,
            OpClass::Read => 1 << 4,
            OpClass::Write => 1 << 5,
            OpClass::Delete => 1 << 6,
        }
    }
}

/// A set of [`OpClass`]es, stored as the zone map's bitset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct OpSet(u8);

impl OpSet {
    /// The empty set (matches nothing; prefer no op predicate at all for
    /// "everything").
    pub fn empty() -> Self {
        OpSet(0)
    }

    /// This set plus `op`.
    #[must_use]
    pub fn with(self, op: OpClass) -> Self {
        OpSet(self.0 | op.bit())
    }

    /// The I/O request classes: reads and writes.
    pub fn requests() -> Self {
        OpSet::empty().with(OpClass::Read).with(OpClass::Write)
    }

    /// Whether `op` is in the set.
    pub fn contains(self, op: OpClass) -> bool {
        self.0 & op.bit() != 0
    }

    pub(crate) fn intersects_bits(self, bits: u8) -> bool {
        self.0 & bits != 0
    }
}

/// A conjunction of predicates over archived records.
///
/// Every predicate is optional; [`Query::all`] matches everything. The
/// identity predicates are *set-valued* — [`Query::jobs`],
/// [`Query::files`], [`Query::nodes`] each accept a slice and match any
/// member; [`Query::job`]/[`Query::file`]/[`Query::node`] are thin
/// single-element wrappers kept for existing call sites. Job and file
/// predicates select records that *name* that identity — job records,
/// opens, and deletes — which is also exactly what the zone maps index;
/// request records tie to jobs only through their session, a join the
/// analyzer (not the store) owns.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Query {
    time: Option<(u64, u64)>,
    jobs: Option<Vec<u32>>,
    files: Option<Vec<u32>>,
    nodes: Option<Vec<u16>>,
    ops: Option<OpSet>,
}

impl Query {
    /// The match-everything query.
    pub fn all() -> Self {
        Query::default()
    }

    /// Restrict to records with `from <= time <= to` (inclusive).
    #[must_use]
    pub fn time_window(mut self, from: SimTime, to: SimTime) -> Self {
        self.time = Some((from.as_micros(), to.as_micros()));
        self
    }

    /// Restrict to records naming any job in `jobs`. Replaces any earlier
    /// job predicate; an empty slice matches nothing.
    #[must_use]
    pub fn jobs(mut self, jobs: &[u32]) -> Self {
        self.jobs = Some(jobs.to_vec());
        self
    }

    /// Restrict to records naming job `job` (single-element [`Query::jobs`]).
    #[must_use]
    pub fn job(self, job: u32) -> Self {
        self.jobs(&[job])
    }

    /// Restrict to records naming any file in `files`. Replaces any
    /// earlier file predicate; an empty slice matches nothing.
    #[must_use]
    pub fn files(mut self, files: &[u32]) -> Self {
        self.files = Some(files.to_vec());
        self
    }

    /// Restrict to records naming file `file` (single-element [`Query::files`]).
    #[must_use]
    pub fn file(self, file: u32) -> Self {
        self.files(&[file])
    }

    /// Restrict to records recorded on any node in `nodes`. Replaces any
    /// earlier node predicate; an empty slice matches nothing.
    #[must_use]
    pub fn nodes(mut self, nodes: &[u16]) -> Self {
        self.nodes = Some(nodes.to_vec());
        self
    }

    /// Restrict to records recorded on `node` (single-element [`Query::nodes`]).
    #[must_use]
    pub fn node(self, node: u16) -> Self {
        self.nodes(&[node])
    }

    /// Restrict to the record classes in `ops`.
    #[must_use]
    pub fn ops(mut self, ops: OpSet) -> Self {
        self.ops = Some(ops);
        self
    }

    /// Row-level predicate: does `e` satisfy every restriction?
    pub fn matches(&self, e: &OrderedEvent) -> bool {
        if let Some((from, to)) = self.time {
            let t = e.time.as_micros();
            if t < from || t > to {
                return false;
            }
        }
        if let Some(nodes) = &self.nodes {
            if !nodes.contains(&e.node) {
                return false;
            }
        }
        if let Some(ops) = self.ops {
            if !ops.intersects_bits(1 << (e.body.tag() - 1)) {
                return false;
            }
        }
        if let Some(jobs) = &self.jobs {
            let named = match e.body {
                EventBody::JobStart { job: j, .. }
                | EventBody::JobEnd { job: j }
                | EventBody::Open { job: j, .. }
                | EventBody::Delete { job: j, .. } => jobs.contains(&j),
                _ => false,
            };
            if !named {
                return false;
            }
        }
        if let Some(files) = &self.files {
            let named = match e.body {
                EventBody::Open { file: f, .. } | EventBody::Delete { file: f, .. } => {
                    files.contains(&f)
                }
                _ => false,
            };
            if !named {
                return false;
            }
        }
        true
    }

    /// The time-window predicate, if set (inclusive µs bounds). These
    /// accessors are the scan module's view of the conjunction: one per
    /// predicate, `None` meaning "unrestricted", so the predicate phase
    /// can decode exactly the columns the query references.
    pub(crate) fn time_pred(&self) -> Option<(u64, u64)> {
        self.time
    }

    /// The job-set predicate, if set.
    pub(crate) fn jobs_pred(&self) -> Option<&[u32]> {
        self.jobs.as_deref()
    }

    /// The file-set predicate, if set.
    pub(crate) fn files_pred(&self) -> Option<&[u32]> {
        self.files.as_deref()
    }

    /// The node-set predicate, if set.
    pub(crate) fn nodes_pred(&self) -> Option<&[u16]> {
        self.nodes.as_deref()
    }

    /// The op-class predicate, if set.
    pub(crate) fn ops_pred(&self) -> Option<OpSet> {
        self.ops
    }

    /// Segment-level predicate: could any row under `zone` match? Always
    /// conservative — `true` when unsure, so pruning on it never drops a
    /// matching row. Public so federating layers can account for pruning
    /// across catalogs the same way [`Scan`] does within one.
    pub fn admits(&self, zone: &ZoneMap) -> bool {
        if let Some((from, to)) = self.time {
            if zone.time.max < from || zone.time.min > to {
                return false;
            }
        }
        if let Some(nodes) = &self.nodes {
            if !nodes.iter().any(|&n| zone.node.contains(n)) {
                return false;
            }
        }
        if let Some(ops) = self.ops {
            if !ops.intersects_bits(zone.op_bits) {
                return false;
            }
        }
        if let Some(jobs) = &self.jobs {
            match zone.jobs {
                Some(bounds) if jobs.iter().any(|&j| bounds.contains(j)) => {}
                _ => return false,
            }
        }
        if let Some(files) = &self.files {
            match zone.files {
                Some(bounds) if files.iter().any(|&f| bounds.contains(f)) => {}
                _ => return false,
            }
        }
        true
    }
}

/// A prepared scan: a query bound to an [`ArchiveReader`]'s catalog, plus
/// execution knobs. Obtained from [`ArchiveReader::query`] (or the
/// [`Archive`](crate::Archive) wrapper's `query`).
#[derive(Debug)]
pub struct Scan<'a> {
    reader: &'a ArchiveReader,
    query: Query,
    workers: usize,
    metrics: Option<StoreMetrics>,
}

impl<'a> Scan<'a> {
    pub(crate) fn new(reader: &'a ArchiveReader, query: Query) -> Self {
        Scan {
            reader,
            query,
            workers: 1,
            metrics: None,
        }
    }

    /// Scan with `n` worker threads (default 1; capped at the segment
    /// count; 0 is treated as 1). The result is identical for every `n`.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Report pruning and scan throughput through `metrics`.
    #[must_use]
    pub fn attach_metrics(mut self, metrics: StoreMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Per-segment matches, indexed by segment (pruned segments empty).
    ///
    /// The parallel core: workers claim segments from an atomic cursor,
    /// prune on the zone map, and run the predicate-first scan
    /// ([`SealedSegment::select_events`](crate::SealedSegment)) over the
    /// survivors — predicate columns decode and select first, the rest
    /// materialize late for selected rows only. Output order is segment
    /// order regardless of claim order.
    fn scan_segments(&self) -> Result<Vec<Vec<OrderedEvent>>, StoreError> {
        let segments = self.reader.segments();
        let admitted: Vec<usize> = (0..segments.len())
            .filter(|&i| self.query.admits(segments[i].zone()))
            .collect();
        if let Some(m) = &self.metrics {
            m.segments_pruned
                .add((segments.len() - admitted.len()) as u64);
            m.segments_scanned.add(admitted.len() as u64);
        }

        let mut out: Vec<Vec<OrderedEvent>> = vec![Vec::new(); segments.len()];
        let workers = self.workers.min(admitted.len()).max(1);
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, Vec<OrderedEvent>)>> = Mutex::new(Vec::new());
        let first_error: Mutex<Option<(usize, StoreError)>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Vec<OrderedEvent>)> = Vec::new();
                    let mut rows_scanned = 0u64;
                    let mut rows_matched = 0u64;
                    let mut cols_decoded = 0u64;
                    let mut rows_skipped = 0u64;
                    loop {
                        let claim = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&seg) = admitted.get(claim) else {
                            break;
                        };
                        match segments[seg].select_events(&self.query) {
                            Ok(scan) => {
                                rows_scanned += u64::from(segments[seg].rows());
                                rows_matched += scan.events.len() as u64;
                                cols_decoded += scan.values_decoded;
                                rows_skipped += scan.rows_skipped;
                                local.push((seg, scan.events));
                            }
                            Err(e) => {
                                let mut slot = lock(&first_error);
                                // Keep the lowest-index error: deterministic
                                // regardless of which worker saw one first.
                                if slot.as_ref().is_none_or(|(s, _)| seg < *s) {
                                    *slot = Some((seg, e));
                                }
                            }
                        }
                    }
                    if let Some(m) = &self.metrics {
                        m.rows_scanned.add(rows_scanned);
                        m.rows_matched.add(rows_matched);
                        m.cols_decoded.add(cols_decoded);
                        m.rows_skipped_late.add(rows_skipped);
                    }
                    lock(&results).append(&mut local);
                });
            }
        });

        if let Some((_, e)) = lock(&first_error).take() {
            return Err(e);
        }
        for (seg, matched) in lock(&results).drain(..) {
            out[seg] = matched;
        }
        Ok(out)
    }

    /// Every matching record, in merged stream order.
    pub fn events(&self) -> Result<Vec<OrderedEvent>, StoreError> {
        Ok(self.scan_segments()?.into_iter().flatten().collect())
    }

    /// The paper's full §4 characterization of the matching subset,
    /// streamed straight into the push-based analyzer — no intermediate
    /// event vector.
    pub fn report(&self) -> Result<Report, StoreError> {
        let mut analyzer = Analyzer::new();
        let mut sizes = RequestSizes::new();
        for segment in self.scan_segments()? {
            for e in &segment {
                analyzer.push(e);
                sizes.push(e);
            }
        }
        sizes.seal();
        Ok(Report {
            chars: analyzer.finish(),
            request_sizes: sizes,
        })
    }

    /// The cache simulators' session-indexing pass over the matching
    /// subset — the prep step for re-running cache experiments from an
    /// archive instead of a fresh generation.
    pub fn session_index(&self) -> Result<SessionIndex, StoreError> {
        Ok(SessionIndex::build(&self.events()?))
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Scan state is plain vectors guarded per push: a panicked worker
    // cannot leave them logically inconsistent, so recover from poisoning
    // instead of propagating it.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::{write_archive, Archive, ArchiveMeta};
    use charisma_trace::record::AccessKind;

    fn mk(us: u64, node: u16, body: EventBody) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::from_micros(us),
            node,
            body,
        }
    }

    /// A multi-segment stream: 3 jobs' worth of opens/reads/writes spread
    /// over 10k records so segment pruning has something to prune.
    fn stream() -> Vec<OrderedEvent> {
        let mut events = Vec::new();
        for i in 0..10_000u64 {
            let job = (i / 4000) as u32;
            let session = (i / 100) as u32;
            match i % 4 {
                0 => events.push(mk(
                    i,
                    (i % 8) as u16,
                    EventBody::Open {
                        job,
                        file: session,
                        session,
                        mode: 0,
                        access: AccessKind::ReadWrite,
                        created: false,
                    },
                )),
                1 | 2 => events.push(mk(
                    i,
                    (i % 8) as u16,
                    EventBody::Read {
                        session,
                        offset: i * 512,
                        bytes: 512,
                    },
                )),
                _ => events.push(mk(
                    i,
                    (i % 8) as u16,
                    EventBody::Write {
                        session,
                        offset: i * 512,
                        bytes: 1024,
                    },
                )),
            }
        }
        events
    }

    fn archive() -> Archive {
        Archive::from_bytes(write_archive(
            &stream(),
            ArchiveMeta {
                seed: 1,
                scale: 1.0,
            },
        ))
        .expect("parses")
    }

    #[test]
    fn all_query_returns_everything_in_order() {
        let a = archive();
        let events = a.query(Query::all()).workers(4).events().expect("scans");
        assert_eq!(events, stream());
    }

    #[test]
    fn filters_agree_with_a_serial_filter() {
        let a = archive();
        let full = stream();
        let queries = [
            Query::all().time_window(SimTime::from_micros(2000), SimTime::from_micros(4500)),
            Query::all().job(1),
            Query::all().file(17),
            Query::all().node(3),
            Query::all().jobs(&[0, 2]),
            Query::all().files(&[17, 83, 999]),
            Query::all().nodes(&[1, 5, 7]),
            Query::all().ops(OpSet::requests()),
            Query::all()
                .time_window(SimTime::from_micros(100), SimTime::from_micros(9000))
                .node(2)
                .ops(OpSet::empty().with(OpClass::Write)),
        ];
        for q in queries {
            let got = a.query(q.clone()).workers(3).events().expect("scans");
            let want: Vec<OrderedEvent> = full.iter().filter(|e| q.matches(e)).copied().collect();
            assert_eq!(got, want, "query {q:?}");
        }
    }

    #[test]
    fn worker_count_is_an_execution_detail() {
        let a = archive();
        let q = Query::all().time_window(SimTime::from_micros(1000), SimTime::from_micros(8000));
        let serial = a.query(q.clone()).events().expect("scans");
        for n in [2, 4, 8, 64] {
            assert_eq!(
                a.query(q.clone()).workers(n).events().expect("scans"),
                serial
            );
        }
    }

    #[test]
    fn time_window_prunes_segments() {
        use charisma_obs::MetricsRegistry;
        let a = archive();
        let registry = MetricsRegistry::new();
        let q = Query::all().time_window(SimTime::from_micros(4200), SimTime::from_micros(4500));
        let events = a
            .query(q)
            .attach_metrics(StoreMetrics::register(&registry))
            .events()
            .expect("scans");
        assert_eq!(events.len(), 301);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters["store.segments_pruned"], 2,
            "3 segments, 1 admitted"
        );
        assert_eq!(snap.counters["store.segments_scanned"], 1);
        assert_eq!(snap.counters["store.rows_scanned"], 4096);
        assert_eq!(snap.counters["store.rows_matched"], 301);
        // Predicate phase: the time column in full (4096 cells). Late
        // phase: nine columns up to the last selected row (local index
        // 404, so 405 cells each).
        assert_eq!(snap.counters["store.cols_decoded"], 4096 + 9 * 405);
        assert_eq!(snap.counters["store.rows_skipped_late"], 4096 - 301);
    }

    #[test]
    fn job_and_file_pruning_respects_presence() {
        let a = archive();
        // Job 2 only appears in the last 2000 records (one tail segment).
        let q = Query::all().job(2).ops(OpSet::empty().with(OpClass::Open));
        let got = a.query(q).events().expect("scans");
        assert!(!got.is_empty());
        assert!(got
            .iter()
            .all(|e| matches!(e.body, EventBody::Open { job: 2, .. })));
        // A job id no record names matches nothing.
        assert!(a
            .query(Query::all().job(999))
            .events()
            .expect("scans")
            .is_empty());
    }

    #[test]
    fn set_predicates_subsume_single_element_wrappers() {
        let a = archive();
        // Single-element wrappers are exactly the one-member sets.
        assert_eq!(
            a.query(Query::all().job(1)).events().expect("scans"),
            a.query(Query::all().jobs(&[1])).events().expect("scans"),
        );
        assert_eq!(
            a.query(Query::all().node(3)).events().expect("scans"),
            a.query(Query::all().nodes(&[3])).events().expect("scans"),
        );
        // A set union matches the union of its members' matches.
        let both = a.query(Query::all().jobs(&[0, 2])).events().expect("scans");
        let j0 = a.query(Query::all().job(0)).events().expect("scans");
        let j2 = a.query(Query::all().job(2)).events().expect("scans");
        assert_eq!(both.len(), j0.len() + j2.len());
        // Empty sets match nothing; later calls replace earlier predicates.
        assert!(a
            .query(Query::all().jobs(&[]))
            .events()
            .expect("scans")
            .is_empty());
        assert_eq!(
            a.query(Query::all().jobs(&[999]).jobs(&[1]))
                .events()
                .expect("scans"),
            a.query(Query::all().job(1)).events().expect("scans"),
        );
    }

    #[test]
    fn set_predicates_prune_by_any_member() {
        use charisma_obs::MetricsRegistry;
        let a = archive();
        // Job 0 lives only in the first segment; adding an absent id (5)
        // to the set must not block it, while segments whose bounds cover
        // neither member are still pruned.
        let registry = MetricsRegistry::new();
        let got = a
            .query(Query::all().jobs(&[0, 5]))
            .attach_metrics(StoreMetrics::register(&registry))
            .events()
            .expect("scans");
        assert!(!got.is_empty());
        let snap = registry.snapshot();
        assert_eq!(snap.counters["store.segments_pruned"], 2);
        assert_eq!(snap.counters["store.segments_scanned"], 1);
        // A set of absent ids prunes everything.
        let registry = MetricsRegistry::new();
        let got = a
            .query(Query::all().files(&[7777, 8888]))
            .attach_metrics(StoreMetrics::register(&registry))
            .events()
            .expect("scans");
        assert!(got.is_empty());
        assert_eq!(registry.snapshot().counters["store.segments_scanned"], 0);
    }

    #[test]
    fn report_matches_from_stream_on_the_same_subset() {
        let a = archive();
        let q = Query::all().time_window(SimTime::from_micros(0), SimTime::from_micros(5000));
        let got = a.query(q.clone()).workers(4).report().expect("scans");
        let want = Report::from_stream(stream().into_iter().filter(|e| q.matches(e)));
        assert_eq!(got.render(), want.render());
    }

    #[test]
    fn session_index_rebuilds_from_a_scan() {
        let a = archive();
        let idx = a.query(Query::all()).session_index().expect("scans");
        let want = SessionIndex::build(&stream());
        assert_eq!(idx.len(), want.len());
        assert_eq!(idx.get(17).copied(), want.get(17).copied());
    }

    #[test]
    fn empty_archive_queries_cleanly() {
        let a = Archive::from_bytes(write_archive(
            &[],
            ArchiveMeta {
                seed: 1,
                scale: 1.0,
            },
        ))
        .expect("parses");
        assert!(a
            .query(Query::all())
            .workers(8)
            .events()
            .expect("scans")
            .is_empty());
        let report = a.query(Query::all()).report().expect("scans");
        assert_eq!(report.chars.jobs.len(), 0);
    }
}
