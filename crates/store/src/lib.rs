//! charisma-store: an indexed columnar archive for CHARISMA trace
//! streams, with a parallel predicate-pushdown query engine.
//!
//! The generator replays the paper's workload and the analyzer
//! characterizes it — but until now the trace stream itself only existed
//! in memory, inside one run. This crate gives the merged event stream a
//! durable, *canonical* on-disk form and makes it cheap to ask questions
//! of it after the fact:
//!
//! * [`ArchiveWriter`] consumes [`OrderedEvent`]s in merged-stream order
//!   and emits a segmented columnar archive. Each segment holds up to
//!   [`SEGMENT_ROWS`] records, encoded column-by-column (delta varints
//!   for times/offsets/sizes, plain varints for identifiers, per-segment
//!   dictionaries for ops/modes/flags) and summarized by a [`ZoneMap`].
//! * [`Archive`] memory-loads an archive and answers [`Query`]s: the zone
//!   maps prune whole segments before any decoding, then worker threads
//!   claim and scan the survivors. A [`Scan`] can materialize matching
//!   [`events`](Scan::events), compute a full analyzer
//!   [`report`](Scan::report) for the subset, or rebuild the cache
//!   simulators' [`session_index`](Scan::session_index).
//!
//! # Build/serve split
//!
//! Since the serve layer landed, the crate's surface separates the two
//! halves the original `Archive` conflated: [`SegmentBuilder`] is the
//! append-only *build* side, sealing into immutable [`SealedSegment`]
//! handles (shared byte ownership — cloning is an `Arc` bump), and
//! [`ArchiveReader`] is the pure *serve* side, a view over a catalog of
//! sealed segments that answers queries and re-serializes canonically via
//! [`ArchiveReader::to_bytes`]. `Archive` remains as the file-shaped thin
//! wrapper over a reader; `charisma-serve` composes builders and readers
//! into a long-lived multi-tenant service.
//!
//! # Determinism contract
//!
//! The archive bytes are a pure function of the event stream and the
//! declared [`ArchiveMeta`]. The same seed and scale produce a
//! byte-identical archive regardless of how many generator shards or
//! scan workers ran — no timestamps, hostnames, worker counts, or map
//! iteration orders leak into the format. `charisma-verify archive`
//! holds the project to this with a checked-in archive hash fixture.
//!
//! [`OrderedEvent`]: charisma_trace::OrderedEvent

mod archive;
mod codec;
mod metrics;
mod query;
mod scan;
mod sealed;
mod segment;

pub use archive::{write_archive, Archive, ArchiveMeta, ArchiveWriter};
pub use codec::{
    decode_delta_column, decode_delta_column_into, decode_dict_column, decode_varint_column,
    decode_varint_column_into, encode_delta_column, encode_dict_column, encode_varint_column,
    unzigzag, zigzag,
};
pub use metrics::StoreMetrics;
pub use query::{OpClass, OpSet, Query, Scan};
pub use sealed::{ArchiveReader, SealedSegment};
pub use segment::{SegmentBuilder, ZoneMap, SEGMENT_ROWS};

/// Everything that can go wrong opening or scanning an archive.
///
/// Decoders are total: malformed input always surfaces here, never as a
/// panic — the store crate is held to the same no-panic lint (CH003) as
/// the simulators.
#[derive(Debug)]
pub enum StoreError {
    /// The file does not start (or end) with the archive magic.
    BadMagic,
    /// The archive declares a format version this build cannot read.
    BadVersion(u32),
    /// A row carries an op tag outside the known record types.
    BadOp(u8),
    /// Structural corruption: truncation, out-of-range directory entries,
    /// inconsistent row counts. The message names the failing check.
    Corrupt(&'static str),
    /// The underlying file could not be read or written.
    Io(std::io::Error),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BadMagic => write!(f, "not a charisma-store archive (bad magic)"),
            StoreError::BadVersion(v) => write!(f, "unsupported archive version {v}"),
            StoreError::BadOp(op) => write!(f, "unknown op tag {op} in archive row"),
            StoreError::Corrupt(what) => write!(f, "corrupt archive: {what}"),
            StoreError::Io(e) => write!(f, "archive i/o error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
