//! Sealed segments and the archive reader: the build/serve split.
//!
//! The original store conflated two roles in `Archive`/`ArchiveWriter`:
//! *building* an archive (accumulate rows, encode segments, lay out a
//! file) and *serving* one (prune, decode, scan). A long-lived service
//! needs them apart — ingest keeps appending while readers keep scanning —
//! so the public surface is now three layers:
//!
//! 1. [`SegmentBuilder`](crate::SegmentBuilder) — append-only row
//!    accumulator. [`SegmentBuilder::seal`] encodes the rows and returns a
//!    [`SealedSegment`].
//! 2. [`SealedSegment`] — an **immutable** encoded segment plus its zone
//!    map. The bytes live in a shared [`Bytes`] allocation, so cloning a
//!    handle is an `Arc` bump: any number of concurrent readers can hold
//!    the same segment with no copies and no locks.
//! 3. [`ArchiveReader`] — a pure view over a catalog (ordered list) of
//!    sealed segments. It owns no file and no builder state; queries
//!    ([`ArchiveReader::query`]) prune on the catalog's zone maps and
//!    decode only surviving segments. Cloning a reader clones segment
//!    *handles*, not segment bytes.
//!
//! The file-shaped [`Archive`](crate::Archive) is now a thin wrapper: it
//! parses the container, slices one shared allocation into per-segment
//! [`SealedSegment`]s, and delegates everything else to an embedded
//! [`ArchiveReader`]. [`ArchiveReader::to_bytes`] goes the other way,
//! re-serializing a catalog into the canonical container format —
//! `Archive::from_bytes(reader.to_bytes())` is an identity on the
//! segments, which is what lets a service publish byte-identical catalogs
//! no matter how its ingest was scheduled.

use bytes::Bytes;
use charisma_ipsc::SimTime;
use charisma_trace::OrderedEvent;

use crate::archive::ArchiveMeta;
use crate::query::{Query, Scan};
use crate::scan::{decode_segment, scan_segment, SegmentScan};
use crate::segment::ZoneMap;
use crate::StoreError;

/// One immutable, encoded segment: shared bytes plus the zone map that
/// summarizes them.
///
/// Handles are cheap to clone (shared ownership via [`Bytes`]); the
/// underlying allocation is dropped when the last handle goes away. A
/// sealed segment is self-contained: its zone map's `offset` is `0` and
/// its `len` is the blob length, regardless of where the blob later lands
/// inside a serialized archive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedSegment {
    bytes: Bytes,
    zone: ZoneMap,
}

impl SealedSegment {
    /// Wrap an encoded blob and its zone map. `zone.offset`/`zone.len`
    /// are normalized to the standalone form (`0`/blob length).
    pub(crate) fn from_parts(bytes: Bytes, mut zone: ZoneMap) -> Self {
        zone.offset = 0;
        zone.len = bytes.len() as u64;
        SealedSegment { bytes, zone }
    }

    /// Rows encoded in this segment.
    pub fn rows(&self) -> u32 {
        self.zone.rows
    }

    /// The segment's zone map (standalone form: `offset == 0`).
    pub fn zone(&self) -> &ZoneMap {
        &self.zone
    }

    /// Encoded size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The encoded blob, shared with every other handle to this segment.
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// This segment's zone map positioned at `offset` within a serialized
    /// archive body — what the container footer records.
    pub(crate) fn zone_at(&self, offset: u64) -> ZoneMap {
        let mut zone = self.zone;
        zone.offset = offset;
        zone
    }

    /// Decode every record of the segment, in row order.
    pub fn events(&self) -> Result<Vec<OrderedEvent>, StoreError> {
        decode_segment(&self.bytes, self.zone.rows)
    }

    /// Scan the segment under `query`: predicate-column-first decode into
    /// a row selection, then late materialization of the surviving rows —
    /// the per-segment core every [`Scan`] runs.
    pub(crate) fn select_events(&self, query: &Query) -> Result<SegmentScan, StoreError> {
        scan_segment(&self.bytes, self.zone.rows, query)
    }
}

/// A pure read view over an ordered catalog of sealed segments.
///
/// A reader holds no builder state and no file handle — it is exactly the
/// serve half of the build/serve split. Construction is infallible
/// bookkeeping; all decoding is deferred to queries, which prune on the
/// zone maps first. Cloning a reader is cheap (segment handles share
/// their bytes).
#[derive(Clone, Debug)]
pub struct ArchiveReader {
    meta: ArchiveMeta,
    segments: Vec<SealedSegment>,
    rows: u64,
}

impl ArchiveReader {
    /// A reader over `segments`, in catalog order, with provenance `meta`.
    pub fn new(meta: ArchiveMeta, segments: Vec<SealedSegment>) -> Self {
        let rows = segments.iter().map(|s| u64::from(s.rows())).sum();
        ArchiveReader {
            meta,
            segments,
            rows,
        }
    }

    /// Provenance carried by the catalog.
    pub fn meta(&self) -> ArchiveMeta {
        self.meta
    }

    /// Total records across the catalog.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of segments in the catalog.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The catalog itself, in order.
    pub fn segments(&self) -> &[SealedSegment] {
        &self.segments
    }

    /// The cataloged time span `(first, last)` from zone maps alone, or
    /// `None` for an empty catalog.
    pub fn time_span(&self) -> Option<(SimTime, SimTime)> {
        let min = self.segments.iter().map(|s| s.zone().time.min).min()?;
        let max = self.segments.iter().map(|s| s.zone().time.max).max()?;
        Some((SimTime::from_micros(min), SimTime::from_micros(max)))
    }

    /// Begin a query over the catalog. The returned [`Scan`] is a builder:
    /// set `.workers(n)` / `.attach_metrics(..)`, then consume it with
    /// `.events()`, `.report()`, or `.session_index()`.
    pub fn query(&self, query: Query) -> Scan<'_> {
        Scan::new(self, query)
    }

    /// Decode every record (the identity query, serially) — delegates to
    /// the one scan path; there is no separate full-decode code.
    pub fn events(&self) -> Result<Vec<OrderedEvent>, StoreError> {
        self.query(Query::all()).events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::{write_archive, Archive};
    use crate::SegmentBuilder;
    use charisma_trace::record::EventBody;

    fn stream(n: u64) -> Vec<OrderedEvent> {
        (0..n)
            .map(|i| OrderedEvent {
                time: SimTime::from_micros(i * 7),
                node: (i % 16) as u16,
                body: EventBody::Read {
                    session: (i % 9) as u32,
                    offset: i * 256,
                    bytes: 256,
                },
            })
            .collect()
    }

    const META: ArchiveMeta = ArchiveMeta {
        seed: 1,
        scale: 0.5,
    };

    #[test]
    fn seal_round_trips_and_handles_share_bytes() {
        let events = stream(100);
        let mut b = SegmentBuilder::default();
        for e in &events {
            b.push(e);
        }
        let sealed = b.seal();
        assert_eq!(sealed.rows(), 100);
        assert_eq!(sealed.zone().offset, 0);
        assert_eq!(sealed.zone().len as usize, sealed.size_bytes());
        assert_eq!(sealed.events().expect("decodes"), events);

        let other = sealed.clone();
        assert!(std::ptr::eq(
            sealed.bytes().as_ref().as_ptr(),
            other.bytes().as_ref().as_ptr()
        ));
    }

    #[test]
    fn reader_is_a_pure_view_over_a_catalog() {
        let events = stream(300);
        let mut segments = Vec::new();
        for chunk in events.chunks(128) {
            let mut b = SegmentBuilder::default();
            for e in chunk {
                b.push(e);
            }
            segments.push(b.seal());
        }
        let reader = ArchiveReader::new(META, segments);
        assert_eq!(reader.rows(), 300);
        assert_eq!(reader.segment_count(), 3);
        assert_eq!(reader.events().expect("decodes"), events);
        assert_eq!(
            reader.time_span(),
            Some((SimTime::ZERO, SimTime::from_micros(299 * 7)))
        );
        // A clone serves the same catalog through shared handles.
        let cloned = reader.clone();
        assert_eq!(cloned.events().expect("decodes"), events);
    }

    #[test]
    fn reader_to_bytes_is_the_canonical_container() {
        // A catalog re-serialized through the reader must be bit-identical
        // to what the streaming writer produces from the same records —
        // the build path and the serve path meet at one format.
        let events = stream(5000);
        let written = write_archive(&events, META);
        let archive = Archive::from_bytes(written.clone()).expect("parses");
        assert_eq!(archive.reader().to_bytes(), written);

        // And the round trip through from_bytes is an identity on segments.
        let reopened = Archive::from_bytes(archive.reader().to_bytes()).expect("parses");
        assert_eq!(reopened.reader().segments(), archive.reader().segments());
    }

    #[test]
    fn empty_reader_serves_cleanly() {
        let reader = ArchiveReader::new(META, Vec::new());
        assert_eq!(reader.rows(), 0);
        assert_eq!(reader.time_span(), None);
        assert!(reader.events().expect("scans").is_empty());
        let archive = Archive::from_bytes(reader.to_bytes()).expect("parses");
        assert_eq!(archive.rows(), 0);
    }
}
