//! Segments: the archive's unit of encoding, pruning, and parallel scan.
//!
//! A segment holds up to [`SEGMENT_ROWS`] consecutive records of the
//! merged stream, transposed into columns. Every record maps onto one row
//! of a fixed ten-column schema (absent fields encode as zero), so the
//! row ↔ event mapping is a bijection on the rows the writer produces:
//!
//! | column  | content                                   | encoding      |
//! |---------|-------------------------------------------|---------------|
//! | time    | rectified timestamp (µs)                  | delta varint  |
//! | node    | recording node                            | varint        |
//! | op      | record tag (1–7)                          | dictionary    |
//! | job     | job id (`JobStart`/`JobEnd`/`Open`/`Delete`) | varint     |
//! | file    | file id (`Open`/`Delete`)                 | varint        |
//! | session | session id (`Open`/`Close`/`Read`/`Write`)| varint        |
//! | mode    | CFS I/O mode (`Open`)                     | dictionary    |
//! | flags   | access kind, created, traced bits         | dictionary    |
//! | offset  | request offset (`Read`/`Write`)           | delta varint  |
//! | size    | bytes / size-at-close / node count        | delta varint  |
//!
//! Alongside the column bytes each segment carries a [`ZoneMap`] — min/max
//! time, node, job and file plus an op bitset — kept in the archive footer
//! so a query can reject the whole segment without touching its bytes.

use bytes::{Buf, BufMut};
use charisma_ipsc::SimTime;
use charisma_trace::record::{AccessKind, EventBody};
use charisma_trace::OrderedEvent;

use crate::codec::{encode_delta_column, encode_dict_column, encode_varint_column};
use crate::StoreError;

/// Rows per segment. Small enough that a pruned segment saves real work at
/// study scales (a 0.05-scale trace spans ~95 segments), large enough that
/// per-segment dictionary and zone-map overhead stays negligible.
pub const SEGMENT_ROWS: usize = 4096;

/// `flags` column bit layout.
const FLAG_ACCESS_MASK: u8 = 0b11;
const FLAG_CREATED: u8 = 1 << 2;
const FLAG_TRACED: u8 = 1 << 3;

/// Columns per segment row (the fixed schema above).
pub(crate) const COLUMN_COUNT: usize = 10;

/// Min/max tracker over the values a column actually carried (absent
/// values do not pollute the bounds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bounds<T: Copy + Ord> {
    /// Smallest value carried.
    pub min: T,
    /// Largest value carried.
    pub max: T,
}

impl<T: Copy + Ord> Bounds<T> {
    fn observe(slot: &mut Option<Bounds<T>>, v: T) {
        match slot {
            Some(b) => {
                b.min = b.min.min(v);
                b.max = b.max.max(v);
            }
            None => *slot = Some(Bounds { min: v, max: v }),
        }
    }

    /// Whether `v` falls inside these bounds.
    pub fn contains(&self, v: T) -> bool {
        self.min <= v && v <= self.max
    }
}

/// Per-segment index entry: enough to decide "can any row here match?"
/// without decoding the segment, plus the segment's byte range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZoneMap {
    /// Byte offset of the segment blob within the archive.
    pub offset: u64,
    /// Byte length of the segment blob.
    pub len: u64,
    /// Rows in the segment.
    pub rows: u32,
    /// Timestamp bounds (µs), inclusive.
    pub time: Bounds<u64>,
    /// Recording-node bounds, inclusive.
    pub node: Bounds<u16>,
    /// Bit `tag - 1` set when the segment holds a record with that tag.
    pub op_bits: u8,
    /// Job-id bounds over rows that name a job, if any do.
    pub jobs: Option<Bounds<u32>>,
    /// File-id bounds over rows that name a file, if any do.
    pub files: Option<Bounds<u32>>,
}

impl ZoneMap {
    /// Encoded footer-entry size in bytes (fixed width).
    pub(crate) const ENCODED_LEN: usize = 8 + 8 + 4 + 8 + 8 + 2 + 2 + 1 + 1 + 4 + 4 + 4 + 4;

    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        out.put_u64_le(self.offset);
        out.put_u64_le(self.len);
        out.put_u32_le(self.rows);
        out.put_u64_le(self.time.min);
        out.put_u64_le(self.time.max);
        out.put_u16_le(self.node.min);
        out.put_u16_le(self.node.max);
        out.put_u8(self.op_bits);
        let presence = u8::from(self.jobs.is_some()) | (u8::from(self.files.is_some()) << 1);
        out.put_u8(presence);
        let jobs = self.jobs.unwrap_or(Bounds { min: 0, max: 0 });
        out.put_u32_le(jobs.min);
        out.put_u32_le(jobs.max);
        let files = self.files.unwrap_or(Bounds { min: 0, max: 0 });
        out.put_u32_le(files.min);
        out.put_u32_le(files.max);
    }

    pub(crate) fn decode(buf: &mut &[u8]) -> Result<ZoneMap, StoreError> {
        let truncated = || StoreError::Corrupt("truncated zone map");
        let offset = buf.try_get_u64_le().ok_or_else(truncated)?;
        let len = buf.try_get_u64_le().ok_or_else(truncated)?;
        let rows = buf.try_get_u32_le().ok_or_else(truncated)?;
        let time_min = buf.try_get_u64_le().ok_or_else(truncated)?;
        let time_max = buf.try_get_u64_le().ok_or_else(truncated)?;
        let node_min = buf.try_get_u16_le().ok_or_else(truncated)?;
        let node_max = buf.try_get_u16_le().ok_or_else(truncated)?;
        let op_bits = buf.try_get_u8().ok_or_else(truncated)?;
        let presence = buf.try_get_u8().ok_or_else(truncated)?;
        let job_min = buf.try_get_u32_le().ok_or_else(truncated)?;
        let job_max = buf.try_get_u32_le().ok_or_else(truncated)?;
        let file_min = buf.try_get_u32_le().ok_or_else(truncated)?;
        let file_max = buf.try_get_u32_le().ok_or_else(truncated)?;
        Ok(ZoneMap {
            offset,
            len,
            rows,
            time: Bounds {
                min: time_min,
                max: time_max,
            },
            node: Bounds {
                min: node_min,
                max: node_max,
            },
            op_bits,
            jobs: (presence & 1 != 0).then_some(Bounds {
                min: job_min,
                max: job_max,
            }),
            files: (presence & 2 != 0).then_some(Bounds {
                min: file_min,
                max: file_max,
            }),
        })
    }
}

/// One record transposed onto the fixed column schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Row {
    pub(crate) time: u64,
    pub(crate) node: u16,
    pub(crate) op: u8,
    pub(crate) job: u32,
    pub(crate) file: u32,
    pub(crate) session: u32,
    pub(crate) mode: u8,
    pub(crate) flags: u8,
    pub(crate) offset: u64,
    pub(crate) size: u64,
}

/// Which identity columns a tag carries (for zone-map bounds).
fn row_from_event(e: &OrderedEvent) -> Row {
    let mut row = Row {
        time: e.time.as_micros(),
        node: e.node,
        op: e.body.tag(),
        job: 0,
        file: 0,
        session: 0,
        mode: 0,
        flags: 0,
        offset: 0,
        size: 0,
    };
    match e.body {
        EventBody::JobStart { job, nodes, traced } => {
            row.job = job;
            row.size = u64::from(nodes);
            row.flags = if traced { FLAG_TRACED } else { 0 };
        }
        EventBody::JobEnd { job } => row.job = job,
        EventBody::Open {
            job,
            file,
            session,
            mode,
            access,
            created,
        } => {
            row.job = job;
            row.file = file;
            row.session = session;
            row.mode = mode;
            row.flags = access.code() | if created { FLAG_CREATED } else { 0 };
        }
        EventBody::Close { session, size } => {
            row.session = session;
            row.size = size;
        }
        EventBody::Read {
            session,
            offset,
            bytes,
        }
        | EventBody::Write {
            session,
            offset,
            bytes,
        } => {
            row.session = session;
            row.offset = offset;
            row.size = u64::from(bytes);
        }
        EventBody::Delete { job, file } => {
            row.job = job;
            row.file = file;
        }
    }
    row
}

pub(crate) fn event_from_row(row: &Row) -> Result<OrderedEvent, StoreError> {
    let body = match row.op {
        1 => EventBody::JobStart {
            job: row.job,
            nodes: u16::try_from(row.size)
                .map_err(|_| StoreError::Corrupt("job-start node count exceeds u16"))?,
            traced: row.flags & FLAG_TRACED != 0,
        },
        2 => EventBody::JobEnd { job: row.job },
        3 => EventBody::Open {
            job: row.job,
            file: row.file,
            session: row.session,
            mode: row.mode,
            access: AccessKind::from_code(row.flags & FLAG_ACCESS_MASK)
                .ok_or(StoreError::Corrupt("bad access-kind code"))?,
            created: row.flags & FLAG_CREATED != 0,
        },
        4 => EventBody::Close {
            session: row.session,
            size: row.size,
        },
        5 => EventBody::Read {
            session: row.session,
            offset: row.offset,
            bytes: u32::try_from(row.size)
                .map_err(|_| StoreError::Corrupt("request length exceeds u32"))?,
        },
        6 => EventBody::Write {
            session: row.session,
            offset: row.offset,
            bytes: u32::try_from(row.size)
                .map_err(|_| StoreError::Corrupt("request length exceeds u32"))?,
        },
        7 => EventBody::Delete {
            job: row.job,
            file: row.file,
        },
        t => return Err(StoreError::BadOp(t)),
    };
    Ok(OrderedEvent {
        time: SimTime::from_micros(row.time),
        node: row.node,
        body,
    })
}

/// Append-only row accumulator: the *build* half of the build/serve split.
///
/// Push records in stream order, then [`seal`](SegmentBuilder::seal) the
/// builder into an immutable [`SealedSegment`](crate::SealedSegment)
/// handle. Builders are deliberately single-use and cheap — a service
/// keeps one open builder per tenant and seals whenever it reaches
/// [`SEGMENT_ROWS`].
#[derive(Debug, Default)]
pub struct SegmentBuilder {
    rows: Vec<Row>,
    time: Option<Bounds<u64>>,
    node: Option<Bounds<u16>>,
    op_bits: u8,
    jobs: Option<Bounds<u32>>,
    files: Option<Bounds<u32>>,
}

impl SegmentBuilder {
    /// Append one record. Records must arrive in stream order for the
    /// canonical-bytes guarantee (the builder does not re-sort).
    pub fn push(&mut self, e: &OrderedEvent) {
        let row = row_from_event(e);
        Bounds::observe(&mut self.time, row.time);
        Bounds::observe(&mut self.node, row.node);
        self.op_bits |= 1 << (row.op - 1);
        match e.body {
            EventBody::JobStart { job, .. } | EventBody::JobEnd { job } => {
                Bounds::observe(&mut self.jobs, job);
            }
            EventBody::Open { job, file, .. } | EventBody::Delete { job, file } => {
                Bounds::observe(&mut self.jobs, job);
                Bounds::observe(&mut self.files, file);
            }
            _ => {}
        }
        self.rows.push(row);
    }

    /// Rows accumulated so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Encode the accumulated rows and return an immutable
    /// [`SealedSegment`](crate::SealedSegment) handle. Sealing is a pure
    /// function of the pushed record sequence, so the same records always
    /// seal to the same bytes regardless of when or where sealing happens.
    pub fn seal(self) -> crate::SealedSegment {
        let mut out = Vec::new();
        let zone = self.finish(&mut out);
        crate::SealedSegment::from_parts(bytes::Bytes::from(out), zone)
    }

    /// Encode the accumulated rows as one segment blob appended to `out`,
    /// returning its zone map (`offset`/`len` relative to `out`'s state on
    /// entry, i.e. as absolute positions within the growing archive).
    pub(crate) fn finish(self, out: &mut Vec<u8>) -> ZoneMap {
        let start = out.len() as u64;
        let n = self.rows.len();
        out.put_varint_u64(n as u64);
        encode_column(out, |col| {
            encode_delta_column(&collect(&self.rows, |r| r.time), col)
        });
        encode_column(out, |col| {
            encode_varint_column(&collect(&self.rows, |r| u64::from(r.node)), col)
        });
        encode_column(out, |col| {
            encode_dict_column(&collect8(&self.rows, |r| r.op), col)
        });
        encode_column(out, |col| {
            encode_varint_column(&collect(&self.rows, |r| u64::from(r.job)), col)
        });
        encode_column(out, |col| {
            encode_varint_column(&collect(&self.rows, |r| u64::from(r.file)), col)
        });
        encode_column(out, |col| {
            encode_varint_column(&collect(&self.rows, |r| u64::from(r.session)), col)
        });
        encode_column(out, |col| {
            encode_dict_column(&collect8(&self.rows, |r| r.mode), col)
        });
        encode_column(out, |col| {
            encode_dict_column(&collect8(&self.rows, |r| r.flags), col)
        });
        encode_column(out, |col| {
            encode_delta_column(&collect(&self.rows, |r| r.offset), col)
        });
        encode_column(out, |col| {
            encode_delta_column(&collect(&self.rows, |r| r.size), col)
        });
        ZoneMap {
            offset: start,
            len: out.len() as u64 - start,
            // n <= SEGMENT_ROWS by construction; saturate rather than wrap
            // if that invariant ever breaks, so the zone map stays sane.
            rows: u32::try_from(n).unwrap_or(u32::MAX),
            time: self.time.unwrap_or(Bounds { min: 0, max: 0 }),
            node: self.node.unwrap_or(Bounds { min: 0, max: 0 }),
            op_bits: self.op_bits,
            jobs: self.jobs,
            files: self.files,
        }
    }
}

fn collect(rows: &[Row], f: impl Fn(&Row) -> u64) -> Vec<u64> {
    rows.iter().map(f).collect()
}

fn collect8(rows: &[Row], f: impl Fn(&Row) -> u8) -> Vec<u8> {
    rows.iter().map(f).collect()
}

/// Write one length-prefixed column: the byte length as a varint, then the
/// column bytes. The prefix is what lets a reader skip columns it does not
/// need.
fn encode_column(out: &mut Vec<u8>, encode: impl FnOnce(&mut Vec<u8>)) {
    let mut col = Vec::new();
    encode(&mut col);
    out.put_varint_u64(col.len() as u64);
    out.put_slice(&col);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::decode_segment;

    fn sample_events() -> Vec<OrderedEvent> {
        let mk = |us, node, body| OrderedEvent {
            time: SimTime::from_micros(us),
            node,
            body,
        };
        vec![
            mk(
                10,
                u16::MAX,
                EventBody::JobStart {
                    job: 40,
                    nodes: 16,
                    traced: true,
                },
            ),
            mk(
                11,
                3,
                EventBody::Open {
                    job: 40,
                    file: 7,
                    session: 9,
                    mode: 2,
                    access: AccessKind::ReadWrite,
                    created: true,
                },
            ),
            mk(
                12,
                3,
                EventBody::Read {
                    session: 9,
                    offset: 4096,
                    bytes: 512,
                },
            ),
            mk(
                13,
                4,
                EventBody::Write {
                    session: 9,
                    offset: 0,
                    bytes: 4096,
                },
            ),
            mk(
                14,
                3,
                EventBody::Close {
                    session: 9,
                    size: 4608,
                },
            ),
            mk(15, 3, EventBody::Delete { job: 40, file: 7 }),
            mk(16, u16::MAX, EventBody::JobEnd { job: 40 }),
        ]
    }

    #[test]
    fn segment_round_trips_every_tag() {
        let events = sample_events();
        let mut builder = SegmentBuilder::default();
        for e in &events {
            builder.push(e);
        }
        let mut out = Vec::new();
        let zone = builder.finish(&mut out);
        assert_eq!(zone.rows, events.len() as u32);
        assert_eq!(zone.offset, 0);
        assert_eq!(zone.len, out.len() as u64);
        let decoded = decode_segment(&out, zone.rows).expect("decodes");
        assert_eq!(decoded, events);
    }

    #[test]
    fn zone_map_tracks_bounds_and_presence() {
        let events = sample_events();
        let mut builder = SegmentBuilder::default();
        for e in &events {
            builder.push(e);
        }
        let mut out = Vec::new();
        let zone = builder.finish(&mut out);
        assert_eq!(zone.time, Bounds { min: 10, max: 16 });
        assert_eq!(
            zone.node,
            Bounds {
                min: 3,
                max: u16::MAX
            }
        );
        assert_eq!(zone.op_bits, 0b111_1111, "all seven tags present");
        assert_eq!(zone.jobs, Some(Bounds { min: 40, max: 40 }));
        assert_eq!(zone.files, Some(Bounds { min: 7, max: 7 }));

        // A reads-only segment names no jobs or files.
        let mut builder = SegmentBuilder::default();
        builder.push(&OrderedEvent {
            time: SimTime::from_micros(1),
            node: 0,
            body: EventBody::Read {
                session: 1,
                offset: 0,
                bytes: 8,
            },
        });
        let zone = builder.finish(&mut Vec::new());
        assert_eq!(zone.jobs, None);
        assert_eq!(zone.files, None);
        assert_eq!(zone.op_bits, 1 << 4);
    }

    #[test]
    fn zone_map_codec_round_trips() {
        let events = sample_events();
        let mut builder = SegmentBuilder::default();
        for e in &events {
            builder.push(e);
        }
        let zone = builder.finish(&mut Vec::new());
        let mut out = Vec::new();
        zone.encode(&mut out);
        assert_eq!(out.len(), ZoneMap::ENCODED_LEN);
        let mut buf = out.as_slice();
        assert_eq!(ZoneMap::decode(&mut buf).expect("decodes"), zone);
        assert!(buf.is_empty());
    }

    #[test]
    fn corrupt_segments_error_cleanly() {
        let events = sample_events();
        let mut builder = SegmentBuilder::default();
        for e in &events {
            builder.push(e);
        }
        let mut out = Vec::new();
        let zone = builder.finish(&mut out);
        // Row-count disagreement with the index.
        assert!(decode_segment(&out, zone.rows + 1).is_err());
        // Truncation at every prefix length must error, never panic.
        for cut in 0..out.len() {
            assert!(decode_segment(&out[..cut], zone.rows).is_err());
        }
    }
}
