//! charisma-serve: a deterministic multi-tenant archive service over the
//! store's build/serve split.
//!
//! The CHARISMA study watched many jobs stream file-access events through
//! one shared system; this crate is the repo's "open archive" analog —
//! many simulated *sites* (tenants) ingesting trace batches into one
//! long-lived service while many readers query the published catalogs:
//!
//! * [`Service`] hosts N tenants. Each [`Service::submit`] passes a
//!   deterministic admission hash (seeded [`FaultRng`]-style, keyed on
//!   `(seed, tenant, batch_seq)`), enters a bounded per-tenant queue, and
//!   under backpressure drains into an append-only
//!   [`SegmentBuilder`](charisma_store::SegmentBuilder) that seals
//!   immutable [`SealedSegment`](charisma_store::SealedSegment)s into the
//!   tenant's published catalog.
//! * [`Snapshot`] pins a tenant's catalog at a moment: cloned segment
//!   handles (shared bytes, no copies) that concurrent ingest can never
//!   mutate — reads see exactly a prefix of the admitted stream.
//! * [`FederatedQuery`] fans one [`Query`](charisma_store::Query) out
//!   across all tenants with scoped worker threads and k-way-merges the
//!   results by `(time, node, tenant)`.
//!
//! # Determinism contract
//!
//! Published catalog bytes are a pure function of `(service seed, scale,
//! per-tenant batch sequences)`. Worker counts, ingest interleavings, and
//! backpressure timing are execution details — `charisma-verify serve`
//! pins bit-identical catalogs across all of them, and the property suite
//! pins federated scans to a concat-and-stable-sort oracle and snapshots
//! to serial prefix replays.
//!
//! [`FaultRng`]: charisma_ipsc::faults::FaultRng

mod federate;
mod metrics;
mod service;

pub use federate::FederatedQuery;
pub use metrics::ServeMetrics;
pub use service::{domain, Admission, Service, ServiceConfig, Snapshot, TenantFeed};

use charisma_store::StoreError;

/// Everything that can go wrong serving archives.
#[derive(Debug)]
pub enum ServeError {
    /// A tenant index at or past the configured tenant count.
    UnknownTenant {
        /// The offending index.
        tenant: usize,
        /// How many tenants the service hosts.
        tenants: usize,
    },
    /// Two ingest feeds named the same tenant: their batch interleaving
    /// would depend on scheduling and break catalog byte-identity.
    DuplicateFeed {
        /// The tenant named twice.
        tenant: usize,
    },
    /// A catalog scan failed in the store layer.
    Store(StoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTenant { tenant, tenants } => {
                write!(f, "unknown tenant {tenant} (service hosts {tenants})")
            }
            ServeError::DuplicateFeed { tenant } => {
                write!(f, "tenant {tenant} appears in more than one ingest feed")
            }
            ServeError::Store(e) => write!(f, "store error while serving: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}
