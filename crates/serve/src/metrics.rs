//! `serve.*` observability: ingest admission, backpressure, sealing,
//! snapshots, and federated query work.
//!
//! All handles are plain [`Counter`]s. Every count is a pure function of
//! the admitted per-tenant streams and the queries asked — worker counts
//! and ingest interleavings never change them — so they live in the
//! deterministic metrics core and are pinned by the `charisma-verify
//! metrics` fixture alongside the `store.*` counters.

use charisma_obs::{Counter, MetricsRegistry};

/// Metric handles for one [`Service`](crate::Service).
#[derive(Clone, Debug, Default)]
pub struct ServeMetrics {
    /// Batches admitted into a tenant queue.
    pub batches_ingested: Counter,
    /// Rows carried by admitted batches.
    pub rows_ingested: Counter,
    /// Batches the admission hash shed before enqueueing.
    pub batches_shed: Counter,
    /// Submissions that found the tenant queue full and had to drain it
    /// synchronously (bounded backpressure).
    pub backpressure_stalls: Counter,
    /// Segments sealed and published to tenant catalogs.
    pub segments_sealed: Counter,
    /// Reader snapshots taken (catalog prefixes pinned).
    pub snapshots_taken: Counter,
    /// Federated queries run across the tenant set.
    pub federated_queries: Counter,
    /// Segments federated queries rejected from zone maps alone.
    pub federated_segments_pruned: Counter,
    /// Segments federated queries decoded and filtered.
    pub federated_segments_scanned: Counter,
    /// Rows federated queries returned after the k-way merge.
    pub federated_rows: Counter,
}

impl ServeMetrics {
    /// Handles registered under the `serve.` prefix of `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        ServeMetrics {
            batches_ingested: registry.counter("serve.batches_ingested"),
            rows_ingested: registry.counter("serve.rows_ingested"),
            batches_shed: registry.counter("serve.batches_shed"),
            backpressure_stalls: registry.counter("serve.backpressure_stalls"),
            segments_sealed: registry.counter("serve.segments_sealed"),
            snapshots_taken: registry.counter("serve.snapshots_taken"),
            federated_queries: registry.counter("serve.federated_queries"),
            federated_segments_pruned: registry.counter("serve.federated_segments_pruned"),
            federated_segments_scanned: registry.counter("serve.federated_segments_scanned"),
            federated_rows: registry.counter("serve.federated_rows"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_under_the_serve_prefix() {
        let registry = MetricsRegistry::new();
        let m = ServeMetrics::register(&registry);
        m.batches_ingested.inc();
        m.rows_ingested.add(42);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["serve.batches_ingested"], 1);
        assert_eq!(snap.counters["serve.rows_ingested"], 42);
        assert_eq!(snap.counters["serve.backpressure_stalls"], 0);
        assert_eq!(snap.counters["serve.federated_rows"], 0);
    }
}
