//! Federated queries: one predicate fanned out across every tenant's
//! pinned catalog, k-way merged back into a single deterministic stream.
//!
//! The fan-out reuses the store's sanctioned pattern — worker threads
//! under [`std::thread::scope`] claim snapshots from an atomic cursor —
//! and each claimed snapshot runs an ordinary pruned [`Scan`]. The merge
//! is a k-way minimum over `(time, node, tenant)`: because every tenant
//! stream is internally ordered by `(time, node)`, the merged output is
//! exactly a stable sort of the tenant-ordered concatenation by
//! `(time, node)` — the federation analog of the trace layer's canonical
//! `(time, node, shard, seq)` merge key, with the tenant index standing
//! in for the shard and per-tenant row order for the sequence number.
//! The property suite pins that equivalence for arbitrary queries and
//! worker counts.
//!
//! [`Scan`]: charisma_store::Scan

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use charisma_store::{Query, StoreError};
use charisma_trace::OrderedEvent;

use crate::service::{lock, Service, Snapshot};
use crate::ServeError;

/// A prepared federated query: a predicate bound to a [`Service`]'s
/// tenant set, plus execution knobs. Obtained from
/// [`Service::federated`].
#[derive(Debug)]
pub struct FederatedQuery<'a> {
    service: &'a Service,
    query: Query,
    workers: usize,
}

impl Service {
    /// Begin a query over every tenant's catalog. The returned builder
    /// snapshots all tenants when consumed, so the result is a consistent
    /// federated view even under concurrent ingest.
    pub fn federated(&self, query: Query) -> FederatedQuery<'_> {
        FederatedQuery {
            service: self,
            query,
            workers: 1,
        }
    }
}

impl FederatedQuery<'_> {
    /// Fan out over `n` worker threads (default 1; capped at the tenant
    /// count; 0 is treated as 1). The result is identical for every `n`.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Every matching record across all tenants, merged by
    /// `(time, node, tenant)`.
    pub fn events(&self) -> Result<Vec<OrderedEvent>, ServeError> {
        let snapshots = self.service.snapshot_all();
        federated_events(&snapshots, &self.query, self.workers, self.service)
    }
}

/// Run `query` over an explicit snapshot set (tenant order = slice
/// order) and merge. The `Service` method above is the common entry;
/// this free function also serves pinned snapshot sets directly.
pub(crate) fn federated_events(
    snapshots: &[Snapshot],
    query: &Query,
    workers: usize,
    service: &Service,
) -> Result<Vec<OrderedEvent>, ServeError> {
    let m = service.metrics();
    m.federated_queries.inc();
    let mut pruned = 0u64;
    let mut admitted = 0u64;
    for snap in snapshots {
        for seg in snap.reader().segments() {
            if query.admits(seg.zone()) {
                admitted += 1;
            } else {
                pruned += 1;
            }
        }
    }
    m.federated_segments_pruned.add(pruned);
    m.federated_segments_scanned.add(admitted);

    let workers = workers.min(snapshots.len()).max(1);
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Vec<OrderedEvent>)>> = Mutex::new(Vec::new());
    let first_error: Mutex<Option<(usize, StoreError)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let claim = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(snap) = snapshots.get(claim) else {
                    break;
                };
                match snap.reader().query(query.clone()).events() {
                    Ok(events) => lock(&results).push((claim, events)),
                    Err(e) => {
                        let mut slot = lock(&first_error);
                        // Keep the lowest-tenant error: deterministic
                        // regardless of which worker saw one first.
                        if slot.as_ref().is_none_or(|(s, _)| claim < *s) {
                            *slot = Some((claim, e));
                        }
                    }
                }
            });
        }
    });
    if let Some((_, e)) = lock(&first_error).take() {
        return Err(ServeError::Store(e));
    }
    let mut per_tenant: Vec<Vec<OrderedEvent>> = vec![Vec::new(); snapshots.len()];
    for (tenant, events) in lock(&results).drain(..) {
        per_tenant[tenant] = events;
    }
    let merged = kway_merge(&per_tenant);
    m.federated_rows.add(merged.len() as u64);
    Ok(merged)
}

/// Deterministic k-way merge of per-tenant ordered streams. Ties on
/// `(time, node)` break by tenant index, which for internally-ordered
/// inputs makes the output a stable sort of the tenant-ordered
/// concatenation by `(time, node)`.
fn kway_merge(streams: &[Vec<OrderedEvent>]) -> Vec<OrderedEvent> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut heads = vec![0usize; streams.len()];
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let mut best: Option<(u64, u16, usize)> = None;
        for (tenant, stream) in streams.iter().enumerate() {
            if let Some(e) = stream.get(heads[tenant]) {
                let key = (e.time.as_micros(), e.node, tenant);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        let Some((_, _, tenant)) = best else {
            break;
        };
        if let Some(&e) = streams[tenant].get(heads[tenant]) {
            out.push(e);
        }
        heads[tenant] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ServiceConfig, TenantFeed};
    use charisma_ipsc::SimTime;
    use charisma_trace::record::EventBody;

    fn stream(n: u64, salt: u64) -> Vec<OrderedEvent> {
        (0..n)
            .map(|i| OrderedEvent {
                time: SimTime::from_micros((i + salt) / 2 * 5),
                node: ((i * 7 + salt) % 6) as u16,
                body: EventBody::Read {
                    session: (i % 4) as u32,
                    offset: i * 64,
                    bytes: 64,
                },
            })
            .collect()
    }

    fn sorted(mut events: Vec<OrderedEvent>) -> Vec<OrderedEvent> {
        events.sort_by_key(|e| (e.time, e.node));
        events
    }

    fn service_with(feeds: &[TenantFeed]) -> Service {
        let service = Service::new(ServiceConfig {
            tenants: feeds.len(),
            ..ServiceConfig::default()
        });
        service.run_ingest(feeds, 2, 1).expect("ingests");
        service
    }

    fn feeds(k: usize, rows: u64) -> Vec<TenantFeed> {
        (0..k)
            .map(|tenant| TenantFeed {
                tenant,
                batches: sorted(stream(rows, tenant as u64 * 17))
                    .chunks(777)
                    .map(<[_]>::to_vec)
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn federated_scan_equals_concat_then_stable_sort() {
        let feeds = feeds(3, 9000);
        let service = service_with(&feeds);
        let queries = [
            Query::all(),
            Query::all().nodes(&[1, 4]),
            Query::all().time_window(SimTime::from_micros(500), SimTime::from_micros(14_000)),
        ];
        for q in queries {
            // Oracle: serial per-tenant scans concatenated in tenant
            // order, stable-sorted by (time, node).
            let mut want = Vec::new();
            for feed in &feeds {
                let snap = service.snapshot(feed.tenant).expect("snapshots");
                want.extend(snap.query(q.clone()).events().expect("scans"));
            }
            want.sort_by_key(|e| (e.time, e.node)); // stable
            for workers in [1, 2, 4] {
                let got = service
                    .federated(q.clone())
                    .workers(workers)
                    .events()
                    .expect("federates");
                assert_eq!(got, want, "workers={workers} query={q:?}");
            }
        }
    }

    #[test]
    fn federated_metrics_account_for_pruning_and_rows() {
        let feeds = feeds(2, 10_000);
        let mut service = Service::new(ServiceConfig {
            tenants: 2,
            ..ServiceConfig::default()
        });
        let registry = charisma_obs::MetricsRegistry::new();
        service.attach_metrics(crate::ServeMetrics::register(&registry));
        service.run_ingest(&feeds, 2, 1).expect("ingests");
        let q = Query::all().time_window(SimTime::ZERO, SimTime::from_micros(100));
        let got = service.federated(q).workers(2).events().expect("federates");
        let snap = registry.snapshot();
        assert_eq!(snap.counters["serve.federated_queries"], 1);
        assert!(snap.counters["serve.federated_segments_pruned"] > 0);
        assert!(snap.counters["serve.federated_segments_scanned"] > 0);
        assert_eq!(snap.counters["serve.federated_rows"], got.len() as u64);
    }

    #[test]
    fn empty_and_lopsided_tenants_merge_cleanly() {
        let feeds = vec![
            TenantFeed {
                tenant: 0,
                batches: Vec::new(),
            },
            TenantFeed {
                tenant: 1,
                batches: vec![sorted(stream(300, 2))],
            },
        ];
        let service = service_with(&feeds);
        let got = service
            .federated(Query::all())
            .workers(4)
            .events()
            .expect("federates");
        assert_eq!(got, sorted(stream(300, 2)));
    }
}
