//! The multi-tenant service: per-tenant ingest queues with bounded
//! backpressure, deterministic admission, segment sealing, and
//! snapshot-isolated catalog publication.
//!
//! # Determinism contract
//!
//! A tenant's published catalog is a pure function of the sequence of
//! batches submitted to that tenant: admission is a stateless decision
//! hash over `(service seed, tenant, batch sequence number)`, queues
//! drain FIFO, and sealing happens at fixed row boundaries
//! ([`SEGMENT_ROWS`]) — exactly where [`charisma_store::ArchiveWriter`]
//! seals. Nothing about *when* the work happened (worker count, claim
//! interleaving, queue-pressure timing) reaches the bytes, so
//! [`Service::run_ingest`] publishes bit-identical catalogs for every
//! worker count and interleave seed, and `charisma-verify serve` holds
//! the crate to that.
//!
//! # Snapshot isolation
//!
//! A [`Snapshot`] clones the tenant's sealed-segment handles (an `Arc`
//! bump per segment, no byte copies) under the tenant lock. Segments are
//! immutable after sealing and the catalog is append-only, so the
//! snapshot pins a *prefix* of the tenant's admitted stream: concurrent
//! ingest appends behind it but can never mutate what the snapshot sees.
//! Reading a snapshot mid-ingest therefore equals a serial replay of its
//! pinned prefix — the second half of the `charisma-verify serve` gate.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use charisma_ipsc::faults::FaultRng;
use charisma_store::{
    ArchiveMeta, ArchiveReader, Query, Scan, SealedSegment, SegmentBuilder, SEGMENT_ROWS,
};
use charisma_trace::OrderedEvent;

use crate::metrics::ServeMetrics;
use crate::ServeError;

/// Domain separators for the service's pure decision hashes. The service
/// seeds its own [`FaultRng`], so these need only be distinct from each
/// other, not from the fault layer's.
pub mod domain {
    /// Admission fate of one `(tenant, batch_seq)` submission.
    pub const ADMISSION: u64 = 0x21;
    /// Tenant claim-order permutation under an interleave seed.
    pub const INTERLEAVE: u64 = 0x22;
}

/// Static configuration of a [`Service`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Seed for admission decisions, and the provenance seed recorded in
    /// every tenant's published catalog.
    pub seed: u64,
    /// Provenance scale recorded in published catalogs.
    pub scale: f64,
    /// Number of tenants (simulated sites) the service hosts.
    pub tenants: usize,
    /// Batches a tenant queue holds before a submission stalls and drains
    /// it synchronously (bounded backpressure).
    pub queue_batches: usize,
    /// Parts-per-million of batches the admission hash sheds; `0`
    /// disables shedding.
    pub shed_ppm: u32,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            seed: 4994,
            scale: 0.05,
            tenants: 4,
            queue_batches: 8,
            shed_ppm: 0,
        }
    }
}

/// The admission verdict for one submitted batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The batch entered the tenant's queue.
    Admitted {
        /// The tenant-local sequence number the decision was keyed on.
        batch_seq: u64,
    },
    /// The admission hash shed the batch; nothing was enqueued.
    Shed {
        /// The tenant-local sequence number the decision was keyed on.
        batch_seq: u64,
    },
}

/// One tenant's ingest state: the bounded queue, the open builder, and
/// the published catalog of sealed segments.
#[derive(Debug, Default)]
struct Tenant {
    queue: VecDeque<Vec<OrderedEvent>>,
    builder: SegmentBuilder,
    catalog: Vec<SealedSegment>,
    /// Rows sealed into `catalog` (what snapshots see).
    sealed_rows: u64,
    /// Rows admitted (queued + building + sealed).
    admitted_rows: u64,
    /// Submissions seen, admitted or not — the admission-hash key.
    batch_seq: u64,
}

/// An immutable view of one tenant's catalog at the moment it was taken.
///
/// Cloning the sealed-segment handles pins a prefix of the tenant's
/// admitted stream; concurrent ingest cannot affect it. All the store's
/// read machinery is available through [`Snapshot::reader`], and
/// [`Snapshot::to_bytes`] serializes the pinned catalog into the
/// canonical archive container.
#[derive(Clone, Debug)]
pub struct Snapshot {
    tenant: usize,
    reader: ArchiveReader,
}

impl Snapshot {
    /// The tenant this snapshot pinned.
    pub fn tenant(&self) -> usize {
        self.tenant
    }

    /// The pinned catalog as a store reader.
    pub fn reader(&self) -> &ArchiveReader {
        &self.reader
    }

    /// Rows in the pinned prefix.
    pub fn rows(&self) -> u64 {
        self.reader.rows()
    }

    /// Sealed segments in the pinned prefix.
    pub fn segment_count(&self) -> usize {
        self.reader.segment_count()
    }

    /// Begin a query over the pinned catalog.
    pub fn query(&self, query: Query) -> Scan<'_> {
        self.reader.query(query)
    }

    /// Every pinned record, in stream order.
    pub fn events(&self) -> Result<Vec<OrderedEvent>, ServeError> {
        self.reader.events().map_err(ServeError::Store)
    }

    /// The pinned catalog in the canonical archive container format —
    /// byte-identical for equal catalogs, whatever ingest produced them.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.reader.to_bytes()
    }
}

/// One tenant's scripted ingest: the batches a simulated site will push,
/// in order, via [`Service::run_ingest`].
#[derive(Clone, Debug)]
pub struct TenantFeed {
    /// Destination tenant.
    pub tenant: usize,
    /// Batches to submit, in submission order.
    pub batches: Vec<Vec<OrderedEvent>>,
}

/// A deterministic multi-tenant archive service.
///
/// Construction is cheap; all state is per-tenant and lock-guarded, so
/// `&Service` is freely shareable across ingest workers and readers (the
/// facade shares it via `Arc`). See the module docs for the determinism
/// and isolation contracts.
pub struct Service {
    config: ServiceConfig,
    rng: FaultRng,
    tenants: Vec<Mutex<Tenant>>,
    metrics: ServeMetrics,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Service {
    /// A service with `config.tenants` empty tenants and unregistered
    /// (no-op) metric handles.
    pub fn new(config: ServiceConfig) -> Self {
        let tenants = (0..config.tenants).map(|_| Mutex::default()).collect();
        Service {
            config,
            rng: FaultRng::new(config.seed),
            tenants,
            metrics: ServeMetrics::default(),
        }
    }

    /// Report service activity through `metrics` from now on. Attach
    /// before sharing the service across workers.
    pub fn attach_metrics(&mut self, metrics: ServeMetrics) {
        self.metrics = metrics;
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Number of tenants hosted.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    pub(crate) fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    fn tenant_cell(&self, tenant: usize) -> Result<&Mutex<Tenant>, ServeError> {
        self.tenants.get(tenant).ok_or(ServeError::UnknownTenant {
            tenant,
            tenants: self.tenants.len(),
        })
    }

    /// Submit one batch to `tenant`'s ingest queue.
    ///
    /// Admission is a pure decision hash over `(seed, tenant,
    /// batch_seq)` — the same submission sequence always admits and sheds
    /// the same batches, on any worker. An admitted batch is enqueued;
    /// if the queue is over [`ServiceConfig::queue_batches`] the caller
    /// stalls and drains it synchronously (bounded backpressure), sealing
    /// any full segments into the published catalog.
    pub fn submit(&self, tenant: usize, batch: &[OrderedEvent]) -> Result<Admission, ServeError> {
        let cell = self.tenant_cell(tenant)?;
        let mut t = lock(cell);
        let batch_seq = t.batch_seq;
        t.batch_seq += 1;
        if self.rng.chance(
            self.config.shed_ppm,
            domain::ADMISSION,
            &[tenant as u64, batch_seq],
        ) {
            self.metrics.batches_shed.inc();
            return Ok(Admission::Shed { batch_seq });
        }
        self.metrics.batches_ingested.inc();
        self.metrics.rows_ingested.add(batch.len() as u64);
        t.admitted_rows += batch.len() as u64;
        t.queue.push_back(batch.to_vec());
        if t.queue.len() > self.config.queue_batches {
            self.metrics.backpressure_stalls.inc();
            self.drain(&mut t);
        }
        Ok(Admission::Admitted { batch_seq })
    }

    /// Drain `tenant`'s queue and seal the partial remainder, publishing
    /// everything admitted so far. Call once per tenant when its feed
    /// ends; sealing at any other moment would make the final segment
    /// boundary depend on timing and break catalog byte-identity.
    pub fn flush(&self, tenant: usize) -> Result<(), ServeError> {
        let cell = self.tenant_cell(tenant)?;
        let mut t = lock(cell);
        self.drain(&mut t);
        if !t.builder.is_empty() {
            self.seal(&mut t);
        }
        Ok(())
    }

    /// Move queued batches into the open builder, sealing each time it
    /// reaches the fixed segment boundary. FIFO under the tenant lock:
    /// the sealed output depends only on the admitted batch sequence.
    fn drain(&self, t: &mut Tenant) {
        while let Some(batch) = t.queue.pop_front() {
            for e in &batch {
                t.builder.push(e);
                if t.builder.len() >= SEGMENT_ROWS {
                    self.seal(t);
                }
            }
        }
    }

    fn seal(&self, t: &mut Tenant) {
        let sealed = std::mem::take(&mut t.builder).seal();
        t.sealed_rows += u64::from(sealed.rows());
        t.catalog.push(sealed);
        self.metrics.segments_sealed.inc();
    }

    /// Pin `tenant`'s published catalog as of now. Cheap: clones segment
    /// handles, not segment bytes.
    pub fn snapshot(&self, tenant: usize) -> Result<Snapshot, ServeError> {
        let cell = self.tenant_cell(tenant)?;
        let t = lock(cell);
        self.metrics.snapshots_taken.inc();
        Ok(Snapshot {
            tenant,
            reader: ArchiveReader::new(self.catalog_meta(), t.catalog.clone()),
        })
    }

    /// Pin every tenant's catalog, in tenant order.
    pub fn snapshot_all(&self) -> Vec<Snapshot> {
        (0..self.tenants.len())
            .map(|tenant| {
                let t = lock(&self.tenants[tenant]);
                self.metrics.snapshots_taken.inc();
                Snapshot {
                    tenant,
                    reader: ArchiveReader::new(self.catalog_meta(), t.catalog.clone()),
                }
            })
            .collect()
    }

    /// Rows admitted for `tenant` so far (queued + building + sealed).
    pub fn admitted_rows(&self, tenant: usize) -> Result<u64, ServeError> {
        Ok(lock(self.tenant_cell(tenant)?).admitted_rows)
    }

    fn catalog_meta(&self) -> ArchiveMeta {
        ArchiveMeta {
            seed: self.config.seed,
            scale: self.config.scale,
        }
    }

    /// Run a whole multi-site ingest: `workers` threads claim tenant
    /// feeds from an atomic cursor (the sanctioned scoped-concurrency
    /// pattern) in an order permuted by `interleave_seed`, submit each
    /// feed's batches in order, and flush the tenant when its feed ends.
    ///
    /// The work unit is the *feed*: one tenant's batches are always
    /// processed serially and in order, so each tenant's catalog is a
    /// pure function of its feed — worker count and claim interleaving
    /// change only the wall-clock schedule, never the published bytes.
    /// Feeds must therefore name distinct tenants; duplicates are
    /// rejected up front.
    pub fn run_ingest(
        &self,
        feeds: &[TenantFeed],
        workers: usize,
        interleave_seed: u64,
    ) -> Result<(), ServeError> {
        let mut seen: Vec<usize> = feeds.iter().map(|f| f.tenant).collect();
        seen.sort_unstable();
        for pair in seen.windows(2) {
            if pair[0] == pair[1] {
                return Err(ServeError::DuplicateFeed { tenant: pair[0] });
            }
        }
        let order = self.claim_order(feeds.len(), interleave_seed);
        let cursor = AtomicUsize::new(0);
        let first_error: Mutex<Option<(usize, ServeError)>> = Mutex::new(None);
        let workers = workers.min(feeds.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let claim = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&idx) = order.get(claim) else {
                        break;
                    };
                    let Some(feed) = feeds.get(idx) else {
                        break;
                    };
                    if let Err(e) = self.run_feed(feed) {
                        let mut slot = lock(&first_error);
                        // Keep the lowest-feed-index error: deterministic
                        // regardless of which worker saw one first.
                        if slot.as_ref().is_none_or(|(s, _)| idx < *s) {
                            *slot = Some((idx, e));
                        }
                        break;
                    }
                });
            }
        });
        let outcome = lock(&first_error).take();
        match outcome {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }

    fn run_feed(&self, feed: &TenantFeed) -> Result<(), ServeError> {
        for batch in &feed.batches {
            self.submit(feed.tenant, batch)?;
        }
        self.flush(feed.tenant)
    }

    /// The deterministic feed-claim permutation for `interleave_seed`:
    /// indices sorted by a decision hash, so different seeds schedule
    /// tenants differently while every run of the same seed agrees.
    fn claim_order(&self, n: usize, interleave_seed: u64) -> Vec<usize> {
        let rng = FaultRng::new(interleave_seed);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (rng.decide(domain::INTERLEAVE, &[i as u64]), i));
        order
    }
}

pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Tenant state is updated whole-batch under the lock and the service
    // never unwinds mid-update in library code, so recover from poisoning
    // instead of propagating it — matching the store's scan pattern.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_ipsc::SimTime;
    use charisma_store::{write_archive, Archive};
    use charisma_trace::record::EventBody;

    fn stream(n: u64, node_salt: u64) -> Vec<OrderedEvent> {
        (0..n)
            .map(|i| OrderedEvent {
                time: SimTime::from_micros(i * 3),
                node: ((i + node_salt) % 8) as u16,
                body: EventBody::Read {
                    session: (i % 5) as u32,
                    offset: i * 128,
                    bytes: 128,
                },
            })
            .collect()
    }

    fn batches(events: &[OrderedEvent], batch_rows: usize) -> Vec<Vec<OrderedEvent>> {
        events.chunks(batch_rows).map(<[_]>::to_vec).collect()
    }

    #[test]
    fn published_catalog_matches_the_archive_writer() {
        // A tenant fed the whole stream publishes the exact canonical
        // archive bytes ArchiveWriter produces — build path and serve
        // path meet at one format.
        let config = ServiceConfig {
            tenants: 1,
            ..ServiceConfig::default()
        };
        let service = Service::new(config);
        let events = stream(10_000, 0);
        for batch in batches(&events, 700) {
            service.submit(0, &batch).expect("admits");
        }
        service.flush(0).expect("flushes");
        let snap = service.snapshot(0).expect("snapshots");
        let want = write_archive(
            &events,
            ArchiveMeta {
                seed: config.seed,
                scale: config.scale,
            },
        );
        assert_eq!(snap.to_bytes(), want);
        assert_eq!(snap.rows(), 10_000);
        // And the published bytes parse back as a normal archive.
        let archive = Archive::from_bytes(snap.to_bytes()).expect("parses");
        assert_eq!(archive.events().expect("decodes"), events);
    }

    #[test]
    fn backpressure_drains_and_seals_mid_ingest() {
        let config = ServiceConfig {
            tenants: 1,
            queue_batches: 2,
            ..ServiceConfig::default()
        };
        let mut service = Service::new(config);
        let registry = charisma_obs::MetricsRegistry::new();
        service.attach_metrics(ServeMetrics::register(&registry));
        let events = stream(9000, 0);
        for batch in batches(&events, 1500) {
            service.submit(0, &batch).expect("admits");
        }
        // 6 batches through a 2-batch queue: stalls happened and sealed
        // segments were published before any flush.
        let snap = registry.snapshot();
        assert!(snap.counters["serve.backpressure_stalls"] >= 1);
        assert!(snap.counters["serve.segments_sealed"] >= 1);
        let pre = service.snapshot(0).expect("snapshots");
        assert!(pre.rows() > 0 && pre.rows() < 9000);
        service.flush(0).expect("flushes");
        let post = service.snapshot(0).expect("snapshots");
        assert_eq!(post.rows(), 9000);
        assert_eq!(post.events().expect("reads"), events);
    }

    #[test]
    fn snapshots_pin_a_prefix_equal_to_serial_replay() {
        let config = ServiceConfig {
            tenants: 1,
            queue_batches: 0, // drain on every submit: catalog grows early
            ..ServiceConfig::default()
        };
        let service = Service::new(config);
        let events = stream(12_000, 3);
        let mut snapshots = Vec::new();
        for batch in batches(&events, 900) {
            service.submit(0, &batch).expect("admits");
            snapshots.push(service.snapshot(0).expect("snapshots"));
        }
        for snap in &snapshots {
            let rows = usize::try_from(snap.rows()).expect("fits");
            assert_eq!(
                snap.events().expect("reads"),
                events[..rows],
                "snapshot of {rows} rows must equal the admitted prefix"
            );
            // Sealing happens only at whole-segment boundaries.
            assert_eq!(rows % SEGMENT_ROWS, 0);
        }
        // Later snapshots are supersets: the catalog is append-only.
        for pair in snapshots.windows(2) {
            assert!(pair[1].rows() >= pair[0].rows());
        }
    }

    #[test]
    fn ingest_is_worker_and_interleave_invariant() {
        let events = stream(20_000, 1);
        let feeds: Vec<TenantFeed> = (0..4)
            .map(|tenant| TenantFeed {
                tenant,
                batches: batches(&events[tenant * 5000..(tenant + 1) * 5000], 600),
            })
            .collect();
        let catalogs = |workers: usize, interleave: u64| -> Vec<Vec<u8>> {
            let service = Service::new(ServiceConfig::default());
            service
                .run_ingest(&feeds, workers, interleave)
                .expect("ingests");
            service
                .snapshot_all()
                .iter()
                .map(Snapshot::to_bytes)
                .collect()
        };
        let baseline = catalogs(1, 1);
        for workers in [1, 2, 4] {
            for interleave in [1, 2] {
                assert_eq!(
                    catalogs(workers, interleave),
                    baseline,
                    "workers={workers} interleave={interleave}"
                );
            }
        }
    }

    #[test]
    fn admission_shedding_is_deterministic_and_counted() {
        let config = ServiceConfig {
            tenants: 2,
            shed_ppm: 300_000, // ~30% of batches
            ..ServiceConfig::default()
        };
        let events = stream(8000, 0);
        let run = || {
            let mut service = Service::new(config);
            let registry = charisma_obs::MetricsRegistry::new();
            service.attach_metrics(ServeMetrics::register(&registry));
            let mut verdicts = Vec::new();
            for tenant in 0..2 {
                for batch in batches(&events, 400) {
                    verdicts.push(service.submit(tenant, &batch).expect("submits"));
                }
                service.flush(tenant).expect("flushes");
            }
            let bytes: Vec<Vec<u8>> = service
                .snapshot_all()
                .iter()
                .map(Snapshot::to_bytes)
                .collect();
            let shed = registry.snapshot().counters["serve.batches_shed"];
            (verdicts, bytes, shed)
        };
        let (verdicts, bytes, shed) = run();
        assert!(shed > 0, "a 30% shed rate must shed something");
        assert!(verdicts
            .iter()
            .any(|v| matches!(v, Admission::Admitted { .. })));
        // Pure decision hash: a rerun reproduces verdicts, bytes, counts.
        assert_eq!(run(), (verdicts, bytes, shed));
    }

    #[test]
    fn unknown_tenants_and_duplicate_feeds_are_rejected() {
        let service = Service::new(ServiceConfig {
            tenants: 2,
            ..ServiceConfig::default()
        });
        assert!(matches!(
            service.submit(2, &[]),
            Err(ServeError::UnknownTenant {
                tenant: 2,
                tenants: 2
            })
        ));
        assert!(matches!(
            service.snapshot(9),
            Err(ServeError::UnknownTenant { tenant: 9, .. })
        ));
        let feeds = vec![
            TenantFeed {
                tenant: 0,
                batches: Vec::new(),
            },
            TenantFeed {
                tenant: 0,
                batches: Vec::new(),
            },
        ];
        assert!(matches!(
            service.run_ingest(&feeds, 2, 1),
            Err(ServeError::DuplicateFeed { tenant: 0 })
        ));
    }
}
