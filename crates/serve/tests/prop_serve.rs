//! Property tests for the serve layer.
//!
//! Three promises, pinned over arbitrary tenant streams, queries, worker
//! counts, and queue bounds:
//! * a federated scan over K tenants equals concatenating K serial scans
//!   in tenant order and re-sorting by the canonical `(time, node)` key
//!   (stable — ties keep tenant order, the federation analog of the trace
//!   layer's `(time, node, shard, seq)` merge key);
//! * a snapshot taken at any point mid-ingest sees exactly a prefix of
//!   the tenant's admitted stream — a serial replay of the pinned prefix,
//!   immune to concurrent ingest and queue-pressure timing;
//! * published catalog bytes are invariant to the ingest worker count and
//!   interleave seed.

use charisma_ipsc::SimTime;
use charisma_serve::{Service, ServiceConfig, TenantFeed};
use charisma_store::{OpClass, OpSet, Query};
use charisma_trace::record::{AccessKind, EventBody};
use charisma_trace::OrderedEvent;
use proptest::prelude::*;

/// Bodies with deliberately small id alphabets so queries actually hit.
fn arb_body() -> impl Strategy<Value = EventBody> {
    prop_oneof![
        (0u32..8, any::<u16>(), any::<bool>())
            .prop_map(|(job, nodes, traced)| EventBody::JobStart { job, nodes, traced }),
        (0u32..8).prop_map(|job| EventBody::JobEnd { job }),
        (0u32..8, 0u32..16, 0u32..24, 0u8..4, 0u8..3, any::<bool>()).prop_map(
            |(job, file, session, mode, acc, created)| EventBody::Open {
                job,
                file,
                session,
                mode,
                access: AccessKind::from_code(acc).expect("0..3"),
                created,
            }
        ),
        (0u32..24, any::<u64>(), any::<u32>()).prop_map(|(session, offset, bytes)| {
            EventBody::Read {
                session,
                offset,
                bytes,
            }
        }),
        (0u32..24, any::<u64>(), any::<u32>()).prop_map(|(session, offset, bytes)| {
            EventBody::Write {
                session,
                offset,
                bytes,
            }
        }),
        (0u32..8, 0u32..16).prop_map(|(job, file)| EventBody::Delete { job, file }),
    ]
}

/// One tenant's stream: ordered by `(time, node)` like every producer of
/// archive input, with a small time alphabet so cross-tenant ties occur.
fn arb_stream(max_len: usize) -> impl Strategy<Value = Vec<OrderedEvent>> {
    proptest::collection::vec((0u64..5_000, 0u16..6, arb_body()), 0..max_len).prop_map(|raw| {
        let mut events: Vec<OrderedEvent> = raw
            .into_iter()
            .map(|(t, node, body)| OrderedEvent {
                time: SimTime::from_micros(t),
                node,
                body,
            })
            .collect();
        events.sort_by_key(|e| (e.time, e.node));
        events
    })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        proptest::option::of((0u64..5_000, 0u64..5_000)),
        proptest::option::of(proptest::collection::vec(0u32..10, 0..3)),
        proptest::option::of(proptest::collection::vec(0u16..7, 0..3)),
        any::<bool>(),
    )
        .prop_map(|(time, jobs, nodes, requests_only)| {
            let mut q = Query::all();
            if let Some((a, b)) = time {
                q = q.time_window(
                    SimTime::from_micros(a.min(b)),
                    SimTime::from_micros(a.max(b)),
                );
            }
            if let Some(jobs) = jobs {
                q = q.jobs(&jobs);
            }
            if let Some(nodes) = nodes {
                q = q.nodes(&nodes);
            }
            if requests_only {
                q = q.ops(OpSet::requests().with(OpClass::Open));
            }
            q
        })
}

/// Split a stream into batches of `batch_rows` (at least 1).
fn batches(events: &[OrderedEvent], batch_rows: usize) -> Vec<Vec<OrderedEvent>> {
    events
        .chunks(batch_rows.max(1))
        .map(<[_]>::to_vec)
        .collect()
}

fn ingested(streams: &[Vec<OrderedEvent>], batch_rows: usize) -> Service {
    let service = Service::new(ServiceConfig {
        tenants: streams.len(),
        ..ServiceConfig::default()
    });
    let feeds: Vec<TenantFeed> = streams
        .iter()
        .enumerate()
        .map(|(tenant, events)| TenantFeed {
            tenant,
            batches: batches(events, batch_rows),
        })
        .collect();
    service.run_ingest(&feeds, 2, 7).expect("ingests");
    service
}

proptest! {
    /// Federated scan ≡ concat serial per-tenant scans, stable-sorted by
    /// the canonical `(time, node)` key, for arbitrary queries and worker
    /// counts.
    #[test]
    fn federated_scan_equals_concat_and_sort(
        streams in proptest::collection::vec(arb_stream(300), 1..5),
        q in arb_query(),
        workers in 1usize..5,
        batch_rows in 1usize..200,
    ) {
        let service = ingested(&streams, batch_rows);
        let mut want = Vec::new();
        for tenant in 0..streams.len() {
            let snap = service.snapshot(tenant).expect("snapshots");
            want.extend(snap.query(q.clone()).events().expect("scans"));
        }
        want.sort_by_key(|e| (e.time, e.node)); // stable: ties keep tenant order
        let got = service.federated(q).workers(workers).events().expect("federates");
        prop_assert_eq!(got, want);
    }

    /// A snapshot taken after any submission equals a serial replay of
    /// the prefix it pinned, under arbitrary batch sizes and queue
    /// bounds — and the final flush publishes exactly the full stream.
    #[test]
    fn snapshots_see_exactly_a_pinned_prefix(
        events in arb_stream(500),
        batch_rows in 1usize..120,
        queue_batches in 0usize..6,
    ) {
        let service = Service::new(ServiceConfig {
            tenants: 1,
            queue_batches,
            ..ServiceConfig::default()
        });
        for batch in batches(&events, batch_rows) {
            service.submit(0, &batch).expect("admits");
            let snap = service.snapshot(0).expect("snapshots");
            let rows = usize::try_from(snap.rows()).expect("fits");
            prop_assert!(rows <= events.len());
            prop_assert_eq!(snap.events().expect("reads"), &events[..rows]);
        }
        service.flush(0).expect("flushes");
        let snap = service.snapshot(0).expect("snapshots");
        prop_assert_eq!(snap.events().expect("reads"), events);
    }

    /// Published catalog bytes are a pure function of the per-tenant
    /// feeds: every worker count and interleave seed agrees.
    #[test]
    fn catalog_bytes_are_schedule_invariant(
        streams in proptest::collection::vec(arb_stream(250), 1..5),
        batch_rows in 1usize..150,
        interleave in 0u64..100,
    ) {
        let publish = |workers: usize, seed: u64| -> Vec<Vec<u8>> {
            let service = Service::new(ServiceConfig {
                tenants: streams.len(),
                ..ServiceConfig::default()
            });
            let feeds: Vec<TenantFeed> = streams
                .iter()
                .enumerate()
                .map(|(tenant, events)| TenantFeed {
                    tenant,
                    batches: batches(events, batch_rows),
                })
                .collect();
            service.run_ingest(&feeds, workers, seed).expect("ingests");
            service
                .snapshot_all()
                .iter()
                .map(charisma_serve::Snapshot::to_bytes)
                .collect()
        };
        let baseline = publish(1, 0);
        for workers in [2usize, 4] {
            prop_assert_eq!(publish(workers, interleave), baseline.clone());
        }
    }
}
