//! Property tests for the characterization: the streaming analyzer must
//! agree with brute-force oracles on arbitrary request streams.

use charisma_core::analyze::analyze;
use charisma_core::cdf::Cdf;
use charisma_core::sequential::{session_percent, Metric};
use charisma_ipsc::SimTime;
use charisma_trace::record::{AccessKind, EventBody};
use charisma_trace::OrderedEvent;
use proptest::prelude::*;

fn events_for(requests: &[(u16, u64, u32)]) -> Vec<OrderedEvent> {
    let mut events = Vec::with_capacity(requests.len() + 4);
    let mut nodes: Vec<u16> = requests.iter().map(|r| r.0).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for (i, &n) in nodes.iter().enumerate() {
        events.push(OrderedEvent {
            time: SimTime::from_micros(i as u64),
            node: n,
            body: EventBody::Open {
                job: 1,
                file: 1,
                session: 1,
                mode: 0,
                access: AccessKind::Read,
                created: false,
            },
        });
    }
    for (i, &(node, offset, bytes)) in requests.iter().enumerate() {
        events.push(OrderedEvent {
            time: SimTime::from_micros(100 + i as u64),
            node,
            body: EventBody::Read {
                session: 1,
                offset,
                bytes,
            },
        });
    }
    events
}

/// Brute-force per-node sequential/consecutive percentages.
fn oracle(requests: &[(u16, u64, u32)], consecutive: bool) -> Option<f64> {
    let mut counted = 0u64;
    let mut hits = 0u64;
    let mut nodes: Vec<u16> = requests.iter().map(|r| r.0).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for n in nodes {
        let mine: Vec<_> = requests.iter().filter(|r| r.0 == n).collect();
        for w in mine.windows(2) {
            counted += 1;
            let prev_end = w[0].1 + u64::from(w[0].2);
            let ok = if consecutive {
                w[1].1 == prev_end
            } else {
                w[1].1 > w[0].1
            };
            if ok {
                hits += 1;
            }
        }
    }
    (counted > 0).then(|| 100.0 * hits as f64 / counted as f64)
}

proptest! {
    /// The analyzer's sequential/consecutive percentages equal a
    /// brute-force recomputation for arbitrary interleaved multi-node
    /// request streams.
    #[test]
    fn sequentiality_matches_oracle(
        requests in proptest::collection::vec((0u16..4, 0u64..100_000, 1u32..5000), 0..120),
    ) {
        let events = events_for(&requests);
        let c = analyze(&events);
        if requests.is_empty() {
            return Ok(());
        }
        let s = &c.sessions[&1];
        for (metric, brute) in [
            (Metric::Sequential, oracle(&requests, false)),
            (Metric::Consecutive, oracle(&requests, true)),
        ] {
            let got = session_percent(s, metric);
            match (got, brute) {
                (Some(g), Some(b)) => prop_assert!((g - b).abs() < 1e-9, "{g} vs {b}"),
                (None, None) => {}
                other => return Err(TestCaseError::fail(format!("mismatch: {other:?}"))),
            }
        }
    }

    /// Distinct interval and request-size counts match brute force (with
    /// the 4+ saturation).
    #[test]
    fn regularity_matches_oracle(
        requests in proptest::collection::vec((0u16..3, 0u64..50_000, 1u32..4000), 0..100),
    ) {
        let events = events_for(&requests);
        let c = analyze(&events);
        if requests.is_empty() {
            return Ok(());
        }
        let s = &c.sessions[&1];
        // Brute-force interval set.
        let mut gaps = std::collections::HashSet::new();
        for n in 0u16..3 {
            let mine: Vec<_> = requests.iter().filter(|r| r.0 == n).collect();
            for w in mine.windows(2) {
                gaps.insert(w[1].1 as i64 - (w[0].1 + u64::from(w[0].2)) as i64);
            }
        }
        let sizes: std::collections::HashSet<u32> =
            requests.iter().map(|r| r.2).collect();
        prop_assert_eq!(s.intervals.distinct(), gaps.len().min(6));
        prop_assert_eq!(s.request_sizes.distinct(), sizes.len().min(6));
    }

    /// CDF queries agree with naive counting for arbitrary samples.
    #[test]
    fn cdf_matches_naive(samples in proptest::collection::vec(0u64..10_000, 1..300), probe in 0u64..10_000) {
        let mut cdf = Cdf::new();
        for &s in &samples {
            cdf.add(s);
        }
        cdf.seal();
        let naive = samples.iter().filter(|&&s| s <= probe).count() as f64
            / samples.len() as f64;
        prop_assert!((cdf.fraction_le(probe) - naive).abs() < 1e-9);
        // Quantile inverse: CDF(quantile(q)) >= q.
        for q in [0.1, 0.5, 0.9, 1.0] {
            let v = cdf.quantile(q).unwrap();
            prop_assert!(cdf.fraction_le(v) + 1e-9 >= q);
        }
    }

    /// Sharing percentages are well-defined: bounded to [0, 100], present
    /// exactly when two nodes accessed the file, and any byte sharing
    /// implies some block sharing.
    #[test]
    fn sharing_percentages_are_consistent(
        requests in proptest::collection::vec((0u16..2, 0u64..200_000, 1u32..9000), 2..80),
    ) {
        use charisma_core::sharing::{shared_percent, Granularity};
        let both_nodes = requests.iter().any(|r| r.0 == 0) && requests.iter().any(|r| r.0 == 1);
        let events = events_for(&requests);
        let c = analyze(&events);
        let s = &c.sessions[&1];
        let bytes = shared_percent(s, Granularity::Bytes);
        let blocks = shared_percent(s, Granularity::Blocks);
        if !both_nodes {
            prop_assert_eq!(bytes, None);
            return Ok(());
        }
        let (Some(by), Some(bl)) = (bytes, blocks) else {
            return Err(TestCaseError::fail("expected sharing data"));
        };
        prop_assert!((0.0..=100.0).contains(&by));
        prop_assert!((0.0..=100.0).contains(&bl));
        if by > 0.0 {
            prop_assert!(bl > 0.0, "byte sharing implies block sharing");
        }
    }
}
