//! Cumulative distribution functions.
//!
//! The paper presents most of its results as CDFs ("For a file size x,
//! CDF(x) represents the fraction of all files that had x or fewer
//! bytes"). [`Cdf`] supports weighted samples, so the same type serves
//! count-weighted curves (Figure 4's "fraction of reads") and
//! byte-weighted curves (Figure 4's "fraction of data").

/// A weighted empirical CDF over `u64` sample values.
#[derive(Clone, Debug, Default)]
pub struct Cdf {
    /// `(value, cumulative_weight)` pairs, ascending by value, after
    /// [`Cdf::seal`].
    points: Vec<(u64, f64)>,
    total: f64,
    sealed: bool,
}

impl Cdf {
    /// An empty CDF.
    pub fn new() -> Self {
        Cdf::default()
    }

    /// Add a sample with weight 1.
    pub fn add(&mut self, value: u64) {
        self.add_weighted(value, 1.0);
    }

    /// Add a sample with an explicit weight.
    pub fn add_weighted(&mut self, value: u64, weight: f64) {
        assert!(!self.sealed, "CDF already sealed");
        assert!(weight >= 0.0, "negative weight");
        self.points.push((value, weight));
        self.total += weight;
    }

    /// Sort and cumulate. Must be called before queries.
    pub fn seal(&mut self) {
        if self.sealed {
            return;
        }
        self.points.sort_unstable_by_key(|&(v, _)| v);
        // Collapse duplicates, then cumulate.
        let mut out: Vec<(u64, f64)> = Vec::with_capacity(self.points.len());
        for &(v, w) in &self.points {
            match out.last_mut() {
                Some((lv, lw)) if *lv == v => *lw += w,
                _ => out.push((v, w)),
            }
        }
        let mut acc = 0.0;
        for p in &mut out {
            acc += p.1;
            p.1 = acc;
        }
        self.points = out;
        self.sealed = true;
    }

    /// Total weight.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of distinct sample values (after sealing).
    pub fn distinct(&self) -> usize {
        self.points.len()
    }

    /// CDF(x): fraction of weight at values ≤ `x`.
    pub fn fraction_le(&self, x: u64) -> f64 {
        assert!(self.sealed, "seal() before querying");
        if self.total == 0.0 {
            return 0.0;
        }
        match self.points.binary_search_by_key(&x, |&(v, _)| v) {
            Ok(i) => self.points[i].1 / self.total,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1 / self.total,
        }
    }

    /// Smallest value v with CDF(v) ≥ `q` (0 < q ≤ 1).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!(self.sealed, "seal() before querying");
        if self.total == 0.0 {
            return None;
        }
        let target = q * self.total;
        self.points
            .iter()
            .find(|&&(_, acc)| acc + 1e-9 >= target)
            .map(|&(v, _)| v)
    }

    /// The curve as `(value, cumulative_fraction)` points for plotting.
    pub fn curve(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        assert!(self.sealed, "seal() before querying");
        let total = self.total.max(f64::MIN_POSITIVE);
        self.points.iter().map(move |&(v, acc)| (v, acc / total))
    }

    /// Sample the curve at logarithmically spaced probe values — the shape
    /// the paper's log-x-axis figures show.
    pub fn log_samples(&self, lo: u64, hi: u64, per_decade: usize) -> Vec<(u64, f64)> {
        assert!(self.sealed, "seal() before querying");
        assert!(lo > 0 && hi >= lo && per_decade > 0);
        let mut out = Vec::new();
        let mut x = lo as f64;
        let step = 10f64.powf(1.0 / per_decade as f64);
        while x <= hi as f64 * 1.0001 {
            let v = x.round() as u64;
            out.push((v, self.fraction_le(v)));
            x *= step;
        }
        out
    }

    /// Mean of the distribution (weight-weighted).
    pub fn mean(&self) -> f64 {
        assert!(self.sealed, "seal() before querying");
        if self.total == 0.0 {
            return 0.0;
        }
        let mut prev = 0.0;
        let mut sum = 0.0;
        for &(v, acc) in &self.points {
            sum += v as f64 * (acc - prev);
            prev = acc;
        }
        sum / self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sealed(values: &[u64]) -> Cdf {
        let mut c = Cdf::new();
        for &v in values {
            c.add(v);
        }
        c.seal();
        c
    }

    #[test]
    fn basic_fractions() {
        let c = sealed(&[1, 2, 2, 3, 10]);
        assert_eq!(c.fraction_le(0), 0.0);
        assert!((c.fraction_le(1) - 0.2).abs() < 1e-12);
        assert!((c.fraction_le(2) - 0.6).abs() < 1e-12);
        assert!((c.fraction_le(5) - 0.8).abs() < 1e-12);
        assert_eq!(c.fraction_le(10), 1.0);
        assert_eq!(c.fraction_le(u64::MAX), 1.0);
    }

    #[test]
    fn weighted_fractions() {
        // Figure 4 style: many small requests, little data.
        let mut by_count = Cdf::new();
        let mut by_bytes = Cdf::new();
        for _ in 0..96 {
            by_count.add(1000);
            by_bytes.add_weighted(1000, 1000.0);
        }
        for _ in 0..4 {
            by_count.add(1_000_000);
            by_bytes.add_weighted(1_000_000, 1_000_000.0);
        }
        by_count.seal();
        by_bytes.seal();
        assert!(by_count.fraction_le(4000) > 0.95);
        assert!(by_bytes.fraction_le(4000) < 0.05);
    }

    #[test]
    fn quantiles() {
        let c = sealed(&[10, 20, 30, 40]);
        assert_eq!(c.quantile(0.25), Some(10));
        assert_eq!(c.quantile(0.5), Some(20));
        assert_eq!(c.quantile(1.0), Some(40));
        assert_eq!(sealed(&[]).quantile(0.5), None);
    }

    #[test]
    fn mean_matches_arithmetic() {
        let c = sealed(&[2, 4, 6]);
        assert!((c.mean() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn curve_is_monotone() {
        let c = sealed(&[5, 1, 9, 1, 5, 100, 2]);
        let pts: Vec<_> = c.curve().collect();
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_samples_cover_range() {
        let c = sealed(&[100, 1000, 10_000]);
        let s = c.log_samples(10, 100_000, 4);
        assert!(s.len() > 12);
        assert_eq!(s.first().unwrap().1, 0.0);
        assert_eq!(s.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic(expected = "seal")]
    fn query_before_seal_panics() {
        Cdf::new().fraction_le(1);
    }
}
