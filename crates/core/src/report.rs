//! Render the full characterization as text — the same tables and curve
//! summaries the paper presents, with the paper's numbers alongside for
//! comparison.

use std::fmt::Write as _;

use charisma_trace::OrderedEvent;

use crate::analyze::{analyze, Analyzer, Characterization, SessionClass};
use crate::census;
use crate::intervals;
use crate::jobs;
use crate::jobstats;
use crate::modes;
use crate::requests::{self, RequestSizes};
use crate::sequential::{self, Metric};
use crate::sharing;

/// A fully computed characterization report.
pub struct Report {
    /// The accumulated per-job / per-session state.
    pub chars: Characterization,
    /// Figure 4's curves.
    pub request_sizes: RequestSizes,
}

impl Report {
    /// Analyze an ordered event stream.
    pub fn from_events(events: &[OrderedEvent]) -> Report {
        Report {
            chars: analyze(events),
            request_sizes: requests::request_sizes(events),
        }
    }

    /// Analyze a *streaming* ordered event source in a single pass.
    ///
    /// The sharded pipeline's k-way merge yields events as an iterator;
    /// this entry point consumes it without materializing a `Vec` first
    /// (and without the two passes [`Self::from_events`] makes over its
    /// slice). Events must arrive in rectified stream order.
    pub fn from_stream<I>(events: I) -> Report
    where
        I: IntoIterator<Item = OrderedEvent>,
    {
        let mut analyzer = Analyzer::new();
        let mut sizes = requests::RequestSizes::new();
        for e in events {
            analyzer.push(&e);
            sizes.push(&e);
        }
        sizes.seal();
        Report {
            chars: analyzer.finish(),
            request_sizes: sizes,
        }
    }

    /// Render every §4 figure and table as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_jobs(&mut out);
        self.render_census(&mut out);
        self.render_requests(&mut out);
        self.render_sequentiality(&mut out);
        self.render_regularity(&mut out);
        self.render_modes(&mut out);
        self.render_sharing(&mut out);
        self.render_jobstats(&mut out);
        out
    }

    /// Figure 1, Figure 2, Table 1.
    pub fn render_jobs(&self, out: &mut String) {
        let c = &self.chars;
        writeln!(out, "== Jobs (paper §4.1) ==").unwrap();
        writeln!(out, "Figure 1: % of time at each job-concurrency level").unwrap();
        for (k, f) in jobs::concurrency_profile(c).iter().enumerate() {
            writeln!(out, "  {k} jobs: {:5.1}%", 100.0 * f).unwrap();
        }
        writeln!(out, "  (paper: >25% idle; ~35% of time more than one job)").unwrap();
        writeln!(out, "Figure 2: % of jobs by compute-node count").unwrap();
        for (n, pct) in jobs::node_usage(c) {
            writeln!(out, "  {n:>3} nodes: {pct:5.1}%").unwrap();
        }
        let t1 = jobs::files_per_job(c);
        writeln!(out, "Table 1: files opened per traced job").unwrap();
        writeln!(out, "  files  jobs   (paper)").unwrap();
        for (label, got, paper) in [
            ("1 ", t1[0], 71),
            ("2 ", t1[1], 15),
            ("3 ", t1[2], 24),
            ("4 ", t1[3], 120),
            ("5+", t1[4], 240),
        ] {
            writeln!(out, "  {label:>4}  {got:>5}   ({paper})").unwrap();
        }
    }

    /// §4.2 census and Figure 3.
    pub fn render_census(&self, out: &mut String) {
        let cen = census::census(&self.chars);
        writeln!(out, "== Files (paper §4.2) ==").unwrap();
        writeln!(out, "  opens            {:>7}   (paper ~64,000)", cen.total).unwrap();
        writeln!(
            out,
            "  write-only       {:>7}   (paper 44,500)",
            cen.write_only
        )
        .unwrap();
        writeln!(
            out,
            "  read-only        {:>7}   (paper 14,500)",
            cen.read_only
        )
        .unwrap();
        writeln!(
            out,
            "  read-write       {:>7}   (paper <2,300)",
            cen.read_write
        )
        .unwrap();
        writeln!(
            out,
            "  unaccessed       {:>7}   (paper ~2,500)",
            cen.unaccessed
        )
        .unwrap();
        writeln!(
            out,
            "  temporary        {:>6.2}%   (paper 0.61%)",
            100.0 * cen.temporary_fraction()
        )
        .unwrap();
        writeln!(
            out,
            "  MB written/WO file {:>6.2}  (paper 1.2)",
            cen.avg_bytes_written_wo / 1e6
        )
        .unwrap();
        writeln!(
            out,
            "  MB read/RO file    {:>6.2}  (paper 3.3)",
            cen.avg_bytes_read_ro / 1e6
        )
        .unwrap();
        let cdf = census::size_cdf(&self.chars);
        writeln!(out, "Figure 3: CDF of file size at close").unwrap();
        for (x, f) in cdf.log_samples(100, 10_000_000, 1) {
            writeln!(out, "  ≤{x:>9} B: {:5.1}%", 100.0 * f).unwrap();
        }
    }

    /// Figure 4.
    pub fn render_requests(&self, out: &mut String) {
        let rs = &self.request_sizes;
        writeln!(out, "== I/O request sizes (paper §4.3, Figure 4) ==").unwrap();
        writeln!(
            out,
            "  reads <4000B:       {:5.1}% of reads   (paper 96.1%)",
            100.0 * rs.small_read_fraction()
        )
        .unwrap();
        writeln!(
            out,
            "  data via those:     {:5.1}% of bytes   (paper 2.0%)",
            100.0 * rs.small_read_data_fraction()
        )
        .unwrap();
        writeln!(
            out,
            "  writes <4000B:      {:5.1}% of writes  (paper 89.4%)",
            100.0 * rs.small_write_fraction()
        )
        .unwrap();
        writeln!(
            out,
            "  data via those:     {:5.1}% of bytes   (paper 3%)",
            100.0 * rs.small_write_data_fraction()
        )
        .unwrap();
        writeln!(out, "  read-size CDF (count / bytes):").unwrap();
        for (x, f) in rs.reads_by_count.log_samples(100, 2_000_000, 1) {
            let fb = rs.reads_by_bytes.fraction_le(x);
            writeln!(out, "  ≤{x:>9} B: {:5.1}% / {:5.1}%", 100.0 * f, 100.0 * fb).unwrap();
        }
    }

    /// Figures 5 and 6.
    pub fn render_sequentiality(&self, out: &mut String) {
        writeln!(out, "== Sequentiality (paper §4.4, Figures 5-6) ==").unwrap();
        let seq = sequential::cdfs(&self.chars, Metric::Sequential);
        let con = sequential::cdfs(&self.chars, Metric::Consecutive);
        writeln!(
            out,
            "  fully sequential:  RO {:5.1}%  WO {:5.1}%  RW {:5.1}%",
            100.0 * seq.fully(SessionClass::ReadOnly),
            100.0 * seq.fully(SessionClass::WriteOnly),
            100.0 * seq.fully(SessionClass::ReadWrite),
        )
        .unwrap();
        writeln!(out, "    (paper: RO and WO mostly 100%; RW mostly not)").unwrap();
        writeln!(
            out,
            "  fully consecutive: RO {:5.1}%  WO {:5.1}%  RW {:5.1}%",
            100.0 * con.fully(SessionClass::ReadOnly),
            100.0 * con.fully(SessionClass::WriteOnly),
            100.0 * con.fully(SessionClass::ReadWrite),
        )
        .unwrap();
        writeln!(out, "    (paper: 29% of RO, 86% of WO)").unwrap();
    }

    /// Tables 2 and 3.
    pub fn render_regularity(&self, out: &mut String) {
        let t2 = intervals::interval_table(&self.chars);
        let t3 = intervals::request_size_table(&self.chars);
        writeln!(out, "== Regularity (paper §4.5, Tables 2-3) ==").unwrap();
        writeln!(out, "Table 2: distinct interval sizes per file").unwrap();
        let p2 = t2.percents();
        for (i, paper) in [36.5, 58.2, 4.0, 0.2, 1.0].iter().enumerate() {
            let label = if i == 4 { "4+".into() } else { i.to_string() };
            writeln!(
                out,
                "  {label:>2}: {:>6} files {:5.1}%  (paper {paper}%)",
                t2.rows[i], p2[i]
            )
            .unwrap();
        }
        writeln!(
            out,
            "  1-interval files consecutive: {:5.1}% (paper >99%)",
            100.0 * intervals::one_interval_consecutive_fraction(&self.chars)
        )
        .unwrap();
        writeln!(out, "Table 3: distinct request sizes per file").unwrap();
        let p3 = t3.percents();
        for (i, paper) in [3.9, 40.0, 51.4, 3.9, 0.8].iter().enumerate() {
            let label = if i == 4 { "4+".into() } else { i.to_string() };
            writeln!(
                out,
                "  {label:>2}: {:>6} files {:5.1}%  (paper {paper}%)",
                t3.rows[i], p3[i]
            )
            .unwrap();
        }
    }

    /// §4.6.
    pub fn render_modes(&self, out: &mut String) {
        let u = modes::mode_usage(&self.chars);
        writeln!(out, "== I/O modes (paper §4.6) ==").unwrap();
        for (m, &k) in u.counts.iter().enumerate() {
            writeln!(out, "  mode {m}: {k} files").unwrap();
        }
        writeln!(
            out,
            "  mode 0 share: {:5.2}% (paper >99%)",
            100.0 * u.mode0_fraction()
        )
        .unwrap();
    }

    /// Per-job I/O concentration (companion-TR view).
    pub fn render_jobstats(&self, out: &mut String) {
        let stats = jobstats::job_io(&self.chars);
        writeln!(out, "== Per-job I/O (companion TR view) ==").unwrap();
        writeln!(
            out,
            "  traced jobs with I/O: {}   total data moved: {:.1} MB",
            stats.jobs.len(),
            stats.total_bytes() as f64 / 1e6
        )
        .unwrap();
        for k in [1usize, 5, 20] {
            writeln!(
                out,
                "  busiest {k:>2} job(s) carry {:5.1}% of all bytes",
                100.0 * stats.top_k_byte_share(k)
            )
            .unwrap();
        }
        writeln!(
            out,
            "  median per-job I/O intensity: {:.1} KB/s over the job lifetime",
            stats.median_intensity() / 1e3
        )
        .unwrap();
    }

    /// Figure 7.
    pub fn render_sharing(&self, out: &mut String) {
        let cdfs = sharing::sharing_cdfs(&self.chars);
        writeln!(out, "== Sharing (paper §4.7, Figure 7) ==").unwrap();
        let fully = |c: &crate::cdf::Cdf| {
            if c.total() == 0.0 {
                0.0
            } else {
                1.0 - c.fraction_le(99)
            }
        };
        let none = |c: &crate::cdf::Cdf| {
            if c.total() == 0.0 {
                0.0
            } else {
                c.fraction_le(0)
            }
        };
        writeln!(
            out,
            "  RO files 100% byte-shared:  {:5.1}% (paper 70%)",
            100.0 * fully(&cdfs.read_bytes)
        )
        .unwrap();
        writeln!(
            out,
            "  WO files 0% byte-shared:    {:5.1}% (paper 90%)",
            100.0 * none(&cdfs.write_bytes)
        )
        .unwrap();
        writeln!(
            out,
            "  RW files 100% byte-shared:  {:5.1}% (paper ~50%)",
            100.0 * fully(&cdfs.rw_bytes)
        )
        .unwrap();
        writeln!(
            out,
            "  RW files 100% block-shared: {:5.1}% (paper 93%)",
            100.0 * fully(&cdfs.rw_blocks)
        )
        .unwrap();
        writeln!(
            out,
            "  files concurrently shared between jobs: {} (paper 0)",
            sharing::concurrent_interjob_shares(&self.chars)
        )
        .unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_ipsc::SimTime;
    use charisma_trace::record::{AccessKind, EventBody};

    fn tiny_events() -> Vec<OrderedEvent> {
        let mut events = Vec::new();
        let t = |us: u64| SimTime::from_micros(us);
        events.push(OrderedEvent {
            time: t(0),
            node: u16::MAX,
            body: EventBody::JobStart {
                job: 1,
                nodes: 2,
                traced: true,
            },
        });
        events.push(OrderedEvent {
            time: t(1),
            node: 0,
            body: EventBody::Open {
                job: 1,
                file: 1,
                session: 1,
                mode: 0,
                access: AccessKind::Write,
                created: true,
            },
        });
        for k in 0..5u64 {
            events.push(OrderedEvent {
                time: t(2 + k),
                node: 0,
                body: EventBody::Write {
                    session: 1,
                    offset: k * 1000,
                    bytes: 1000,
                },
            });
        }
        events.push(OrderedEvent {
            time: t(10),
            node: 0,
            body: EventBody::Close {
                session: 1,
                size: 5000,
            },
        });
        events.push(OrderedEvent {
            time: t(20),
            node: u16::MAX,
            body: EventBody::JobEnd { job: 1 },
        });
        events
    }

    #[test]
    fn report_renders_all_sections() {
        let events = tiny_events();
        let r = Report::from_events(&events);
        let text = r.render();
        for needle in [
            "Figure 1",
            "Figure 2",
            "Table 1",
            "Figure 3",
            "Figure 4",
            "Figures 5-6",
            "Table 2",
            "Table 3",
            "I/O modes",
            "Figure 7",
        ] {
            assert!(text.contains(needle), "missing section {needle}");
        }
    }

    #[test]
    fn report_reflects_the_data() {
        let events = tiny_events();
        let r = Report::from_events(&events);
        let text = r.render();
        assert!(text.contains("write-only             1"), "{text}");
    }
}
