//! Workload characterization — the paper's analysis layer.
//!
//! One streaming pass over a rectified trace ([`analyze`]) builds
//! per-job and per-session state; the sub-modules then derive every table
//! and figure of the paper's §4:
//!
//! * [`jobs`] — Figure 1 (machine concurrency), Figure 2 (nodes per job),
//!   Table 1 (files opened per job);
//! * [`census`] — §4.2's file census and Figure 3 (file sizes at close);
//! * [`requests`] — Figure 4 (request sizes, by count and by data moved);
//! * [`sequential`] — Figures 5-6 (sequential and consecutive access);
//! * [`intervals`] — Tables 2-3 (distinct interval and request sizes);
//! * [`modes`] — §4.6 (I/O-mode usage);
//! * [`sharing`] — Figure 7 (byte- and block-level sharing between nodes);
//! * [`report`] — renders the whole characterization as text.
//!
//! The unit of the per-file statistics is the *open session* (one parallel
//! open of a path by one job), which is the paper's operational unit: its
//! ~64,000 "files" are opens observed during the traced period.

pub mod analyze;
pub mod cdf;
pub mod census;
pub mod export;
pub mod intervals;
pub mod jobs;
pub mod jobstats;
pub mod modes;
pub mod plot;
pub mod report;
pub mod requests;
pub mod sequential;
pub mod sharing;

pub use analyze::{analyze, Analyzer, Characterization, JobInfo, SessionStat};
pub use cdf::Cdf;
