//! Per-job I/O statistics.
//!
//! The paper's companion technical report (PCS-TR94-211, reference [21] —
//! "More detail may be found in [21]") breaks the workload down by job:
//! how much I/O each job did, how concentrated the traffic was, and how
//! I/O-intensive jobs were relative to their lifetimes. This module
//! derives those views from the characterization, because they motivate
//! the paper's multiprogramming point: "a file system clearly must provide
//! high-performance access by many concurrent, presumably unrelated,
//! jobs".

use std::collections::HashMap;

use crate::analyze::Characterization;

/// Aggregated I/O facts for one job.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct JobIo {
    /// Read requests.
    pub reads: u64,
    /// Write requests.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Sessions the job opened.
    pub files: u32,
    /// Job lifetime, seconds.
    pub lifetime_s: f64,
    /// Compute nodes used.
    pub nodes: u16,
}

impl JobIo {
    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Total requests.
    pub fn requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Average I/O intensity over the job's lifetime, bytes/second.
    pub fn intensity(&self) -> f64 {
        self.bytes() as f64 / self.lifetime_s.max(1e-9)
    }
}

/// Per-job I/O table plus concentration summaries.
#[derive(Clone, Debug, Default)]
pub struct JobIoStats {
    /// Per-job aggregates (traced jobs with at least one session).
    pub jobs: HashMap<u32, JobIo>,
}

/// Build the per-job table from a characterization.
pub fn job_io(c: &Characterization) -> JobIoStats {
    let mut jobs: HashMap<u32, JobIo> = HashMap::new();
    for s in c.sessions.values() {
        let entry = jobs.entry(s.job).or_default();
        entry.reads += s.reads;
        entry.writes += s.writes;
        entry.bytes_read += s.bytes_read;
        entry.bytes_written += s.bytes_written;
        entry.files += 1;
    }
    for (id, io) in jobs.iter_mut() {
        if let Some(info) = c.jobs.get(id) {
            io.lifetime_s = (info.end - info.start).as_secs_f64();
            io.nodes = info.nodes;
        }
    }
    JobIoStats { jobs }
}

impl JobIoStats {
    /// Fraction of all moved bytes carried by the busiest `k` jobs
    /// (traffic concentration: a few jobs dominate I/O).
    pub fn top_k_byte_share(&self, k: usize) -> f64 {
        let mut volumes: Vec<u64> = self.jobs.values().map(|j| j.bytes()).collect();
        if volumes.is_empty() {
            return 0.0;
        }
        volumes.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = volumes.iter().sum();
        let top: u64 = volumes.iter().take(k).sum();
        top as f64 / total.max(1) as f64
    }

    /// Total bytes moved by all jobs.
    pub fn total_bytes(&self) -> u64 {
        self.jobs.values().map(|j| j.bytes()).sum()
    }

    /// Jobs sorted by descending byte volume, as `(job, JobIo)`.
    pub fn by_volume(&self) -> Vec<(u32, JobIo)> {
        let mut v: Vec<(u32, JobIo)> = self.jobs.iter().map(|(&k, &j)| (k, j)).collect();
        v.sort_by(|a, b| b.1.bytes().cmp(&a.1.bytes()).then(a.0.cmp(&b.0)));
        v
    }

    /// Median per-job I/O intensity, bytes/second (0 if empty).
    pub fn median_intensity(&self) -> f64 {
        let mut rates: Vec<f64> = self
            .jobs
            .values()
            .filter(|j| j.lifetime_s > 0.0)
            .map(|j| j.intensity())
            .collect();
        if rates.is_empty() {
            return 0.0;
        }
        rates.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        rates[rates.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use charisma_ipsc::SimTime;
    use charisma_trace::record::{AccessKind, EventBody};
    use charisma_trace::OrderedEvent;

    fn ev(t: u64, node: u16, body: EventBody) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::from_secs(t),
            node,
            body,
        }
    }

    fn job_events(job: u32, sid: u32, writes: u64, bytes_each: u32) -> Vec<OrderedEvent> {
        let base = u64::from(job) * 1000;
        let mut events = vec![
            ev(
                base,
                u16::MAX,
                EventBody::JobStart {
                    job,
                    nodes: 4,
                    traced: true,
                },
            ),
            ev(
                base + 1,
                0,
                EventBody::Open {
                    job,
                    file: sid,
                    session: sid,
                    mode: 0,
                    access: AccessKind::Write,
                    created: true,
                },
            ),
        ];
        for k in 0..writes {
            events.push(ev(
                base + 2 + k,
                0,
                EventBody::Write {
                    session: sid,
                    offset: k * u64::from(bytes_each),
                    bytes: bytes_each,
                },
            ));
        }
        events.push(ev(base + 100, u16::MAX, EventBody::JobEnd { job }));
        events
    }

    #[test]
    fn aggregates_per_job() {
        let mut events = job_events(1, 1, 10, 1000);
        events.extend(job_events(2, 2, 2, 500));
        let c = analyze(&events);
        let stats = job_io(&c);
        assert_eq!(stats.jobs.len(), 2);
        let j1 = &stats.jobs[&1];
        assert_eq!(j1.writes, 10);
        assert_eq!(j1.bytes_written, 10_000);
        assert_eq!(j1.files, 1);
        assert_eq!(j1.nodes, 4);
        assert!((j1.lifetime_s - 100.0).abs() < 1e-9);
        assert!(j1.intensity() > 0.0);
    }

    #[test]
    fn concentration_measures_dominance() {
        let mut events = job_events(1, 1, 100, 10_000); // 1 MB
        events.extend(job_events(2, 2, 1, 100)); // 100 B
        events.extend(job_events(3, 3, 1, 100));
        let c = analyze(&events);
        let stats = job_io(&c);
        assert!(stats.top_k_byte_share(1) > 0.99);
        assert!((stats.top_k_byte_share(10) - 1.0).abs() < 1e-12);
        let ranked = stats.by_volume();
        assert_eq!(ranked[0].0, 1, "job 1 dominates");
    }

    #[test]
    fn empty_characterization_is_benign() {
        let stats = job_io(&analyze(&[]));
        assert_eq!(stats.total_bytes(), 0);
        assert_eq!(stats.top_k_byte_share(5), 0.0);
        assert_eq!(stats.median_intensity(), 0.0);
    }
}
