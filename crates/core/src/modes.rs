//! §4.6: I/O-mode usage.
//!
//! "Our traces show, however, that over 99 % of the files used mode 0;
//! that is, less than 1 % used modes 1, 2, or 3."

use crate::analyze::Characterization;

/// Count of sessions per CFS I/O mode (index = mode number 0-3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModeUsage {
    /// Sessions per mode.
    pub counts: [usize; 4],
}

impl ModeUsage {
    /// Total sessions.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fraction of sessions using mode 0.
    pub fn mode0_fraction(&self) -> f64 {
        self.counts[0] as f64 / self.total().max(1) as f64
    }
}

/// Tally mode usage.
pub fn mode_usage(c: &Characterization) -> ModeUsage {
    let mut u = ModeUsage::default();
    for s in c.sessions.values() {
        let m = (s.mode as usize).min(3);
        u.counts[m] += 1;
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use charisma_ipsc::SimTime;
    use charisma_trace::record::{AccessKind, EventBody};
    use charisma_trace::OrderedEvent;

    #[test]
    fn tallies_modes() {
        let mut events = Vec::new();
        for (sid, mode) in [(1u32, 0u8), (2, 0), (3, 1), (4, 3)] {
            events.push(OrderedEvent {
                time: SimTime::from_micros(u64::from(sid)),
                node: 0,
                body: EventBody::Open {
                    job: 1,
                    file: sid,
                    session: sid,
                    mode,
                    access: AccessKind::Read,
                    created: false,
                },
            });
        }
        let u = mode_usage(&analyze(&events));
        assert_eq!(u.counts, [2, 1, 0, 1]);
        assert_eq!(u.total(), 4);
        assert!((u.mode0_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_is_benign() {
        let u = mode_usage(&analyze(&[]));
        assert_eq!(u.total(), 0);
        assert_eq!(u.mode0_fraction(), 0.0);
    }
}
