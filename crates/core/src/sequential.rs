//! Figures 5 and 6: sequential and consecutive access.
//!
//! "We define a sequential request to be one that is at a higher file
//! offset than the previous request from the same compute node, and a
//! consecutive request to be a sequential request that begins where the
//! previous request ended." The figures are CDFs over *files with more
//! than one request* of the percentage of (per-node) accesses that were
//! sequential/consecutive, split by read-only / write-only / read-write.

use crate::analyze::{Characterization, SessionClass, SessionStat};
use crate::cdf::Cdf;

/// Which figure-5/6 metric to compute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Figure 5: percent of accesses at increasing offsets.
    Sequential,
    /// Figure 6: percent of accesses starting exactly at the previous end.
    Consecutive,
}

/// Per-class CDFs of percent-sequential (or percent-consecutive).
#[derive(Clone, Debug)]
pub struct SequentialityCdfs {
    /// Read-only files.
    pub read_only: Cdf,
    /// Write-only files.
    pub write_only: Cdf,
    /// Read-write files.
    pub read_write: Cdf,
}

/// Percent of a session's counted accesses that are sequential or
/// consecutive, pooled across its nodes; `None` when no node issued a
/// second request (the population excluded from Figures 5-6).
pub fn session_percent(s: &SessionStat, metric: Metric) -> Option<f64> {
    let mut counted = 0u64;
    let mut hits = 0u64;
    for n in &s.nodes {
        counted += u64::from(n.counted);
        hits += u64::from(match metric {
            Metric::Sequential => n.sequential,
            Metric::Consecutive => n.consecutive,
        });
    }
    if counted == 0 {
        return None;
    }
    Some(100.0 * hits as f64 / counted as f64)
}

/// Build the Figure 5 (sequential) or Figure 6 (consecutive) CDFs.
pub fn cdfs(c: &Characterization, metric: Metric) -> SequentialityCdfs {
    let mut out = SequentialityCdfs {
        read_only: Cdf::new(),
        write_only: Cdf::new(),
        read_write: Cdf::new(),
    };
    for s in c.sessions.values() {
        let Some(pct) = session_percent(s, metric) else {
            continue;
        };
        let pct = pct.round() as u64;
        match s.class() {
            SessionClass::ReadOnly => out.read_only.add(pct),
            SessionClass::WriteOnly => out.write_only.add(pct),
            SessionClass::ReadWrite => out.read_write.add(pct),
            SessionClass::Unaccessed => {}
        }
    }
    out.read_only.seal();
    out.write_only.seal();
    out.read_write.seal();
    out
}

impl SequentialityCdfs {
    /// Fraction of files in `class` that are 100 % sequential/consecutive.
    pub fn fully(&self, class: SessionClass) -> f64 {
        let cdf = match class {
            SessionClass::ReadOnly => &self.read_only,
            SessionClass::WriteOnly => &self.write_only,
            SessionClass::ReadWrite => &self.read_write,
            SessionClass::Unaccessed => return 0.0,
        };
        if cdf.total() == 0.0 {
            return 0.0;
        }
        1.0 - cdf.fraction_le(99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use charisma_ipsc::SimTime;
    use charisma_trace::record::{AccessKind, EventBody};
    use charisma_trace::OrderedEvent;

    fn ev(t: u64, node: u16, body: EventBody) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::from_micros(t),
            node,
            body,
        }
    }

    fn stream() -> Vec<OrderedEvent> {
        let mut events = Vec::new();
        let open = |sid: u32, access| EventBody::Open {
            job: 1,
            file: sid,
            session: sid,
            mode: 0,
            access,
            created: false,
        };
        // Session 1: RO, fully consecutive (3 reads).
        events.push(ev(1, 0, open(1, AccessKind::Read)));
        for k in 0..3u64 {
            events.push(ev(
                2 + k,
                0,
                EventBody::Read {
                    session: 1,
                    offset: k * 100,
                    bytes: 100,
                },
            ));
        }
        // Session 2: RO, sequential but gapped (interleave-style).
        events.push(ev(10, 0, open(2, AccessKind::Read)));
        for k in 0..4u64 {
            events.push(ev(
                11 + k,
                0,
                EventBody::Read {
                    session: 2,
                    offset: k * 1000,
                    bytes: 100,
                },
            ));
        }
        // Session 3: WO, one request only (excluded: no counted accesses).
        events.push(ev(20, 0, open(3, AccessKind::Write)));
        events.push(ev(
            21,
            0,
            EventBody::Write {
                session: 3,
                offset: 0,
                bytes: 4096,
            },
        ));
        // Session 4: RW, random (0% sequential).
        events.push(ev(30, 0, open(4, AccessKind::ReadWrite)));
        for &off in &[5000u64, 100, 3000, 50] {
            events.push(ev(
                31 + off,
                0,
                EventBody::Write {
                    session: 4,
                    offset: off,
                    bytes: 10,
                },
            ));
            events.push(ev(
                32 + off,
                0,
                EventBody::Read {
                    session: 4,
                    offset: off,
                    bytes: 10,
                },
            ));
        }
        events
    }

    #[test]
    fn sequential_percentages() {
        let c = analyze(&stream());
        assert_eq!(
            session_percent(&c.sessions[&1], Metric::Sequential),
            Some(100.0)
        );
        assert_eq!(
            session_percent(&c.sessions[&1], Metric::Consecutive),
            Some(100.0)
        );
        assert_eq!(
            session_percent(&c.sessions[&2], Metric::Sequential),
            Some(100.0)
        );
        assert_eq!(
            session_percent(&c.sessions[&2], Metric::Consecutive),
            Some(0.0)
        );
        assert_eq!(session_percent(&c.sessions[&3], Metric::Sequential), None);
    }

    #[test]
    fn class_cdfs() {
        let c = analyze(&stream());
        let seq = cdfs(&c, Metric::Sequential);
        assert_eq!(seq.read_only.total() as u64, 2);
        assert_eq!(seq.write_only.total() as u64, 0, "one-request WO excluded");
        assert!((seq.fully(SessionClass::ReadOnly) - 1.0).abs() < 1e-9);
        let cons = cdfs(&c, Metric::Consecutive);
        assert!((cons.fully(SessionClass::ReadOnly) - 0.5).abs() < 1e-9);
        // The RW session is mostly non-sequential.
        let rw = session_percent(&c.sessions[&4], Metric::Sequential).expect("counted");
        assert!(rw < 60.0);
    }
}
