//! Machine-readable export of every figure's series, as plain CSV (one
//! file per figure/table), for downstream plotting.

use std::fmt::Write as _;

use crate::analyze::{Characterization, SessionClass};
use crate::cdf::Cdf;
use crate::census;
use crate::intervals;
use crate::jobs;
use crate::modes;
use crate::report::Report;
use crate::sequential::{self, Metric};
use crate::sharing;

/// One exported file: a name stem and CSV contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsvFile {
    /// File name stem (e.g. `fig3_file_sizes`); append `.csv`.
    pub name: &'static str,
    /// The CSV text, header row included.
    pub contents: String,
}

fn cdf_csv(name: &'static str, header: &str, cdf: &Cdf) -> CsvFile {
    let mut s = String::new();
    writeln!(s, "{header}").expect("write to string");
    for (value, fraction) in cdf.curve() {
        writeln!(s, "{value},{fraction:.6}").expect("write to string");
    }
    CsvFile { name, contents: s }
}

/// Export every figure and table of a report as CSV files.
pub fn export_csv(report: &Report) -> Vec<CsvFile> {
    let chars: &Characterization = &report.chars;
    let mut files = Vec::new();

    // Figure 1.
    let mut s = String::from("jobs,fraction_of_time\n");
    for (k, f) in jobs::concurrency_profile(chars).iter().enumerate() {
        writeln!(s, "{k},{f:.6}").expect("write");
    }
    files.push(CsvFile {
        name: "fig1_concurrency",
        contents: s,
    });

    // Figure 2.
    let mut s = String::from("nodes,percent_of_jobs\n");
    for (n, pct) in jobs::node_usage(chars) {
        writeln!(s, "{n},{pct:.4}").expect("write");
    }
    files.push(CsvFile {
        name: "fig2_nodes_per_job",
        contents: s,
    });

    // Table 1.
    let t1 = jobs::files_per_job(chars);
    let mut s = String::from("files_opened,jobs\n");
    for (label, v) in ["1", "2", "3", "4", "5+"].iter().zip(t1) {
        writeln!(s, "{label},{v}").expect("write");
    }
    files.push(CsvFile {
        name: "table1_files_per_job",
        contents: s,
    });

    // Figure 3 + census.
    files.push(cdf_csv(
        "fig3_file_sizes",
        "file_size_bytes,cdf",
        &census::size_cdf(chars),
    ));
    let cen = census::census(chars);
    let mut s = String::from("class,files\n");
    for (label, v) in [
        ("total", cen.total),
        ("write_only", cen.write_only),
        ("read_only", cen.read_only),
        ("read_write", cen.read_write),
        ("unaccessed", cen.unaccessed),
        ("temporary", cen.temporary),
    ] {
        writeln!(s, "{label},{v}").expect("write");
    }
    files.push(CsvFile {
        name: "census",
        contents: s,
    });

    // Figure 4 (four curves).
    files.push(cdf_csv(
        "fig4_reads_by_count",
        "request_bytes,cdf",
        &report.request_sizes.reads_by_count,
    ));
    files.push(cdf_csv(
        "fig4_reads_by_bytes",
        "request_bytes,cdf",
        &report.request_sizes.reads_by_bytes,
    ));
    files.push(cdf_csv(
        "fig4_writes_by_count",
        "request_bytes,cdf",
        &report.request_sizes.writes_by_count,
    ));
    files.push(cdf_csv(
        "fig4_writes_by_bytes",
        "request_bytes,cdf",
        &report.request_sizes.writes_by_bytes,
    ));

    // Figures 5-6.
    for (name, metric) in [
        ("fig5_sequential", Metric::Sequential),
        ("fig6_consecutive", Metric::Consecutive),
    ] {
        let cdfs = sequential::cdfs(chars, metric);
        let mut s = String::from("class,percent,cdf\n");
        for (class, cdf) in [
            ("read_only", &cdfs.read_only),
            ("write_only", &cdfs.write_only),
            ("read_write", &cdfs.read_write),
        ] {
            for (value, fraction) in cdf.curve() {
                writeln!(s, "{class},{value},{fraction:.6}").expect("write");
            }
        }
        files.push(match name {
            "fig5_sequential" => CsvFile {
                name: "fig5_sequential",
                contents: s,
            },
            _ => CsvFile {
                name: "fig6_consecutive",
                contents: s,
            },
        });
    }

    // Tables 2-3.
    for (name, table) in [
        ("table2_interval_sizes", intervals::interval_table(chars)),
        ("table3_request_sizes", intervals::request_size_table(chars)),
    ] {
        let mut s = String::from("distinct_values,files,percent\n");
        let p = table.percents();
        for (i, label) in ["0", "1", "2", "3", "4+"].iter().enumerate() {
            writeln!(s, "{label},{},{:.4}", table.rows[i], p[i]).expect("write");
        }
        files.push(match name {
            "table2_interval_sizes" => CsvFile {
                name: "table2_interval_sizes",
                contents: s,
            },
            _ => CsvFile {
                name: "table3_request_sizes",
                contents: s,
            },
        });
    }

    // Modes.
    let mu = modes::mode_usage(chars);
    let mut s = String::from("mode,files\n");
    for (m, &k) in mu.counts.iter().enumerate() {
        writeln!(s, "{m},{k}").expect("write");
    }
    files.push(CsvFile {
        name: "modes",
        contents: s,
    });

    // Figure 7.
    let sh = sharing::sharing_cdfs(chars);
    let mut s = String::from("class,granularity,percent_shared,cdf\n");
    for (class, gran, cdf) in [
        ("read_only", "bytes", &sh.read_bytes),
        ("read_only", "blocks", &sh.read_blocks),
        ("write_only", "bytes", &sh.write_bytes),
        ("write_only", "blocks", &sh.write_blocks),
        ("read_write", "bytes", &sh.rw_bytes),
        ("read_write", "blocks", &sh.rw_blocks),
    ] {
        for (value, fraction) in cdf.curve() {
            writeln!(s, "{class},{gran},{value},{fraction:.6}").expect("write");
        }
    }
    files.push(CsvFile {
        name: "fig7_sharing",
        contents: s,
    });

    files
}

/// Convenience for callers that want a quick sanity count of exported
/// rows (used by tests and the `repro` binary's logging).
pub fn row_count(files: &[CsvFile]) -> usize {
    files
        .iter()
        .map(|f| f.contents.lines().count().saturating_sub(1))
        .sum()
}

/// The per-class "fully sequential" summary used in EXPERIMENTS.md,
/// exported alongside (handy for regression dashboards).
pub fn summary_csv(report: &Report) -> CsvFile {
    let chars = &report.chars;
    let cen = census::census(chars);
    let seq = sequential::cdfs(chars, Metric::Sequential);
    let con = sequential::cdfs(chars, Metric::Consecutive);
    let mu = modes::mode_usage(chars);
    let rs = &report.request_sizes;
    let mut s = String::from("metric,value\n");
    let rows: Vec<(&str, f64)> = vec![
        ("opens", cen.total as f64),
        ("write_only", cen.write_only as f64),
        ("read_only", cen.read_only as f64),
        ("read_write", cen.read_write as f64),
        ("unaccessed", cen.unaccessed as f64),
        ("temporary_fraction", cen.temporary_fraction()),
        ("mb_written_per_wo", cen.avg_bytes_written_wo / 1e6),
        ("mb_read_per_ro", cen.avg_bytes_read_ro / 1e6),
        ("small_read_fraction", rs.small_read_fraction()),
        ("small_read_data_fraction", rs.small_read_data_fraction()),
        ("small_write_fraction", rs.small_write_fraction()),
        ("small_write_data_fraction", rs.small_write_data_fraction()),
        ("ro_fully_sequential", seq.fully(SessionClass::ReadOnly)),
        ("wo_fully_sequential", seq.fully(SessionClass::WriteOnly)),
        ("ro_fully_consecutive", con.fully(SessionClass::ReadOnly)),
        ("wo_fully_consecutive", con.fully(SessionClass::WriteOnly)),
        ("mode0_fraction", mu.mode0_fraction()),
        (
            "interjob_concurrent_shares",
            sharing::concurrent_interjob_shares(chars) as f64,
        ),
    ];
    for (k, v) in rows {
        writeln!(s, "{k},{v:.6}").expect("write");
    }
    CsvFile {
        name: "summary",
        contents: s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_ipsc::SimTime;
    use charisma_trace::record::{AccessKind, EventBody};
    use charisma_trace::OrderedEvent;

    fn report() -> Report {
        let mut events = Vec::new();
        events.push(OrderedEvent {
            time: SimTime::ZERO,
            node: u16::MAX,
            body: EventBody::JobStart {
                job: 1,
                nodes: 2,
                traced: true,
            },
        });
        events.push(OrderedEvent {
            time: SimTime::from_micros(1),
            node: 0,
            body: EventBody::Open {
                job: 1,
                file: 1,
                session: 1,
                mode: 0,
                access: AccessKind::Write,
                created: true,
            },
        });
        for k in 0..4u64 {
            events.push(OrderedEvent {
                time: SimTime::from_micros(2 + k),
                node: 0,
                body: EventBody::Write {
                    session: 1,
                    offset: k * 512,
                    bytes: 512,
                },
            });
        }
        events.push(OrderedEvent {
            time: SimTime::from_micros(10),
            node: 0,
            body: EventBody::Close {
                session: 1,
                size: 2048,
            },
        });
        events.push(OrderedEvent {
            time: SimTime::from_micros(11),
            node: u16::MAX,
            body: EventBody::JobEnd { job: 1 },
        });
        Report::from_events(&events)
    }

    #[test]
    fn exports_every_figure() {
        let files = export_csv(&report());
        let names: Vec<&str> = files.iter().map(|f| f.name).collect();
        for expect in [
            "fig1_concurrency",
            "fig2_nodes_per_job",
            "table1_files_per_job",
            "fig3_file_sizes",
            "census",
            "fig4_reads_by_count",
            "fig4_writes_by_bytes",
            "fig5_sequential",
            "fig6_consecutive",
            "table2_interval_sizes",
            "table3_request_sizes",
            "modes",
            "fig7_sharing",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
        assert!(row_count(&files) > 10);
    }

    #[test]
    fn csv_is_well_formed() {
        for f in export_csv(&report()) {
            let mut lines = f.contents.lines();
            let header = lines.next().expect("header");
            let cols = header.split(',').count();
            for (i, line) in lines.enumerate() {
                assert_eq!(
                    line.split(',').count(),
                    cols,
                    "{}: row {i} column mismatch",
                    f.name
                );
            }
        }
    }

    #[test]
    fn summary_contains_key_metrics() {
        let s = summary_csv(&report());
        assert!(s.contents.contains("write_only,1"));
        assert!(s.contents.contains("mode0_fraction,1.000000"));
    }
}
