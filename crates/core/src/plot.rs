//! Terminal plots: render CDF curves and bar charts as text, so `repro`
//! can *show* the paper's figures, not just tabulate them.
//!
//! The output style matches the paper's figures: CDFs on a log-x axis
//! (Figures 3-4), CDFs on a linear percent axis with multiple curves
//! (Figures 5-7), and simple bar charts (Figures 1-2).

use std::fmt::Write as _;

use crate::cdf::Cdf;

/// Width of the plotting area in characters.
const WIDTH: usize = 64;
/// Height of line plots in rows.
const HEIGHT: usize = 16;

/// A horizontal bar chart (Figures 1-2 style).
pub fn bar_chart(title: &str, rows: &[(String, f64)], unit: &str) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").expect("write");
    let max = rows.iter().map(|r| r.1).fold(f64::MIN_POSITIVE, f64::max);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(1);
    for (label, value) in rows {
        let filled = ((value / max) * WIDTH as f64).round() as usize;
        writeln!(
            out,
            "  {label:>label_w$} |{}{} {value:.1}{unit}",
            "█".repeat(filled),
            " ".repeat(WIDTH - filled.min(WIDTH)),
        )
        .expect("write");
    }
    out
}

/// Marker characters used for multi-curve plots, in curve order.
const MARKS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// A multi-curve CDF plot with a log-10 x axis (Figures 3-4 style).
/// `curves` pairs a legend label with the sealed CDF; `lo..hi` is the x
/// range in the CDF's units (bytes).
pub fn cdf_plot_log(title: &str, curves: &[(&str, &Cdf)], lo: u64, hi: u64) -> String {
    assert!(lo > 0 && hi > lo);
    let cols: Vec<u64> = (0..WIDTH)
        .map(|c| {
            let f = c as f64 / (WIDTH - 1) as f64;
            let lg = (lo as f64).log10() + f * ((hi as f64).log10() - (lo as f64).log10());
            10f64.powf(lg).round() as u64
        })
        .collect();
    plot_grid(title, curves, &cols, &format!("log x: {lo} .. {hi} bytes"))
}

/// A multi-curve CDF plot with a linear 0-100 x axis (Figures 5-7 style,
/// where x is "percent of accesses ...").
pub fn cdf_plot_percent(title: &str, curves: &[(&str, &Cdf)]) -> String {
    let cols: Vec<u64> = (0..WIDTH)
        .map(|c| (c as f64 / (WIDTH - 1) as f64 * 100.0).round() as u64)
        .collect();
    plot_grid(title, curves, &cols, "x: 0 .. 100 %")
}

fn plot_grid(title: &str, curves: &[(&str, &Cdf)], cols: &[u64], x_label: &str) -> String {
    let mut grid = vec![vec![' '; cols.len()]; HEIGHT];
    for (k, (_, cdf)) in curves.iter().enumerate() {
        if cdf.total() == 0.0 {
            continue;
        }
        let mark = MARKS[k % MARKS.len()];
        for (c, &x) in cols.iter().enumerate() {
            let y = cdf.fraction_le(x);
            let row = ((1.0 - y) * (HEIGHT - 1) as f64).round() as usize;
            grid[row.min(HEIGHT - 1)][c] = mark;
        }
    }
    let mut out = String::new();
    writeln!(out, "{title}").expect("write");
    for (r, row) in grid.iter().enumerate() {
        let y = 100.0 * (1.0 - r as f64 / (HEIGHT - 1) as f64);
        let line: String = row.iter().collect();
        writeln!(out, "  {y:>5.0}% |{line}").expect("write");
    }
    writeln!(out, "         +{}", "-".repeat(cols.len())).expect("write");
    writeln!(out, "          {x_label}").expect("write");
    let legend: Vec<String> = curves
        .iter()
        .enumerate()
        .map(|(k, (label, _))| format!("{} {label}", MARKS[k % MARKS.len()]))
        .collect();
    writeln!(out, "          legend: {}", legend.join("   ")).expect("write");
    out
}

/// A line plot of `(x, y)` series with a log x axis (Figure 9 style:
/// hit rate vs buffer count).
pub fn line_plot_log(title: &str, series: &[(&str, &[(u64, f64)])]) -> String {
    let lo = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|p| p.0))
        .min()
        .unwrap_or(1)
        .max(1);
    let hi = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|p| p.0))
        .max()
        .unwrap_or(2)
        .max(lo + 1);
    let mut grid = vec![vec![' '; WIDTH]; HEIGHT];
    for (k, (_, pts)) in series.iter().enumerate() {
        let mark = MARKS[k % MARKS.len()];
        for &(x, y) in *pts {
            let f = ((x as f64).log10() - (lo as f64).log10())
                / ((hi as f64).log10() - (lo as f64).log10());
            let col = (f * (WIDTH - 1) as f64).round() as usize;
            let row = ((1.0 - y.clamp(0.0, 1.0)) * (HEIGHT - 1) as f64).round() as usize;
            grid[row.min(HEIGHT - 1)][col.min(WIDTH - 1)] = mark;
        }
    }
    let mut out = String::new();
    writeln!(out, "{title}").expect("write");
    for (r, row) in grid.iter().enumerate() {
        let y = 100.0 * (1.0 - r as f64 / (HEIGHT - 1) as f64);
        let line: String = row.iter().collect();
        writeln!(out, "  {y:>5.0}% |{line}").expect("write");
    }
    writeln!(out, "         +{}", "-".repeat(WIDTH)).expect("write");
    writeln!(out, "          log x: {lo} .. {hi}").expect("write");
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(k, (label, _))| format!("{} {label}", MARKS[k % MARKS.len()]))
        .collect();
    writeln!(out, "          legend: {}", legend.join("   ")).expect("write");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf(values: &[u64]) -> Cdf {
        let mut c = Cdf::new();
        for &v in values {
            c.add(v);
        }
        c.seal();
        c
    }

    #[test]
    fn bar_chart_renders_scaled_bars() {
        let rows = vec![
            ("0".to_string(), 25.0),
            ("1".to_string(), 50.0),
            ("2".to_string(), 12.5),
        ];
        let s = bar_chart("Figure 1", &rows, "%");
        assert!(s.contains("Figure 1"));
        // The 50% row has the longest bar.
        let bars: Vec<usize> = s
            .lines()
            .skip(1)
            .map(|l| l.chars().filter(|&c| c == '█').count())
            .collect();
        assert_eq!(bars.len(), 3);
        assert!(bars[1] > bars[0] && bars[0] > bars[2]);
        assert_eq!(bars[1], WIDTH);
    }

    #[test]
    fn log_cdf_plot_is_monotone_left_to_right() {
        let c = cdf(&[100, 1_000, 1_000, 10_000, 100_000]);
        let s = cdf_plot_log("Figure 3", &[("files", &c)], 10, 1_000_000);
        assert!(s.contains("legend: * files"));
        // Marks must descend in row index (CDF rises) going right: find
        // the column of the first and last mark rows.
        let rows: Vec<&str> = s.lines().skip(1).take(HEIGHT).collect();
        // Line prefix: 2 spaces + 5-char label + "% |" = 10 characters.
        let mark_row = |col: usize| -> usize {
            rows.iter()
                .position(|r| r.chars().nth(10 + col) == Some('*'))
                .expect("mark in column")
        };
        assert!(mark_row(WIDTH - 1) <= mark_row(0), "curve rises");
    }

    #[test]
    fn percent_plot_handles_spiky_cdfs() {
        // The Figure 5 shape: spikes at 0 and 100.
        let mut values = vec![0u64; 20];
        values.extend(vec![100u64; 80]);
        let c = cdf(&values);
        let s = cdf_plot_percent("Figure 5", &[("read-only", &c)]);
        assert!(s.contains("read-only"));
        assert!(s.lines().count() > HEIGHT);
    }

    #[test]
    fn empty_cdf_does_not_panic() {
        let c = {
            let mut c = Cdf::new();
            c.seal();
            c
        };
        let s = cdf_plot_percent("empty", &[("nothing", &c)]);
        assert!(s.contains("empty"));
    }

    #[test]
    fn line_plot_places_series() {
        let a: Vec<(u64, f64)> = vec![(100, 0.5), (1000, 0.8), (10000, 0.9)];
        let b: Vec<(u64, f64)> = vec![(100, 0.4), (1000, 0.6), (10000, 0.9)];
        let s = line_plot_log("Figure 9", &[("LRU", &a), ("FIFO", &b)]);
        assert!(s.contains('*') && s.contains('o'));
        assert!(s.contains("legend: * LRU   o FIFO"));
    }
}
