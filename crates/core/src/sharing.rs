//! §4.7 and Figure 7: file sharing.
//!
//! "A file is shared if more than one job or process opens it. It is
//! concurrently shared if the opens overlap in time." Within a job,
//! concurrent sharing is the norm; between jobs it was absent. Figure 7
//! looks *inside* concurrently multi-node-opened files: what fraction of
//! each file's bytes (and 4 KB blocks) was touched by more than one node.

use std::collections::HashMap;

use crate::analyze::{Characterization, SessionClass, SessionStat};
use crate::cdf::Cdf;

/// Granularity of the sharing measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Granularity {
    /// Exact byte ranges.
    Bytes,
    /// 4 KB blocks (a byte touch marks the whole block).
    Blocks,
}

/// Percent of a session's touched bytes (or blocks) touched by ≥2 nodes.
/// `None` if fewer than two nodes issued requests.
pub fn shared_percent(s: &SessionStat, granularity: Granularity) -> Option<f64> {
    if s.accessing_nodes() < 2 {
        return None;
    }
    // Sweep over each node's disjoint coverage; count union and overlap.
    let mut edges: Vec<(u64, i32)> = Vec::new();
    for n in &s.nodes {
        for &(start, end) in &n.merged_segments() {
            let (start, end) = match granularity {
                Granularity::Bytes => (start, end),
                Granularity::Blocks => (start / 4096 * 4096, end.div_ceil(4096) * 4096),
            };
            edges.push((start, 1));
            edges.push((end, -1));
        }
    }
    edges.sort_unstable();
    let mut depth = 0i32;
    let mut last = 0u64;
    let mut union = 0u64;
    let mut shared = 0u64;
    for (x, d) in edges {
        if depth >= 1 {
            union += x - last;
        }
        if depth >= 2 {
            shared += x - last;
        }
        last = x;
        depth += d;
    }
    if union == 0 {
        return None;
    }
    Some(100.0 * shared as f64 / union as f64)
}

/// Figure 7's CDFs: sharing percentage distributions by class and
/// granularity.
#[derive(Clone, Debug)]
pub struct SharingCdfs {
    /// Read-only files, byte granularity.
    pub read_bytes: Cdf,
    /// Read-only files, block granularity.
    pub read_blocks: Cdf,
    /// Write-only files, byte granularity.
    pub write_bytes: Cdf,
    /// Write-only files, block granularity.
    pub write_blocks: Cdf,
    /// Read-write files, byte granularity.
    pub rw_bytes: Cdf,
    /// Read-write files, block granularity.
    pub rw_blocks: Cdf,
}

/// Build Figure 7 over the concurrently multi-node-opened sessions.
pub fn sharing_cdfs(c: &Characterization) -> SharingCdfs {
    let mut out = SharingCdfs {
        read_bytes: Cdf::new(),
        read_blocks: Cdf::new(),
        write_bytes: Cdf::new(),
        write_blocks: Cdf::new(),
        rw_bytes: Cdf::new(),
        rw_blocks: Cdf::new(),
    };
    for s in c.sessions.values() {
        let (Some(b), Some(k)) = (
            shared_percent(s, Granularity::Bytes),
            shared_percent(s, Granularity::Blocks),
        ) else {
            continue;
        };
        let (b, k) = (b.round() as u64, k.round() as u64);
        match s.class() {
            SessionClass::ReadOnly => {
                out.read_bytes.add(b);
                out.read_blocks.add(k);
            }
            SessionClass::WriteOnly => {
                out.write_bytes.add(b);
                out.write_blocks.add(k);
            }
            SessionClass::ReadWrite => {
                out.rw_bytes.add(b);
                out.rw_blocks.add(k);
            }
            SessionClass::Unaccessed => {}
        }
    }
    for cdf in [
        &mut out.read_bytes,
        &mut out.read_blocks,
        &mut out.write_bytes,
        &mut out.write_blocks,
        &mut out.rw_bytes,
        &mut out.rw_blocks,
    ] {
        cdf.seal();
    }
    out
}

/// Count files (paths) concurrently opened by more than one *job* — the
/// paper saw none.
pub fn concurrent_interjob_shares(c: &Characterization) -> usize {
    // Group sessions by file; check pairwise open-window overlap across
    // different jobs.
    let mut by_file: HashMap<u32, Vec<&SessionStat>> = HashMap::new();
    for s in c.sessions.values() {
        by_file.entry(s.file).or_default().push(s);
    }
    let mut count = 0;
    for sessions in by_file.values() {
        let mut found = false;
        for (i, a) in sessions.iter().enumerate() {
            for b in &sessions[i + 1..] {
                if a.job != b.job && a.open_time < b.close_time && b.open_time < a.close_time {
                    found = true;
                }
            }
        }
        if found {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use charisma_ipsc::SimTime;
    use charisma_trace::record::{AccessKind, EventBody};
    use charisma_trace::OrderedEvent;

    fn ev(t: u64, node: u16, body: EventBody) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::from_micros(t),
            node,
            body,
        }
    }

    fn open(job: u32, sid: u32, node: u16, t: u64) -> OrderedEvent {
        ev(
            t,
            node,
            EventBody::Open {
                job,
                file: sid,
                session: sid,
                mode: 0,
                access: AccessKind::Read,
                created: false,
            },
        )
    }

    fn read(sid: u32, node: u16, offset: u64, bytes: u32, t: u64) -> OrderedEvent {
        ev(
            t,
            node,
            EventBody::Read {
                session: sid,
                offset,
                bytes,
            },
        )
    }

    #[test]
    fn broadcast_is_fully_byte_shared() {
        let events = vec![
            open(1, 1, 0, 0),
            open(1, 1, 1, 1),
            read(1, 0, 0, 10_000, 2),
            read(1, 1, 0, 10_000, 3),
        ];
        let c = analyze(&events);
        let s = &c.sessions[&1];
        assert_eq!(shared_percent(s, Granularity::Bytes), Some(100.0));
        assert_eq!(shared_percent(s, Granularity::Blocks), Some(100.0));
    }

    #[test]
    fn disjoint_partitions_share_blocks_not_bytes() {
        // Node 0 writes [0, 6000), node 1 writes [6000, 12000): no byte is
        // shared, but block 1 (4096..8192) is touched by both.
        let events = vec![
            open(1, 1, 0, 0),
            open(1, 1, 1, 1),
            read(1, 0, 0, 6000, 2),
            read(1, 1, 6000, 6000, 3),
        ];
        let c = analyze(&events);
        let s = &c.sessions[&1];
        assert_eq!(shared_percent(s, Granularity::Bytes), Some(0.0));
        let blocks = shared_percent(s, Granularity::Blocks).expect("two nodes");
        // 1 shared block of 3 → 33%.
        assert!((blocks - 100.0 / 3.0).abs() < 1.0, "{blocks}");
    }

    #[test]
    fn interleave_shares_blocks_partially() {
        // 512-byte interleave across 2 nodes: every block is half node 0,
        // half node 1 → 0% bytes, 100% blocks.
        let mut events = vec![open(1, 1, 0, 0), open(1, 1, 1, 1)];
        for k in 0..8u64 {
            let node = (k % 2) as u16;
            events.push(read(1, node, k * 512, 512, 10 + k));
        }
        let c = analyze(&events);
        let s = &c.sessions[&1];
        assert_eq!(shared_percent(s, Granularity::Bytes), Some(0.0));
        assert_eq!(shared_percent(s, Granularity::Blocks), Some(100.0));
    }

    #[test]
    fn single_node_sessions_are_excluded() {
        let events = vec![open(1, 1, 0, 0), read(1, 0, 0, 100, 1)];
        let c = analyze(&events);
        assert_eq!(shared_percent(&c.sessions[&1], Granularity::Bytes), None);
    }

    #[test]
    fn interjob_concurrent_sharing_detected() {
        // Same file (id 7), two jobs, overlapping windows.
        let mut events = vec![
            ev(
                0,
                0,
                EventBody::Open {
                    job: 1,
                    file: 7,
                    session: 1,
                    mode: 0,
                    access: AccessKind::Read,
                    created: false,
                },
            ),
            read(1, 0, 0, 100, 1),
        ];
        events.push(ev(
            5,
            1,
            EventBody::Open {
                job: 2,
                file: 7,
                session: 2,
                mode: 0,
                access: AccessKind::Read,
                created: false,
            },
        ));
        events.push(read(2, 1, 0, 100, 6));
        events.push(ev(
            10,
            0,
            EventBody::Close {
                session: 1,
                size: 100,
            },
        ));
        events.push(ev(
            20,
            1,
            EventBody::Close {
                session: 2,
                size: 100,
            },
        ));
        let c = analyze(&events);
        assert_eq!(concurrent_interjob_shares(&c), 1);
    }

    #[test]
    fn cdfs_split_by_class() {
        let events = vec![
            open(1, 1, 0, 0),
            open(1, 1, 1, 1),
            read(1, 0, 0, 8192, 2),
            read(1, 1, 0, 8192, 3),
        ];
        let c = analyze(&events);
        let cdfs = sharing_cdfs(&c);
        assert_eq!(cdfs.read_bytes.total() as u64, 1);
        assert_eq!(cdfs.write_bytes.total() as u64, 0);
    }
}
