//! Tables 2 and 3: regularity of interval sizes and request sizes.
//!
//! Table 2 counts, per file, the number of *different interval sizes*
//! (bytes skipped between one request and the next, per node) used across
//! all nodes; Table 3 counts the number of different request sizes. The
//! paper's rows are 0, 1, 2, 3, and 4+.

use crate::analyze::Characterization;

/// A Table 2/3-style row vector: counts of files with 0, 1, 2, 3, and 4+
/// distinct values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegularityTable {
    /// `rows[k]` = files with k distinct values (k = 0..3); `rows[4]` = 4+.
    pub rows: [usize; 5],
}

impl RegularityTable {
    /// Total files counted.
    pub fn total(&self) -> usize {
        self.rows.iter().sum()
    }

    /// Row values as percentages of the total.
    pub fn percents(&self) -> [f64; 5] {
        let total = self.total().max(1) as f64;
        let mut out = [0.0; 5];
        for (o, &r) in out.iter_mut().zip(&self.rows) {
            *o = 100.0 * r as f64 / total;
        }
        out
    }

    fn add(&mut self, distinct: usize) {
        self.rows[distinct.min(4)] += 1;
    }
}

/// Table 2: distinct interval sizes per file.
///
/// Files where no node made a second request land in row 0 ("only one
/// access was made to a file, per node"), including unaccessed opens.
pub fn interval_table(c: &Characterization) -> RegularityTable {
    let mut t = RegularityTable::default();
    for s in c.sessions.values() {
        t.add(s.intervals.distinct());
    }
    t
}

/// Table 3: distinct request sizes per file. Unaccessed opens land in
/// row 0 ("opened and closed without being accessed").
pub fn request_size_table(c: &Characterization) -> RegularityTable {
    let mut t = RegularityTable::default();
    for s in c.sessions.values() {
        t.add(s.request_sizes.distinct());
    }
    t
}

/// Among files with exactly one distinct interval size, the fraction whose
/// interval is zero — i.e. consecutive. The paper reports over 99 %.
pub fn one_interval_consecutive_fraction(c: &Characterization) -> f64 {
    let mut one = 0usize;
    let mut zero = 0usize;
    for s in c.sessions.values() {
        if s.intervals.distinct() == 1 {
            one += 1;
            if s.intervals.values() == [0] {
                zero += 1;
            }
        }
    }
    zero as f64 / one.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use charisma_ipsc::SimTime;
    use charisma_trace::record::{AccessKind, EventBody};
    use charisma_trace::OrderedEvent;

    fn ev(t: u64, node: u16, body: EventBody) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::from_micros(t),
            node,
            body,
        }
    }

    fn reads(sid: u32, node: u16, specs: &[(u64, u32)]) -> Vec<OrderedEvent> {
        let mut out = vec![ev(
            u64::from(sid) * 1000,
            node,
            EventBody::Open {
                job: 1,
                file: sid,
                session: sid,
                mode: 0,
                access: AccessKind::Read,
                created: false,
            },
        )];
        for (k, &(offset, bytes)) in specs.iter().enumerate() {
            out.push(ev(
                u64::from(sid) * 1000 + 1 + k as u64,
                node,
                EventBody::Read {
                    session: sid,
                    offset,
                    bytes,
                },
            ));
        }
        out
    }

    #[test]
    fn rows_classify_distinct_interval_counts() {
        let mut events = Vec::new();
        // sid 1: one request → 0 intervals.
        events.extend(reads(1, 0, &[(0, 100)]));
        // sid 2: consecutive → intervals {0} → 1.
        events.extend(reads(2, 0, &[(0, 100), (100, 100), (200, 100)]));
        // sid 3: strided → {412} → 1.
        events.extend(reads(3, 0, &[(0, 100), (512, 100), (1024, 100)]));
        // sid 4: 2-D pattern → {0, 412} → 2.
        events.extend(reads(4, 0, &[(0, 100), (100, 100), (612, 100), (712, 100)]));
        // sid 5: random → 4+ distinct.
        events.extend(reads(
            5,
            0,
            &[(0, 10), (100, 10), (5, 10), (900, 10), (20, 10), (700, 10)],
        ));
        let c = analyze(&events);
        let t = interval_table(&c);
        assert_eq!(t.rows, [1, 2, 1, 0, 1]);
        assert_eq!(t.total(), 5);
    }

    #[test]
    fn intervals_pool_across_nodes() {
        // Two nodes, each with the same stride: still one distinct value.
        let mut events = Vec::new();
        events.extend(reads(1, 0, &[(0, 100), (512, 100)]));
        events.extend(reads(1, 1, &[(100, 100), (612, 100)]));
        let c = analyze(&events);
        assert_eq!(c.sessions[&1].intervals.distinct(), 1);
    }

    #[test]
    fn request_size_rows() {
        let mut events = Vec::new();
        events.extend(reads(1, 0, &[(0, 100), (100, 100)])); // one size
        events.extend(reads(2, 0, &[(0, 100), (100, 37)])); // two sizes
                                                            // sid 3: opened but unaccessed → 0 sizes.
        events.extend(reads(3, 0, &[]));
        let c = analyze(&events);
        let t = request_size_table(&c);
        assert_eq!(t.rows, [1, 1, 1, 0, 0]);
    }

    #[test]
    fn percents_sum_to_100() {
        let mut events = Vec::new();
        for sid in 0..10 {
            events.extend(reads(sid, 0, &[(0, 100), (100, 100)]));
        }
        let c = analyze(&events);
        let p = request_size_table(&c).percents();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn consecutive_fraction_among_one_interval_files() {
        let mut events = Vec::new();
        events.extend(reads(1, 0, &[(0, 100), (100, 100)])); // {0}
        events.extend(reads(2, 0, &[(0, 100), (100, 100)])); // {0}
        events.extend(reads(3, 0, &[(0, 100), (512, 100)])); // {412}
        let c = analyze(&events);
        let f = one_interval_consecutive_fraction(&c);
        assert!((f - 2.0 / 3.0).abs() < 1e-9);
    }
}
