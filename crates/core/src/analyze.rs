//! The single-pass trace analyzer.
//!
//! Consumes a rectified event stream once and accumulates everything the
//! figure/table modules need: per-job facts, per-session facts, and
//! per-(session, node) access-pattern state.

use std::collections::HashMap;

use charisma_ipsc::SimTime;
use charisma_trace::record::{AccessKind, EventBody};
use charisma_trace::OrderedEvent;

/// Distinct-value tracker capped at a small bound: the tables only need
/// "0, 1, 2, 3, or 4+" distinct values, so we never store more than five.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SmallSet<T: Copy + PartialEq> {
    items: Vec<T>,
    overflowed: bool,
}

impl<T: Copy + PartialEq> SmallSet<T> {
    const CAP: usize = 5;

    /// Insert a value (deduplicated; capped).
    pub fn insert(&mut self, v: T) {
        if self.overflowed || self.items.contains(&v) {
            return;
        }
        if self.items.len() >= Self::CAP {
            self.overflowed = true;
        } else {
            self.items.push(v);
        }
    }

    /// Number of distinct values seen, saturating at 5 (i.e. "4+" is 5).
    pub fn distinct(&self) -> usize {
        if self.overflowed {
            Self::CAP + 1
        } else {
            self.items.len()
        }
    }

    /// The values, if they did not overflow.
    pub fn values(&self) -> &[T] {
        &self.items
    }
}

/// Per-(session, node) access-pattern accumulator.
#[derive(Clone, Debug)]
pub struct NodeAccess {
    /// The node.
    pub node: u16,
    /// Requests issued by this node in the session.
    pub requests: u32,
    /// Requests with a predecessor (everything after the node's first).
    pub counted: u32,
    /// Counted requests at a strictly higher offset than the previous
    /// request (the paper's *sequential*).
    pub sequential: u32,
    /// Counted requests starting exactly where the previous ended (the
    /// paper's *consecutive*).
    pub consecutive: u32,
    last_offset: u64,
    last_end: u64,
    /// Byte ranges touched, merged when contiguous in arrival order.
    pub segments: Vec<(u64, u64)>,
}

impl NodeAccess {
    fn new(node: u16) -> Self {
        NodeAccess {
            node,
            requests: 0,
            counted: 0,
            sequential: 0,
            consecutive: 0,
            last_offset: 0,
            last_end: 0,
            segments: Vec::new(),
        }
    }

    fn record(&mut self, offset: u64, bytes: u32) {
        if self.requests > 0 {
            self.counted += 1;
            if offset > self.last_offset {
                self.sequential += 1;
            }
            if offset == self.last_end {
                self.consecutive += 1;
            }
        }
        self.requests += 1;
        self.last_offset = offset;
        self.last_end = offset + u64::from(bytes);
        let end = offset + u64::from(bytes);
        match self.segments.last_mut() {
            Some((_, le)) if *le == offset => *le = end,
            _ => {
                if bytes > 0 {
                    self.segments.push((offset, end));
                }
            }
        }
    }

    /// This node's touched ranges as a disjoint, sorted union.
    pub fn merged_segments(&self) -> Vec<(u64, u64)> {
        let mut segs = self.segments.clone();
        segs.sort_unstable();
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(segs.len());
        for (s, e) in segs {
            match out.last_mut() {
                Some((_, le)) if *le >= s => *le = (*le).max(e),
                _ => out.push((s, e)),
            }
        }
        out
    }
}

/// Everything known about one open session.
#[derive(Clone, Debug)]
pub struct SessionStat {
    /// Owning job.
    pub job: u32,
    /// Path identity.
    pub file: u32,
    /// CFS I/O mode code (0-3).
    pub mode: u8,
    /// Open flags.
    pub access: AccessKind,
    /// Whether the open created the file.
    pub created: bool,
    /// Read requests / bytes.
    pub reads: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Write requests.
    pub writes: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// File size observed at (the last) close.
    pub size_at_close: u64,
    /// First open timestamp.
    pub open_time: SimTime,
    /// Last close timestamp.
    pub close_time: SimTime,
    /// Distinct inter-request gaps (signed: offset − previous end), pooled
    /// across nodes (Table 2).
    pub intervals: SmallSet<i64>,
    /// Distinct request sizes, pooled across nodes (Table 3).
    pub request_sizes: SmallSet<u32>,
    /// Per-node access state.
    pub nodes: Vec<NodeAccess>,
    /// Job that deleted the file, if it was deleted in the trace.
    pub deleted_by: Option<u32>,
}

impl SessionStat {
    fn new(job: u32, file: u32, mode: u8, access: AccessKind, created: bool, t: SimTime) -> Self {
        SessionStat {
            job,
            file,
            mode,
            access,
            created,
            reads: 0,
            bytes_read: 0,
            writes: 0,
            bytes_written: 0,
            size_at_close: 0,
            open_time: t,
            close_time: t,
            intervals: SmallSet::default(),
            request_sizes: SmallSet::default(),
            nodes: Vec::new(),
            deleted_by: None,
        }
    }

    fn node_mut(&mut self, node: u16) -> &mut NodeAccess {
        if let Some(i) = self.nodes.iter().position(|n| n.node == node) {
            &mut self.nodes[i]
        } else {
            self.nodes.push(NodeAccess::new(node));
            self.nodes.last_mut().expect("just pushed")
        }
    }

    fn record_request(&mut self, node: u16, offset: u64, bytes: u32, is_read: bool, t: SimTime) {
        self.request_sizes.insert(bytes);
        let na = self.node_mut(node);
        let gap = (na.requests > 0).then(|| offset as i64 - na.last_end as i64);
        na.record(offset, bytes);
        if let Some(gap) = gap {
            // `intervals` are the gaps between a node's successive
            // requests; consecutive access has gap 0.
            self.intervals.insert(gap);
        }
        if is_read {
            self.reads += 1;
            self.bytes_read += u64::from(bytes);
        } else {
            self.writes += 1;
            self.bytes_written += u64::from(bytes);
        }
        self.close_time = self.close_time.max(t);
    }

    /// Total requests across nodes.
    pub fn requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Number of distinct nodes that issued at least one request.
    pub fn accessing_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.requests > 0).count()
    }

    /// Whether the session was read-only / write-only / read-write /
    /// unaccessed, per §4.2's census classes.
    pub fn class(&self) -> SessionClass {
        match (self.reads > 0, self.writes > 0) {
            (true, false) => SessionClass::ReadOnly,
            (false, true) => SessionClass::WriteOnly,
            (true, true) => SessionClass::ReadWrite,
            (false, false) => SessionClass::Unaccessed,
        }
    }

    /// Whether this session's file was a temporary: created by this job
    /// and deleted by the same job.
    pub fn temporary(&self) -> bool {
        self.created && self.deleted_by == Some(self.job)
    }
}

/// §4.2's census classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SessionClass {
    /// Only read.
    ReadOnly,
    /// Only written.
    WriteOnly,
    /// Both read and written in the same open.
    ReadWrite,
    /// Opened but neither read nor written.
    Unaccessed,
}

/// Per-job facts.
#[derive(Clone, Debug)]
pub struct JobInfo {
    /// Compute nodes used.
    pub nodes: u16,
    /// Whether the job's file I/O was traced.
    pub traced: bool,
    /// Job start time.
    pub start: SimTime,
    /// Job end time.
    pub end: SimTime,
    /// Sessions the job opened.
    pub files_opened: u32,
}

/// The complete accumulated characterization.
#[derive(Clone, Debug, Default)]
pub struct Characterization {
    /// Jobs by id.
    pub jobs: HashMap<u32, JobInfo>,
    /// Sessions by session id.
    pub sessions: HashMap<u32, SessionStat>,
    /// End of the observed period (max event time).
    pub horizon: SimTime,
}

impl Characterization {
    /// Sessions in a stable order (ascending id), for deterministic output.
    pub fn sessions_sorted(&self) -> Vec<&SessionStat> {
        let mut ids: Vec<_> = self.sessions.keys().copied().collect();
        ids.sort_unstable();
        ids.iter().map(|i| &self.sessions[i]).collect()
    }
}

/// Run the one-pass analysis over a rectified event stream.
pub fn analyze<'a, I>(events: I) -> Characterization
where
    I: IntoIterator<Item = &'a OrderedEvent>,
{
    let mut a = Analyzer::new();
    for e in events {
        a.push(e);
    }
    a.finish()
}

/// The incremental form of [`analyze`]: feed events one at a time.
///
/// The sharded pipeline's k-way merge yields events as a streaming
/// iterator; this accumulator lets the analysis consume it in the same
/// pass that materializes the stream, instead of requiring a `Vec` first.
#[derive(Debug, Default)]
pub struct Analyzer {
    c: Characterization,
    /// file → sessions that opened it (for delete attribution).
    file_sessions: HashMap<u32, Vec<u32>>,
}

impl Analyzer {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the accumulator, yielding the finished characterization.
    pub fn finish(self) -> Characterization {
        self.c
    }

    /// Account one event. Events must arrive in rectified stream order.
    pub fn push(&mut self, e: &OrderedEvent) {
        let c = &mut self.c;
        let file_sessions = &mut self.file_sessions;
        c.horizon = c.horizon.max(e.time);
        match e.body {
            EventBody::JobStart { job, nodes, traced } => {
                c.jobs.insert(
                    job,
                    JobInfo {
                        nodes,
                        traced,
                        start: e.time,
                        end: e.time,
                        files_opened: 0,
                    },
                );
            }
            EventBody::JobEnd { job } => {
                if let Some(j) = c.jobs.get_mut(&job) {
                    j.end = e.time;
                }
            }
            EventBody::Open {
                job,
                file,
                session,
                mode,
                access,
                created,
            } => {
                let stat = c
                    .sessions
                    .entry(session)
                    .or_insert_with(|| SessionStat::new(job, file, mode, access, created, e.time));
                stat.open_time = stat.open_time.min(e.time);
                // Register the attaching node with zero requests.
                stat.node_mut(e.node);
                file_sessions.entry(file).or_default().push(session);
                if let Some(j) = c.jobs.get_mut(&job) {
                    // Count each session once (first node's open).
                    if stat.nodes.len() == 1 {
                        j.files_opened += 1;
                    }
                }
            }
            EventBody::Close { session, size } => {
                if let Some(s) = c.sessions.get_mut(&session) {
                    s.size_at_close = s.size_at_close.max(size);
                    s.close_time = s.close_time.max(e.time);
                }
            }
            EventBody::Read {
                session,
                offset,
                bytes,
            } => {
                if let Some(s) = c.sessions.get_mut(&session) {
                    s.record_request(e.node, offset, bytes, true, e.time);
                }
            }
            EventBody::Write {
                session,
                offset,
                bytes,
            } => {
                if let Some(s) = c.sessions.get_mut(&session) {
                    s.record_request(e.node, offset, bytes, false, e.time);
                }
            }
            EventBody::Delete { job, file } => {
                if let Some(sessions) = file_sessions.get(&file) {
                    for sid in sessions {
                        if let Some(s) = c.sessions.get_mut(sid) {
                            s.deleted_by = Some(job);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time_us: u64, node: u16, body: EventBody) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::from_micros(time_us),
            node,
            body,
        }
    }

    fn open(job: u32, file: u32, session: u32, access: AccessKind) -> EventBody {
        EventBody::Open {
            job,
            file,
            session,
            mode: 0,
            access,
            created: access != AccessKind::Read,
        }
    }

    #[test]
    fn small_set_caps_at_five() {
        let mut s = SmallSet::default();
        for v in [1, 1, 2, 3, 2, 4, 5] {
            s.insert(v);
        }
        assert_eq!(s.distinct(), 5);
        s.insert(6);
        assert_eq!(s.distinct(), 6, "overflow = 4+ bucket");
        s.insert(7);
        assert_eq!(s.distinct(), 6);
    }

    #[test]
    fn classifies_sessions() {
        let events = vec![
            ev(
                0,
                u16::MAX,
                EventBody::JobStart {
                    job: 1,
                    nodes: 2,
                    traced: true,
                },
            ),
            ev(1, 0, open(1, 10, 100, AccessKind::Read)),
            ev(
                2,
                0,
                EventBody::Read {
                    session: 100,
                    offset: 0,
                    bytes: 100,
                },
            ),
            ev(
                3,
                0,
                EventBody::Close {
                    session: 100,
                    size: 500,
                },
            ),
            ev(4, 1, open(1, 11, 101, AccessKind::Write)),
            ev(
                5,
                1,
                EventBody::Write {
                    session: 101,
                    offset: 0,
                    bytes: 64,
                },
            ),
            ev(
                6,
                1,
                EventBody::Close {
                    session: 101,
                    size: 64,
                },
            ),
            ev(7, 0, open(1, 12, 102, AccessKind::ReadWrite)),
            ev(
                8,
                0,
                EventBody::Close {
                    session: 102,
                    size: 0,
                },
            ),
            ev(9, u16::MAX, EventBody::JobEnd { job: 1 }),
        ];
        let c = analyze(&events);
        assert_eq!(c.sessions[&100].class(), SessionClass::ReadOnly);
        assert_eq!(c.sessions[&101].class(), SessionClass::WriteOnly);
        assert_eq!(c.sessions[&102].class(), SessionClass::Unaccessed);
        assert_eq!(c.sessions[&100].size_at_close, 500);
        assert_eq!(c.jobs[&1].files_opened, 3);
        assert_eq!(c.horizon, SimTime::from_micros(9));
    }

    #[test]
    fn sequential_and_consecutive_counters() {
        let events = vec![
            ev(1, 0, open(1, 1, 1, AccessKind::Read)),
            // consecutive, consecutive, gap forward, backward.
            ev(
                2,
                0,
                EventBody::Read {
                    session: 1,
                    offset: 0,
                    bytes: 100,
                },
            ),
            ev(
                3,
                0,
                EventBody::Read {
                    session: 1,
                    offset: 100,
                    bytes: 100,
                },
            ),
            ev(
                4,
                0,
                EventBody::Read {
                    session: 1,
                    offset: 200,
                    bytes: 100,
                },
            ),
            ev(
                5,
                0,
                EventBody::Read {
                    session: 1,
                    offset: 500,
                    bytes: 100,
                },
            ),
            ev(
                6,
                0,
                EventBody::Read {
                    session: 1,
                    offset: 0,
                    bytes: 100,
                },
            ),
        ];
        let c = analyze(&events);
        let s = &c.sessions[&1];
        let n = &s.nodes[0];
        assert_eq!(n.requests, 5);
        assert_eq!(n.counted, 4);
        assert_eq!(n.sequential, 3, "backward jump is not sequential");
        assert_eq!(n.consecutive, 2);
        // Gaps: 0, 0, 200, -600 → distinct {0, 200, -600} = 3.
        assert_eq!(s.intervals.distinct(), 3);
        assert_eq!(s.request_sizes.distinct(), 1);
    }

    #[test]
    fn per_node_state_is_independent() {
        let events = vec![
            ev(1, 0, open(1, 1, 1, AccessKind::Read)),
            ev(1, 1, open(1, 1, 1, AccessKind::Read)),
            // Interleaved: node 0 at 0,1024; node 1 at 512,1536.
            ev(
                2,
                0,
                EventBody::Read {
                    session: 1,
                    offset: 0,
                    bytes: 512,
                },
            ),
            ev(
                3,
                1,
                EventBody::Read {
                    session: 1,
                    offset: 512,
                    bytes: 512,
                },
            ),
            ev(
                4,
                0,
                EventBody::Read {
                    session: 1,
                    offset: 1024,
                    bytes: 512,
                },
            ),
            ev(
                5,
                1,
                EventBody::Read {
                    session: 1,
                    offset: 1536,
                    bytes: 512,
                },
            ),
        ];
        let c = analyze(&events);
        let s = &c.sessions[&1];
        assert_eq!(s.accessing_nodes(), 2);
        for n in &s.nodes {
            assert_eq!(n.requests, 2);
            assert_eq!(n.sequential, 1);
            assert_eq!(n.consecutive, 0, "per-node view has gaps");
        }
        // Per-node gap is 512 for both nodes → one distinct interval.
        assert_eq!(s.intervals.distinct(), 1);
        assert_eq!(s.intervals.values(), &[512]);
    }

    #[test]
    fn segments_merge_and_union() {
        let mut na = NodeAccess::new(0);
        na.record(0, 100);
        na.record(100, 100); // contiguous: merges
        na.record(500, 100);
        na.record(0, 50); // overlap with first after re-seek
        let merged = na.merged_segments();
        assert_eq!(merged, vec![(0, 200), (500, 600)]);
    }

    #[test]
    fn temporary_detection() {
        let events = vec![
            ev(1, 0, open(1, 7, 1, AccessKind::ReadWrite)),
            ev(
                2,
                0,
                EventBody::Write {
                    session: 1,
                    offset: 0,
                    bytes: 10,
                },
            ),
            ev(
                3,
                0,
                EventBody::Close {
                    session: 1,
                    size: 10,
                },
            ),
            ev(4, 0, EventBody::Delete { job: 1, file: 7 }),
            ev(5, 0, open(2, 8, 2, AccessKind::ReadWrite)),
            ev(
                6,
                0,
                EventBody::Close {
                    session: 2,
                    size: 0,
                },
            ),
            ev(7, 0, EventBody::Delete { job: 9, file: 8 }),
        ];
        let c = analyze(&events);
        assert!(c.sessions[&1].temporary());
        assert!(
            !c.sessions[&2].temporary(),
            "deleted by a different job: not temporary"
        );
    }
}
