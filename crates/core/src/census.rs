//! §4.2's file census and Figure 3.

use crate::analyze::{Characterization, SessionClass};
use crate::cdf::Cdf;

/// The §4.2 census: how the ~64,000 opened files divided by use.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Census {
    /// Total open sessions.
    pub total: usize,
    /// Files only written.
    pub write_only: usize,
    /// Files only read.
    pub read_only: usize,
    /// Files read and written in the same open.
    pub read_write: usize,
    /// Files opened but neither read nor written.
    pub unaccessed: usize,
    /// Temporary files (created and deleted by the same job).
    pub temporary: usize,
    /// Mean bytes written per write-only file (paper: 1.2 MB).
    pub avg_bytes_written_wo: f64,
    /// Mean bytes read per read-only file (paper: 3.3 MB).
    pub avg_bytes_read_ro: f64,
}

/// Compute the census.
pub fn census(c: &Characterization) -> Census {
    let mut out = Census::default();
    let mut wo_bytes = 0u64;
    let mut ro_bytes = 0u64;
    for s in c.sessions.values() {
        out.total += 1;
        match s.class() {
            SessionClass::WriteOnly => {
                out.write_only += 1;
                wo_bytes += s.bytes_written;
            }
            SessionClass::ReadOnly => {
                out.read_only += 1;
                ro_bytes += s.bytes_read;
            }
            SessionClass::ReadWrite => out.read_write += 1,
            SessionClass::Unaccessed => out.unaccessed += 1,
        }
        if s.temporary() {
            out.temporary += 1;
        }
    }
    out.avg_bytes_written_wo = wo_bytes as f64 / out.write_only.max(1) as f64;
    out.avg_bytes_read_ro = ro_bytes as f64 / out.read_only.max(1) as f64;
    out
}

impl Census {
    /// Fraction of opens that were to temporary files (paper: 0.61 %).
    pub fn temporary_fraction(&self) -> f64 {
        self.temporary as f64 / self.total.max(1) as f64
    }
}

/// Figure 3: CDF of file size at close, over accessed sessions.
pub fn size_cdf(c: &Characterization) -> Cdf {
    let mut cdf = Cdf::new();
    for s in c.sessions.values() {
        if s.class() != SessionClass::Unaccessed {
            cdf.add(s.size_at_close);
        }
    }
    cdf.seal();
    cdf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use charisma_ipsc::SimTime;
    use charisma_trace::record::{AccessKind, EventBody};
    use charisma_trace::OrderedEvent;

    fn ev(time_us: u64, node: u16, body: EventBody) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::from_micros(time_us),
            node,
            body,
        }
    }

    fn session(events: &mut Vec<OrderedEvent>, sid: u32, writes: u32, reads: u32, size: u64) {
        let t0 = events.len() as u64 * 100;
        events.push(ev(
            t0,
            0,
            EventBody::Open {
                job: 1,
                file: sid,
                session: sid,
                mode: 0,
                access: AccessKind::ReadWrite,
                created: true,
            },
        ));
        for k in 0..writes {
            events.push(ev(
                t0 + 1 + u64::from(k),
                0,
                EventBody::Write {
                    session: sid,
                    offset: u64::from(k) * 100,
                    bytes: 100,
                },
            ));
        }
        for k in 0..reads {
            events.push(ev(
                t0 + 50 + u64::from(k),
                0,
                EventBody::Read {
                    session: sid,
                    offset: u64::from(k) * 100,
                    bytes: 100,
                },
            ));
        }
        events.push(ev(t0 + 99, 0, EventBody::Close { session: sid, size }));
    }

    #[test]
    fn census_counts_classes() {
        let mut events = Vec::new();
        session(&mut events, 1, 3, 0, 300); // WO
        session(&mut events, 2, 5, 0, 500); // WO
        session(&mut events, 3, 0, 2, 1000); // RO
        session(&mut events, 4, 1, 1, 100); // RW
        session(&mut events, 5, 0, 0, 0); // unaccessed
        let c = analyze(&events);
        let cen = census(&c);
        assert_eq!(cen.total, 5);
        assert_eq!(cen.write_only, 2);
        assert_eq!(cen.read_only, 1);
        assert_eq!(cen.read_write, 1);
        assert_eq!(cen.unaccessed, 1);
        assert!((cen.avg_bytes_written_wo - 400.0).abs() < 1e-9);
        assert!((cen.avg_bytes_read_ro - 200.0).abs() < 1e-9);
    }

    #[test]
    fn size_cdf_excludes_unaccessed() {
        let mut events = Vec::new();
        session(&mut events, 1, 1, 0, 25_000);
        session(&mut events, 2, 1, 0, 250_000);
        session(&mut events, 3, 0, 0, 0); // unaccessed: excluded
        let c = analyze(&events);
        let cdf = size_cdf(&c);
        assert_eq!(cdf.total() as usize, 2);
        assert!((cdf.fraction_le(25_000) - 0.5).abs() < 1e-9);
        assert!((cdf.fraction_le(250_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn temporary_fraction() {
        let mut events = Vec::new();
        session(&mut events, 1, 1, 0, 100);
        session(&mut events, 2, 1, 0, 100);
        events.push(ev(10_000, 0, EventBody::Delete { job: 1, file: 2 }));
        let c = analyze(&events);
        let cen = census(&c);
        assert_eq!(cen.temporary, 1);
        assert!((cen.temporary_fraction() - 0.5).abs() < 1e-9);
    }
}
