//! Job-mix analyses: Figure 1, Figure 2, Table 1.

use crate::analyze::Characterization;

/// Figure 1: fraction of the traced period spent with each number of jobs
/// running. Index = job count; value = fraction of time.
pub fn concurrency_profile(c: &Characterization) -> Vec<f64> {
    // Sweep over job start/end events.
    let mut edges: Vec<(u64, i32)> = Vec::with_capacity(c.jobs.len() * 2);
    for j in c.jobs.values() {
        edges.push((j.start.as_micros(), 1));
        edges.push((j.end.as_micros(), -1));
    }
    edges.sort_unstable();
    let horizon = c.horizon.as_micros();
    let mut level = 0i32;
    let mut last = 0u64;
    let mut time_at: Vec<u64> = vec![0; 16];
    for (t, d) in edges {
        let t = t.min(horizon);
        let idx = (level.max(0) as usize).min(time_at.len() - 1);
        time_at[idx] += t - last;
        last = t;
        level += d;
    }
    if last < horizon {
        time_at[0] += horizon - last;
    }
    let total: u64 = time_at.iter().sum();
    while time_at.len() > 1 && *time_at.last().expect("nonempty") == 0 {
        time_at.pop();
    }
    time_at
        .iter()
        .map(|&t| t as f64 / total.max(1) as f64)
        .collect()
}

/// Figure 2: percent of jobs using each number of compute nodes,
/// as `(nodes, percent)`, ascending by node count.
pub fn node_usage(c: &Characterization) -> Vec<(u16, f64)> {
    let mut counts: std::collections::BTreeMap<u16, usize> = std::collections::BTreeMap::new();
    for j in c.jobs.values() {
        *counts.entry(j.nodes).or_insert(0) += 1;
    }
    let total = c.jobs.len().max(1) as f64;
    counts
        .into_iter()
        .map(|(n, k)| (n, 100.0 * k as f64 / total))
        .collect()
}

/// Fraction of node-time used by jobs of each size (the "large parallel
/// jobs dominated node usage" claim), as `(nodes, fraction)`.
pub fn node_time_share(c: &Characterization) -> Vec<(u16, f64)> {
    let mut usage: std::collections::BTreeMap<u16, f64> = std::collections::BTreeMap::new();
    let mut total = 0.0;
    for j in c.jobs.values() {
        let t = (j.end - j.start).as_secs_f64() * f64::from(j.nodes);
        *usage.entry(j.nodes).or_insert(0.0) += t;
        total += t;
    }
    usage
        .into_iter()
        .map(|(n, t)| (n, t / total.max(f64::MIN_POSITIVE)))
        .collect()
}

/// Table 1: among traced jobs that opened at least one file, how many
/// opened 1, 2, 3, 4, and 5+ files. Returns `[n1, n2, n3, n4, n5plus]`.
pub fn files_per_job(c: &Characterization) -> [usize; 5] {
    let mut buckets = [0usize; 5];
    for j in c.jobs.values() {
        if !j.traced || j.files_opened == 0 {
            continue;
        }
        let idx = (j.files_opened as usize - 1).min(4);
        buckets[idx] += 1;
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze, JobInfo};
    use charisma_ipsc::SimTime;

    fn job(nodes: u16, traced: bool, start: u64, end: u64, files: u32) -> JobInfo {
        JobInfo {
            nodes,
            traced,
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
            files_opened: files,
        }
    }

    fn chars(jobs: Vec<(u32, JobInfo)>) -> Characterization {
        let mut c = analyze(&[]);
        c.horizon = jobs
            .iter()
            .map(|(_, j)| j.end)
            .max()
            .unwrap_or(SimTime::ZERO);
        c.jobs = jobs.into_iter().collect();
        c
    }

    #[test]
    fn concurrency_profile_sums_to_one() {
        let c = chars(vec![
            (1, job(1, false, 0, 10, 0)),
            (2, job(2, false, 5, 20, 0)),
            (3, job(4, false, 30, 40, 0)),
        ]);
        let p = concurrency_profile(&c);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // 0..5 one job, 5..10 two, 10..20 one, 20..30 idle, 30..40 one.
        assert!((p[0] - 0.25).abs() < 1e-9);
        assert!((p[1] - 0.625).abs() < 1e-9);
        assert!((p[2] - 0.125).abs() < 1e-9);
    }

    #[test]
    fn idle_machine_is_all_level_zero() {
        let mut c = chars(vec![]);
        c.horizon = SimTime::from_secs(100);
        let p = concurrency_profile(&c);
        assert_eq!(p, vec![1.0]);
    }

    #[test]
    fn node_usage_percentages() {
        let c = chars(vec![
            (1, job(1, false, 0, 1, 0)),
            (2, job(1, false, 0, 1, 0)),
            (3, job(64, false, 0, 1, 0)),
            (4, job(128, false, 0, 1, 0)),
        ]);
        let u = node_usage(&c);
        assert_eq!(u[0], (1, 50.0));
        assert_eq!(u[1], (64, 25.0));
        assert_eq!(u[2], (128, 25.0));
    }

    #[test]
    fn node_time_dominated_by_large_jobs() {
        // One 128-node hour vs many 1-node minutes.
        let mut jobs = vec![(0u32, job(128, false, 0, 3600, 0))];
        for i in 1..30 {
            jobs.push((i, job(1, false, 0, 60, 0)));
        }
        let c = chars(jobs);
        let share = node_time_share(&c);
        let big = share.iter().find(|&&(n, _)| n == 128).expect("exists").1;
        assert!(big > 0.99);
    }

    #[test]
    fn files_per_job_buckets() {
        let c = chars(vec![
            (1, job(1, true, 0, 1, 1)),
            (2, job(1, true, 0, 1, 2)),
            (3, job(1, true, 0, 1, 4)),
            (4, job(1, true, 0, 1, 9)),
            (5, job(1, true, 0, 1, 200)),
            (6, job(1, true, 0, 1, 0)),  // no files: excluded
            (7, job(1, false, 0, 1, 3)), // untraced: excluded
        ]);
        assert_eq!(files_per_job(&c), [1, 1, 0, 1, 2]);
    }
}
