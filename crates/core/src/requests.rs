//! Figure 4: request sizes, by count and by data transferred.
//!
//! The analyzer's `SessionStat` does not retain individual requests, so
//! this module accumulates its CDFs in its own streaming pass — cheap, and
//! it keeps the per-session state small.

use charisma_trace::record::EventBody;
use charisma_trace::OrderedEvent;

use crate::cdf::Cdf;

/// Figure 4's four curves plus the paper's headline percentages.
#[derive(Clone, Debug)]
pub struct RequestSizes {
    /// CDF of read request sizes, weighted by count.
    pub reads_by_count: Cdf,
    /// CDF of read request sizes, weighted by bytes moved.
    pub reads_by_bytes: Cdf,
    /// CDF of write request sizes, weighted by count.
    pub writes_by_count: Cdf,
    /// CDF of write request sizes, weighted by bytes moved.
    pub writes_by_bytes: Cdf,
}

impl RequestSizes {
    /// Empty (unsealed) curves, for incremental accumulation via [`Self::push`].
    pub fn new() -> Self {
        RequestSizes {
            reads_by_count: Cdf::new(),
            reads_by_bytes: Cdf::new(),
            writes_by_count: Cdf::new(),
            writes_by_bytes: Cdf::new(),
        }
    }

    /// Account one event (reads and writes; everything else is ignored).
    pub fn push(&mut self, e: &OrderedEvent) {
        match e.body {
            EventBody::Read { bytes, .. } => {
                self.reads_by_count.add(u64::from(bytes));
                self.reads_by_bytes
                    .add_weighted(u64::from(bytes), f64::from(bytes));
            }
            EventBody::Write { bytes, .. } => {
                self.writes_by_count.add(u64::from(bytes));
                self.writes_by_bytes
                    .add_weighted(u64::from(bytes), f64::from(bytes));
            }
            _ => {}
        }
    }

    /// Seal the curves once the stream ends; fractions are valid after.
    pub fn seal(&mut self) {
        self.reads_by_count.seal();
        self.reads_by_bytes.seal();
        self.writes_by_count.seal();
        self.writes_by_bytes.seal();
    }

    /// Fraction of reads smaller than 4000 bytes (paper: 96.1 %).
    pub fn small_read_fraction(&self) -> f64 {
        self.reads_by_count.fraction_le(3999)
    }

    /// Fraction of read data moved by sub-4000-byte reads (paper: 2.0 %).
    pub fn small_read_data_fraction(&self) -> f64 {
        self.reads_by_bytes.fraction_le(3999)
    }

    /// Fraction of writes smaller than 4000 bytes (paper: 89.4 %).
    pub fn small_write_fraction(&self) -> f64 {
        self.writes_by_count.fraction_le(3999)
    }

    /// Fraction of written data moved by sub-4000-byte writes (paper: 3 %).
    pub fn small_write_data_fraction(&self) -> f64 {
        self.writes_by_bytes.fraction_le(3999)
    }
}

/// Accumulate the Figure 4 curves from an event stream.
pub fn request_sizes<'a, I>(events: I) -> RequestSizes
where
    I: IntoIterator<Item = &'a OrderedEvent>,
{
    let mut out = RequestSizes::new();
    for e in events {
        out.push(e);
    }
    out.seal();
    out
}

impl Default for RequestSizes {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_ipsc::SimTime;

    fn read(bytes: u32) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::ZERO,
            node: 0,
            body: EventBody::Read {
                session: 1,
                offset: 0,
                bytes,
            },
        }
    }

    fn write(bytes: u32) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::ZERO,
            node: 0,
            body: EventBody::Write {
                session: 1,
                offset: 0,
                bytes,
            },
        }
    }

    #[test]
    fn paper_shape_small_count_large_bytes() {
        // 96 small reads, 4 large ones carrying almost all data.
        let mut events: Vec<_> = (0..96).map(|_| read(512)).collect();
        events.extend((0..4).map(|_| read(1 << 20)));
        let rs = request_sizes(&events);
        assert!(rs.small_read_fraction() > 0.95);
        assert!(rs.small_read_data_fraction() < 0.02);
    }

    #[test]
    fn reads_and_writes_separate() {
        let events = vec![read(100), write(1 << 20)];
        let rs = request_sizes(&events);
        assert_eq!(rs.reads_by_count.total() as u64, 1);
        assert_eq!(rs.writes_by_count.total() as u64, 1);
        assert!(rs.small_read_fraction() > 0.99);
        assert!(rs.small_write_fraction() < 0.01);
    }

    #[test]
    fn empty_stream_is_benign() {
        let rs = request_sizes(&[]);
        assert_eq!(rs.small_read_fraction(), 0.0);
        assert_eq!(rs.small_write_data_fraction(), 0.0);
    }
}
