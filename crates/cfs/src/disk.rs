//! Disk service-time model.
//!
//! Each NAS I/O node had "a single 760 MB disk drive", and the machine's
//! total bandwidth was "less than 10 MB/s" — i.e. roughly 1 MB/s per disk
//! sustained. We model a block access as positioning (seek + rotation,
//! skipped when the access is physically sequential to the previous one)
//! plus transfer at the sustained rate. That first-order model is enough to
//! reproduce the phenomenon the paper cares about: small requests are
//! dominated by positioning, and batching/sorting (caching, strided,
//! collective I/O) wins by avoiding it.

use charisma_ipsc::{Duration, SimTime};

/// Disk timing parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskModel {
    /// Average positioning cost (seek + rotational latency), µs. Early-90s
    /// SCSI drives: ~15 ms seek + ~8 ms rotation at 3600 rpm halves.
    pub position_us: u64,
    /// Transfer cost per byte, µs (≈1 µs/byte for ~1 MB/s sustained).
    pub per_byte_us: f64,
    /// Fixed per-request controller overhead, µs.
    pub overhead_us: u64,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel {
            position_us: 19_000,
            per_byte_us: 1.0,
            overhead_us: 500,
        }
    }
}

impl DiskModel {
    /// Service time for one block access of `bytes` bytes.
    /// `sequential` marks accesses physically contiguous with the previous
    /// one on the same disk, which skip positioning.
    pub fn service(&self, bytes: u64, sequential: bool) -> Duration {
        let position = if sequential { 0 } else { self.position_us };
        Duration::from_micros(
            self.overhead_us + position + (self.per_byte_us * bytes as f64).round() as u64,
        )
    }
}

/// Per-disk dynamic state: a single-server FIFO queue plus enough history
/// to detect sequential access.
#[derive(Clone, Debug, Default)]
pub struct DiskState {
    /// Earliest time the disk can start a new request.
    pub next_free: SimTime,
    /// Identity of the last block served, for sequentiality detection:
    /// `(file, block)`.
    pub last_block: Option<(u32, u64)>,
    /// Cumulative busy time, µs (for utilization accounting).
    pub busy_us: u64,
    /// Number of block reads served from the platter.
    pub reads: u64,
    /// Number of block writes served by the platter.
    pub writes: u64,
}

impl DiskState {
    /// Whether an access to `(file, block)` is sequential to the last one.
    pub fn is_sequential(&self, file: u32, block: u64) -> bool {
        match self.last_block {
            // Same block (re-read / rewrite) or the physically next block
            // of the same file on this disk.
            Some((f, b)) => f == file && (block == b || block > b && block - b <= 16),
            None => false,
        }
    }

    /// Serve a block access arriving at `arrival`; returns completion time.
    pub fn serve(
        &mut self,
        model: &DiskModel,
        file: u32,
        block: u64,
        bytes: u64,
        arrival: SimTime,
        is_write: bool,
    ) -> SimTime {
        self.serve_degraded(model, file, block, bytes, arrival, is_write, 0)
    }

    /// [`DiskState::serve`] with service time inflated by `degrade_ppm`
    /// parts-per-million (fault injection's model of a disk in media
    /// retry / thermal-recalibration trouble). `0` is exactly `serve`.
    #[allow(clippy::too_many_arguments)]
    pub fn serve_degraded(
        &mut self,
        model: &DiskModel,
        file: u32,
        block: u64,
        bytes: u64,
        arrival: SimTime,
        is_write: bool,
        degrade_ppm: u32,
    ) -> SimTime {
        let sequential = self.is_sequential(file, block);
        let start = self.next_free.max(arrival);
        let mut service = model.service(bytes, sequential);
        if degrade_ppm > 0 {
            let extra = service.as_micros() * u64::from(degrade_ppm) / 1_000_000;
            service += Duration::from_micros(extra);
        }
        let done = start + service;
        self.next_free = done;
        self.last_block = Some((file, block));
        self.busy_us += service.as_micros();
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positioning_dominates_small_requests() {
        let m = DiskModel::default();
        let random = m.service(512, false);
        let seq = m.service(512, true);
        assert!(random.as_micros() > 10 * seq.as_micros());
    }

    #[test]
    fn transfer_scales_with_bytes() {
        let m = DiskModel::default();
        let small = m.service(4096, true);
        let large = m.service(65536, true);
        assert!(large.as_micros() > small.as_micros());
        // ~1 MB/s: 64 KB should take ~65 ms of transfer.
        assert!((60_000..80_000).contains(&large.as_micros()));
    }

    #[test]
    fn queue_serializes_requests() {
        let m = DiskModel::default();
        let mut d = DiskState::default();
        let t0 = SimTime::from_secs(1);
        let c1 = d.serve(&m, 1, 0, 4096, t0, false);
        let c2 = d.serve(&m, 1, 1, 4096, t0, false);
        assert!(c2 > c1, "second request waits behind the first");
        assert_eq!(d.reads, 2);
    }

    #[test]
    fn sequential_detection() {
        let mut d = DiskState::default();
        assert!(!d.is_sequential(1, 0), "cold disk seeks");
        d.last_block = Some((1, 10));
        assert!(d.is_sequential(1, 10), "same block");
        assert!(d.is_sequential(1, 11), "next block");
        assert!(d.is_sequential(1, 20), "near-next block (track buffer)");
        assert!(!d.is_sequential(1, 100), "far block seeks");
        assert!(!d.is_sequential(2, 11), "different file seeks");
        assert!(!d.is_sequential(1, 9), "backwards seeks");
    }

    #[test]
    fn idle_disk_starts_immediately() {
        let m = DiskModel::default();
        let mut d = DiskState::default();
        let arrival = SimTime::from_secs(100);
        let done = d.serve(&m, 1, 0, 4096, arrival, true);
        assert_eq!(done, arrival + m.service(4096, false));
        assert_eq!(d.writes, 1);
    }

    #[test]
    fn degraded_service_inflates_and_zero_is_identity() {
        let m = DiskModel::default();
        let mut a = DiskState::default();
        let mut b = DiskState::default();
        let base = a.serve(&m, 1, 0, 4096, SimTime::ZERO, false);
        let same = b.serve_degraded(&m, 1, 0, 4096, SimTime::ZERO, false, 0);
        assert_eq!(base, same, "degrade 0 must be exactly serve");
        let mut c = DiskState::default();
        let slow = c.serve_degraded(&m, 1, 0, 4096, SimTime::ZERO, false, 250_000);
        // 25 % slower than the baseline service time.
        let expected = base.as_micros() + base.as_micros() / 4;
        assert_eq!(slow.as_micros(), expected);
    }

    #[test]
    fn busy_accounting_accumulates() {
        let m = DiskModel::default();
        let mut d = DiskState::default();
        d.serve(&m, 1, 0, 4096, SimTime::ZERO, false);
        d.serve(&m, 1, 1, 4096, SimTime::ZERO, false);
        let expected = m.service(4096, false).as_micros() + m.service(4096, true).as_micros();
        assert_eq!(d.busy_us, expected);
    }
}
