//! The four CFS I/O modes.
//!
//! "Mode 0 gives each process its own file pointer; mode 1 shares a single
//! file pointer among all processes; mode 2 is like mode 1, but enforces a
//! round-robin ordering of accesses across all nodes; and mode 3 is like
//! mode 2 but restricts the access sizes to be identical." (paper §2.4)
//!
//! The paper found that over 99 % of files used mode 0 — partly because
//! real patterns had *more than one* request size or interval size, which
//! the automatic modes cannot express (§4.6).

/// A CFS file-access coordination mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IoMode {
    /// Mode 0: every node has an independent file pointer.
    Independent,
    /// Mode 1: one file pointer shared by all nodes, first-come-first-served.
    SharedPointer,
    /// Mode 2: shared pointer with enforced round-robin node ordering.
    RoundRobin,
    /// Mode 3: round-robin ordering with all requests the same size.
    RoundRobinFixed,
}

impl IoMode {
    /// The Intel mode number (0-3).
    pub fn code(self) -> u8 {
        match self {
            IoMode::Independent => 0,
            IoMode::SharedPointer => 1,
            IoMode::RoundRobin => 2,
            IoMode::RoundRobinFixed => 3,
        }
    }

    /// Decode an Intel mode number.
    pub fn from_code(c: u8) -> Option<IoMode> {
        match c {
            0 => Some(IoMode::Independent),
            1 => Some(IoMode::SharedPointer),
            2 => Some(IoMode::RoundRobin),
            3 => Some(IoMode::RoundRobinFixed),
            _ => None,
        }
    }

    /// Whether this mode shares one file pointer among the nodes.
    pub fn shares_pointer(self) -> bool {
        self != IoMode::Independent
    }

    /// Whether this mode enforces round-robin ordering across nodes.
    pub fn ordered(self) -> bool {
        matches!(self, IoMode::RoundRobin | IoMode::RoundRobinFixed)
    }

    /// Whether this mode requires all requests to have one size.
    pub fn fixed_size(self) -> bool {
        self == IoMode::RoundRobinFixed
    }

    /// All four modes, in mode-number order.
    pub fn all() -> [IoMode; 4] {
        [
            IoMode::Independent,
            IoMode::SharedPointer,
            IoMode::RoundRobin,
            IoMode::RoundRobinFixed,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for m in IoMode::all() {
            assert_eq!(IoMode::from_code(m.code()), Some(m));
        }
        assert_eq!(IoMode::from_code(4), None);
    }

    #[test]
    fn codes_match_intel_numbering() {
        assert_eq!(IoMode::Independent.code(), 0);
        assert_eq!(IoMode::SharedPointer.code(), 1);
        assert_eq!(IoMode::RoundRobin.code(), 2);
        assert_eq!(IoMode::RoundRobinFixed.code(), 3);
    }

    #[test]
    fn semantics_flags() {
        assert!(!IoMode::Independent.shares_pointer());
        assert!(IoMode::SharedPointer.shares_pointer());
        assert!(!IoMode::SharedPointer.ordered());
        assert!(IoMode::RoundRobin.ordered());
        assert!(!IoMode::RoundRobin.fixed_size());
        assert!(IoMode::RoundRobinFixed.fixed_size());
    }
}
