//! Block buffer caches.
//!
//! The paper's trace-driven simulations (§4.8) use 4 KB block buffers with
//! LRU or FIFO replacement; its conclusions call for policies "other than
//! LRU or FIFO … to optimize for interprocess locality rather than
//! traditional spatial and temporal locality" — implemented here as
//! [`IplCache`].
//!
//! All caches share the [`BlockCache`] interface: `access` returns whether
//! the block was resident (a hit) and makes it resident, evicting if full.

use std::collections::{BTreeMap, VecDeque};

/// Identity of a cached block: the file's path id and the block index.
pub type BlockKey = (u32, u64);

/// Common interface of the replacement policies.
pub trait BlockCache {
    /// Touch `key` with `touched_bytes` of the block actually referenced.
    /// Returns true on a hit (block was resident). On a miss the block is
    /// fetched (made resident), evicting the policy's victim if needed.
    fn access(&mut self, key: BlockKey, touched_bytes: u32) -> bool;

    /// Whether `key` is resident, without touching policy state.
    fn contains(&self, key: BlockKey) -> bool;

    /// Number of resident blocks.
    fn len(&self) -> usize;

    /// Whether the cache is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity in blocks.
    fn capacity(&self) -> usize;

    /// Drop a block if resident (e.g. on file deletion).
    fn invalidate(&mut self, key: BlockKey);
}

// ---------------------------------------------------------------------------
// LRU
// ---------------------------------------------------------------------------

/// Least-recently-used cache: O(1) via an intrusive doubly-linked list over
/// a slab, the classic implementation.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    map: BTreeMap<BlockKey, usize>,
    slab: Vec<LruEntry>,
    head: usize, // most recent
    tail: usize, // least recent
    free: Vec<usize>,
}

#[derive(Debug, Clone, Copy)]
struct LruEntry {
    key: BlockKey,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl LruCache {
    /// A cache of `capacity` blocks (capacity 0 caches nothing).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: BTreeMap::new(),
            slab: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    fn unlink(&mut self, i: usize) {
        let LruEntry { prev, next, .. } = self.slab[i];
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// The least-recently-used key, if any (exposed for tests).
    pub fn lru_key(&self) -> Option<BlockKey> {
        (self.tail != NIL).then(|| self.slab[self.tail].key)
    }
}

impl BlockCache for LruCache {
    fn access(&mut self, key: BlockKey, _touched_bytes: u32) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&i) = self.map.get(&key) {
            self.unlink(i);
            self.push_front(i);
            return true;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
        }
        let i = self.free.pop().unwrap_or_else(|| {
            self.slab.push(LruEntry {
                key,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        });
        self.slab[i].key = key;
        self.push_front(i);
        self.map.insert(key, i);
        charisma_ipsc::invariant!(
            self.map.len() <= self.capacity,
            "LRU holds {} blocks over capacity {}",
            self.map.len(),
            self.capacity
        );
        charisma_ipsc::invariant!(
            self.map.is_empty() == (self.head == NIL && self.tail == NIL),
            "LRU map and recency list disagree about emptiness"
        );
        charisma_ipsc::invariant!(
            self.slab[self.head].key == key,
            "LRU head is not the just-touched block"
        );
        false
    }

    fn contains(&self, key: BlockKey) -> bool {
        self.map.contains_key(&key)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn invalidate(&mut self, key: BlockKey) {
        if let Some(i) = self.map.remove(&key) {
            self.unlink(i);
            self.free.push(i);
        }
    }
}

// ---------------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------------

/// First-in-first-out cache: eviction order is fetch order, ignoring reuse.
/// "FIFO does not give preference to blocks with high locality" — the paper
/// found it needs ~5× the buffers LRU needs for a 90 % hit rate.
#[derive(Debug)]
pub struct FifoCache {
    capacity: usize,
    map: BTreeMap<BlockKey, u64>,
    queue: VecDeque<(BlockKey, u64)>,
    stamp: u64,
}

impl FifoCache {
    /// A cache of `capacity` blocks.
    pub fn new(capacity: usize) -> Self {
        FifoCache {
            capacity,
            map: BTreeMap::new(),
            queue: VecDeque::with_capacity(capacity.min(1 << 20)),
            stamp: 0,
        }
    }
}

impl BlockCache for FifoCache {
    fn access(&mut self, key: BlockKey, _touched_bytes: u32) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if self.map.contains_key(&key) {
            return true;
        }
        while self.map.len() >= self.capacity {
            // Pop queue entries until one is still current (invalidation
            // leaves stale queue entries behind).
            let Some((victim, stamp)) = self.queue.pop_front() else {
                break; // unreachable: the queue always covers the map
            };
            if self.map.get(&victim) == Some(&stamp) {
                self.map.remove(&victim);
            }
        }
        self.stamp += 1;
        self.map.insert(key, self.stamp);
        self.queue.push_back((key, self.stamp));
        charisma_ipsc::invariant!(
            self.map.len() <= self.capacity,
            "FIFO holds {} blocks over capacity {}",
            self.map.len(),
            self.capacity
        );
        charisma_ipsc::invariant!(
            self.queue.len() >= self.map.len(),
            "FIFO queue no longer covers the resident set"
        );
        false
    }

    fn contains(&self, key: BlockKey) -> bool {
        self.map.contains_key(&key)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn invalidate(&mut self, key: BlockKey) {
        self.map.remove(&key);
    }
}

// ---------------------------------------------------------------------------
// Interprocess-locality-aware (the paper's §5 future-work policy)
// ---------------------------------------------------------------------------

/// An eviction policy specialized for the workload the paper observed.
///
/// Under interleaved parallel access, a block is referenced by several
/// compute nodes in quick succession — once every byte of the block has
/// been consumed, the block is *used up* and will likely never be touched
/// again (the paper found essentially no temporal locality). `IplCache`
/// therefore tracks how many bytes of each resident block have been
/// referenced and preferentially evicts *exhausted* blocks (coverage ≥
/// block size); only when no block is exhausted does it fall back to LRU
/// order.
#[derive(Debug)]
pub struct IplCache {
    lru: LruCache,
    coverage: BTreeMap<BlockKey, u64>,
    exhausted: Vec<BlockKey>,
    block_bytes: u64,
}

impl IplCache {
    /// A cache of `capacity` blocks of `block_bytes` bytes each.
    pub fn new(capacity: usize, block_bytes: u64) -> Self {
        IplCache {
            lru: LruCache::new(capacity),
            coverage: BTreeMap::new(),
            exhausted: Vec::new(),
            block_bytes,
        }
    }
}

impl BlockCache for IplCache {
    fn access(&mut self, key: BlockKey, touched_bytes: u32) -> bool {
        if self.lru.capacity() == 0 {
            return false;
        }
        let hit = self.lru.contains(key);
        if !hit && self.lru.len() >= self.lru.capacity() {
            // Prefer evicting an exhausted block over the LRU victim.
            let mut evicted = false;
            while let Some(victim) = self.exhausted.pop() {
                if victim != key && self.lru.contains(victim) {
                    self.lru.invalidate(victim);
                    self.coverage.remove(&victim);
                    evicted = true;
                    break;
                }
            }
            if !evicted {
                // LruCache::access below will evict its LRU victim; drop
                // our coverage record for it so the map cannot leak.
                if let Some(victim) = self.lru.lru_key() {
                    self.coverage.remove(&victim);
                }
            }
        }
        self.lru.access(key, touched_bytes);
        let cov = self.coverage.entry(key).or_insert(0);
        if !hit {
            // Fresh fetch restarts coverage accounting.
            *cov = 0;
        }
        let before = *cov;
        *cov += u64::from(touched_bytes);
        if before < self.block_bytes && *cov >= self.block_bytes {
            // Push only on the crossing so a hot block cannot flood the
            // exhausted list with duplicates.
            self.exhausted.push(key);
        }
        hit
    }

    fn contains(&self, key: BlockKey) -> bool {
        self.lru.contains(key)
    }

    fn len(&self) -> usize {
        self.lru.len()
    }

    fn capacity(&self) -> usize {
        self.lru.capacity()
    }

    fn invalidate(&mut self, key: BlockKey) {
        self.lru.invalidate(key);
        self.coverage.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(b: u64) -> BlockKey {
        (1, b)
    }

    #[test]
    fn lru_hits_and_misses() {
        let mut c = LruCache::new(2);
        assert!(!c.access(k(0), 1), "cold miss");
        assert!(c.access(k(0), 1), "hit");
        assert!(!c.access(k(1), 1));
        assert!(!c.access(k(2), 1), "evicts k0 (LRU)");
        assert!(!c.access(k(0), 1), "k0 was evicted");
        assert!(c.access(k(2), 1), "k2 survived");
    }

    #[test]
    fn lru_eviction_order_is_recency() {
        let mut c = LruCache::new(3);
        c.access(k(0), 1);
        c.access(k(1), 1);
        c.access(k(2), 1);
        c.access(k(0), 1); // k0 now most recent; k1 is LRU
        assert_eq!(c.lru_key(), Some(k(1)));
        c.access(k(3), 1);
        assert!(!c.contains(k(1)));
        assert!(c.contains(k(0)) && c.contains(k(2)) && c.contains(k(3)));
    }

    #[test]
    fn lru_never_exceeds_capacity() {
        let mut c = LruCache::new(5);
        for b in 0..100 {
            c.access(k(b), 1);
            assert!(c.len() <= 5);
        }
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut lru = LruCache::new(0);
        let mut fifo = FifoCache::new(0);
        let mut ipl = IplCache::new(0, 4096);
        for _ in 0..3 {
            assert!(!lru.access(k(0), 1));
            assert!(!fifo.access(k(0), 1));
            assert!(!ipl.access(k(0), 1));
        }
        assert_eq!(lru.len() + fifo.len() + ipl.len(), 0);
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = FifoCache::new(2);
        c.access(k(0), 1);
        c.access(k(1), 1);
        assert!(c.access(k(0), 1), "hit does not move k0");
        c.access(k(2), 1); // evicts k0 (oldest fetch) despite recent hit
        assert!(!c.contains(k(0)));
        assert!(c.contains(k(1)) && c.contains(k(2)));
    }

    #[test]
    fn fifo_capacity_respected() {
        let mut c = FifoCache::new(4);
        for b in 0..50 {
            c.access(k(b), 1);
            assert!(c.len() <= 4);
        }
    }

    #[test]
    fn invalidate_removes() {
        let mut lru = LruCache::new(4);
        lru.access(k(1), 1);
        lru.invalidate(k(1));
        assert!(!lru.contains(k(1)));
        assert!(!lru.access(k(1), 1), "miss after invalidation");

        let mut fifo = FifoCache::new(2);
        fifo.access(k(1), 1);
        fifo.invalidate(k(1));
        assert!(!fifo.contains(k(1)));
        // Stale queue entry must not corrupt later evictions.
        fifo.access(k(2), 1);
        fifo.access(k(3), 1);
        fifo.access(k(4), 1);
        assert!(fifo.len() <= 2);
    }

    #[test]
    fn lru_outperforms_fifo_on_looping_scan_with_hot_block() {
        // A hot block re-touched between scan steps: LRU keeps it, FIFO
        // ages it out. This is the mechanism behind Figure 9's LRU/FIFO gap.
        let mut lru = LruCache::new(4);
        let mut fifo = FifoCache::new(4);
        let mut lru_hits = 0;
        let mut fifo_hits = 0;
        for i in 0..1000u64 {
            // hot block 0 between cold scan blocks
            for key in [k(0), k(1000 + i)] {
                if lru.access(key, 1) {
                    lru_hits += 1;
                }
                if fifo.access(key, 1) {
                    fifo_hits += 1;
                }
            }
        }
        assert!(lru_hits > fifo_hits, "LRU {lru_hits} vs FIFO {fifo_hits}");
    }

    #[test]
    fn ipl_evicts_exhausted_blocks_first() {
        let block = 4096;
        let mut c = IplCache::new(2, block);
        // Block 0 fully consumed; block 1 half consumed (still useful).
        c.access(k(0), block as u32);
        c.access(k(1), (block / 2) as u32);
        // A third block arrives: the exhausted block 0 should go, even
        // though block 1 is the LRU victim.
        c.access(k(2), 1);
        assert!(!c.contains(k(0)), "exhausted block evicted");
        assert!(c.contains(k(1)), "unfinished block kept");
        assert!(c.contains(k(2)));
    }

    #[test]
    fn ipl_falls_back_to_lru() {
        let mut c = IplCache::new(2, 4096);
        c.access(k(0), 1);
        c.access(k(1), 1);
        c.access(k(2), 1); // nothing exhausted: plain LRU eviction of k0
        assert!(!c.contains(k(0)));
        assert!(c.contains(k(1)) && c.contains(k(2)));
        assert!(c.len() <= 2);
    }

    #[test]
    fn ipl_capacity_respected_under_churn() {
        let mut c = IplCache::new(8, 4096);
        for i in 0..10_000u64 {
            c.access(k(i % 57), 4096);
            assert!(c.len() <= 8);
        }
    }
}
