//! CFS-side fault state: disk transients, degraded striping, stalls.
//!
//! Built from a [`FaultPlan`] and attached to a [`crate::Cfs`] via
//! [`crate::Cfs::attach_faults`]. Every decision here is a stateless
//! hash of the request's stable identity — see [`charisma_ipsc::faults`]
//! for why that is what makes chaos runs independent of worker count.
//!
//! Disk fate is *block-addressed*: whether the address `(io, file,
//! block)` is flaky — and how many attempts it takes — is fixed for the
//! whole run, modeling media defects rather than cosmic rays. A block
//! that fails past the retry budget fails the same way every time, and
//! every read of it is served read-around from the next live node.

use charisma_ipsc::faults::{domain, FaultMetrics, FaultPlan, FaultRng, RetryPolicy};

/// Fault state consulted by the CFS request path.
#[derive(Clone, Debug)]
pub struct CfsFaults {
    rng: FaultRng,
    transient_ppm: u32,
    degrade_ppm: u32,
    /// `(io_node, at_us)` permanent failures, from the plan.
    down: Vec<(usize, u64)>,
    stall_ppm: u32,
    stall_us: u64,
    retry: RetryPolicy,
    metrics: Option<FaultMetrics>,
}

impl CfsFaults {
    /// Build from a plan. `fault_seed` is the already-mixed per-shard
    /// seed (see [`charisma_ipsc::faults::mix_seed`]).
    pub fn new(plan: &FaultPlan, fault_seed: u64, metrics: Option<FaultMetrics>) -> Self {
        CfsFaults {
            rng: FaultRng::new(fault_seed),
            transient_ppm: plan.disk_transient_ppm,
            degrade_ppm: plan.disk_degrade_ppm,
            down: plan
                .io_node_down
                .iter()
                .map(|d| (d.io_node as usize, d.at_us))
                .collect(),
            stall_ppm: plan.io_stall_ppm,
            stall_us: plan.io_stall_us,
            retry: plan.retry,
            metrics,
        }
    }

    /// The retry/backoff/timeout policy in force.
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Disk service-time inflation, ppm.
    pub(crate) fn degrade_ppm(&self) -> u32 {
        self.degrade_ppm
    }

    /// Whether I/O node `io` is down at true time `now_us`.
    pub(crate) fn io_down(&self, io: usize, now_us: u64) -> bool {
        self.down.iter().any(|&(n, at)| n == io && now_us >= at)
    }

    /// The failover target for `io`: the next I/O node (round robin)
    /// still alive at `now_us`, or `None` when every node is down.
    pub(crate) fn next_live(&self, io: usize, io_count: usize, now_us: u64) -> Option<usize> {
        (1..io_count)
            .map(|k| (io + k) % io_count)
            .find(|&cand| !self.io_down(cand, now_us))
    }

    /// Stall injected into the request this I/O node is serving, µs.
    pub(crate) fn stall_us(&self, io: u64, file: u32, block: u64) -> Option<u64> {
        if self
            .rng
            .chance(self.stall_ppm, domain::STALL, &[io, u64::from(file), block])
        {
            if let Some(m) = &self.metrics {
                m.io_stalls.inc();
                m.injected.inc();
            }
            Some(self.stall_us)
        } else {
            None
        }
    }

    /// The fixed fate of reading `(io, file, block)`: `None` when the
    /// address is clean, `Some(k)` when it fails `k` consecutive times.
    /// `k <= max_retries` is recoverable by backoff; beyond that the
    /// block is effectively a media defect and must be read around.
    pub(crate) fn transient_failures(&self, io: u64, file: u32, block: u64) -> Option<u64> {
        let ids = [io, u64::from(file), block];
        if !self.rng.chance(self.transient_ppm, domain::DISK_FATE, &ids) {
            return None;
        }
        if let Some(m) = &self.metrics {
            m.disk_transient.inc();
            m.injected.inc();
        }
        let span = u64::from(self.retry.max_retries) + 1;
        Some(1 + self.rng.decide(domain::DISK_FAILS, &ids) % span)
    }

    /// The backoff before retry `attempt` of the read of `(file, block)`,
    /// µs. Records the retry and its backoff in the metrics.
    pub(crate) fn backoff_us(&self, file: u32, block: u64, attempt: u32) -> u64 {
        let request_id = (u64::from(file) << 40) ^ block;
        let b = self.retry.backoff_us(&self.rng, request_id, attempt);
        if let Some(m) = &self.metrics {
            m.retried.inc();
            m.backoff_us.record(b);
        }
        b
    }

    /// Record a request served degraded (failover / read-around).
    pub(crate) fn note_degraded(&self) {
        if let Some(m) = &self.metrics {
            m.degraded.inc();
            m.injected.inc();
        }
    }

    /// Record a request that blew its per-request timeout.
    pub(crate) fn note_timeout(&self) {
        if let Some(m) = &self.metrics {
            m.timed_out.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_ipsc::faults::FaultPlan;

    fn fixture() -> CfsFaults {
        CfsFaults::new(&FaultPlan::chaos_fixture(), 42, None)
    }

    #[test]
    fn down_nodes_fail_over_round_robin() {
        let f = fixture(); // node 7 down at 3 600 s
        assert!(!f.io_down(7, 3_599_999_999));
        assert!(f.io_down(7, 3_600_000_000));
        assert!(!f.io_down(6, u64::MAX));
        assert_eq!(f.next_live(7, 10, u64::MAX), Some(8));
        // 6's first candidate is the dead 7; it must skip to 8.
        assert_eq!(f.next_live(6, 10, u64::MAX), Some(8));
        assert_eq!(f.next_live(6, 10, 0), Some(7), "before the failure");
    }

    #[test]
    fn single_node_system_has_no_failover() {
        let f = fixture();
        assert_eq!(f.next_live(0, 1, u64::MAX), None);
    }

    #[test]
    fn block_fate_is_frozen() {
        let f = fixture();
        for (io, file, block) in [(0u64, 1u32, 5u64), (3, 9, 1_000_000)] {
            assert_eq!(
                f.transient_failures(io, file, block),
                f.transient_failures(io, file, block)
            );
        }
        let flaky = (0..10_000u64)
            .filter(|&b| f.transient_failures(0, 1, b).is_some())
            .count();
        // 2 % of addresses, give or take.
        assert!((100..400).contains(&flaky), "flaky {flaky}");
    }

    #[test]
    fn backoff_is_capped() {
        let f = fixture();
        for attempt in 0..8 {
            let b = f.backoff_us(3, 77, attempt);
            assert!(b <= 32_000, "attempt {attempt}: {b}");
        }
    }
}
