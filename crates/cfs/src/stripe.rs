//! Round-robin block striping.
//!
//! "CFS stripes each file across all disks in 4 KB blocks." Block `b` of any
//! file lives on I/O node `b mod n`, so a large sequential transfer engages
//! every disk, and an interleaved parallel read spreads naturally across the
//! I/O nodes. The paper's I/O-node cache simulation assumes exactly this
//! placement (§4.8).

use crate::BLOCK_BYTES;

/// The striping function: file offsets → blocks → I/O nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Striping {
    /// Stripe unit in bytes (4096 for CFS).
    pub block_bytes: u64,
    /// Number of I/O nodes the file system stripes across.
    pub io_nodes: usize,
}

impl Striping {
    /// CFS striping over `io_nodes` I/O nodes.
    pub fn cfs(io_nodes: usize) -> Self {
        assert!(io_nodes > 0, "need at least one I/O node");
        Striping {
            block_bytes: BLOCK_BYTES,
            io_nodes,
        }
    }

    /// The block index containing byte `offset`.
    pub fn block_of(self, offset: u64) -> u64 {
        offset / self.block_bytes
    }

    /// The I/O node owning block `block`.
    pub fn io_node_of(self, block: u64) -> usize {
        (block % self.io_nodes as u64) as usize
    }

    /// The blocks touched by a request of `bytes` bytes at `offset`,
    /// as an inclusive-exclusive block range. Zero-byte requests touch no
    /// blocks.
    pub fn blocks_of_request(self, offset: u64, bytes: u64) -> std::ops::Range<u64> {
        if bytes == 0 {
            let b = self.block_of(offset);
            return b..b;
        }
        let range = self.block_of(offset)..self.block_of(offset + bytes - 1) + 1;
        charisma_ipsc::invariant!(
            range.start * self.block_bytes <= offset
                && offset + bytes <= range.end * self.block_bytes,
            "block range {range:?} does not cover request at {offset}+{bytes}"
        );
        range
    }

    /// Number of distinct blocks touched by a request.
    pub fn block_count(self, offset: u64, bytes: u64) -> u64 {
        let r = self.blocks_of_request(offset, bytes);
        r.end - r.start
    }

    /// Number of distinct I/O nodes engaged by a request.
    pub fn io_nodes_of_request(self, offset: u64, bytes: u64) -> usize {
        (self.block_count(offset, bytes) as usize).min(self.io_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping() {
        let s = Striping::cfs(10);
        assert_eq!(s.block_of(0), 0);
        assert_eq!(s.block_of(4095), 0);
        assert_eq!(s.block_of(4096), 1);
        assert_eq!(s.io_node_of(0), 0);
        assert_eq!(s.io_node_of(9), 9);
        assert_eq!(s.io_node_of(10), 0);
    }

    #[test]
    fn request_block_ranges() {
        let s = Striping::cfs(4);
        assert_eq!(s.blocks_of_request(0, 1), 0..1);
        assert_eq!(s.blocks_of_request(0, 4096), 0..1);
        assert_eq!(s.blocks_of_request(0, 4097), 0..2);
        assert_eq!(s.blocks_of_request(4000, 200), 0..2, "straddles blocks");
        assert_eq!(s.blocks_of_request(8192, 8192), 2..4);
        let empty = s.blocks_of_request(500, 0);
        assert_eq!(empty.start, empty.end);
    }

    #[test]
    fn io_node_engagement_saturates() {
        let s = Striping::cfs(4);
        assert_eq!(s.io_nodes_of_request(0, 512), 1);
        assert_eq!(s.io_nodes_of_request(0, 2 * 4096), 2);
        // 100 blocks over 4 I/O nodes: every node engaged, not 100.
        assert_eq!(s.io_nodes_of_request(0, 100 * 4096), 4);
    }

    #[test]
    fn one_megabyte_spans_all_ten_nas_disks() {
        // The paper's 1 MB requests (the Figure 4 spike) engage the whole
        // disk farm: 256 blocks round-robin over 10 I/O nodes.
        let s = Striping::cfs(10);
        assert_eq!(s.block_count(0, 1 << 20), 256);
        assert_eq!(s.io_nodes_of_request(0, 1 << 20), 10);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_io_nodes_rejected() {
        Striping::cfs(0);
    }
}
