//! Strided requests — the paper's primary interface recommendation.
//!
//! "The current interface forces the programmer to break down large
//! parallel I/O activities into small, non-contiguous requests. … it would
//! be better to support strided I/O requests from the programmer's
//! interface to the compute node, and from the compute node to the I/O
//! node. A strided request can express a regular request and interval size
//! (which were common in our workload), effectively increasing the request
//! size, lowering overhead, and perhaps eliminating the need for
//! compute-node buffers." (paper §5)
//!
//! [`Cfs::read_strided`] expresses the whole `(start, record, stride,
//! count)` pattern in *one* request: each engaged I/O node receives a
//! single request message describing its share, instead of one message per
//! record. The equivalent loop of small seek+read calls is provided for the
//! ablation benchmark.

use charisma_ipsc::{Machine, SimTime};

use crate::error::CfsError;
use crate::fs::{block_overlap, Cfs, IoOutcome};
use crate::mode::IoMode;

/// A regular strided access pattern: `count` records of `record_bytes`
/// bytes, the k-th record starting at `start + k * stride`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StridedSpec {
    /// Offset of the first record.
    pub start: u64,
    /// Bytes per record (the paper's "request size").
    pub record_bytes: u32,
    /// Distance between successive record starts; `stride ==
    /// record_bytes` is consecutive access, larger strides leave the
    /// paper's "interval" between records.
    pub stride: u64,
    /// Number of records.
    pub count: u32,
}

impl StridedSpec {
    /// The paper's *interval size*: bytes skipped between records.
    pub fn interval(&self) -> u64 {
        self.stride.saturating_sub(u64::from(self.record_bytes))
    }

    /// The byte segments (offset, length) the pattern covers.
    pub fn segments(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        (0..u64::from(self.count)).map(move |k| (self.start + k * self.stride, self.record_bytes))
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> u64 {
        u64::from(self.count) * u64::from(self.record_bytes)
    }

    /// Offset one past the final record.
    pub fn end(&self) -> u64 {
        if self.count == 0 {
            self.start
        } else {
            self.start + (u64::from(self.count) - 1) * self.stride + u64::from(self.record_bytes)
        }
    }
}

impl Cfs {
    /// Service an entire strided read as one request.
    ///
    /// Only meaningful in mode 0 (each node describes its own pattern).
    /// The node's file pointer ends just past the last record.
    pub fn read_strided(
        &mut self,
        machine: &Machine,
        session: u32,
        node: u16,
        spec: StridedSpec,
        now: SimTime,
    ) -> Result<IoOutcome, CfsError> {
        self.strided_request(machine, session, node, spec, now, false)
    }

    /// Service an entire strided write as one request.
    pub fn write_strided(
        &mut self,
        machine: &Machine,
        session: u32,
        node: u16,
        spec: StridedSpec,
        now: SimTime,
    ) -> Result<IoOutcome, CfsError> {
        self.strided_request(machine, session, node, spec, now, true)
    }

    /// The baseline the paper complains about: the same pattern issued as
    /// `count` individual seek+read (or seek+write) requests. Returns the
    /// aggregate outcome with the completion of the final request.
    pub fn strided_as_loop(
        &mut self,
        machine: &Machine,
        session: u32,
        node: u16,
        spec: StridedSpec,
        now: SimTime,
        is_write: bool,
    ) -> Result<IoOutcome, CfsError> {
        let mut agg = IoOutcome {
            offset: spec.start,
            bytes: 0,
            completion: now,
            messages: 0,
            blocks: 0,
            cache_hits: 0,
        };
        let mut clock = now;
        for (offset, len) in spec.segments() {
            self.seek(session, node, offset)?;
            let out = if is_write {
                self.write(machine, session, node, len, clock)?
            } else {
                self.read(machine, session, node, len, clock)?
            };
            // Requests are synchronous: the next one leaves after the
            // previous completes (the programmer's loop).
            clock = out.completion;
            agg.bytes += out.bytes;
            agg.messages += out.messages;
            agg.blocks += out.blocks;
            agg.cache_hits += out.cache_hits;
        }
        agg.completion = clock;
        Ok(agg)
    }
}

impl Cfs {
    fn strided_request(
        &mut self,
        machine: &Machine,
        session: u32,
        node: u16,
        spec: StridedSpec,
        now: SimTime,
        is_write: bool,
    ) -> Result<IoOutcome, CfsError> {
        let (file, mode, can) = self.session_info(session)?;
        if mode != IoMode::Independent {
            return Err(CfsError::WrongMode { mode });
        }
        if (is_write && !can.1) || (!is_write && !can.0) {
            return Err(CfsError::AccessDenied { session });
        }
        // Position the pointer at the end of the pattern (Unix-ish).
        self.seek(session, node, spec.end())?;

        if is_write {
            self.reserve(file, spec.end())?;
        }

        // Gather the distinct blocks the pattern touches, with touched-byte
        // counts (records can share a block — that sharing is exactly the
        // intraprocess spatial locality the strided interface exploits).
        let striping = self.striping();
        let mut touches: Vec<(u64, u32)> = Vec::new();
        let mut payload = 0u64;
        for (offset, len) in spec.segments() {
            let len = if is_write {
                u64::from(len)
            } else {
                // Reads truncate at EOF.
                let size = self.file_size(file).unwrap_or(0);
                size.saturating_sub(offset).min(u64::from(len))
            };
            payload += len;
            for b in striping.blocks_of_request(offset, len) {
                let t = block_overlap(offset, len, b);
                match touches.last_mut() {
                    Some((lb, lt)) if *lb == b => *lt += t,
                    _ => touches.push((b, t)),
                }
            }
        }
        let out = self.serve_block_list(machine, node, file, &touches, now, is_write)?;
        if is_write {
            self.note_write(payload);
        } else {
            self.note_read(payload);
        }
        Ok(IoOutcome {
            offset: spec.start,
            bytes: payload as u32,
            completion: out.0,
            messages: out.1,
            blocks: out.2,
            cache_hits: out.3,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{Access, CfsConfig};
    use charisma_ipsc::MachineConfig;

    fn setup() -> (Machine, Cfs) {
        (
            Machine::boot_synchronized(MachineConfig::tiny()),
            Cfs::new(CfsConfig::tiny()),
        )
    }

    fn t0() -> SimTime {
        SimTime::from_secs(1)
    }

    /// The canonical CHARISMA pattern: 64 records of 512 bytes with a
    /// 7.5 KB interval (node 0's share of an 8-node interleaved read).
    fn interleave_spec() -> StridedSpec {
        StridedSpec {
            start: 0,
            record_bytes: 512,
            stride: 512 * 8,
            count: 64,
        }
    }

    fn populate(m: &Machine, fs: &mut Cfs, bytes: u32) -> u32 {
        let o = fs
            .open(1, "in.dat", Access::Write, IoMode::Independent, 0, false)
            .unwrap();
        fs.write(m, o.session, 0, bytes, t0()).unwrap();
        fs.close(o.session, 0).unwrap();
        o.file
    }

    #[test]
    fn spec_math() {
        let s = interleave_spec();
        assert_eq!(s.interval(), 512 * 7);
        assert_eq!(s.total_bytes(), 64 * 512);
        assert_eq!(s.end(), 63 * 4096 + 512);
        assert_eq!(s.segments().count(), 64);
    }

    #[test]
    fn strided_read_matches_loop_byte_for_byte() {
        let (m, mut fs) = setup();
        populate(&m, &mut fs, 512 * 8 * 64);
        let spec = interleave_spec();

        let o1 = fs
            .open(2, "in.dat", Access::Read, IoMode::Independent, 0, false)
            .unwrap();
        let strided = fs.read_strided(&m, o1.session, 0, spec, t0()).unwrap();
        fs.close(o1.session, 0).unwrap();

        let o2 = fs
            .open(3, "in.dat", Access::Read, IoMode::Independent, 0, false)
            .unwrap();
        let looped = fs
            .strided_as_loop(&m, o2.session, 0, spec, t0(), false)
            .unwrap();

        assert_eq!(strided.bytes, looped.bytes, "same data transferred");
        assert!(strided.messages < looped.messages / 10);
        assert!(strided.completion < looped.completion);
    }

    #[test]
    fn strided_write_then_sequential_read_back() {
        let (m, mut fs) = setup();
        let o = fs
            .open(1, "out", Access::Write, IoMode::Independent, 0, false)
            .unwrap();
        let spec = StridedSpec {
            start: 0,
            record_bytes: 1024,
            stride: 2048,
            count: 16,
        };
        let w = fs.write_strided(&m, o.session, 0, spec, t0()).unwrap();
        assert_eq!(w.bytes, 16 * 1024);
        assert_eq!(fs.file_size(o.file), Some(spec.end()));
        assert_eq!(fs.tell(o.session, 0).unwrap(), spec.end());
    }

    #[test]
    fn strided_requires_mode_0() {
        let (m, mut fs) = setup();
        populate(&m, &mut fs, 8192);
        let o = fs
            .open(2, "in.dat", Access::Read, IoMode::SharedPointer, 0, false)
            .unwrap();
        assert_eq!(
            fs.read_strided(&m, o.session, 0, interleave_spec(), t0()),
            Err(CfsError::WrongMode {
                mode: IoMode::SharedPointer
            })
        );
    }

    #[test]
    fn strided_read_respects_access_mode() {
        let (m, mut fs) = setup();
        let o = fs
            .open(1, "w", Access::Write, IoMode::Independent, 0, false)
            .unwrap();
        assert!(matches!(
            fs.read_strided(&m, o.session, 0, interleave_spec(), t0()),
            Err(CfsError::AccessDenied { .. })
        ));
    }

    #[test]
    fn strided_read_truncates_at_eof() {
        let (m, mut fs) = setup();
        populate(&m, &mut fs, 1000);
        let o = fs
            .open(2, "in.dat", Access::Read, IoMode::Independent, 0, false)
            .unwrap();
        let spec = StridedSpec {
            start: 0,
            record_bytes: 512,
            stride: 600,
            count: 4,
        };
        let out = fs.read_strided(&m, o.session, 0, spec, t0()).unwrap();
        // Records at 0 (512B), 600 (400B of 512), 1200 (0), 1800 (0).
        assert_eq!(out.bytes, 512 + 400);
    }

    #[test]
    fn zero_count_is_a_cheap_noop() {
        let (m, mut fs) = setup();
        populate(&m, &mut fs, 4096);
        let o = fs
            .open(2, "in.dat", Access::Read, IoMode::Independent, 0, false)
            .unwrap();
        let spec = StridedSpec {
            start: 0,
            record_bytes: 512,
            stride: 1024,
            count: 0,
        };
        let out = fs.read_strided(&m, o.session, 0, spec, t0()).unwrap();
        assert_eq!(out.bytes, 0);
        assert_eq!(out.blocks, 0);
    }

    #[test]
    fn message_savings_grow_with_record_count() {
        // The ablation's core claim, in miniature.
        let (m, mut fs) = setup();
        populate(&m, &mut fs, 512 * 8 * 128);
        let mut last_ratio = 0.0;
        for count in [8u32, 32, 128] {
            let spec = StridedSpec {
                start: 0,
                record_bytes: 512,
                stride: 4096,
                count,
            };
            let o1 = fs
                .open(
                    10 + count,
                    "in.dat",
                    Access::Read,
                    IoMode::Independent,
                    0,
                    false,
                )
                .unwrap();
            let s = fs.read_strided(&m, o1.session, 0, spec, t0()).unwrap();
            fs.close(o1.session, 0).unwrap();
            let o2 = fs
                .open(
                    20 + count,
                    "in.dat",
                    Access::Read,
                    IoMode::Independent,
                    0,
                    false,
                )
                .unwrap();
            let l = fs
                .strided_as_loop(&m, o2.session, 0, spec, t0(), false)
                .unwrap();
            fs.close(o2.session, 0).unwrap();
            let ratio = l.messages as f64 / s.messages as f64;
            assert!(ratio > last_ratio, "savings must grow: {ratio}");
            last_ratio = ratio;
        }
    }
}
