//! CFS error types.

use crate::mode::IoMode;

/// Errors returned by the CFS simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CfsError {
    /// The session id does not name a live open session.
    NotOpen {
        /// The offending session id.
        session: u32,
    },
    /// The node issued a request on a session it never attached to.
    NotAttached {
        /// The offending session id.
        session: u32,
        /// The unattached node.
        node: u16,
    },
    /// A node re-opened a session it already holds open.
    AlreadyAttached {
        /// The offending session id.
        session: u32,
        /// The node.
        node: u16,
    },
    /// In mode 2/3 a node issued a request out of its round-robin turn.
    OutOfTurn {
        /// The offending session id.
        session: u32,
        /// The node that jumped the queue.
        node: u16,
        /// The node whose turn it was.
        expected: u16,
    },
    /// In mode 3 a request's size differs from the established size.
    SizeMismatch {
        /// The offending session id.
        session: u32,
        /// The established request size.
        expected: u32,
        /// The size actually requested.
        got: u32,
    },
    /// A mode-specific operation was applied under the wrong mode.
    WrongMode {
        /// The session's actual mode.
        mode: IoMode,
    },
    /// Seeks are meaningless on shared-pointer sessions.
    SeekOnSharedPointer {
        /// The offending session id.
        session: u32,
    },
    /// A write would exceed the file system's total disk capacity.
    NoSpace {
        /// Bytes requested beyond what is available.
        short_by: u64,
    },
    /// The file was opened read-only but a write was attempted, or
    /// vice versa.
    AccessDenied {
        /// The offending session id.
        session: u32,
    },
    /// The named file does not exist (open without create, or delete).
    NoSuchFile,
    /// The request could not be served even in degraded mode: the stripe's
    /// I/O node is down (or its replica read failed past the retry budget)
    /// and no live node could take the read-around. Surfaced by fault
    /// injection instead of a panic; never returned on a healthy machine.
    Degraded {
        /// The I/O node that could not be failed over.
        io_node: u32,
    },
}

impl std::fmt::Display for CfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CfsError::NotOpen { session } => write!(f, "session {session} is not open"),
            CfsError::NotAttached { session, node } => {
                write!(f, "node {node} is not attached to session {session}")
            }
            CfsError::AlreadyAttached { session, node } => {
                write!(f, "node {node} is already attached to session {session}")
            }
            CfsError::OutOfTurn {
                session,
                node,
                expected,
            } => write!(
                f,
                "node {node} out of turn on session {session} (expected node {expected})"
            ),
            CfsError::SizeMismatch {
                session,
                expected,
                got,
            } => write!(
                f,
                "mode-3 size mismatch on session {session}: expected {expected}, got {got}"
            ),
            CfsError::WrongMode { mode } => write!(f, "operation invalid in mode {:?}", mode),
            CfsError::SeekOnSharedPointer { session } => {
                write!(f, "seek on shared-pointer session {session}")
            }
            CfsError::NoSpace { short_by } => {
                write!(f, "file system full ({short_by} bytes over capacity)")
            }
            CfsError::AccessDenied { session } => {
                write!(f, "access mode forbids this request on session {session}")
            }
            CfsError::NoSuchFile => write!(f, "no such file"),
            CfsError::Degraded { io_node } => {
                write!(f, "I/O node {io_node} unavailable and no failover target")
            }
        }
    }
}

impl std::error::Error for CfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let samples: Vec<CfsError> = vec![
            CfsError::NotOpen { session: 3 },
            CfsError::OutOfTurn {
                session: 1,
                node: 4,
                expected: 2,
            },
            CfsError::SizeMismatch {
                session: 9,
                expected: 1024,
                got: 512,
            },
            CfsError::NoSpace { short_by: 4096 },
            CfsError::NoSuchFile,
        ];
        for e in samples {
            assert!(!format!("{e}").is_empty());
        }
    }
}
