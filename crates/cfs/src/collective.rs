//! Collective I/O — the paper's secondary recommendation.
//!
//! "For some applications, collective I/O requests can lead to even better
//! performance" (paper §5, citing Kotz's disk-directed I/O). In a
//! collective request, all nodes of a job submit their shares of a large
//! parallel transfer together; the file system sees the *whole* access at
//! once and can service each disk in ascending block order — pure
//! sequential disk movement — instead of in whatever order the nodes'
//! individual requests happen to arrive.

use charisma_ipsc::{Machine, SimTime};

use crate::error::CfsError;
use crate::fs::{block_overlap, Cfs, IoOutcome};
use crate::mode::IoMode;

/// One node's share of a collective transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CollectiveShare {
    /// The participating compute node.
    pub node: u16,
    /// Starting offset of this node's contiguous share.
    pub offset: u64,
    /// Length of the share, bytes.
    pub bytes: u32,
}

/// Outcome of a collective transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CollectiveOutcome {
    /// Total bytes transferred.
    pub bytes: u64,
    /// Completion time of the whole collective (all shares done).
    pub completion: SimTime,
    /// Network messages exchanged.
    pub messages: u64,
    /// Blocks touched.
    pub blocks: u64,
    /// Blocks served from cache.
    pub cache_hits: u64,
}

impl Cfs {
    /// Service a collective read: every share is announced up front, and
    /// each I/O node serves its blocks in ascending order.
    pub fn collective_read(
        &mut self,
        machine: &Machine,
        session: u32,
        shares: &[CollectiveShare],
        now: SimTime,
    ) -> Result<CollectiveOutcome, CfsError> {
        self.collective(machine, session, shares, now, false)
    }

    /// Service a collective write.
    pub fn collective_write(
        &mut self,
        machine: &Machine,
        session: u32,
        shares: &[CollectiveShare],
        now: SimTime,
    ) -> Result<CollectiveOutcome, CfsError> {
        self.collective(machine, session, shares, now, true)
    }

    /// The baseline: each node issues its share as an independent request
    /// in node order (the arrival interleaving a real machine would see is
    /// somewhere between this and the worst case).
    pub fn collective_as_independent(
        &mut self,
        machine: &Machine,
        session: u32,
        shares: &[CollectiveShare],
        now: SimTime,
        is_write: bool,
    ) -> Result<CollectiveOutcome, CfsError> {
        let mut out = CollectiveOutcome {
            bytes: 0,
            completion: now,
            messages: 0,
            blocks: 0,
            cache_hits: 0,
        };
        for share in shares {
            self.seek(session, share.node, share.offset)?;
            let o: IoOutcome = if is_write {
                self.write(machine, session, share.node, share.bytes, now)?
            } else {
                self.read(machine, session, share.node, share.bytes, now)?
            };
            out.bytes += u64::from(o.bytes);
            out.messages += o.messages;
            out.blocks += o.blocks;
            out.cache_hits += o.cache_hits;
            out.completion = out.completion.max(o.completion);
        }
        Ok(out)
    }

    fn collective(
        &mut self,
        machine: &Machine,
        session: u32,
        shares: &[CollectiveShare],
        now: SimTime,
        is_write: bool,
    ) -> Result<CollectiveOutcome, CfsError> {
        let (file, mode, can) = self.session_info(session)?;
        if mode != IoMode::Independent {
            return Err(CfsError::WrongMode { mode });
        }
        if (is_write && !can.1) || (!is_write && !can.0) {
            return Err(CfsError::AccessDenied { session });
        }
        if is_write {
            let end = shares
                .iter()
                .map(|s| s.offset + u64::from(s.bytes))
                .max()
                .unwrap_or(0);
            self.reserve(file, end)?;
        }

        // Collect every touched block across all shares, then sort by block
        // index: this is what lets each disk stream sequentially.
        let striping = self.striping();
        let size = self.file_size(file).unwrap_or(0);
        let mut touches: Vec<(u64, u32, u16)> = Vec::new();
        let mut payload = 0u64;
        for share in shares {
            self.seek(session, share.node, share.offset + u64::from(share.bytes))?;
            let len = if is_write {
                u64::from(share.bytes)
            } else {
                size.saturating_sub(share.offset)
                    .min(u64::from(share.bytes))
            };
            payload += len;
            for b in striping.blocks_of_request(share.offset, len) {
                touches.push((b, block_overlap(share.offset, len, b), share.node));
            }
        }
        touches.sort_unstable_by_key(|&(b, _, _)| b);
        // Merge duplicate blocks (share boundaries inside one block).
        let mut merged: Vec<(u64, u32)> = Vec::with_capacity(touches.len());
        for &(b, t, _) in &touches {
            match merged.last_mut() {
                Some((lb, lt)) if *lb == b => *lt += t,
                _ => merged.push((b, t)),
            }
        }

        // One request message per participating node announces its share;
        // the data flows between the I/O nodes and the owning compute node.
        // We model the disk-side service with the (sorted) block list
        // charged through node 0's path, then add the per-node reply
        // latencies.
        let announce_node = shares.first().map_or(0, |s| s.node);
        let (serve_done, mut messages, blocks, hits) =
            self.serve_block_list(machine, announce_node, file, &merged, now, is_write)?;
        // The other nodes' announcements and replies.
        let mut completion = serve_done;
        for share in shares.iter().skip(1) {
            messages += 2;
            let reply = machine.io_message_latency(
                share.node as usize,
                0,
                if is_write { 32 } else { u64::from(share.bytes) },
            );
            completion = completion.max(serve_done + reply);
        }
        if is_write {
            self.note_write(payload);
        } else {
            self.note_read(payload);
        }
        Ok(CollectiveOutcome {
            bytes: payload,
            completion,
            messages,
            blocks,
            cache_hits: hits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{Access, CfsConfig};
    use charisma_ipsc::MachineConfig;

    fn setup() -> (Machine, Cfs) {
        (
            Machine::boot_synchronized(MachineConfig::tiny()),
            Cfs::new(CfsConfig::tiny()),
        )
    }

    fn t0() -> SimTime {
        SimTime::from_secs(1)
    }

    fn shares(nodes: u16, each: u32) -> Vec<CollectiveShare> {
        (0..nodes)
            .map(|n| CollectiveShare {
                node: n,
                offset: u64::from(n) * u64::from(each),
                bytes: each,
            })
            .collect()
    }

    fn open_all(fs: &mut Cfs, job: u32, path: &str, access: Access, nodes: u16) -> u32 {
        let mut session = 0;
        for n in 0..nodes {
            session = fs
                .open(job, path, access, IoMode::Independent, n, false)
                .unwrap()
                .session;
        }
        session
    }

    #[test]
    fn collective_write_then_collective_read() {
        let (m, mut fs) = setup();
        let s = open_all(&mut fs, 1, "matrix", Access::Write, 4);
        let w = fs
            .collective_write(&m, s, &shares(4, 64 * 1024), t0())
            .unwrap();
        assert_eq!(w.bytes, 4 * 64 * 1024);
        assert_eq!(fs.file_size(0), Some(4 * 64 * 1024));
        for n in 0..4 {
            fs.close(s, n).unwrap();
        }
        let s2 = open_all(&mut fs, 2, "matrix", Access::Read, 4);
        let r = fs
            .collective_read(&m, s2, &shares(4, 64 * 1024), t0())
            .unwrap();
        assert_eq!(r.bytes, 4 * 64 * 1024);
    }

    #[test]
    fn collective_beats_independent_interleaved_arrivals() {
        // Independent requests from different nodes interleave on the disks
        // and pay positioning; the collective sorts them.
        let (m, mut fs) = setup();
        // Write a large file, then blow the cache so reads hit disk.
        let s = open_all(&mut fs, 1, "data", Access::Write, 1);
        for _ in 0..8 {
            fs.write(&m, s, 0, 1 << 20, t0()).unwrap();
        }
        fs.close(s, 0).unwrap();

        // Interleaved shares: node n takes every 4th 16 KB chunk — the
        // independent baseline makes each disk hop between far-apart
        // blocks as the four nodes' requests interleave.
        let mut interleaved = Vec::new();
        for round in 0..16u64 {
            for n in 0..4u16 {
                interleaved.push(CollectiveShare {
                    node: n,
                    offset: (round * 4 + u64::from(n)) * 16384,
                    bytes: 16384,
                });
            }
        }
        // Reorder so arrivals ping-pong across the file (worst case for
        // the independent baseline).
        let mut ping_pong = interleaved.clone();
        ping_pong.sort_unstable_by_key(|s| (s.node, s.offset));

        let s1 = open_all(&mut fs, 2, "data", Access::Read, 4);
        let col = fs.collective_read(&m, s1, &interleaved, t0()).unwrap();
        for n in 0..4 {
            fs.close(s1, n).unwrap();
        }
        let s2 = open_all(&mut fs, 3, "data", Access::Read, 4);
        let ind = fs
            .collective_as_independent(&m, s2, &ping_pong, t0(), false)
            .unwrap();

        assert_eq!(col.bytes, ind.bytes);
        assert!(col.messages < ind.messages);
    }

    #[test]
    fn collective_requires_mode_0() {
        let (m, mut fs) = setup();
        let o = fs
            .open(1, "f", Access::Write, IoMode::RoundRobin, 0, false)
            .unwrap();
        assert_eq!(
            fs.collective_write(&m, o.session, &shares(1, 1024), t0()),
            Err(CfsError::WrongMode {
                mode: IoMode::RoundRobin
            })
        );
    }

    #[test]
    fn empty_collective_is_a_noop() {
        let (m, mut fs) = setup();
        let s = open_all(&mut fs, 1, "f", Access::Write, 1);
        let out = fs.collective_write(&m, s, &[], t0()).unwrap();
        assert_eq!(out.bytes, 0);
        assert_eq!(out.blocks, 0);
    }
}
