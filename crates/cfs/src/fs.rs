//! The Concurrent File System proper.
//!
//! A Unix-like interface — open, read, write, seek, close, delete — with
//! CFS's parallel-access additions: the four I/O modes, round-robin 4 KB
//! striping across the I/O nodes, and an I/O-node-only buffer cache
//! ("Only the I/O nodes have a buffer cache", §2.4).
//!
//! The simulator is *timed*: every request computes a completion time from
//! the network model (request and reply messages to the I/O nodes it
//! engages), the per-I/O-node buffer cache, and the per-disk FIFO queue.
//! Writes are modeled with write-behind — the client is acknowledged once
//! the blocks are in the I/O-node cache, while the disk queue absorbs the
//! traffic in the background — matching CFS's buffered writes.

use std::collections::BTreeMap;

use charisma_ipsc::{Duration, Machine, SimTime};
use charisma_obs::{Counter, Histogram, MetricsRegistry};

use crate::cache::{BlockCache, LruCache};
use crate::disk::{DiskModel, DiskState};
use crate::error::CfsError;
use crate::faults::CfsFaults;
use crate::mode::IoMode;
use crate::stripe::Striping;
use crate::BLOCK_BYTES;

/// How an open intends to use a file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Access {
    /// Read-only open.
    Read,
    /// Write-only open.
    Write,
    /// Read-write open.
    ReadWrite,
}

impl Access {
    /// Whether reads are permitted.
    pub fn can_read(self) -> bool {
        self != Access::Write
    }

    /// Whether writes are permitted.
    pub fn can_write(self) -> bool {
        self != Access::Read
    }
}

/// Static CFS configuration.
#[derive(Clone, Debug)]
pub struct CfsConfig {
    /// Number of I/O nodes (each with one disk).
    pub io_nodes: usize,
    /// Disk timing model.
    pub disk: DiskModel,
    /// Capacity of each disk, bytes.
    pub disk_capacity_bytes: u64,
    /// Online I/O-node cache size, in 4 KB blocks per I/O node. The NAS
    /// I/O nodes had 4 MB; roughly half was buffer cache (~512 blocks).
    pub cache_blocks_per_io_node: usize,
    /// I/O-node CPU time to service a request from cache, µs.
    pub cache_op_us: u64,
}

impl CfsConfig {
    /// The NAS iPSC/860 CFS: 10 I/O nodes, 760 MB disks, ~512-block caches.
    pub fn nas() -> Self {
        CfsConfig {
            io_nodes: 10,
            disk: DiskModel::default(),
            disk_capacity_bytes: 760 << 20,
            cache_blocks_per_io_node: 512,
            cache_op_us: 300,
        }
    }

    /// A tiny configuration for tests: 2 I/O nodes, 8 MB disks.
    pub fn tiny() -> Self {
        CfsConfig {
            io_nodes: 2,
            disk: DiskModel::default(),
            disk_capacity_bytes: 8 << 20,
            cache_blocks_per_io_node: 16,
            cache_op_us: 300,
        }
    }

    /// Total file-system capacity, bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.disk_capacity_bytes * self.io_nodes as u64
    }
}

/// Result of one successful open.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpenResult {
    /// The session this node attached to (shared by the job's nodes).
    pub session: u32,
    /// The file's path identity.
    pub file: u32,
    /// Whether this session created the file.
    pub created: bool,
}

/// Result of one read or write request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoOutcome {
    /// File offset the request actually started at (mode-resolved).
    pub offset: u64,
    /// Bytes actually transferred (reads truncate at end of file).
    pub bytes: u32,
    /// Simulated completion time of the request.
    pub completion: SimTime,
    /// Network messages exchanged (requests + replies).
    pub messages: u64,
    /// Blocks touched.
    pub blocks: u64,
    /// Blocks served from the I/O-node cache.
    pub cache_hits: u64,
}

/// Aggregate counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CfsStats {
    /// Read requests served.
    pub reads: u64,
    /// Write requests served.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Block-level I/O-node cache hits.
    pub cache_hits: u64,
    /// Block-level I/O-node cache misses.
    pub cache_misses: u64,
    /// Total network messages.
    pub messages: u64,
}

/// Metric handles a [`Cfs`] reports through once attached with
/// [`Cfs::attach_metrics`]. Everything here is simulated-time data —
/// deterministic for a fixed seed.
#[derive(Clone, Debug, Default)]
pub struct CfsMetrics {
    /// Requests by I/O mode, indexed by [`IoMode::code`].
    pub mode_requests: [Counter; 4],
    /// Read requests served (plain, strided, and collective).
    pub reads: Counter,
    /// Write requests served (plain, strided, and collective).
    pub writes: Counter,
    /// Block-level I/O-node cache hits.
    pub cache_hits: Counter,
    /// Block-level I/O-node cache misses.
    pub cache_misses: Counter,
    /// I/O nodes engaged per request (stripe fan-out).
    pub stripe_fanout: Histogram,
    /// Per-block disk service time, simulated µs (queue wait excluded).
    pub disk_service_us: Histogram,
}

impl CfsMetrics {
    /// Handles registered under the `cfs.` prefix of `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        CfsMetrics {
            mode_requests: std::array::from_fn(|m| {
                registry.counter(&format!("cfs.requests.mode{m}"))
            }),
            reads: registry.counter("cfs.read_requests"),
            writes: registry.counter("cfs.write_requests"),
            cache_hits: registry.counter("cfs.cache_hits"),
            cache_misses: registry.counter("cfs.cache_misses"),
            stripe_fanout: registry.histogram("cfs.stripe_fanout"),
            disk_service_us: registry.histogram("cfs.disk_service_us"),
        }
    }
}

#[derive(Clone, Debug)]
struct FileMeta {
    size: u64,
    exists: bool,
}

#[derive(Debug)]
struct Session {
    job: u32,
    file: u32,
    mode: IoMode,
    access: Access,
    created: bool,
    /// Attach order; round-robin turn order.
    nodes: Vec<u16>,
    /// Per-node pointers (mode 0).
    node_ptrs: BTreeMap<u16, u64>,
    /// Shared pointer (modes 1-3).
    shared_ptr: u64,
    /// Index into `nodes` of the node whose turn it is (modes 2-3).
    rr_turn: usize,
    /// Established request size (mode 3).
    fixed_size: Option<u32>,
    /// Nodes still attached.
    live_nodes: usize,
    live: bool,
}

/// The CFS instance: file table, open sessions, disks, and caches.
pub struct Cfs {
    config: CfsConfig,
    striping: Striping,
    files: Vec<FileMeta>,
    paths: BTreeMap<String, u32>,
    sessions: Vec<Session>,
    /// Live (job, file) → session map, for parallel attach.
    open_index: BTreeMap<(u32, u32), u32>,
    disks: Vec<DiskState>,
    caches: Vec<LruCache>,
    used_bytes: u64,
    stats: CfsStats,
    metrics: Option<CfsMetrics>,
    faults: Option<CfsFaults>,
}

impl Cfs {
    /// Create a file system.
    pub fn new(config: CfsConfig) -> Self {
        let striping = Striping::cfs(config.io_nodes);
        let disks = (0..config.io_nodes).map(|_| DiskState::default()).collect();
        let caches = (0..config.io_nodes)
            .map(|_| LruCache::new(config.cache_blocks_per_io_node))
            .collect();
        Cfs {
            config,
            striping,
            files: Vec::new(),
            paths: BTreeMap::new(),
            sessions: Vec::new(),
            open_index: BTreeMap::new(),
            disks,
            caches,
            used_bytes: 0,
            stats: CfsStats::default(),
            metrics: None,
            faults: None,
        }
    }

    /// Report request, cache, stripe, and disk activity through `metrics`
    /// from now on.
    pub fn attach_metrics(&mut self, metrics: CfsMetrics) {
        self.metrics = Some(metrics);
    }

    /// Inject disk transients, service degradation, I/O-node failures,
    /// and stalls — with retry, backoff, timeout, and stripe failover —
    /// into every request from now on. Callers normally gate on
    /// `FaultPlan::is_empty`; without this call the request path is
    /// exactly the fault-free simulator.
    pub fn attach_faults(&mut self, faults: CfsFaults) {
        self.faults = Some(faults);
    }

    /// The static configuration.
    pub fn config(&self) -> &CfsConfig {
        &self.config
    }

    /// The striping function in force.
    pub fn striping(&self) -> Striping {
        self.striping
    }

    /// Aggregate counters.
    pub fn stats(&self) -> CfsStats {
        self.stats
    }

    /// Bytes currently allocated on disk.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Current size of a file, if it exists.
    pub fn file_size(&self, file: u32) -> Option<u64> {
        self.files
            .get(file as usize)
            .filter(|f| f.exists)
            .map(|f| f.size)
    }

    /// Size of `file`, or zero when the id is unknown (typed-error
    /// hardening: I/O-shaped lookups must not panic under fault injection).
    fn file_size_or_zero(&self, file: u32) -> u64 {
        self.files.get(file as usize).map_or(0, |m| m.size)
    }

    /// Look up a path's file id without opening it.
    pub fn lookup(&self, path: &str) -> Option<u32> {
        self.paths
            .get(path)
            .copied()
            .filter(|&f| self.files.get(f as usize).is_some_and(|m| m.exists))
    }

    /// Open `path` from `node` on behalf of `job`.
    ///
    /// The first node of a job to open a path creates the session; the
    /// job's other nodes attach to it (they must use the same mode). A
    /// write-capable open of a missing file creates it; `truncate` resets
    /// an existing file to zero length.
    pub fn open(
        &mut self,
        job: u32,
        path: &str,
        access: Access,
        mode: IoMode,
        node: u16,
        truncate: bool,
    ) -> Result<OpenResult, CfsError> {
        // Resolve or create the file.
        let (file, created) = match self.lookup(path) {
            Some(f) => (f, false),
            None => {
                if !access.can_write() {
                    return Err(CfsError::NoSuchFile);
                }
                // A deleted path is recreated under a fresh id so old cached
                // blocks can never alias the new file's blocks.
                self.files.push(FileMeta {
                    size: 0,
                    exists: true,
                });
                let id = (self.files.len() - 1) as u32;
                self.paths.insert(path.to_owned(), id);
                (id, true)
            }
        };

        // Attach to a live session for (job, file), or start one.
        if let Some(&sid) = self.open_index.get(&(job, file)) {
            let session = &mut self.sessions[sid as usize];
            if session.nodes.contains(&node) && session.node_ptrs.contains_key(&node) {
                return Err(CfsError::AlreadyAttached { session: sid, node });
            }
            session.nodes.push(node);
            session.node_ptrs.insert(node, 0);
            session.live_nodes += 1;
            return Ok(OpenResult {
                session: sid,
                file,
                created: session.created,
            });
        }

        if truncate && !created {
            self.truncate_file(file);
        }
        let sid = self.sessions.len() as u32;
        let mut node_ptrs = BTreeMap::new();
        node_ptrs.insert(node, 0u64);
        self.sessions.push(Session {
            job,
            file,
            mode,
            access,
            created,
            nodes: vec![node],
            node_ptrs,
            shared_ptr: 0,
            rr_turn: 0,
            fixed_size: None,
            live_nodes: 1,
            live: true,
        });
        self.open_index.insert((job, file), sid);
        Ok(OpenResult {
            session: sid,
            file,
            created,
        })
    }

    /// Close `node`'s attachment to `session`; returns the file size at
    /// close (Figure 3's metric).
    pub fn close(&mut self, session: u32, node: u16) -> Result<u64, CfsError> {
        let s = self.session_mut(session)?;
        if s.node_ptrs.remove(&node).is_none() {
            return Err(CfsError::NotAttached { session, node });
        }
        s.live_nodes -= 1;
        let file = s.file;
        if s.live_nodes == 0 {
            s.live = false;
            let job = s.job;
            self.open_index.remove(&(job, file));
        }
        Ok(self.file_size_or_zero(file))
    }

    /// Reposition `node`'s pointer (mode 0 only).
    pub fn seek(&mut self, session: u32, node: u16, offset: u64) -> Result<(), CfsError> {
        let s = self.session_mut(session)?;
        if s.mode.shares_pointer() {
            return Err(CfsError::SeekOnSharedPointer { session });
        }
        match s.node_ptrs.get_mut(&node) {
            Some(p) => {
                *p = offset;
                Ok(())
            }
            None => Err(CfsError::NotAttached { session, node }),
        }
    }

    /// `node`'s current pointer (mode 0), or the shared pointer.
    pub fn tell(&self, session: u32, node: u16) -> Result<u64, CfsError> {
        let s = self.session(session)?;
        if s.mode.shares_pointer() {
            Ok(s.shared_ptr)
        } else {
            s.node_ptrs
                .get(&node)
                .copied()
                .ok_or(CfsError::NotAttached { session, node })
        }
    }

    /// Read `bytes` bytes at the mode-resolved offset.
    pub fn read(
        &mut self,
        machine: &Machine,
        session: u32,
        node: u16,
        bytes: u32,
        now: SimTime,
    ) -> Result<IoOutcome, CfsError> {
        let (file, offset, actual, mode) = {
            let (size, mode) = {
                let s = self.session(session)?;
                if !s.access.can_read() {
                    return Err(CfsError::AccessDenied { session });
                }
                (self.file_size_or_zero(s.file), s.mode)
            };
            let (file, offset) = self.resolve_offset(session, node, bytes, false)?;
            let actual = (size.saturating_sub(offset)).min(u64::from(bytes)) as u32;
            (file, offset, actual, mode)
        };
        self.advance_pointer(session, node, u64::from(actual));
        let (completion, messages, blocks, hits) =
            self.access_blocks(machine, node, file, offset, u64::from(actual), now, false)?;
        self.stats.reads += 1;
        self.stats.bytes_read += u64::from(actual);
        if let Some(m) = &self.metrics {
            m.reads.inc();
            m.mode_requests[usize::from(mode.code())].inc();
        }
        Ok(IoOutcome {
            offset,
            bytes: actual,
            completion,
            messages,
            blocks,
            cache_hits: hits,
        })
    }

    /// Write `bytes` bytes at the mode-resolved offset, extending the file
    /// if needed.
    pub fn write(
        &mut self,
        machine: &Machine,
        session: u32,
        node: u16,
        bytes: u32,
        now: SimTime,
    ) -> Result<IoOutcome, CfsError> {
        let mode = {
            let s = self.session(session)?;
            if !s.access.can_write() {
                return Err(CfsError::AccessDenied { session });
            }
            s.mode
        };
        let (file, offset) = self.resolve_offset(session, node, bytes, true)?;
        self.extend_file(file, offset + u64::from(bytes))?;
        self.advance_pointer(session, node, u64::from(bytes));
        let (completion, messages, blocks, hits) =
            self.access_blocks(machine, node, file, offset, u64::from(bytes), now, true)?;
        self.stats.writes += 1;
        self.stats.bytes_written += u64::from(bytes);
        if let Some(m) = &self.metrics {
            m.writes.inc();
            m.mode_requests[usize::from(mode.code())].inc();
        }
        Ok(IoOutcome {
            offset,
            bytes,
            completion,
            messages,
            blocks,
            cache_hits: hits,
        })
    }

    /// Delete a file, releasing its space and invalidating cached blocks.
    pub fn delete(&mut self, file: u32) -> Result<(), CfsError> {
        let meta = self
            .files
            .get_mut(file as usize)
            .filter(|f| f.exists)
            .ok_or(CfsError::NoSuchFile)?;
        meta.exists = false;
        let size = meta.size;
        meta.size = 0;
        let blocks = size.div_ceil(BLOCK_BYTES);
        self.used_bytes -= blocks * BLOCK_BYTES;
        for b in 0..blocks {
            let io = self.striping.io_node_of(b);
            self.caches[io].invalidate((file, b));
        }
        Ok(())
    }

    /// Per-disk state (utilization accounting, tests).
    pub fn disk(&self, io: usize) -> &DiskState {
        &self.disks[io]
    }

    /// Drop every I/O-node cache (cold-cache experiments; the real
    /// machine's caches were cold after a reboot or an idle night).
    pub fn drop_caches(&mut self) {
        for cache in &mut self.caches {
            *cache = LruCache::new(self.config.cache_blocks_per_io_node);
        }
    }

    // -- internals ---------------------------------------------------------

    fn session(&self, id: u32) -> Result<&Session, CfsError> {
        self.sessions
            .get(id as usize)
            .filter(|s| s.live)
            .ok_or(CfsError::NotOpen { session: id })
    }

    fn session_mut(&mut self, id: u32) -> Result<&mut Session, CfsError> {
        self.sessions
            .get_mut(id as usize)
            .filter(|s| s.live)
            .ok_or(CfsError::NotOpen { session: id })
    }

    /// Resolve the starting offset of a request under the session's mode,
    /// enforcing turn order and fixed sizes, *without* advancing pointers.
    fn resolve_offset(
        &mut self,
        session: u32,
        node: u16,
        bytes: u32,
        _is_write: bool,
    ) -> Result<(u32, u64), CfsError> {
        let s = self.session_mut(session)?;
        if !s.node_ptrs.contains_key(&node) {
            return Err(CfsError::NotAttached { session, node });
        }
        let offset = match s.mode {
            IoMode::Independent => s.node_ptrs[&node],
            IoMode::SharedPointer => s.shared_ptr,
            IoMode::RoundRobin | IoMode::RoundRobinFixed => {
                let expected = s.nodes[s.rr_turn % s.nodes.len()];
                if expected != node {
                    return Err(CfsError::OutOfTurn {
                        session,
                        node,
                        expected,
                    });
                }
                if s.mode.fixed_size() {
                    match s.fixed_size {
                        None => s.fixed_size = Some(bytes),
                        Some(fs) if fs != bytes => {
                            return Err(CfsError::SizeMismatch {
                                session,
                                expected: fs,
                                got: bytes,
                            })
                        }
                        _ => {}
                    }
                }
                s.rr_turn += 1;
                s.shared_ptr
            }
        };
        charisma_ipsc::invariant!(
            s.mode.shares_pointer() || s.shared_ptr == 0,
            "mode-0 session {session} advanced the shared pointer"
        );
        charisma_ipsc::invariant!(
            s.mode.ordered() || s.rr_turn == 0,
            "unordered session {session} advanced the round-robin turn"
        );
        charisma_ipsc::invariant!(
            s.mode.fixed_size() || s.fixed_size.is_none(),
            "session {session} pinned a request size outside mode 3"
        );
        Ok((s.file, offset))
    }

    fn advance_pointer(&mut self, session: u32, node: u16, by: u64) {
        // Callers validate the session first; an unknown id is a no-op
        // rather than a panic so injected faults can never bring the
        // host down through a stale handle.
        let Some(s) = self.sessions.get_mut(session as usize) else {
            return;
        };
        if s.mode.shares_pointer() {
            s.shared_ptr += by;
        } else if let Some(p) = s.node_ptrs.get_mut(&node) {
            *p += by;
        }
    }

    fn truncate_file(&mut self, file: u32) {
        let Some(meta) = self.files.get_mut(file as usize) else {
            return;
        };
        let blocks = meta.size.div_ceil(BLOCK_BYTES);
        self.used_bytes -= blocks * BLOCK_BYTES;
        meta.size = 0;
        for b in 0..blocks {
            let io = self.striping.io_node_of(b);
            self.caches[io].invalidate((file, b));
        }
    }

    fn extend_file(&mut self, file: u32, new_end: u64) -> Result<(), CfsError> {
        let meta = self
            .files
            .get_mut(file as usize)
            .ok_or(CfsError::NoSuchFile)?;
        if new_end <= meta.size {
            return Ok(());
        }
        let old_blocks = meta.size.div_ceil(BLOCK_BYTES);
        let new_blocks = new_end.div_ceil(BLOCK_BYTES);
        let added = (new_blocks - old_blocks) * BLOCK_BYTES;
        if self.used_bytes + added > self.config.capacity_bytes() {
            return Err(CfsError::NoSpace {
                short_by: self.used_bytes + added - self.config.capacity_bytes(),
            });
        }
        self.used_bytes += added;
        meta.size = new_end;
        Ok(())
    }

    /// Perform the block-level work of a contiguous request.
    ///
    /// Returns `(completion, messages, blocks, cache_hits)`.
    #[allow(clippy::too_many_arguments)]
    fn access_blocks(
        &mut self,
        machine: &Machine,
        node: u16,
        file: u32,
        offset: u64,
        len: u64,
        now: SimTime,
        is_write: bool,
    ) -> Result<(SimTime, u64, u64, u64), CfsError> {
        let range = self.striping.blocks_of_request(offset, len);
        if range.is_empty() {
            // Degenerate request: still one round trip to I/O node 0.
            let io = self.striping.io_node_of(range.start);
            let rtt = machine.io_message_latency(node as usize, io, 64).times(2);
            self.stats.messages += 2;
            return Ok((now + rtt, 2, 0, 0));
        }
        let touches: Vec<(u64, u32)> = range.map(|b| (b, block_overlap(offset, len, b))).collect();
        self.serve_block_list(machine, node, file, &touches, now, is_write)
    }

    /// Serve an explicit `(block, touched_bytes)` list for one compute
    /// node: one request/reply message pair per engaged I/O node, cache
    /// lookups, and serial disk chains. Shared by plain, strided, and
    /// collective requests.
    ///
    /// With faults attached, this is also where recovery happens: a
    /// stripe whose I/O node is down fails over wholesale to the next
    /// live node; a flaky block read retries with capped exponential
    /// backoff and, past the retry budget, is read around from the next
    /// live node's replica; every degraded/slow path is still a plain
    /// completion time. Only when *no* live node remains does the request
    /// surface [`CfsError::Degraded`].
    ///
    /// Returns `(completion, messages, blocks, cache_hits)`.
    pub(crate) fn serve_block_list(
        &mut self,
        machine: &Machine,
        node: u16,
        file: u32,
        touches: &[(u64, u32)],
        now: SimTime,
        is_write: bool,
    ) -> Result<(SimTime, u64, u64, u64), CfsError> {
        let metrics = self.metrics.clone();
        let faults = self.faults.clone();
        let now_us = now.as_micros();
        let degrade_ppm = faults.as_ref().map_or(0, |f| f.degrade_ppm());
        let cache_op = Duration::from_micros(self.config.cache_op_us);
        let mut completion = now;
        let mut messages = 0u64;
        let mut blocks = 0u64;
        let mut hits = 0u64;
        let mut fanout = 0u64;
        let io_count = self.config.io_nodes;
        for io in 0..io_count {
            // Stripe failover: a down I/O node's whole block group is
            // redirected to the next live node (cache and disk included).
            let mut serve_io = io;
            if let Some(f) = &faults {
                if f.io_down(io, now_us) {
                    match f.next_live(io, io_count, now_us) {
                        Some(alt) => serve_io = alt,
                        None => return Err(CfsError::Degraded { io_node: io as u32 }),
                    }
                }
            }
            let mut io_bytes = 0u64;
            let mut io_done = SimTime::ZERO;
            let mut engaged = false;
            for &(b, touched) in touches {
                if self.striping.io_node_of(b) != io {
                    continue;
                }
                if !engaged {
                    engaged = true;
                    fanout += 1;
                    // Request message reaches the (possibly failover) I/O
                    // node.
                    io_done = now + machine.io_message_latency(node as usize, serve_io, 64);
                    messages += 1;
                    if let Some(f) = &faults {
                        if serve_io != io {
                            f.note_degraded();
                        }
                        if let Some(stall) = f.stall_us(serve_io as u64, file, b) {
                            io_done += Duration::from_micros(stall);
                        }
                    }
                }
                blocks += 1;
                io_bytes += u64::from(touched);
                if self.caches[serve_io].access((file, b), touched) {
                    hits += 1;
                    self.stats.cache_hits += 1;
                    io_done += cache_op;
                } else {
                    self.stats.cache_misses += 1;
                    if is_write {
                        // Write-behind: the client pays only the cache
                        // insertion; the disk absorbs the block later.
                        io_done += cache_op;
                        let busy_before = self.disks[serve_io].busy_us;
                        self.disks[serve_io].serve_degraded(
                            &self.config.disk,
                            file,
                            b,
                            BLOCK_BYTES,
                            io_done,
                            true,
                            degrade_ppm,
                        );
                        if let Some(m) = &metrics {
                            m.disk_service_us
                                .record(self.disks[serve_io].busy_us - busy_before);
                        }
                    } else {
                        // A flaky block read retries with backoff; past
                        // the budget it is read around from the next
                        // live node.
                        let mut disk_io = serve_io;
                        if let Some(f) = &faults {
                            if let Some(fails) = f.transient_failures(serve_io as u64, file, b) {
                                let budget = u64::from(f.retry().max_retries);
                                for attempt in 0..fails.min(budget) {
                                    io_done += Duration::from_micros(f.backoff_us(
                                        file,
                                        b,
                                        attempt as u32,
                                    ));
                                }
                                if fails > budget {
                                    match f.next_live(disk_io, io_count, now_us) {
                                        Some(alt) => {
                                            f.note_degraded();
                                            disk_io = alt;
                                        }
                                        None => {
                                            return Err(CfsError::Degraded {
                                                io_node: disk_io as u32,
                                            })
                                        }
                                    }
                                }
                            }
                        }
                        let busy_before = self.disks[disk_io].busy_us;
                        io_done = self.disks[disk_io].serve_degraded(
                            &self.config.disk,
                            file,
                            b,
                            BLOCK_BYTES,
                            io_done,
                            false,
                            degrade_ppm,
                        );
                        if let Some(m) = &metrics {
                            m.disk_service_us
                                .record(self.disks[disk_io].busy_us - busy_before);
                        }
                    }
                }
            }
            if engaged {
                // Reply message carries the data (reads) or the ack (writes).
                let reply_bytes = if is_write { 32 } else { io_bytes.max(32) };
                let done =
                    io_done + machine.io_message_latency(node as usize, serve_io, reply_bytes);
                messages += 1;
                completion = completion.max(done);
            }
        }
        self.stats.messages += messages;
        if let Some(m) = &metrics {
            m.cache_hits.add(hits);
            m.cache_misses.add(blocks - hits);
            m.stripe_fanout.record(fanout);
        }
        // Per-request timeout: a request that exceeds the budget pays one
        // extra client-side backoff (the caller's reissue) and is counted.
        if let Some(f) = &faults {
            let timeout = f.retry().timeout_us;
            if timeout > 0 && completion.since(now).as_micros() > timeout {
                f.note_timeout();
                completion += Duration::from_micros(f.retry().base_backoff_us);
            }
        }
        Ok((completion, messages, blocks, hits))
    }

    /// Session facts needed by the extension interfaces:
    /// `(file, mode, (can_read, can_write))`.
    pub(crate) fn session_info(
        &self,
        session: u32,
    ) -> Result<(u32, IoMode, (bool, bool)), CfsError> {
        let s = self.session(session)?;
        Ok((s.file, s.mode, (s.access.can_read(), s.access.can_write())))
    }

    /// Extend a file for an extension-interface write.
    pub(crate) fn reserve(&mut self, file: u32, new_end: u64) -> Result<(), CfsError> {
        self.extend_file(file, new_end)
    }

    /// Account an extension-interface read in the aggregate stats.
    pub(crate) fn note_read(&mut self, bytes: u64) {
        self.stats.reads += 1;
        self.stats.bytes_read += bytes;
        if let Some(m) = &self.metrics {
            m.reads.inc();
        }
    }

    /// Account an extension-interface write in the aggregate stats.
    pub(crate) fn note_write(&mut self, bytes: u64) {
        self.stats.writes += 1;
        self.stats.bytes_written += bytes;
        if let Some(m) = &self.metrics {
            m.writes.inc();
        }
    }
}

/// Bytes of block `block` overlapped by the byte range `[offset, offset+len)`.
pub fn block_overlap(offset: u64, len: u64, block: u64) -> u32 {
    let bstart = block * BLOCK_BYTES;
    let bend = bstart + BLOCK_BYTES;
    let start = offset.max(bstart);
    let end = (offset + len).min(bend);
    end.saturating_sub(start) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_ipsc::MachineConfig;

    fn setup() -> (Machine, Cfs) {
        let machine = Machine::boot_synchronized(MachineConfig::tiny());
        let cfs = Cfs::new(CfsConfig::tiny());
        (machine, cfs)
    }

    fn t0() -> SimTime {
        SimTime::from_secs(1)
    }

    fn write_then_reopen(m: &Machine, fs: &mut Cfs, bytes: u32) -> u32 {
        let open = fs
            .open(1, "/f", Access::ReadWrite, IoMode::Independent, 0, false)
            .unwrap();
        fs.write(m, open.session, 0, bytes, t0()).unwrap();
        fs.close(open.session, 0).unwrap();
        fs.drop_caches();
        let open = fs
            .open(1, "/f", Access::Read, IoMode::Independent, 0, false)
            .unwrap();
        open.session
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_no_faults() {
        use charisma_ipsc::faults::FaultPlan;
        let (m, mut plain) = setup();
        let (_, mut chaos) = setup();
        chaos.attach_faults(CfsFaults::new(&FaultPlan::none(), 99, None));
        for fs in [&mut plain, &mut chaos] {
            let s = write_then_reopen(&m, fs, 64 * 1024);
            let out = fs.read(&m, s, 0, 64 * 1024, t0()).unwrap();
            assert!(out.completion > t0());
        }
        assert_eq!(plain.stats(), chaos.stats());
    }

    #[test]
    fn down_io_node_fails_over_and_counts_degraded() {
        use charisma_ipsc::faults::{FaultPlan, IoNodeDown};
        use charisma_obs::MetricsRegistry;
        let registry = MetricsRegistry::new();
        let fm = charisma_ipsc::faults::FaultMetrics::register(&registry);
        let (m, mut fs) = setup(); // tiny: 2 I/O nodes
        let mut plan = FaultPlan::none();
        plan.io_node_down.push(IoNodeDown {
            io_node: 1,
            at_us: 0,
        });
        fs.attach_faults(CfsFaults::new(&plan, 5, Some(fm)));
        let s = write_then_reopen(&m, &mut fs, 64 * 1024);
        let out = fs.read(&m, s, 0, 64 * 1024, t0()).unwrap();
        assert_eq!(out.bytes, 64 * 1024, "read-around still serves the data");
        let snap = registry.snapshot();
        assert!(snap.counters["faults.degraded"] > 0);
    }

    #[test]
    fn all_nodes_down_surfaces_degraded_error() {
        use charisma_ipsc::faults::{FaultPlan, IoNodeDown};
        let (m, mut fs) = setup();
        let s = write_then_reopen(&m, &mut fs, 16 * 1024);
        let mut plan = FaultPlan::none();
        for io in 0..2 {
            plan.io_node_down.push(IoNodeDown {
                io_node: io,
                at_us: 0,
            });
        }
        fs.attach_faults(CfsFaults::new(&plan, 5, None));
        let err = fs.read(&m, s, 0, 16 * 1024, t0()).unwrap_err();
        assert!(matches!(err, CfsError::Degraded { .. }), "{err}");
    }

    #[test]
    fn transient_reads_retry_and_cost_backoff() {
        use charisma_ipsc::faults::FaultPlan;
        let (m, mut baseline) = setup();
        let (_, mut flaky) = setup();
        let mut plan = FaultPlan::none();
        plan.seed = 7;
        plan.disk_transient_ppm = 500_000; // half the blocks are flaky
        flaky.attach_faults(CfsFaults::new(&plan, 7, None));
        let big = 256 * 1024;
        let sb = write_then_reopen(&m, &mut baseline, big);
        let base = baseline.read(&m, sb, 0, big, t0()).unwrap();
        let sf = write_then_reopen(&m, &mut flaky, big);
        let slow = flaky.read(&m, sf, 0, big, t0()).unwrap();
        assert_eq!(slow.bytes, base.bytes);
        assert!(
            slow.completion > base.completion,
            "retries must cost time: {} vs {}",
            slow.completion,
            base.completion
        );
    }

    #[test]
    fn per_request_timeout_fires_on_slow_requests() {
        use charisma_ipsc::faults::FaultPlan;
        use charisma_obs::MetricsRegistry;
        let registry = MetricsRegistry::new();
        let fm = charisma_ipsc::faults::FaultMetrics::register(&registry);
        let (m, mut fs) = setup();
        let mut plan = FaultPlan::none();
        plan.retry.timeout_us = 1_000; // far below a cold multi-block read
        fs.attach_faults(CfsFaults::new(&plan, 5, Some(fm)));
        let s = write_then_reopen(&m, &mut fs, 128 * 1024);
        fs.read(&m, s, 0, 128 * 1024, t0()).unwrap();
        let snap = registry.snapshot();
        assert!(snap.counters["faults.timed_out"] > 0);
    }

    #[test]
    fn create_write_read_round_trip() {
        let (m, mut fs) = setup();
        let o = fs
            .open(1, "out.dat", Access::Write, IoMode::Independent, 0, false)
            .unwrap();
        assert!(o.created);
        let w = fs.write(&m, o.session, 0, 10_000, t0()).unwrap();
        assert_eq!(w.offset, 0);
        assert_eq!(w.bytes, 10_000);
        assert!(w.completion > t0());
        assert_eq!(fs.close(o.session, 0).unwrap(), 10_000);

        let o2 = fs
            .open(2, "out.dat", Access::Read, IoMode::Independent, 3, false)
            .unwrap();
        assert!(!o2.created);
        let r = fs.read(&m, o2.session, 3, 4_000, t0()).unwrap();
        assert_eq!(r.bytes, 4_000);
        assert_eq!(r.offset, 0);
        let r2 = fs.read(&m, o2.session, 3, 100_000, t0()).unwrap();
        assert_eq!(r2.offset, 4_000);
        assert_eq!(r2.bytes, 6_000, "read truncates at EOF");
    }

    #[test]
    fn read_of_missing_file_fails() {
        let (_, mut fs) = setup();
        assert_eq!(
            fs.open(1, "ghost", Access::Read, IoMode::Independent, 0, false),
            Err(CfsError::NoSuchFile)
        );
    }

    #[test]
    fn independent_pointers_are_per_node() {
        let (m, mut fs) = setup();
        let o = fs
            .open(1, "f", Access::Write, IoMode::Independent, 0, false)
            .unwrap();
        fs.open(1, "f", Access::Write, IoMode::Independent, 1, false)
            .unwrap();
        fs.write(&m, o.session, 0, 100, t0()).unwrap();
        fs.write(&m, o.session, 0, 100, t0()).unwrap();
        let w = fs.write(&m, o.session, 1, 50, t0()).unwrap();
        assert_eq!(w.offset, 0, "node 1 has its own pointer");
        assert_eq!(fs.tell(o.session, 0).unwrap(), 200);
        assert_eq!(fs.tell(o.session, 1).unwrap(), 50);
    }

    #[test]
    fn shared_pointer_serializes_offsets() {
        let (m, mut fs) = setup();
        let o = fs
            .open(1, "f", Access::Write, IoMode::SharedPointer, 0, false)
            .unwrap();
        fs.open(1, "f", Access::Write, IoMode::SharedPointer, 1, false)
            .unwrap();
        let a = fs.write(&m, o.session, 0, 100, t0()).unwrap();
        let b = fs.write(&m, o.session, 1, 100, t0()).unwrap();
        let c = fs.write(&m, o.session, 0, 100, t0()).unwrap();
        assert_eq!((a.offset, b.offset, c.offset), (0, 100, 200));
    }

    #[test]
    fn round_robin_enforces_turn_order() {
        let (m, mut fs) = setup();
        let o = fs
            .open(1, "f", Access::Write, IoMode::RoundRobin, 0, false)
            .unwrap();
        fs.open(1, "f", Access::Write, IoMode::RoundRobin, 1, false)
            .unwrap();
        fs.write(&m, o.session, 0, 10, t0()).unwrap();
        let err = fs.write(&m, o.session, 0, 10, t0()).unwrap_err();
        assert_eq!(
            err,
            CfsError::OutOfTurn {
                session: o.session,
                node: 0,
                expected: 1
            }
        );
        fs.write(&m, o.session, 1, 10, t0()).unwrap();
        fs.write(&m, o.session, 0, 10, t0()).unwrap();
    }

    #[test]
    fn mode3_pins_request_size() {
        let (m, mut fs) = setup();
        let o = fs
            .open(1, "f", Access::Write, IoMode::RoundRobinFixed, 0, false)
            .unwrap();
        fs.open(1, "f", Access::Write, IoMode::RoundRobinFixed, 1, false)
            .unwrap();
        fs.write(&m, o.session, 0, 512, t0()).unwrap();
        let err = fs.write(&m, o.session, 1, 1024, t0()).unwrap_err();
        assert_eq!(
            err,
            CfsError::SizeMismatch {
                session: o.session,
                expected: 512,
                got: 1024
            }
        );
    }

    #[test]
    fn seek_rejected_on_shared_pointer() {
        let (_, mut fs) = setup();
        let o = fs
            .open(1, "f", Access::Write, IoMode::SharedPointer, 0, false)
            .unwrap();
        assert_eq!(
            fs.seek(o.session, 0, 100),
            Err(CfsError::SeekOnSharedPointer { session: o.session })
        );
    }

    #[test]
    fn seek_then_read() {
        let (m, mut fs) = setup();
        let o = fs
            .open(1, "f", Access::ReadWrite, IoMode::Independent, 0, false)
            .unwrap();
        fs.write(&m, o.session, 0, 20_000, t0()).unwrap();
        fs.seek(o.session, 0, 8_192).unwrap();
        let r = fs.read(&m, o.session, 0, 4_096, t0()).unwrap();
        assert_eq!(r.offset, 8_192);
        assert_eq!(r.bytes, 4_096);
    }

    #[test]
    fn access_control_enforced() {
        let (m, mut fs) = setup();
        let o = fs
            .open(1, "f", Access::Write, IoMode::Independent, 0, false)
            .unwrap();
        assert!(matches!(
            fs.read(&m, o.session, 0, 10, t0()),
            Err(CfsError::AccessDenied { .. })
        ));
        fs.write(&m, o.session, 0, 100, t0()).unwrap();
        fs.close(o.session, 0).unwrap();
        let o2 = fs
            .open(1, "f", Access::Read, IoMode::Independent, 0, false)
            .unwrap();
        assert!(matches!(
            fs.write(&m, o2.session, 0, 10, t0()),
            Err(CfsError::AccessDenied { .. })
        ));
    }

    #[test]
    fn closing_last_node_ends_session() {
        let (_, mut fs) = setup();
        let o = fs
            .open(1, "f", Access::Write, IoMode::Independent, 0, false)
            .unwrap();
        fs.open(1, "f", Access::Write, IoMode::Independent, 1, false)
            .unwrap();
        fs.close(o.session, 0).unwrap();
        // Session still live for node 1.
        assert!(fs.tell(o.session, 1).is_ok());
        fs.close(o.session, 1).unwrap();
        assert_eq!(
            fs.tell(o.session, 1),
            Err(CfsError::NotOpen { session: o.session })
        );
        // Re-open starts a fresh session.
        let o2 = fs
            .open(1, "f", Access::Read, IoMode::Independent, 0, false)
            .unwrap();
        assert_ne!(o2.session, o.session);
    }

    #[test]
    fn double_attach_rejected() {
        let (_, mut fs) = setup();
        let o = fs
            .open(1, "f", Access::Write, IoMode::Independent, 0, false)
            .unwrap();
        assert_eq!(
            fs.open(1, "f", Access::Write, IoMode::Independent, 0, false),
            Err(CfsError::AlreadyAttached {
                session: o.session,
                node: 0
            })
        );
    }

    #[test]
    fn capacity_is_enforced() {
        let (m, mut fs) = setup(); // tiny: 2 x 8 MB = 16 MB
        let o = fs
            .open(1, "big", Access::Write, IoMode::Independent, 0, false)
            .unwrap();
        // Fill close to capacity in 1 MB writes.
        for _ in 0..16 {
            let r = fs.write(&m, o.session, 0, 1 << 20, t0());
            if r.is_err() {
                assert!(matches!(r, Err(CfsError::NoSpace { .. })));
                return;
            }
        }
        let err = fs.write(&m, o.session, 0, 1 << 20, t0()).unwrap_err();
        assert!(matches!(err, CfsError::NoSpace { .. }));
    }

    #[test]
    fn delete_frees_space_and_cache() {
        let (m, mut fs) = setup();
        let o = fs
            .open(1, "f", Access::Write, IoMode::Independent, 0, false)
            .unwrap();
        fs.write(&m, o.session, 0, 1 << 20, t0()).unwrap();
        fs.close(o.session, 0).unwrap();
        let used = fs.used_bytes();
        assert!(used >= 1 << 20);
        let file = o.file;
        fs.delete(file).unwrap();
        assert_eq!(fs.used_bytes(), 0);
        assert_eq!(fs.file_size(file), None);
        assert_eq!(fs.delete(file), Err(CfsError::NoSuchFile));
        // Path can be recreated; gets a fresh id.
        let o2 = fs
            .open(2, "f", Access::Write, IoMode::Independent, 0, false)
            .unwrap();
        assert!(o2.created);
        assert_ne!(o2.file, file);
    }

    #[test]
    fn cache_hits_on_rereads() {
        let (m, mut fs) = setup();
        let o = fs
            .open(1, "f", Access::Write, IoMode::Independent, 0, false)
            .unwrap();
        fs.write(&m, o.session, 0, 4096, t0()).unwrap();
        fs.close(o.session, 0).unwrap();
        let o2 = fs
            .open(1, "f", Access::Read, IoMode::Independent, 0, false)
            .unwrap();
        let r1 = fs.read(&m, o2.session, 0, 4096, t0()).unwrap();
        assert_eq!(r1.cache_hits, 1, "write left the block in cache");
        fs.seek(o2.session, 0, 0).unwrap();
        let r2 = fs.read(&m, o2.session, 0, 4096, t0()).unwrap();
        assert_eq!(r2.cache_hits, 1);
        assert!(
            r2.completion - t0() < Duration::from_millis(10),
            "cache hit is fast"
        );
    }

    #[test]
    fn large_request_engages_multiple_io_nodes() {
        let (m, mut fs) = setup(); // 2 I/O nodes
        let o = fs
            .open(1, "f", Access::Write, IoMode::Independent, 0, false)
            .unwrap();
        let w = fs.write(&m, o.session, 0, 16 * 4096, t0()).unwrap();
        assert_eq!(w.blocks, 16);
        assert_eq!(w.messages, 4, "one request+reply pair per I/O node");
    }

    #[test]
    fn small_requests_cost_nearly_as_much_as_block_requests() {
        // The paper's §4.3 observation about poor small-request performance.
        let (m, mut fs) = setup();
        let o = fs
            .open(1, "f", Access::Write, IoMode::Independent, 0, false)
            .unwrap();
        fs.write(&m, o.session, 0, 1 << 20, t0()).unwrap();
        fs.close(o.session, 0).unwrap();
        let o2 = fs
            .open(1, "f", Access::Read, IoMode::Independent, 0, false)
            .unwrap();
        // Cold cache for far-apart blocks: compare a 100-byte read and a
        // 4096-byte read, both missing cache.
        fs.seek(o2.session, 0, 100 * 4096).unwrap();
        let small = fs.read(&m, o2.session, 0, 100, t0()).unwrap();
        fs.seek(o2.session, 0, 200 * 4096).unwrap();
        let block = fs.read(&m, o2.session, 0, 4096, t0()).unwrap();
        let small_us = (small.completion - t0()).as_micros() as f64;
        let block_us = (block.completion - t0()).as_micros() as f64;
        assert!(
            block_us / small_us < 1.5,
            "40x the data for <1.5x the time: {small_us} vs {block_us}"
        );
    }

    #[test]
    fn stats_accumulate() {
        let (m, mut fs) = setup();
        let o = fs
            .open(1, "f", Access::ReadWrite, IoMode::Independent, 0, false)
            .unwrap();
        fs.write(&m, o.session, 0, 8192, t0()).unwrap();
        fs.seek(o.session, 0, 0).unwrap();
        fs.read(&m, o.session, 0, 8192, t0()).unwrap();
        let s = fs.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_read, 8192);
        assert_eq!(s.bytes_written, 8192);
        assert!(s.messages >= 4);
        assert_eq!(s.cache_hits, 2, "read hits the written blocks");
    }

    #[test]
    fn attached_metrics_mirror_request_activity() {
        let (m, mut fs) = setup();
        let registry = MetricsRegistry::new();
        fs.attach_metrics(CfsMetrics::register(&registry));
        let o = fs
            .open(1, "f", Access::ReadWrite, IoMode::Independent, 0, false)
            .unwrap();
        fs.write(&m, o.session, 0, 8192, t0()).unwrap();
        fs.seek(o.session, 0, 0).unwrap();
        fs.read(&m, o.session, 0, 8192, t0()).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["cfs.read_requests"], 1);
        assert_eq!(snap.counters["cfs.write_requests"], 1);
        assert_eq!(snap.counters["cfs.requests.mode0"], 2);
        assert_eq!(snap.counters["cfs.requests.mode1"], 0);
        // The read found both written blocks in cache; the write missed.
        assert_eq!(snap.counters["cfs.cache_hits"], 2);
        assert_eq!(snap.counters["cfs.cache_misses"], 2);
        // Each request engaged both tiny-config I/O nodes.
        assert_eq!(snap.histograms["cfs.stripe_fanout"].count, 2);
        assert_eq!(snap.histograms["cfs.stripe_fanout"].sum, 4);
        // Two write misses went to disk.
        assert_eq!(snap.histograms["cfs.disk_service_us"].count, 2);
        assert!(snap.histograms["cfs.disk_service_us"].sum > 0);
    }

    #[test]
    fn truncate_resets_existing_file() {
        let (m, mut fs) = setup();
        let o = fs
            .open(1, "f", Access::Write, IoMode::Independent, 0, false)
            .unwrap();
        fs.write(&m, o.session, 0, 50_000, t0()).unwrap();
        fs.close(o.session, 0).unwrap();
        let o2 = fs
            .open(2, "f", Access::Write, IoMode::Independent, 0, true)
            .unwrap();
        assert!(!o2.created, "truncate is not creation");
        assert_eq!(fs.file_size(o2.file), Some(0));
    }

    #[test]
    fn block_overlap_math() {
        assert_eq!(block_overlap(0, 4096, 0), 4096);
        assert_eq!(block_overlap(0, 100, 0), 100);
        assert_eq!(block_overlap(4000, 200, 0), 96);
        assert_eq!(block_overlap(4000, 200, 1), 104);
        assert_eq!(block_overlap(0, 100, 1), 0);
        assert_eq!(block_overlap(8192, 4096, 2), 4096);
    }
}
