//! A simulator of Intel's Concurrent File System (CFS), the parallel file
//! system of the iPSC/860.
//!
//! "Intel's Concurrent File System provides a Unix-like interface to the
//! user with the addition of four I/O modes to help the programmer
//! coordinate parallel access to files. ... CFS stripes each file across all
//! disks in 4 KB blocks. Compute nodes send requests directly to the
//! appropriate I/O node. Only the I/O nodes have a buffer cache."
//! (paper, section 2.4)
//!
//! Modules:
//!
//! * [`mode`] — the four CFS I/O modes and their coordination semantics;
//! * [`stripe`] — round-robin 4 KB block striping across I/O nodes;
//! * [`disk`] — a first-order disk service-time model;
//! * [`cache`] — block buffer caches (LRU, FIFO, and an
//!   interprocess-locality-aware policy, the paper's section 5 future-work
//!   item);
//! * [`fs`] — the file-system proper: open/read/write/seek/close/delete;
//! * [`strided`] — the paper's recommended strided-request interface, as an
//!   extension;
//! * [`collective`] — collective I/O, as an extension.

pub mod cache;
pub mod collective;
pub mod disk;
pub mod error;
pub mod faults;
pub mod fs;
pub mod mode;
pub mod strided;
pub mod stripe;

pub use cache::{BlockCache, BlockKey, FifoCache, IplCache, LruCache};
pub use collective::{CollectiveOutcome, CollectiveShare};
pub use disk::{DiskModel, DiskState};
pub use error::CfsError;
pub use faults::CfsFaults;
pub use fs::{Access, Cfs, CfsConfig, CfsMetrics, CfsStats, IoOutcome, OpenResult};
pub use mode::IoMode;
pub use strided::StridedSpec;
pub use stripe::Striping;

/// The CFS file-system block size: "CFS stripes each file across all disks
/// in 4 KB blocks."
pub const BLOCK_BYTES: u64 = 4096;
