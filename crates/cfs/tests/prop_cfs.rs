//! Property tests for CFS: cache invariants against a reference model,
//! striping coverage, and strided/loop equivalence.

use charisma_cfs::fs::block_overlap;
use charisma_cfs::{
    Access, BlockCache, Cfs, CfsConfig, FifoCache, IoMode, IplCache, LruCache, StridedSpec,
    Striping, BLOCK_BYTES,
};
use charisma_ipsc::{Machine, MachineConfig, SimTime};
use proptest::prelude::*;

/// A naive reference LRU: a Vec ordered most-recent-first.
struct RefLru {
    cap: usize,
    items: Vec<(u32, u64)>,
}

impl RefLru {
    fn access(&mut self, key: (u32, u64)) -> bool {
        if self.cap == 0 {
            return false;
        }
        if let Some(pos) = self.items.iter().position(|&k| k == key) {
            self.items.remove(pos);
            self.items.insert(0, key);
            true
        } else {
            self.items.insert(0, key);
            self.items.truncate(self.cap);
            false
        }
    }
}

proptest! {
    /// The O(1) LRU agrees with the naive reference on every access of
    /// arbitrary traces, including interleaved invalidations.
    #[test]
    fn lru_matches_reference_model(
        cap in 1usize..9,
        ops in proptest::collection::vec((0u64..24, any::<bool>()), 1..400),
    ) {
        let mut fast = LruCache::new(cap);
        let mut slow = RefLru { cap, items: Vec::new() };
        for (block, invalidate) in ops {
            let key = (1u32, block);
            if invalidate {
                fast.invalidate(key);
                slow.items.retain(|&k| k != key);
            } else {
                let a = fast.access(key, 1);
                let b = slow.access(key);
                prop_assert_eq!(a, b, "divergence on block {}", block);
            }
            prop_assert_eq!(fast.len(), slow.items.len());
            prop_assert!(fast.len() <= cap);
        }
    }

    /// All three policies respect capacity and report `contains`
    /// consistently with `access` hits on arbitrary traces.
    #[test]
    fn caches_respect_capacity(
        cap in 0usize..16,
        blocks in proptest::collection::vec(0u64..64, 1..300),
    ) {
        let mut caches: Vec<Box<dyn BlockCache>> = vec![
            Box::new(LruCache::new(cap)),
            Box::new(FifoCache::new(cap)),
            Box::new(IplCache::new(cap, BLOCK_BYTES)),
        ];
        for &b in &blocks {
            for c in caches.iter_mut() {
                let key = (0u32, b);
                let was_resident = c.contains(key);
                let hit = c.access(key, 512);
                prop_assert_eq!(hit, was_resident, "hit must equal prior residency");
                if cap > 0 {
                    prop_assert!(c.contains(key), "accessed block becomes resident");
                }
                prop_assert!(c.len() <= cap);
            }
        }
    }

    /// Striping: every block belongs to exactly one I/O node, blocks of a
    /// request are contiguous, and per-block overlaps sum to the request
    /// length.
    #[test]
    fn striping_partitions_requests(
        io_nodes in 1usize..21,
        offset in 0u64..10_000_000,
        bytes in 0u64..2_000_000,
    ) {
        let s = Striping::cfs(io_nodes);
        let range = s.blocks_of_request(offset, bytes);
        let mut total = 0u64;
        for b in range.clone() {
            prop_assert!(s.io_node_of(b) < io_nodes);
            total += u64::from(block_overlap(offset, bytes, b));
        }
        prop_assert_eq!(total, bytes, "overlaps must cover the request exactly");
        if bytes > 0 {
            prop_assert_eq!(range.start, offset / BLOCK_BYTES);
            prop_assert_eq!(range.end, (offset + bytes - 1) / BLOCK_BYTES + 1);
        }
    }

    /// A strided read transfers exactly the same bytes as the equivalent
    /// loop of small reads, for arbitrary pattern shapes.
    #[test]
    fn strided_equals_loop(
        record in 1u32..5000,
        extra_stride in 0u64..9000,
        count in 0u32..60,
        file_kb in 1u64..600,
    ) {
        let machine = Machine::boot_synchronized(MachineConfig::tiny());
        let t0 = SimTime::from_secs(1);
        let size = file_kb * 1024;
        // Fresh file system per arm so one arm's cache warmth cannot leak
        // into the other's timing.
        let stage = |cfs: &mut Cfs| {
            let o = cfs
                .open(1, "f", Access::Write, IoMode::Independent, 0, false)
                .unwrap();
            let mut done = 0;
            while done < size {
                let chunk = (size - done).min(1 << 20) as u32;
                cfs.write(&machine, o.session, 0, chunk, t0).unwrap();
                done += u64::from(chunk);
            }
            cfs.close(o.session, 0).unwrap();
        };

        let spec = StridedSpec {
            start: 128,
            record_bytes: record,
            stride: u64::from(record) + extra_stride,
            count,
        };
        let mut cfs_a = Cfs::new(CfsConfig::tiny());
        stage(&mut cfs_a);
        let o1 = cfs_a.open(2, "f", Access::Read, IoMode::Independent, 0, false).unwrap();
        let strided = cfs_a.read_strided(&machine, o1.session, 0, spec, t0).unwrap();
        cfs_a.close(o1.session, 0).unwrap();

        let mut cfs_b = Cfs::new(CfsConfig::tiny());
        stage(&mut cfs_b);
        let o2 = cfs_b.open(2, "f", Access::Read, IoMode::Independent, 0, false).unwrap();
        let looped = cfs_b.strided_as_loop(&machine, o2.session, 0, spec, t0, false).unwrap();
        cfs_b.close(o2.session, 0).unwrap();

        prop_assert_eq!(strided.bytes, looped.bytes);
        prop_assert!(strided.messages <= looped.messages);
        prop_assert!(strided.completion <= looped.completion,
            "one request can never be slower than the loop");
    }

    /// Random mode-0 write/seek sequences keep `tell` consistent with the
    /// sum of writes, and never corrupt capacity accounting.
    #[test]
    fn pointers_track_writes(ops in proptest::collection::vec((0u32..50_000, any::<bool>()), 1..60)) {
        let machine = Machine::boot_synchronized(MachineConfig::tiny());
        let mut cfs = Cfs::new(CfsConfig::tiny());
        let t0 = SimTime::from_secs(1);
        let o = cfs.open(1, "w", Access::Write, IoMode::Independent, 0, false).unwrap();
        let mut pointer = 0u64;
        let mut max_end = 0u64;
        for (bytes, do_seek) in ops {
            if do_seek {
                pointer /= 2;
                cfs.seek(o.session, 0, pointer).unwrap();
            }
            match cfs.write(&machine, o.session, 0, bytes, t0) {
                Ok(out) => {
                    prop_assert_eq!(out.offset, pointer);
                    pointer += u64::from(bytes);
                    max_end = max_end.max(pointer);
                }
                Err(charisma_cfs::CfsError::NoSpace { .. }) => break,
                Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
            }
            prop_assert_eq!(cfs.tell(o.session, 0).unwrap(), pointer);
            prop_assert_eq!(cfs.file_size(o.file), Some(max_end));
        }
    }
}
