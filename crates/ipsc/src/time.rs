//! Simulated time.
//!
//! All simulation time is kept in integer microseconds. The traced period in
//! the paper was about 156 hours, which is ~5.6e11 microseconds — far inside
//! `u64` range. Integer ticks keep the discrete-event engine exactly
//! deterministic across runs and platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant of simulated time, in microseconds since machine boot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// The machine-boot instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600_000_000)
    }

    /// This instant as microseconds since boot.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as (fractional) seconds since boot.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest microsecond.
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s * 1e6).round().max(0.0) as u64)
    }

    /// This span as microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span as (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scale this span by an integer factor.
    pub const fn times(self, n: u64) -> Duration {
        Duration(self.0 * n)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_hours(1), SimTime::from_secs(3600));
        assert_eq!(Duration::from_secs(2), Duration::from_millis(2000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = Duration::from_secs(5);
        assert_eq!(t + d, SimTime::from_secs(15));
        assert_eq!((t + d) - t, d);
        assert_eq!(d + d, Duration::from_secs(10));
        assert_eq!(d - Duration::from_secs(3), Duration::from_secs(2));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.since(b), Duration::ZERO);
        assert_eq!(b.since(a), Duration::from_secs(1));
    }

    #[test]
    fn float_conversions() {
        assert_eq!(Duration::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(Duration::from_secs_f64(-3.0), Duration::ZERO);
        assert!((SimTime::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_trace_period_fits() {
        // 156 hours of tracing must be representable with slack.
        let period = SimTime::from_hours(156);
        assert!(period.as_micros() < u64::MAX / 1000);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000000s");
        assert_eq!(format!("{:?}", Duration::from_micros(7)), "7us");
    }
}
