//! Discrete-event simulator of the Intel iPSC/860 multiprocessor.
//!
//! The iPSC/860 traced by the CHARISMA project (Kotz & Nieuwejaar, SC '94)
//! was a distributed-memory, message-passing MIMD machine: 128 compute nodes
//! (Intel i860, 8 MB each) connected by a 7-dimensional hypercube, 10 I/O
//! nodes (Intel i386, 4 MB, one 760 MB SCSI disk each) each attached to a
//! single compute node rather than to the hypercube directly, and one
//! service node with the Ethernet connection to the host.
//!
//! This crate models the pieces of that machine that shaped the traced
//! workload:
//!
//! * [`topology`] — the hypercube interconnect and e-cube routing;
//! * [`alloc`] — subcube (buddy) allocation of compute nodes, which is why
//!   jobs only ever use a power-of-two number of nodes (paper, Figure 2);
//! * [`clock`] — per-node clocks that are synchronized at boot and then
//!   drift, which is why the paper's global event ordering is approximate;
//! * [`message`] — message packetization into 4 KB packets and a simple
//!   latency model;
//! * [`engine`] — a generic discrete-event queue used to interleave the
//!   per-node programs of concurrently running jobs;
//! * [`machine`] — the machine configuration tying it all together;
//! * [`faults`] — deterministic chaos: a seeded [`FaultPlan`] injecting
//!   disk errors, message delay/drop/duplication, I/O-node stalls, and
//!   clock jumps, with outcomes independent of worker count.

pub mod alloc;
pub mod clock;
pub mod engine;
pub mod faults;
pub mod invariant;
pub mod machine;
pub mod message;
pub mod time;
pub mod topology;

pub use alloc::SubcubeAllocator;
pub use clock::DriftClock;
pub use engine::{EventQueue, QueueMetrics};
pub use faults::{FaultMetrics, FaultPlan, FaultRng, IoNodeDown, NetFaultState, RetryPolicy};
pub use machine::{IoNodeId, Machine, MachineConfig, MachineMetrics, NodeId};
pub use message::{Message, NetworkModel, PACKET_BYTES};
pub use time::{Duration, SimTime};
pub use topology::Hypercube;
