//! The hypercube interconnect.
//!
//! iPSC/860 compute nodes are connected as a binary d-cube: node addresses
//! are d-bit strings and two nodes are neighbors iff their addresses differ
//! in exactly one bit. Messages are routed with the deterministic *e-cube*
//! algorithm: correct the differing address bits in ascending dimension
//! order. The NAS machine had 128 compute nodes (d = 7).

/// A binary hypercube of dimension `dim` with `2^dim` nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// Create a hypercube of the given dimension (max 30).
    ///
    /// # Panics
    /// Panics if `dim > 30`.
    pub fn new(dim: u32) -> Self {
        assert!(dim <= 30, "hypercube dimension {dim} is unreasonably large");
        Hypercube { dim }
    }

    /// The smallest hypercube holding at least `n` nodes.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn with_at_least(n: usize) -> Self {
        assert!(n > 0, "cannot build an empty hypercube");
        Hypercube::new((n - 1).max(1).ilog2() + u32::from(n > 1))
    }

    /// The cube dimension.
    pub fn dim(self) -> u32 {
        self.dim
    }

    /// Number of nodes, `2^dim`.
    pub fn nodes(self) -> usize {
        1usize << self.dim
    }

    /// Whether `node` is a valid address in this cube.
    pub fn contains(self, node: usize) -> bool {
        node < self.nodes()
    }

    /// The neighbor of `node` across dimension `d`.
    ///
    /// # Panics
    /// Panics if `node` or `d` is out of range.
    pub fn neighbor(self, node: usize, d: u32) -> usize {
        assert!(self.contains(node), "node {node} outside cube");
        assert!(d < self.dim, "dimension {d} outside cube");
        node ^ (1 << d)
    }

    /// All neighbors of `node`, in ascending dimension order.
    pub fn neighbors(self, node: usize) -> impl Iterator<Item = usize> {
        assert!(self.contains(node), "node {node} outside cube");
        (0..self.dim).map(move |d| node ^ (1 << d))
    }

    /// Hop distance between two nodes (Hamming distance of the addresses).
    pub fn distance(self, a: usize, b: usize) -> u32 {
        assert!(self.contains(a) && self.contains(b), "node outside cube");
        ((a ^ b) as u32).count_ones()
    }

    /// The e-cube route from `src` to `dst`, inclusive of both endpoints.
    ///
    /// Dimensions are corrected in ascending order, so the route is unique
    /// and deterministic — as on the real machine's wormhole router.
    pub fn ecube_route(self, src: usize, dst: usize) -> Vec<usize> {
        assert!(
            self.contains(src) && self.contains(dst),
            "node outside cube"
        );
        let mut route = Vec::with_capacity(self.distance(src, dst) as usize + 1);
        let mut cur = src;
        route.push(cur);
        let diff = src ^ dst;
        for d in 0..self.dim {
            if diff & (1 << d) != 0 {
                cur ^= 1 << d;
                route.push(cur);
            }
        }
        route
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Hypercube::new(0).nodes(), 1);
        assert_eq!(Hypercube::new(7).nodes(), 128);
    }

    #[test]
    fn with_at_least_rounds_up() {
        assert_eq!(Hypercube::with_at_least(1).dim(), 0);
        assert_eq!(Hypercube::with_at_least(2).dim(), 1);
        assert_eq!(Hypercube::with_at_least(3).dim(), 2);
        assert_eq!(Hypercube::with_at_least(128).dim(), 7);
        assert_eq!(Hypercube::with_at_least(129).dim(), 8);
    }

    #[test]
    fn neighbor_is_involution() {
        let h = Hypercube::new(5);
        for node in 0..h.nodes() {
            for d in 0..h.dim() {
                let n = h.neighbor(node, d);
                assert_eq!(h.neighbor(n, d), node);
                assert_eq!(h.distance(node, n), 1);
            }
        }
    }

    #[test]
    fn neighbors_count() {
        let h = Hypercube::new(7);
        assert_eq!(h.neighbors(0).count(), 7);
        assert_eq!(h.neighbors(93).count(), 7);
    }

    #[test]
    fn distance_is_metric() {
        let h = Hypercube::new(6);
        for &(a, b, c) in &[(0, 63, 21), (5, 5, 9), (1, 2, 3)] {
            assert_eq!(h.distance(a, b), h.distance(b, a));
            assert!(h.distance(a, c) <= h.distance(a, b) + h.distance(b, c));
        }
        assert_eq!(h.distance(9, 9), 0);
        assert_eq!(h.distance(0, 63), 6);
    }

    #[test]
    fn ecube_route_properties() {
        let h = Hypercube::new(7);
        for &(src, dst) in &[(0, 127), (5, 5), (3, 96), (127, 0), (64, 65)] {
            let route = h.ecube_route(src, dst);
            assert_eq!(*route.first().unwrap(), src);
            assert_eq!(*route.last().unwrap(), dst);
            assert_eq!(route.len() as u32, h.distance(src, dst) + 1);
            for pair in route.windows(2) {
                assert_eq!(h.distance(pair[0], pair[1]), 1, "hops are edges");
            }
        }
    }

    #[test]
    fn ecube_route_is_deterministic_ascending() {
        let h = Hypercube::new(3);
        // 000 -> 111 must fix bit 0, then 1, then 2.
        assert_eq!(h.ecube_route(0, 7), vec![0, 1, 3, 7]);
    }

    #[test]
    #[should_panic(expected = "outside cube")]
    fn rejects_foreign_nodes() {
        Hypercube::new(2).distance(0, 4);
    }
}
