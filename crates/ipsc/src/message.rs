//! Message passing and packetization.
//!
//! "Since large messages on the iPSC are broken into 4 KB blocks …"
//! (paper §3.1). Every message larger than one packet pays the per-packet
//! overhead again, which is one of the reasons the tracing instrumentation
//! buffered event records into 4 KB blocks before sending them, and one of
//! the costs the paper's recommended strided interface would avoid.

use crate::time::Duration;

/// The iPSC packet size: large messages are split into blocks of this size.
pub const PACKET_BYTES: u64 = 4096;

/// A message between two nodes of the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Message {
    /// Source compute-node address.
    pub src: usize,
    /// Destination compute-node address.
    pub dst: usize,
    /// Payload length in bytes.
    pub bytes: u64,
}

impl Message {
    /// Number of 4 KB packets this message occupies (minimum 1: even an
    /// empty message sends a header packet).
    pub fn packets(&self) -> u64 {
        self.bytes.div_ceil(PACKET_BYTES).max(1)
    }
}

/// First-order latency model for the hypercube network.
///
/// Latency of a message over `h` hops:
/// `startup + h * per_hop + packets * per_packet + bytes * per_byte`.
///
/// Defaults approximate published iPSC/860 measurements: ~75 µs software
/// startup, ~11 µs per hop for the wormhole router, and ~2.8 MB/s per-link
/// sustained bandwidth (~0.36 µs/byte).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// Fixed software send/receive overhead per message, µs.
    pub startup_us: f64,
    /// Added latency per network hop, µs.
    pub per_hop_us: f64,
    /// Added overhead per 4 KB packet, µs.
    pub per_packet_us: f64,
    /// Transfer time per payload byte, µs.
    pub per_byte_us: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            startup_us: 75.0,
            per_hop_us: 11.0,
            per_packet_us: 15.0,
            per_byte_us: 0.36,
        }
    }
}

impl NetworkModel {
    /// End-to-end latency of `msg` over `hops` network hops.
    pub fn latency(&self, msg: &Message, hops: u32) -> Duration {
        let us = self.startup_us
            + self.per_hop_us * f64::from(hops)
            + self.per_packet_us * msg.packets() as f64
            + self.per_byte_us * msg.bytes as f64;
        Duration::from_micros(us.round().max(1.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_counts() {
        let m = |bytes| Message {
            src: 0,
            dst: 1,
            bytes,
        };
        assert_eq!(m(0).packets(), 1);
        assert_eq!(m(1).packets(), 1);
        assert_eq!(m(4096).packets(), 1);
        assert_eq!(m(4097).packets(), 2);
        assert_eq!(m(1 << 20).packets(), 256);
    }

    #[test]
    fn latency_monotone_in_size_and_hops() {
        let net = NetworkModel::default();
        let small = Message {
            src: 0,
            dst: 1,
            bytes: 100,
        };
        let big = Message {
            src: 0,
            dst: 1,
            bytes: 100_000,
        };
        assert!(net.latency(&small, 1) < net.latency(&big, 1));
        assert!(net.latency(&small, 1) < net.latency(&small, 7));
    }

    #[test]
    fn small_messages_dominated_by_startup() {
        // The paper's observation: small requests perform poorly because
        // per-message overhead dominates. An 80-byte request should cost
        // nearly as much as a 4000-byte one.
        let net = NetworkModel::default();
        let tiny = net.latency(
            &Message {
                src: 0,
                dst: 1,
                bytes: 80,
            },
            3,
        );
        let block = net.latency(
            &Message {
                src: 0,
                dst: 1,
                bytes: 4000,
            },
            3,
        );
        let ratio = block.as_micros() as f64 / tiny.as_micros() as f64;
        assert!(ratio < 15.0, "50x more data must cost < 15x: ratio {ratio}");
    }

    #[test]
    fn latency_is_at_least_one_microsecond() {
        let net = NetworkModel {
            startup_us: 0.0,
            per_hop_us: 0.0,
            per_packet_us: 0.0,
            per_byte_us: 0.0,
        };
        let m = Message {
            src: 0,
            dst: 0,
            bytes: 0,
        };
        assert_eq!(net.latency(&m, 0), Duration::from_micros(1));
    }
}
