//! Deterministic fault injection: seeded plans, stateless decisions.
//!
//! The machine the paper traced was real hardware: I/O nodes stalled,
//! disks returned transient errors, messages were delayed, and node
//! clocks occasionally jumped when an operator intervened. The simulator
//! models the happy path by default; this module adds a *chaos layer*
//! that perturbs it — without ever giving up determinism.
//!
//! Every fault decision is a pure function of a [`FaultPlan`] seed and
//! the *stable identity* of the thing being perturbed (I/O node, file,
//! block, message endpoints, attempt number), hashed through splitmix64.
//! No draw consumes state from a shared stream, so outcomes are
//! independent of evaluation order and therefore of worker count: a
//! serial run and a 16-way sharded run inject exactly the same faults.
//! This is also why faults draw from a dedicated RNG and not the
//! workload RNG — see `DESIGN.md`.

use core::sync::atomic::{AtomicU64, Ordering};

use charisma_obs::{Counter, Histogram, MetricsRegistry};

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mixing
/// function. Same constants as `workload::shard::derive_shard_seed`.
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mix a plan seed with a per-shard generator seed so shards stay
/// decorrelated while each shard's fate is still fixed for every worker
/// count (shard seeds themselves never depend on worker count).
pub fn mix_seed(plan_seed: u64, shard_seed: u64) -> u64 {
    splitmix64(plan_seed ^ shard_seed.rotate_left(32))
}

/// Domain separators so different fault kinds keyed on the same identity
/// draw independent values.
pub mod domain {
    pub const DISK_FATE: u64 = 0x01;
    pub const DISK_FAILS: u64 = 0x02;
    pub const BACKOFF: u64 = 0x03;
    pub const STALL: u64 = 0x04;
    pub const MSG_DROP: u64 = 0x05;
    pub const MSG_DELAY: u64 = 0x06;
    pub const MSG_DELAY_AMOUNT: u64 = 0x07;
    pub const MSG_DUP: u64 = 0x08;
    pub const CLOCK_FATE: u64 = 0x09;
    pub const CLOCK_AT: u64 = 0x0a;
    pub const CLOCK_DELTA: u64 = 0x0b;
}

/// A stateless fault RNG: decisions are hashes, not draws.
///
/// `decide(domain, ids)` folds the domain separator and each identity
/// component through [`splitmix64`]; equal inputs always produce equal
/// outputs, and no call perturbs any other call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRng {
    seed: u64,
}

impl FaultRng {
    pub fn new(seed: u64) -> Self {
        FaultRng { seed }
    }

    /// A 64-bit value determined by `(seed, domain, ids)` alone.
    pub fn decide(&self, domain: u64, ids: &[u64]) -> u64 {
        let mut h = splitmix64(self.seed ^ domain.wrapping_mul(0xff51_afd7_ed55_8ccd));
        for &id in ids {
            h = splitmix64(h ^ id);
        }
        h
    }

    /// True with probability `ppm` parts-per-million.
    pub fn chance(&self, ppm: u32, domain: u64, ids: &[u64]) -> bool {
        ppm > 0 && self.decide(domain, ids) % 1_000_000 < u64::from(ppm)
    }

    /// A value in `0..=max`, determined by `(seed, domain, ids)`.
    pub fn bounded(&self, max: u64, domain: u64, ids: &[u64]) -> u64 {
        if max == 0 {
            0
        } else {
            self.decide(domain, ids) % (max + 1)
        }
    }
}

/// Retry policy for faulted CFS requests: capped exponential backoff
/// with deterministic jitter, plus an optional per-request timeout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries before a transient fault is treated as permanent.
    pub max_retries: u32,
    /// First backoff, µs. Doubles per attempt.
    pub base_backoff_us: u64,
    /// Upper bound on any single backoff, µs.
    pub backoff_cap_us: u64,
    /// Per-request timeout, µs; `0` disables the timeout.
    pub timeout_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_us: 1_000,
            backoff_cap_us: 64_000,
            timeout_us: 0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (0-based) of request `request_id`.
    ///
    /// The schedule is `exp/2 + jitter` where `exp = min(base << attempt,
    /// cap)` and the jitter is a deterministic hash of `(seed,
    /// request_id, attempt)` in `0..=exp/2` — so every backoff is in
    /// `[exp/2, exp]` and never exceeds `backoff_cap_us`.
    pub fn backoff_us(&self, rng: &FaultRng, request_id: u64, attempt: u32) -> u64 {
        let exp = self
            .base_backoff_us
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .clamp(1, self.backoff_cap_us.max(1));
        let half = exp / 2;
        let jitter = rng.bounded(
            exp - half,
            domain::BACKOFF,
            &[request_id, u64::from(attempt)],
        );
        half + jitter
    }
}

/// An I/O node scheduled to go down at a point in simulated time (and
/// stay down: the NAS operators swapped hardware between trace weeks,
/// not mid-trace).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoNodeDown {
    /// Which I/O node fails.
    pub io_node: u32,
    /// True simulation time of the failure, µs.
    pub at_us: u64,
}

/// A seeded, serializable description of every fault the chaos layer
/// will inject. All rates are parts-per-million; a default-constructed
/// plan (or [`FaultPlan::none`]) injects nothing, and the pipeline
/// proves that an empty plan is byte-identical to no plan at all.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Root seed of the dedicated fault RNG stream.
    pub seed: u64,
    /// Probability that a (disk, file, block) address is flaky, ppm.
    pub disk_transient_ppm: u32,
    /// Disk service-time inflation, ppm (250 000 = 25 % slower).
    pub disk_degrade_ppm: u32,
    /// I/O nodes that fail permanently mid-run.
    pub io_node_down: Vec<IoNodeDown>,
    /// Probability an I/O node stalls on a request, ppm.
    pub io_stall_ppm: u32,
    /// Length of one stall, µs.
    pub io_stall_us: u64,
    /// Message delay probability, ppm.
    pub msg_delay_ppm: u32,
    /// Maximum injected message delay, µs.
    pub msg_delay_max_us: u64,
    /// Message drop probability, ppm (dropped packets are retransmitted;
    /// the cost is latency, not loss).
    pub msg_drop_ppm: u32,
    /// Message duplication probability, ppm (duplicates cost congestion).
    pub msg_dup_ppm: u32,
    /// Probability a node's clock jumps forward once, ppm.
    pub clock_jump_ppm: u32,
    /// Maximum clock jump, µs.
    pub clock_jump_max_us: u64,
    /// Retry/backoff/timeout policy for faulted CFS requests.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// A plan that injects nothing. Attaching it is a no-op.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan can never inject a fault or alter a latency.
    pub fn is_empty(&self) -> bool {
        self.disk_transient_ppm == 0
            && self.disk_degrade_ppm == 0
            && self.io_node_down.is_empty()
            && self.io_stall_ppm == 0
            && self.msg_delay_ppm == 0
            && self.msg_drop_ppm == 0
            && self.msg_dup_ppm == 0
            && self.clock_jump_ppm == 0
            && self.retry.timeout_us == 0
    }

    /// The canonical chaos fixture: every fault class enabled at rates
    /// that exercise retry, failover, and timeout paths without drowning
    /// the workload. `charisma-verify chaos` pins this plan (and its
    /// metrics) as checked-in fixtures.
    pub fn chaos_fixture() -> Self {
        FaultPlan {
            seed: 0xC7A0_5C7A,
            disk_transient_ppm: 20_000,
            disk_degrade_ppm: 250_000,
            io_node_down: vec![IoNodeDown {
                io_node: 7,
                at_us: 3_600_000_000,
            }],
            io_stall_ppm: 5_000,
            io_stall_us: 50_000,
            msg_delay_ppm: 10_000,
            msg_delay_max_us: 2_000,
            msg_drop_ppm: 2_000,
            msg_dup_ppm: 5_000,
            clock_jump_ppm: 150_000,
            clock_jump_max_us: 2_000_000,
            retry: RetryPolicy {
                max_retries: 3,
                base_backoff_us: 1_000,
                backoff_cap_us: 32_000,
                timeout_us: 60_000_000,
            },
        }
    }

    /// Serialize to the plan text format (`key = value` lines; see
    /// [`FaultPlan::parse`]). Round-trips through `parse` exactly.
    pub fn encode(&self) -> String {
        let mut out = String::from("# charisma fault plan v1\n");
        let mut kv = |k: &str, v: u64| {
            out.push_str(k);
            out.push_str(" = ");
            out.push_str(&v.to_string());
            out.push('\n');
        };
        kv("seed", self.seed);
        kv("disk_transient_ppm", u64::from(self.disk_transient_ppm));
        kv("disk_degrade_ppm", u64::from(self.disk_degrade_ppm));
        kv("io_stall_ppm", u64::from(self.io_stall_ppm));
        kv("io_stall_us", self.io_stall_us);
        kv("msg_delay_ppm", u64::from(self.msg_delay_ppm));
        kv("msg_delay_max_us", self.msg_delay_max_us);
        kv("msg_drop_ppm", u64::from(self.msg_drop_ppm));
        kv("msg_dup_ppm", u64::from(self.msg_dup_ppm));
        kv("clock_jump_ppm", u64::from(self.clock_jump_ppm));
        kv("clock_jump_max_us", self.clock_jump_max_us);
        kv("retry_max", u64::from(self.retry.max_retries));
        kv("retry_base_us", self.retry.base_backoff_us);
        kv("retry_cap_us", self.retry.backoff_cap_us);
        kv("timeout_us", self.retry.timeout_us);
        if !self.io_node_down.is_empty() {
            let downs: Vec<String> = self
                .io_node_down
                .iter()
                .map(|d| format!("{}@{}", d.io_node, d.at_us))
                .collect();
            out.push_str("io_node_down = ");
            out.push_str(&downs.join(", "));
            out.push('\n');
        }
        out
    }

    /// Parse the plan text format: one `key = value` per line, `#`
    /// comments and blank lines ignored, `io_node_down` a comma-separated
    /// list of `node@at_us` entries. Unknown keys are errors so a typo in
    /// a chaos config cannot silently disable a fault.
    pub fn parse(text: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut plan = FaultPlan::none();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(FaultPlanError::MissingSeparator {
                    line: lineno + 1,
                    text: line.to_string(),
                });
            };
            let (key, value) = (key.trim(), value.trim());
            let bad = |_| FaultPlanError::BadValue {
                key: key.to_string(),
                value: value.to_string(),
            };
            match key {
                "seed" => plan.seed = value.parse().map_err(bad)?,
                "disk_transient_ppm" => plan.disk_transient_ppm = value.parse().map_err(bad)?,
                "disk_degrade_ppm" => plan.disk_degrade_ppm = value.parse().map_err(bad)?,
                "io_stall_ppm" => plan.io_stall_ppm = value.parse().map_err(bad)?,
                "io_stall_us" => plan.io_stall_us = value.parse().map_err(bad)?,
                "msg_delay_ppm" => plan.msg_delay_ppm = value.parse().map_err(bad)?,
                "msg_delay_max_us" => plan.msg_delay_max_us = value.parse().map_err(bad)?,
                "msg_drop_ppm" => plan.msg_drop_ppm = value.parse().map_err(bad)?,
                "msg_dup_ppm" => plan.msg_dup_ppm = value.parse().map_err(bad)?,
                "clock_jump_ppm" => plan.clock_jump_ppm = value.parse().map_err(bad)?,
                "clock_jump_max_us" => plan.clock_jump_max_us = value.parse().map_err(bad)?,
                "retry_max" => plan.retry.max_retries = value.parse().map_err(bad)?,
                "retry_base_us" => plan.retry.base_backoff_us = value.parse().map_err(bad)?,
                "retry_cap_us" => plan.retry.backoff_cap_us = value.parse().map_err(bad)?,
                "timeout_us" => plan.retry.timeout_us = value.parse().map_err(bad)?,
                "io_node_down" => {
                    for entry in value.split(',') {
                        let entry = entry.trim();
                        if entry.is_empty() {
                            continue;
                        }
                        let Some((node, at)) = entry.split_once('@') else {
                            return Err(FaultPlanError::BadValue {
                                key: key.to_string(),
                                value: entry.to_string(),
                            });
                        };
                        plan.io_node_down.push(IoNodeDown {
                            io_node: node.trim().parse().map_err(|_| FaultPlanError::BadValue {
                                key: key.to_string(),
                                value: entry.to_string(),
                            })?,
                            at_us: at.trim().parse().map_err(|_| FaultPlanError::BadValue {
                                key: key.to_string(),
                                value: entry.to_string(),
                            })?,
                        });
                    }
                }
                _ => {
                    return Err(FaultPlanError::UnknownKey {
                        key: key.to_string(),
                    })
                }
            }
        }
        Ok(plan)
    }
}

/// Error parsing a [`FaultPlan`] text file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A non-comment line had no `=`.
    MissingSeparator { line: usize, text: String },
    /// A value failed to parse for its key.
    BadValue { key: String, value: String },
    /// A key the format does not define (typo protection).
    UnknownKey { key: String },
}

impl core::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultPlanError::MissingSeparator { line, text } => {
                write!(f, "fault plan line {line}: no `=` in {text:?}")
            }
            FaultPlanError::BadValue { key, value } => {
                write!(f, "fault plan key {key}: bad value {value:?}")
            }
            FaultPlanError::UnknownKey { key } => {
                write!(f, "fault plan: unknown key {key:?}")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Metric handles for the chaos layer, registered under the `faults.`
/// prefix. Only registered when a non-empty plan is attached, so a
/// fault-free run's metrics snapshot carries no `faults.*` keys at all.
#[derive(Clone, Debug, Default)]
pub struct FaultMetrics {
    /// Every injected fault event, all classes.
    pub injected: Counter,
    /// Flaky (disk, file, block) reads encountered.
    pub disk_transient: Counter,
    /// Backoff-then-retry cycles performed.
    pub retried: Counter,
    /// Requests that exceeded the per-request timeout.
    pub timed_out: Counter,
    /// Requests served degraded (read-around / stripe failover).
    pub degraded: Counter,
    /// Messages delayed in flight.
    pub msg_delayed: Counter,
    /// Messages dropped (and retransmitted).
    pub msg_dropped: Counter,
    /// Messages duplicated.
    pub msg_duplicated: Counter,
    /// I/O-node request stalls.
    pub io_stalls: Counter,
    /// Clocks that jumped.
    pub clock_jumps: Counter,
    /// Distribution of retry backoffs, µs.
    pub backoff_us: Histogram,
    /// Distribution of injected message delays, µs.
    pub msg_delay_us: Histogram,
}

impl FaultMetrics {
    /// Handles registered under the `faults.` prefix of `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        FaultMetrics {
            injected: registry.counter("faults.injected"),
            disk_transient: registry.counter("faults.disk_transient"),
            retried: registry.counter("faults.retried"),
            timed_out: registry.counter("faults.timed_out"),
            degraded: registry.counter("faults.degraded"),
            msg_delayed: registry.counter("faults.msg_delayed"),
            msg_dropped: registry.counter("faults.msg_dropped"),
            msg_duplicated: registry.counter("faults.msg_duplicated"),
            io_stalls: registry.counter("faults.io_stalls"),
            clock_jumps: registry.counter("faults.clock_jumps"),
            backoff_us: registry.histogram("faults.backoff_us"),
            msg_delay_us: registry.histogram("faults.msg_delay_us"),
        }
    }
}

/// Network fault state attached to a [`crate::Machine`]: message delay,
/// drop (modeled as retransmit latency), and duplication (modeled as
/// congestion).
///
/// Messages have no stable identity of their own, so each latency query
/// takes a sequence number from an atomic counter. The counter is the
/// only stateful piece of the chaos layer — it is per-`Machine`, and
/// each shard owns its machine, so the sequence (and thus every
/// decision) is still independent of worker count.
#[derive(Debug)]
pub struct NetFaultState {
    rng: FaultRng,
    delay_ppm: u32,
    delay_max_us: u64,
    drop_ppm: u32,
    dup_ppm: u32,
    retransmit_us: u64,
    metrics: Option<FaultMetrics>,
    seq: AtomicU64,
}

/// Congestion cost of a duplicated message, µs.
const DUP_CONGESTION_US: u64 = 20;

impl Clone for NetFaultState {
    fn clone(&self) -> Self {
        NetFaultState {
            rng: self.rng,
            delay_ppm: self.delay_ppm,
            delay_max_us: self.delay_max_us,
            drop_ppm: self.drop_ppm,
            dup_ppm: self.dup_ppm,
            retransmit_us: self.retransmit_us,
            metrics: self.metrics.clone(),
            seq: AtomicU64::new(self.seq.load(Ordering::Relaxed)),
        }
    }
}

impl NetFaultState {
    /// Build from a plan. `fault_seed` is the already-mixed per-shard
    /// seed (see [`mix_seed`]).
    pub fn new(plan: &FaultPlan, fault_seed: u64, metrics: Option<FaultMetrics>) -> Self {
        NetFaultState {
            rng: FaultRng::new(fault_seed),
            delay_ppm: plan.msg_delay_ppm,
            delay_max_us: plan.msg_delay_max_us,
            drop_ppm: plan.msg_drop_ppm,
            dup_ppm: plan.msg_dup_ppm,
            // A dropped message costs one retransmission round trip,
            // derived from the retry policy's base backoff.
            retransmit_us: plan.retry.base_backoff_us.max(100) * 4,
            metrics,
            seq: AtomicU64::new(0),
        }
    }

    /// Extra latency injected into the message `(src, dst, bytes)`, µs.
    /// Consumes one sequence number per call.
    pub fn message_extra_us(&self, src: u64, dst: u64, bytes: u64) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ids = [src, dst, bytes, seq];
        let mut extra = 0;
        if self.rng.chance(self.drop_ppm, domain::MSG_DROP, &ids) {
            extra += self.retransmit_us;
            if let Some(m) = &self.metrics {
                m.msg_dropped.inc();
                m.injected.inc();
            }
        }
        if self.rng.chance(self.delay_ppm, domain::MSG_DELAY, &ids) {
            let d = self
                .rng
                .bounded(self.delay_max_us, domain::MSG_DELAY_AMOUNT, &ids);
            extra += d;
            if let Some(m) = &self.metrics {
                m.msg_delayed.inc();
                m.injected.inc();
                m.msg_delay_us.record(d);
            }
        }
        if self.rng.chance(self.dup_ppm, domain::MSG_DUP, &ids) {
            extra += DUP_CONGESTION_US;
            if let Some(m) = &self.metrics {
                m.msg_duplicated.inc();
                m.injected.inc();
            }
        }
        extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_is_pure_and_domain_separated() {
        let rng = FaultRng::new(42);
        assert_eq!(
            rng.decide(domain::DISK_FATE, &[1, 2, 3]),
            rng.decide(domain::DISK_FATE, &[1, 2, 3])
        );
        assert_ne!(
            rng.decide(domain::DISK_FATE, &[1, 2, 3]),
            rng.decide(domain::STALL, &[1, 2, 3])
        );
        assert_ne!(
            rng.decide(domain::DISK_FATE, &[1, 2, 3]),
            rng.decide(domain::DISK_FATE, &[3, 2, 1])
        );
    }

    #[test]
    fn chance_matches_rate_roughly() {
        let rng = FaultRng::new(7);
        let hits = (0..100_000u64)
            .filter(|&i| rng.chance(100_000, domain::DISK_FATE, &[i]))
            .count();
        // 10 % ± 1 % over 100k trials.
        assert!((9_000..11_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn zero_ppm_never_fires_and_bounded_respects_max() {
        let rng = FaultRng::new(9);
        for i in 0..1000u64 {
            assert!(!rng.chance(0, domain::MSG_DROP, &[i]));
            assert!(rng.bounded(17, domain::MSG_DELAY_AMOUNT, &[i]) <= 17);
            assert_eq!(rng.bounded(0, domain::MSG_DELAY_AMOUNT, &[i]), 0);
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_backoff_us: 1_000,
            backoff_cap_us: 8_000,
            timeout_us: 0,
        };
        let rng = FaultRng::new(1);
        let mut prev = 0;
        for attempt in 0..12 {
            let b = policy.backoff_us(&rng, 99, attempt);
            let exp = (1_000u64 << attempt.min(3)).min(8_000);
            assert!(b >= exp / 2 && b <= exp, "attempt {attempt}: {b}");
            assert!(b >= prev / 2, "not collapsing");
            prev = b;
        }
    }

    #[test]
    fn empty_plan_is_empty_and_fixture_is_not() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::default().is_empty());
        assert!(!FaultPlan::chaos_fixture().is_empty());
        let mut timeout_only = FaultPlan::none();
        timeout_only.retry.timeout_us = 1;
        assert!(!timeout_only.is_empty(), "a timeout alone still acts");
    }

    #[test]
    fn plan_round_trips_through_text() {
        let plan = FaultPlan::chaos_fixture();
        let text = plan.encode();
        assert_eq!(FaultPlan::parse(&text), Ok(plan));
        assert_eq!(
            FaultPlan::parse(&FaultPlan::none().encode()),
            Ok(FaultPlan::none())
        );
    }

    #[test]
    fn parse_rejects_unknown_keys_and_garbage() {
        assert!(matches!(
            FaultPlan::parse("disk_transient_pmm = 5"),
            Err(FaultPlanError::UnknownKey { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("seed = banana"),
            Err(FaultPlanError::BadValue { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("just some words"),
            Err(FaultPlanError::MissingSeparator { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("io_node_down = 3"),
            Err(FaultPlanError::BadValue { .. })
        ));
    }

    #[test]
    fn net_faults_are_replayable_via_clone() {
        let plan = FaultPlan::chaos_fixture();
        let a = NetFaultState::new(&plan, 77, None);
        let b = a.clone();
        let xa: Vec<u64> = (0..200).map(|i| a.message_extra_us(1, 2, i * 64)).collect();
        let xb: Vec<u64> = (0..200).map(|i| b.message_extra_us(1, 2, i * 64)).collect();
        assert_eq!(xa, xb);
        assert!(xa.iter().any(|&x| x > 0), "fixture rates must fire");
    }

    #[test]
    fn mix_seed_separates_shards() {
        let s0 = mix_seed(0xC7A0_5C7A, 111);
        let s1 = mix_seed(0xC7A0_5C7A, 222);
        assert_ne!(s0, s1);
        assert_eq!(s0, mix_seed(0xC7A0_5C7A, 111));
    }
}
