//! Subcube allocation of compute nodes.
//!
//! The iPSC allocates each job a *subcube*: a power-of-two-sized, aligned
//! block of node addresses that itself forms a hypercube. This is the
//! structural reason the paper's Figure 2 shows jobs using only 1, 2, 4, …,
//! 128 nodes ("The iPSC limits the choice to powers of 2").
//!
//! We implement a classic buddy allocator over the `2^dim` node addresses:
//! a free subcube of dimension `k+1` can be split into two buddies of
//! dimension `k`, and two free buddies are re-merged on release.

use std::collections::BTreeSet;

/// An allocated subcube: nodes `base .. base + 2^dim`, with `base` aligned
/// to `2^dim`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Subcube {
    /// First node address in the subcube.
    pub base: usize,
    /// Dimension of the subcube; it holds `2^dim` nodes.
    pub dim: u32,
}

impl Subcube {
    /// Number of nodes in the subcube.
    pub fn nodes(self) -> usize {
        1usize << self.dim
    }

    /// Iterate over the node addresses of the subcube.
    pub fn members(self) -> impl Iterator<Item = usize> {
        self.base..self.base + (1usize << self.dim)
    }

    /// Whether a node address lies in this subcube.
    pub fn contains(self, node: usize) -> bool {
        node >= self.base && node < self.base + self.nodes()
    }
}

/// Buddy allocator handing out aligned subcubes of a `2^dim`-node machine.
#[derive(Clone, Debug)]
pub struct SubcubeAllocator {
    machine_dim: u32,
    /// Free lists: `free[k]` holds the base addresses of free subcubes of
    /// dimension `k`. `BTreeSet` gives deterministic lowest-address-first
    /// allocation, like the real allocator's compaction preference.
    free: Vec<BTreeSet<usize>>,
    /// Live allocations, for double-free detection.
    allocated: BTreeSet<(usize, u32)>,
}

impl SubcubeAllocator {
    /// A fresh allocator for a machine of `2^machine_dim` compute nodes.
    pub fn new(machine_dim: u32) -> Self {
        let mut free: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); machine_dim as usize + 1];
        free[machine_dim as usize].insert(0);
        SubcubeAllocator {
            machine_dim,
            free,
            allocated: BTreeSet::new(),
        }
    }

    /// Total nodes in the machine.
    pub fn machine_nodes(&self) -> usize {
        1usize << self.machine_dim
    }

    /// Number of nodes currently free.
    pub fn free_nodes(&self) -> usize {
        self.free
            .iter()
            .enumerate()
            .map(|(k, s)| s.len() << k)
            .sum()
    }

    /// Allocate a subcube of `2^dim` nodes, or `None` if fragmentation or
    /// load prevents it.
    pub fn allocate(&mut self, dim: u32) -> Option<Subcube> {
        if dim > self.machine_dim {
            return None;
        }
        // Find the smallest free subcube of dimension >= dim.
        let k = (dim..=self.machine_dim).find(|&k| !self.free[k as usize].is_empty())?;
        let base = *self.free[k as usize].iter().next()?;
        self.free[k as usize].remove(&base);
        // Split down to the requested size, freeing the upper buddies.
        for split in (dim..k).rev() {
            self.free[split as usize].insert(base + (1usize << split));
        }
        crate::invariant!(
            self.allocated
                .iter()
                .all(|&(b, d)| { base + (1usize << dim) <= b || b + (1usize << d) <= base }),
            "subcube base {base} dim {dim} overlaps a live allocation"
        );
        self.allocated.insert((base, dim));
        crate::invariant!(
            self.free_nodes()
                + self
                    .allocated
                    .iter()
                    .map(|&(_, d)| 1usize << d)
                    .sum::<usize>()
                == self.machine_nodes(),
            "free + allocated nodes no longer cover the machine"
        );
        Some(Subcube { base, dim })
    }

    /// Allocate a subcube holding at least `n` nodes.
    pub fn allocate_nodes(&mut self, n: usize) -> Option<Subcube> {
        assert!(n > 0, "cannot allocate an empty subcube");
        let dim = usize::BITS - (n - 1).leading_zeros();
        let dim = if n == 1 { 0 } else { dim };
        self.allocate(dim)
    }

    /// Release a previously allocated subcube, merging buddies.
    ///
    /// # Panics
    /// Panics on double-free (the subcube, or a piece of it, is already
    /// free).
    pub fn release(&mut self, cube: Subcube) {
        assert!(
            cube.dim <= self.machine_dim && cube.base.is_multiple_of(cube.nodes()),
            "released subcube {cube:?} is not a valid allocation"
        );
        assert!(
            self.allocated.remove(&(cube.base, cube.dim)),
            "double free of subcube base {} dim {}",
            cube.base,
            cube.dim
        );
        let mut base = cube.base;
        let mut dim = cube.dim;
        loop {
            if dim == self.machine_dim {
                break;
            }
            let buddy = base ^ (1usize << dim);
            if self.free[dim as usize].remove(&buddy) {
                base = base.min(buddy);
                dim += 1;
            } else {
                break;
            }
        }
        self.free[dim as usize].insert(base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_machine_is_all_free() {
        let a = SubcubeAllocator::new(7);
        assert_eq!(a.free_nodes(), 128);
        assert_eq!(a.machine_nodes(), 128);
    }

    #[test]
    fn allocate_whole_machine() {
        let mut a = SubcubeAllocator::new(3);
        let c = a.allocate(3).unwrap();
        assert_eq!(c, Subcube { base: 0, dim: 3 });
        assert_eq!(a.free_nodes(), 0);
        assert!(a.allocate(0).is_none());
        a.release(c);
        assert_eq!(a.free_nodes(), 8);
    }

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut a = SubcubeAllocator::new(7);
        let mut used = [false; 128];
        let mut cubes = Vec::new();
        for dim in [0, 3, 5, 2, 0, 4, 1] {
            let c = a.allocate(dim).unwrap();
            assert_eq!(c.base % c.nodes(), 0, "aligned");
            for n in c.members() {
                assert!(!used[n], "node {n} double-allocated");
                used[n] = true;
            }
            cubes.push(c);
        }
        let total: usize = cubes.iter().map(|c| c.nodes()).sum();
        assert_eq!(a.free_nodes(), 128 - total);
    }

    #[test]
    fn release_merges_buddies() {
        let mut a = SubcubeAllocator::new(4);
        let cubes: Vec<_> = (0..4).map(|_| a.allocate(2).unwrap()).collect();
        assert_eq!(a.free_nodes(), 0);
        for c in cubes {
            a.release(c);
        }
        // Everything merged back: a 16-node allocation must succeed.
        assert!(a.allocate(4).is_some());
    }

    #[test]
    fn allocate_nodes_rounds_up_to_power_of_two() {
        let mut a = SubcubeAllocator::new(7);
        assert_eq!(a.allocate_nodes(1).unwrap().nodes(), 1);
        assert_eq!(a.allocate_nodes(2).unwrap().nodes(), 2);
        assert_eq!(a.allocate_nodes(3).unwrap().nodes(), 4);
        // 100 rounds up to 128, but 7 nodes are already taken.
        assert!(a.allocate_nodes(100).is_none());
        let mut fresh = SubcubeAllocator::new(7);
        assert_eq!(fresh.allocate_nodes(100).unwrap().nodes(), 128);
    }

    #[test]
    fn fragmentation_can_deny_large_requests() {
        let mut a = SubcubeAllocator::new(3);
        let _c0 = a.allocate(0).unwrap(); // takes node 0
        let _c1 = a.allocate(2).unwrap(); // takes 4..8
                                          // Nodes 1, 2, 3 are free, but no aligned 4-node cube exists.
        assert_eq!(a.free_nodes(), 3);
        assert!(a.allocate(3).is_none());
        assert!(a.allocate(2).is_none());
        assert!(a.allocate(1).is_some());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let mut a = SubcubeAllocator::new(2);
        let c = a.allocate(1).unwrap();
        a.release(c);
        a.release(c);
    }

    #[test]
    fn member_iteration_matches_contains() {
        let c = Subcube { base: 8, dim: 2 };
        let members: Vec<_> = c.members().collect();
        assert_eq!(members, vec![8, 9, 10, 11]);
        assert!(c.contains(8) && c.contains(11));
        assert!(!c.contains(7) && !c.contains(12));
    }
}
