//! Runtime simulation invariants.
//!
//! [`invariant!`](crate::invariant) is the workspace's checked-build
//! assertion: under `--features invariants` it asserts; otherwise it
//! compiles to nothing (the condition is embedded in a closure that is
//! never called, so it still type-checks but is never evaluated).
//!
//! The macro lives in `charisma-ipsc` because it is the root of the crate
//! graph; downstream crates (`charisma-cfs`, `charisma-cachesim`, …)
//! invoke it as `charisma_ipsc::invariant!` and forward their own
//! `invariants` feature to this crate's, so one `--features invariants`
//! at any level lights up every check below it.
//!
//! Invariants are *simulation* checks — properties the discrete-event
//! machinery must preserve (time monotonicity, allocation disjointness,
//! cache coherence) — not input validation. Input validation stays as
//! plain `assert!`/typed errors and is always on.

/// Assert a simulation invariant when the `invariants` feature is enabled;
/// compile to nothing otherwise.
///
/// ```
/// use charisma_ipsc::invariant;
/// let balance = 3 + 4;
/// invariant!(balance == 7, "arithmetic drifted: {balance}");
/// ```
#[macro_export]
macro_rules! invariant {
    ($cond:expr) => {
        $crate::invariant!($cond, "{}", stringify!($cond));
    };
    ($cond:expr, $($arg:tt)+) => {{
        #[cfg(feature = "invariants")]
        {
            assert!(
                $cond,
                "simulation invariant violated: {}",
                format_args!($($arg)+)
            );
        }
        #[cfg(not(feature = "invariants"))]
        {
            // Type-check the condition without ever evaluating it.
            let _ = || {
                let _ = &$cond;
            };
        }
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn holds_quietly() {
        invariant!(1 + 1 == 2);
        invariant!(true, "never printed");
    }

    #[cfg(feature = "invariants")]
    #[test]
    #[should_panic(expected = "simulation invariant violated")]
    fn violations_panic_when_enabled() {
        invariant!(1 > 2, "impossible ordering");
    }

    #[cfg(not(feature = "invariants"))]
    #[test]
    fn violations_ignored_when_disabled() {
        invariant!(1 > 2, "impossible ordering");
    }
}
