//! Per-node drifting clocks.
//!
//! The iPSC/860 had no synchronized clocks: "Each node maintains its own
//! clock; the clocks are synchronized at system startup but each drifts
//! significantly and differently after that" (paper §3.2, citing French's
//! hypercube time-reference work). The tracing instrumentation therefore
//! timestamped each 4 KB record block when it left the node and again when
//! it was received at the collector, and the postprocessing step used the
//! pair to estimate per-node drift.
//!
//! We model each node clock as a linear function of true simulation time:
//! `local = offset + true * (1 + drift_ppm * 1e-6)`. That is a first-order
//! model of a crystal oscillator and is exactly the model the paper's
//! correction assumes, so the trace postprocessing in `charisma-trace` can
//! (approximately) invert it.

use crate::time::SimTime;

/// A node-local clock with a fixed frequency error and initial offset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftClock {
    /// Frequency error in parts per million. Real crystal oscillators of the
    /// era were within ±100 ppm; drifts of tens of ppm accumulate to whole
    /// seconds over a multi-hour trace.
    pub drift_ppm: f64,
    /// Offset, in microseconds, of the local clock at true time zero
    /// (imperfect boot-time synchronization).
    pub offset_us: f64,
    /// True time (µs) at which this clock jumps forward once, or `0` for
    /// no jump. Fault injection uses this to model operator intervention
    /// or NTP-style step corrections; the linear model holds on either
    /// side of the step.
    pub jump_at_us: u64,
    /// Size of the forward jump, µs. Only forward jumps are modeled so
    /// each node's local time stays monotone (the trace-block pairing the
    /// postprocessor relies on assumes monotone send stamps).
    pub jump_us: u64,
}

impl DriftClock {
    /// A perfect clock: no drift, no offset.
    pub const PERFECT: DriftClock = DriftClock {
        drift_ppm: 0.0,
        offset_us: 0.0,
        jump_at_us: 0,
        jump_us: 0,
    };

    /// Create a clock with the given drift (ppm) and boot offset (µs).
    pub fn new(drift_ppm: f64, offset_us: f64) -> Self {
        crate::invariant!(
            drift_ppm.is_finite() && drift_ppm.abs() <= 1000.0,
            "drift {drift_ppm} ppm is outside the crystal-oscillator model"
        );
        crate::invariant!(
            offset_us.is_finite(),
            "boot offset {offset_us} us is not finite"
        );
        DriftClock {
            drift_ppm,
            offset_us,
            jump_at_us: 0,
            jump_us: 0,
        }
    }

    /// This clock with a one-time forward jump of `jump_us` µs at true
    /// time `at_us` µs. `at_us == 0` disables the jump.
    pub fn with_jump(self, at_us: u64, jump_us: u64) -> Self {
        DriftClock {
            jump_at_us: at_us,
            jump_us,
            ..self
        }
    }

    /// The local timestamp this node's clock shows at true time `t`.
    pub fn local_time(&self, t: SimTime) -> SimTime {
        let mut skewed = self.offset_us + t.as_micros() as f64 * (1.0 + self.drift_ppm * 1e-6);
        if self.jump_at_us != 0 && t.as_micros() >= self.jump_at_us {
            skewed += self.jump_us as f64;
        }
        SimTime::from_micros(skewed.max(0.0).round() as u64)
    }

    /// Invert the clock model: the true time at which this clock shows
    /// `local`. Exact up to rounding; used by tests and by an oracle for the
    /// trace postprocessing (which only gets to *estimate* the model).
    pub fn true_time(&self, local: SimTime) -> SimTime {
        let mut l = local.as_micros() as f64;
        if self.jump_at_us != 0 {
            // Local stamps at or past the step include the jump; stamps
            // inside the skipped interval never occur on this clock.
            let rate = 1.0 + self.drift_ppm * 1e-6;
            let jump_local = self.offset_us + self.jump_at_us as f64 * rate + self.jump_us as f64;
            if l >= jump_local {
                l -= self.jump_us as f64;
            }
        }
        let t = (l - self.offset_us) / (1.0 + self.drift_ppm * 1e-6);
        SimTime::from_micros(t.max(0.0).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_is_identity() {
        let c = DriftClock::PERFECT;
        for s in [0, 1, 3600, 561_600] {
            let t = SimTime::from_secs(s);
            assert_eq!(c.local_time(t), t);
            assert_eq!(c.true_time(t), t);
        }
    }

    #[test]
    fn drift_accumulates() {
        // 50 ppm over the paper's 156-hour trace is ~28 seconds of skew.
        let c = DriftClock::new(50.0, 0.0);
        let t = SimTime::from_hours(156);
        let skew = c.local_time(t).as_micros() - t.as_micros();
        assert!((27_000_000..30_000_000).contains(&skew), "skew {skew}us");
    }

    #[test]
    fn offset_applies_at_boot() {
        let c = DriftClock::new(0.0, 1500.0);
        assert_eq!(c.local_time(SimTime::ZERO), SimTime::from_micros(1500));
    }

    #[test]
    fn negative_drift_runs_slow() {
        let c = DriftClock::new(-100.0, 0.0);
        let t = SimTime::from_hours(10);
        assert!(c.local_time(t) < t);
    }

    #[test]
    fn inversion_round_trips() {
        let c = DriftClock::new(73.0, -421.0);
        for s in [1u64, 59, 3600, 100_000, 561_600] {
            let t = SimTime::from_secs(s);
            let back = c.true_time(c.local_time(t));
            let err = back.as_micros().abs_diff(t.as_micros());
            assert!(err <= 1, "round-trip error {err}us at t={t}");
        }
    }

    #[test]
    fn jump_steps_forward_once_and_still_inverts() {
        let c = DriftClock::new(40.0, 250.0).with_jump(1_000_000, 2_000_000);
        let before = c.local_time(SimTime::from_micros(999_999));
        let after = c.local_time(SimTime::from_micros(1_000_000));
        assert!(after.as_micros() >= before.as_micros() + 2_000_000);
        for us in [1u64, 500_000, 1_000_000, 1_000_001, 5_000_000] {
            let t = SimTime::from_micros(us);
            let err = c
                .true_time(c.local_time(t))
                .as_micros()
                .abs_diff(t.as_micros());
            assert!(err <= 1, "round-trip error {err}us at t={t}");
        }
        // Local time stays monotone across the step.
        let mut prev = SimTime::ZERO;
        for us in (0..3_000_000).step_by(10_000) {
            let l = c.local_time(SimTime::from_micros(us));
            assert!(l >= prev);
            prev = l;
        }
    }

    #[test]
    fn local_time_clamps_at_zero() {
        let c = DriftClock::new(0.0, -10.0);
        assert_eq!(c.local_time(SimTime::ZERO), SimTime::ZERO);
    }
}
