//! A minimal, deterministic discrete-event queue.
//!
//! The workload generator interleaves the per-node programs of every running
//! job through this queue: each entry is "node X becomes runnable at time
//! T". Ties are broken by insertion order (FIFO), so a simulation with a
//! fixed seed is exactly reproducible — a property the whole reproduction
//! depends on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use charisma_obs::{Counter, Gauge, MetricsRegistry};

use crate::time::SimTime;

/// Metric handles an [`EventQueue`] reports through once attached with
/// [`EventQueue::attach_metrics`]. All counts are facts of the simulation
/// (deterministic for a fixed seed), not wall-clock measurements.
#[derive(Clone, Debug, Default)]
pub struct QueueMetrics {
    /// Events scheduled via [`EventQueue::push`].
    pub pushed: Counter,
    /// Events dispatched via [`EventQueue::pop`].
    pub dispatched: Counter,
    /// High-water mark of pending events.
    pub depth_high_water: Gauge,
}

impl QueueMetrics {
    /// Handles registered under the `engine.` prefix of `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        QueueMetrics {
            pushed: registry.counter("engine.events_pushed"),
            dispatched: registry.counter("engine.events_dispatched"),
            depth_high_water: registry.gauge("engine.queue_depth_high_water"),
        }
    }
}

/// A time-ordered event queue with stable FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    metrics: Option<QueueMetrics>,
    #[cfg(feature = "invariants")]
    last_popped: Option<SimTime>,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(SimTime, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue with space for `capacity` pending events.
    ///
    /// Sharded generation runs one queue per shard and knows each shard's
    /// job count up front; pre-sizing avoids rehash churn on the hot path.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            metrics: None,
            #[cfg(feature = "invariants")]
            last_popped: None,
        }
    }

    /// Report push/dispatch counts and the depth high-water mark through
    /// `metrics` from now on. Un-attached queues pay only an `Option`
    /// check per operation.
    pub fn attach_metrics(&mut self, metrics: QueueMetrics) {
        self.metrics = Some(metrics);
    }

    /// Schedule `event` at time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((at, seq)),
            event,
        });
        if let Some(m) = &self.metrics {
            m.pushed.inc();
            m.depth_high_water.record_max(self.heap.len() as u64);
        }
    }

    /// Remove and return the earliest event, with its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        let at = (e.key.0).0;
        if let Some(m) = &self.metrics {
            m.dispatched.inc();
        }
        #[cfg(feature = "invariants")]
        {
            crate::invariant!(
                self.last_popped.is_none_or(|prev| prev <= at),
                "event queue went backward: popped {at} after {:?}",
                self.last_popped
            );
            self.last_popped = Some(at);
        }
        Some((at, e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| (e.key.0).0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 'x');
        q.push(SimTime::from_secs(1), 'y');
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 'y')));
        q.push(SimTime::from_secs(4), 'z');
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(4), 'z')));
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), 'x')));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(16);
        q.push(SimTime::from_secs(2), "b");
        q.push(SimTime::from_secs(1), "a");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn attached_metrics_track_traffic() {
        let registry = MetricsRegistry::new();
        let mut q = EventQueue::new();
        q.attach_metrics(QueueMetrics::register(&registry));
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        q.push(SimTime::from_secs(3), 'c');
        q.pop();
        q.pop();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["engine.events_pushed"], 3);
        assert_eq!(snap.counters["engine.events_dispatched"], 2);
        assert_eq!(snap.gauges["engine.queue_depth_high_water"], 3);
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
