//! Machine configuration: the NAS iPSC/860.
//!
//! "Their iPSC has 128 compute nodes, each with 8 MB of memory, and 10 I/O
//! nodes, each with 4 MB of memory and a single 760 MB disk drive. There is
//! also a single service node that handles a 10-Mbit Ethernet connection to
//! the host computer. The total I/O capacity is 7.6 GB and the total
//! bandwidth is less than 10 MB/s." (paper §3)

use charisma_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use rand::Rng;

use crate::alloc::SubcubeAllocator;
use crate::clock::DriftClock;
use crate::faults::{domain, FaultMetrics, FaultPlan, FaultRng, NetFaultState};
use crate::message::{Message, NetworkModel};
use crate::time::{Duration, SimTime};
use crate::topology::Hypercube;

/// Address of a compute node (an address within the hypercube).
pub type NodeId = usize;

/// Index of an I/O node (0-based; I/O nodes are *not* hypercube members —
/// each hangs off one compute node).
pub type IoNodeId = usize;

/// Static description of an iPSC/860 installation.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Hypercube dimension; `2^dim` compute nodes.
    pub cube_dim: u32,
    /// Number of I/O nodes, each with one disk.
    pub io_nodes: usize,
    /// Compute-node memory, bytes (8 MB at NAS).
    pub compute_mem_bytes: u64,
    /// I/O-node memory, bytes (4 MB at NAS).
    pub io_mem_bytes: u64,
    /// Per-disk capacity, bytes (760 MB at NAS).
    pub disk_capacity_bytes: u64,
    /// Network latency model.
    pub network: NetworkModel,
    /// Maximum clock drift magnitude assigned to a node, ppm.
    pub max_clock_drift_ppm: f64,
    /// Maximum boot-time clock offset magnitude, µs.
    pub max_clock_offset_us: f64,
}

impl MachineConfig {
    /// The NASA Ames NAS configuration traced by the paper.
    pub fn nas_ipsc860() -> Self {
        MachineConfig {
            cube_dim: 7,
            io_nodes: 10,
            compute_mem_bytes: 8 << 20,
            io_mem_bytes: 4 << 20,
            disk_capacity_bytes: 760 << 20,
            network: NetworkModel::default(),
            max_clock_drift_ppm: 80.0,
            max_clock_offset_us: 5_000.0,
        }
    }

    /// A scaled-down machine for unit and integration tests: 8 compute
    /// nodes, 2 I/O nodes, small disks.
    pub fn tiny() -> Self {
        MachineConfig {
            cube_dim: 3,
            io_nodes: 2,
            compute_mem_bytes: 1 << 20,
            io_mem_bytes: 1 << 20,
            disk_capacity_bytes: 8 << 20,
            network: NetworkModel::default(),
            max_clock_drift_ppm: 80.0,
            max_clock_offset_us: 5_000.0,
        }
    }

    /// Number of compute nodes.
    pub fn compute_nodes(&self) -> usize {
        1usize << self.cube_dim
    }
}

/// Metric handles a [`Machine`] reports through once attached with
/// [`Machine::attach_metrics`]. Message/packet counts accumulate as the
/// network model is consulted; clock extremes are recorded at attach time
/// (the clocks are fixed at boot).
#[derive(Clone, Debug, Default)]
pub struct MachineMetrics {
    /// Messages routed through the latency model.
    pub messages_routed: Counter,
    /// 4 KB packets those messages occupied.
    pub packets_routed: Counter,
    /// Distribution of route lengths, in hops.
    pub route_hops: Histogram,
    /// Largest clock drift magnitude across nodes, parts per billion.
    pub clock_drift_ppb_max: Gauge,
    /// Largest boot-time clock offset magnitude across nodes, µs.
    pub clock_offset_us_max: Gauge,
}

impl MachineMetrics {
    /// Handles registered under the `machine.` prefix of `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        MachineMetrics {
            messages_routed: registry.counter("machine.messages_routed"),
            packets_routed: registry.counter("machine.packets_routed"),
            route_hops: registry.histogram("machine.route_hops"),
            clock_drift_ppb_max: registry.gauge("machine.clock_drift_ppb_max"),
            clock_offset_us_max: registry.gauge("machine.clock_offset_us_max"),
        }
    }
}

/// A live machine instance: topology, allocator, and per-node clocks.
#[derive(Clone, Debug)]
pub struct Machine {
    config: MachineConfig,
    cube: Hypercube,
    allocator: SubcubeAllocator,
    /// Clock of each compute node, indexed by `NodeId`.
    clocks: Vec<DriftClock>,
    /// Clock of the service node (the trace collector's reference clock).
    service_clock: DriftClock,
    metrics: Option<MachineMetrics>,
    faults: Option<NetFaultState>,
}

impl Machine {
    /// Boot a machine, drawing per-node clock drifts and offsets from `rng`.
    pub fn boot<R: Rng>(config: MachineConfig, rng: &mut R) -> Self {
        let cube = Hypercube::new(config.cube_dim);
        let clocks = (0..config.compute_nodes())
            .map(|_| {
                DriftClock::new(
                    rng.gen_range(-config.max_clock_drift_ppm..=config.max_clock_drift_ppm),
                    rng.gen_range(-config.max_clock_offset_us..=config.max_clock_offset_us),
                )
            })
            .collect();
        let allocator = SubcubeAllocator::new(config.cube_dim);
        Machine {
            cube,
            allocator,
            clocks,
            // The collector's clock is the reference frame the paper's
            // postprocessing corrects *to*; give it a small offset too.
            service_clock: DriftClock::PERFECT,
            config,
            metrics: None,
            faults: None,
        }
    }

    /// Boot with perfectly synchronized clocks (useful in tests that don't
    /// exercise drift correction).
    pub fn boot_synchronized(config: MachineConfig) -> Self {
        let cube = Hypercube::new(config.cube_dim);
        let clocks = vec![DriftClock::PERFECT; config.compute_nodes()];
        let allocator = SubcubeAllocator::new(config.cube_dim);
        Machine {
            cube,
            allocator,
            clocks,
            service_clock: DriftClock::PERFECT,
            config,
            metrics: None,
            faults: None,
        }
    }

    /// Report message routing and clock extremes through `metrics` from
    /// now on. Clock extremes are recorded immediately (clocks are fixed
    /// at boot); message and packet counts accumulate as the latency model
    /// is consulted.
    pub fn attach_metrics(&mut self, metrics: MachineMetrics) {
        for clock in &self.clocks {
            metrics
                .clock_drift_ppb_max
                .record_max((clock.drift_ppm.abs() * 1000.0).round() as u64);
            metrics
                .clock_offset_us_max
                .record_max(clock.offset_us.abs().round() as u64);
        }
        self.metrics = Some(metrics);
    }

    /// Inject network faults (message delay/drop/duplication) into every
    /// latency query from now on. Attaching an inactive state is allowed
    /// but pointless; callers normally gate on `FaultPlan::is_empty`.
    pub fn attach_faults(&mut self, faults: NetFaultState) {
        self.faults = Some(faults);
    }

    /// Apply the plan's clock-jump faults to the per-node clocks: each
    /// node's fate (whether it jumps, when, and by how much) is a pure
    /// hash of `(fault_seed, node)`, with jump times drawn from
    /// `[1, horizon)`. Call before any local timestamps are taken.
    pub fn apply_clock_faults(
        &mut self,
        plan: &FaultPlan,
        fault_seed: u64,
        horizon: SimTime,
        metrics: Option<&FaultMetrics>,
    ) {
        if plan.clock_jump_ppm == 0 || plan.clock_jump_max_us == 0 {
            return;
        }
        let rng = FaultRng::new(fault_seed);
        for (node, clock) in self.clocks.iter_mut().enumerate() {
            let id = node as u64;
            if !rng.chance(plan.clock_jump_ppm, domain::CLOCK_FATE, &[id]) {
                continue;
            }
            let span = horizon.as_micros().saturating_sub(1);
            let at = rng.bounded(span, domain::CLOCK_AT, &[id]).max(1);
            let jump = rng.bounded(
                plan.clock_jump_max_us.saturating_sub(1),
                domain::CLOCK_DELTA,
                &[id],
            ) + 1;
            *clock = clock.with_jump(at, jump);
            if let Some(m) = metrics {
                m.clock_jumps.inc();
                m.injected.inc();
            }
        }
    }

    fn fault_extra(&self, src: NodeId, dst: NodeId, bytes: u64) -> Duration {
        match &self.faults {
            Some(f) => Duration::from_micros(f.message_extra_us(src as u64, dst as u64, bytes)),
            None => Duration::from_micros(0),
        }
    }

    fn note_message(&self, msg: &Message, hops: u32) {
        if let Some(m) = &self.metrics {
            m.messages_routed.inc();
            m.packets_routed.add(msg.packets());
            m.route_hops.record(u64::from(hops));
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The hypercube interconnect.
    pub fn cube(&self) -> Hypercube {
        self.cube
    }

    /// The subcube allocator (jobs allocate and release through this).
    pub fn allocator_mut(&mut self) -> &mut SubcubeAllocator {
        &mut self.allocator
    }

    /// The clock of compute node `node`.
    pub fn clock(&self, node: NodeId) -> &DriftClock {
        &self.clocks[node]
    }

    /// The service node's (collector's) clock.
    pub fn service_clock(&self) -> &DriftClock {
        &self.service_clock
    }

    /// The compute node that I/O node `io` hangs off.
    ///
    /// On the NAS machine each I/O node was "connected to a single compute
    /// node rather than directly to the hypercube interconnect". We spread
    /// the attachment points evenly across the cube.
    pub fn io_attachment(&self, io: IoNodeId) -> NodeId {
        assert!(io < self.config.io_nodes, "I/O node {io} out of range");
        io * self.config.compute_nodes() / self.config.io_nodes
    }

    /// Network hops from compute node `src` to I/O node `io`: the e-cube
    /// route to the attachment node plus the dedicated final link.
    pub fn hops_to_io(&self, src: NodeId, io: IoNodeId) -> u32 {
        self.cube.distance(src, self.io_attachment(io)) + 1
    }

    /// Latency of a `bytes`-byte message from compute node `src` to I/O
    /// node `io` (or the reverse — the model is symmetric).
    pub fn io_message_latency(&self, src: NodeId, io: IoNodeId, bytes: u64) -> Duration {
        let msg = Message {
            src,
            dst: self.io_attachment(io),
            bytes,
        };
        let hops = self.hops_to_io(src, io);
        self.note_message(&msg, hops);
        self.config.network.latency(&msg, hops) + self.fault_extra(msg.src, msg.dst, bytes)
    }

    /// Latency of a compute-node-to-service-node message (trace flushes).
    pub fn service_message_latency(&self, src: NodeId, bytes: u64) -> Duration {
        // The service node also hangs off a compute node; use address 0.
        let msg = Message { src, dst: 0, bytes };
        let hops = self.cube.distance(src, 0) + 1;
        self.note_message(&msg, hops);
        self.config.network.latency(&msg, hops) + self.fault_extra(src, 0, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nas_config_matches_paper() {
        let c = MachineConfig::nas_ipsc860();
        assert_eq!(c.compute_nodes(), 128);
        assert_eq!(c.io_nodes, 10);
        assert_eq!(c.compute_mem_bytes, 8 << 20);
        assert_eq!(c.io_mem_bytes, 4 << 20);
        // Total capacity 7.6 GB, per paper.
        let total = c.disk_capacity_bytes * c.io_nodes as u64;
        assert_eq!(total, 7600 << 20);
    }

    #[test]
    fn boot_assigns_distinct_clocks() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Machine::boot(MachineConfig::nas_ipsc860(), &mut rng);
        let drifts: Vec<_> = (0..128).map(|n| m.clock(n).drift_ppm).collect();
        let distinct = drifts
            .iter()
            .filter(|&&d| (d - drifts[0]).abs() > 1e-9)
            .count();
        assert!(distinct > 100, "clocks must drift differently");
        for d in drifts {
            assert!(d.abs() <= 80.0);
        }
    }

    #[test]
    fn boot_is_deterministic_per_seed() {
        let m1 = Machine::boot(MachineConfig::tiny(), &mut StdRng::seed_from_u64(7));
        let m2 = Machine::boot(MachineConfig::tiny(), &mut StdRng::seed_from_u64(7));
        for n in 0..8 {
            assert_eq!(m1.clock(n), m2.clock(n));
        }
    }

    #[test]
    fn io_attachments_are_spread_and_valid() {
        let m = Machine::boot_synchronized(MachineConfig::nas_ipsc860());
        let mut seen = std::collections::HashSet::new();
        for io in 0..10 {
            let at = m.io_attachment(io);
            assert!(m.cube().contains(at));
            assert!(seen.insert(at), "attachment points must be distinct");
        }
    }

    #[test]
    fn io_hops_include_final_link() {
        let m = Machine::boot_synchronized(MachineConfig::nas_ipsc860());
        let at = m.io_attachment(3);
        assert_eq!(m.hops_to_io(at, 3), 1, "attached node is one hop away");
        assert!(m.hops_to_io(at ^ 1, 3) == 2);
    }

    #[test]
    fn message_latency_positive_and_monotone() {
        let m = Machine::boot_synchronized(MachineConfig::nas_ipsc860());
        let small = m.io_message_latency(5, 0, 512);
        let large = m.io_message_latency(5, 0, 1 << 20);
        assert!(small.as_micros() > 0);
        assert!(large > small);
        assert!(m.service_message_latency(5, 4096).as_micros() > 0);
    }

    #[test]
    fn attached_metrics_see_routing_and_clock_extremes() {
        let registry = MetricsRegistry::new();
        let mut rng = StdRng::seed_from_u64(9);
        let mut m = Machine::boot(MachineConfig::tiny(), &mut rng);
        m.attach_metrics(MachineMetrics::register(&registry));
        m.io_message_latency(5, 0, 10_000);
        m.service_message_latency(5, 4096);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["machine.messages_routed"], 2);
        // 10 000 bytes is three 4 KB packets, the flush one more.
        assert_eq!(snap.counters["machine.packets_routed"], 4);
        assert_eq!(snap.histograms["machine.route_hops"].count, 2);
        let drift = snap.gauges["machine.clock_drift_ppb_max"];
        assert!(drift > 0 && drift <= 80_000, "drift {drift} ppb");
        assert!(snap.gauges["machine.clock_offset_us_max"] <= 5_000);
    }

    #[test]
    fn net_faults_add_latency_deterministically() {
        let plan = FaultPlan::chaos_fixture();
        let mk = || {
            let mut m = Machine::boot_synchronized(MachineConfig::nas_ipsc860());
            m.attach_faults(NetFaultState::new(&plan, 5, None));
            m
        };
        let (a, b) = (mk(), mk());
        let la: Vec<_> = (0..300)
            .map(|i| a.io_message_latency(5, 0, 4096 + i))
            .collect();
        let lb: Vec<_> = (0..300)
            .map(|i| b.io_message_latency(5, 0, 4096 + i))
            .collect();
        assert_eq!(la, lb, "same seed, same seq, same outcomes");
        let base = Machine::boot_synchronized(MachineConfig::nas_ipsc860());
        let lbase: Vec<_> = (0..300)
            .map(|i| base.io_message_latency(5, 0, 4096 + i))
            .collect();
        assert!(
            la.iter().zip(&lbase).all(|(f, b)| f >= b),
            "faults only add"
        );
        assert!(la.iter().zip(&lbase).any(|(f, b)| f > b), "fixture fires");
    }

    #[test]
    fn clock_faults_jump_a_fraction_of_clocks() {
        let plan = FaultPlan::chaos_fixture();
        let mut m = Machine::boot_synchronized(MachineConfig::nas_ipsc860());
        m.apply_clock_faults(&plan, 123, SimTime::from_hours(10), None);
        let jumped = (0..128).filter(|&n| m.clock(n).jump_at_us > 0).count();
        // 15 % of 128 nodes, give or take.
        assert!((1..60).contains(&jumped), "jumped {jumped}");
        for n in 0..128 {
            let c = m.clock(n);
            assert!(c.jump_us <= plan.clock_jump_max_us || c.jump_at_us == 0);
        }
    }

    #[test]
    fn allocator_is_usable_through_machine() {
        let mut m = Machine::boot_synchronized(MachineConfig::tiny());
        let cube = m.allocator_mut().allocate_nodes(4).unwrap();
        assert_eq!(cube.nodes(), 4);
        m.allocator_mut().release(cube);
        assert_eq!(m.allocator_mut().free_nodes(), 8);
    }
}
