//! Property tests for the machine substrate: hypercube routing identities
//! and subcube-allocator safety under arbitrary request sequences.

use charisma_ipsc::alloc::{Subcube, SubcubeAllocator};
use charisma_ipsc::{EventQueue, FaultPlan, FaultRng, Hypercube, RetryPolicy, SimTime};
use proptest::prelude::*;

proptest! {
    /// E-cube routes are shortest paths along edges, for any node pair.
    #[test]
    fn ecube_routes_are_shortest_paths(dim in 1u32..8, seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let h = Hypercube::new(dim);
        let a = (seed_a % h.nodes() as u64) as usize;
        let b = (seed_b % h.nodes() as u64) as usize;
        let route = h.ecube_route(a, b);
        prop_assert_eq!(route[0], a);
        prop_assert_eq!(*route.last().unwrap(), b);
        prop_assert_eq!(route.len() as u32, h.distance(a, b) + 1);
        for w in route.windows(2) {
            prop_assert_eq!(h.distance(w[0], w[1]), 1);
        }
        // Deterministic: same endpoints, same route.
        prop_assert_eq!(h.ecube_route(a, b), route);
    }

    /// Hamming distance is symmetric and satisfies the triangle
    /// inequality for arbitrary triples.
    #[test]
    fn distance_is_a_metric(x in 0usize..128, y in 0usize..128, z in 0usize..128) {
        let h = Hypercube::new(7);
        prop_assert_eq!(h.distance(x, y), h.distance(y, x));
        prop_assert_eq!(h.distance(x, x), 0);
        prop_assert!(h.distance(x, z) <= h.distance(x, y) + h.distance(y, z));
    }

    /// Under any interleaving of allocations and releases, live subcubes
    /// never overlap and accounting never goes negative.
    #[test]
    fn allocator_never_overlaps(ops in proptest::collection::vec((0u32..8, any::<bool>()), 1..200)) {
        let mut alloc = SubcubeAllocator::new(7);
        let mut live: Vec<Subcube> = Vec::new();
        for (dim, release_first) in ops {
            if release_first && !live.is_empty() {
                let cube = live.swap_remove(0);
                alloc.release(cube);
            }
            if let Some(cube) = alloc.allocate(dim % 8) {
                // No overlap with any live cube.
                for other in &live {
                    for node in cube.members() {
                        prop_assert!(!other.contains(node),
                            "cube {:?} overlaps {:?}", cube, other);
                    }
                }
                live.push(cube);
            }
            let used: usize = live.iter().map(|c| c.nodes()).sum();
            prop_assert_eq!(alloc.free_nodes() + used, 128);
        }
        // Releasing everything restores the whole machine.
        for cube in live.drain(..) {
            alloc.release(cube);
        }
        prop_assert_eq!(alloc.free_nodes(), 128);
        prop_assert!(alloc.allocate(7).is_some(), "machine fully merged again");
    }

    /// The event queue dequeues in non-decreasing time order with FIFO
    /// ties, for arbitrary push sequences.
    #[test]
    fn event_queue_is_stable_priority(times in proptest::collection::vec(0u64..1000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO tie-break violated");
                }
            }
            last = Some((t, i));
        }
    }

    /// Retry backoff is a pure function of `(seed, request id, attempt)`
    /// — recomputing it never changes it — and is bounded by the cap at
    /// every attempt, including the shifted-past-u64 tail.
    #[test]
    fn backoff_is_deterministic_and_capped(
        seed in any::<u64>(),
        request in any::<u64>(),
        base in 1u64..100_000,
        cap in 1u64..1_000_000,
    ) {
        let policy = RetryPolicy {
            max_retries: 40,
            base_backoff_us: base,
            backoff_cap_us: cap,
            timeout_us: 0,
        };
        let rng = FaultRng::new(seed);
        for attempt in 0..40u32 {
            let first = policy.backoff_us(&rng, request, attempt);
            prop_assert_eq!(first, policy.backoff_us(&rng, request, attempt),
                "backoff must be stateless");
            prop_assert!(first <= cap.max(1),
                "attempt {} backoff {} exceeds cap {}", attempt, first, cap);
        }
    }

    /// Fault-plan text encoding round-trips every field exactly, for
    /// arbitrary plans.
    #[test]
    fn fault_plan_text_codec_round_trips(
        seed in any::<u64>(),
        ppms in proptest::collection::vec(0u32..2_000_000, 8),
        amounts in proptest::collection::vec(any::<u64>(), 4),
        downs in proptest::collection::vec((any::<u32>(), any::<u64>()), 0..4),
    ) {
        let plan = FaultPlan {
            seed,
            disk_transient_ppm: ppms[0],
            disk_degrade_ppm: ppms[1],
            io_node_down: downs
                .into_iter()
                .map(|(io_node, at_us)| charisma_ipsc::IoNodeDown { io_node, at_us })
                .collect(),
            io_stall_ppm: ppms[2],
            io_stall_us: amounts[0],
            msg_delay_ppm: ppms[3],
            msg_delay_max_us: amounts[1],
            msg_drop_ppm: ppms[4],
            msg_dup_ppm: ppms[5],
            clock_jump_ppm: ppms[6],
            clock_jump_max_us: amounts[2],
            retry: RetryPolicy {
                max_retries: (ppms[7] % 16),
                base_backoff_us: amounts[3],
                backoff_cap_us: amounts[3].wrapping_mul(3),
                timeout_us: amounts[1] / 2,
            },
        };
        let parsed = FaultPlan::parse(&plan.encode()).expect("encoded plan parses");
        prop_assert_eq!(parsed, plan);
    }

    /// Fault decisions depend only on the identity ids handed in, never
    /// on query order: evaluating the same `(domain, ids)` pair before,
    /// after, or interleaved with arbitrary other queries gives the same
    /// answer.
    #[test]
    fn fault_decisions_are_order_independent(
        seed in any::<u64>(),
        probe in proptest::collection::vec(any::<u64>(), 1..4),
        noise in proptest::collection::vec((1u64..12, proptest::collection::vec(any::<u64>(), 0..3)), 0..20),
    ) {
        let rng = FaultRng::new(seed);
        let before = rng.decide(5, &probe);
        for (domain, ids) in &noise {
            let _ = rng.decide(*domain, ids);
        }
        prop_assert_eq!(rng.decide(5, &probe), before);
    }
}
