//! Property tests for the machine substrate: hypercube routing identities
//! and subcube-allocator safety under arbitrary request sequences.

use charisma_ipsc::alloc::{Subcube, SubcubeAllocator};
use charisma_ipsc::{EventQueue, Hypercube, SimTime};
use proptest::prelude::*;

proptest! {
    /// E-cube routes are shortest paths along edges, for any node pair.
    #[test]
    fn ecube_routes_are_shortest_paths(dim in 1u32..8, seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let h = Hypercube::new(dim);
        let a = (seed_a % h.nodes() as u64) as usize;
        let b = (seed_b % h.nodes() as u64) as usize;
        let route = h.ecube_route(a, b);
        prop_assert_eq!(route[0], a);
        prop_assert_eq!(*route.last().unwrap(), b);
        prop_assert_eq!(route.len() as u32, h.distance(a, b) + 1);
        for w in route.windows(2) {
            prop_assert_eq!(h.distance(w[0], w[1]), 1);
        }
        // Deterministic: same endpoints, same route.
        prop_assert_eq!(h.ecube_route(a, b), route);
    }

    /// Hamming distance is symmetric and satisfies the triangle
    /// inequality for arbitrary triples.
    #[test]
    fn distance_is_a_metric(x in 0usize..128, y in 0usize..128, z in 0usize..128) {
        let h = Hypercube::new(7);
        prop_assert_eq!(h.distance(x, y), h.distance(y, x));
        prop_assert_eq!(h.distance(x, x), 0);
        prop_assert!(h.distance(x, z) <= h.distance(x, y) + h.distance(y, z));
    }

    /// Under any interleaving of allocations and releases, live subcubes
    /// never overlap and accounting never goes negative.
    #[test]
    fn allocator_never_overlaps(ops in proptest::collection::vec((0u32..8, any::<bool>()), 1..200)) {
        let mut alloc = SubcubeAllocator::new(7);
        let mut live: Vec<Subcube> = Vec::new();
        for (dim, release_first) in ops {
            if release_first && !live.is_empty() {
                let cube = live.swap_remove(0);
                alloc.release(cube);
            }
            if let Some(cube) = alloc.allocate(dim % 8) {
                // No overlap with any live cube.
                for other in &live {
                    for node in cube.members() {
                        prop_assert!(!other.contains(node),
                            "cube {:?} overlaps {:?}", cube, other);
                    }
                }
                live.push(cube);
            }
            let used: usize = live.iter().map(|c| c.nodes()).sum();
            prop_assert_eq!(alloc.free_nodes() + used, 128);
        }
        // Releasing everything restores the whole machine.
        for cube in live.drain(..) {
            alloc.release(cube);
        }
        prop_assert_eq!(alloc.free_nodes(), 128);
        prop_assert!(alloc.allocate(7).is_some(), "machine fully merged again");
    }

    /// The event queue dequeues in non-decreasing time order with FIFO
    /// ties, for arbitrary push sequences.
    #[test]
    fn event_queue_is_stable_priority(times in proptest::collection::vec(0u64..1000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO tie-break violated");
                }
            }
            last = Some((t, i));
        }
    }
}
