//! Trace-file serialization.
//!
//! Layout: header, then blocks. Each block: node (u16), send/recv
//! timestamps (u64 µs each), record count (u32), records. The whole file
//! round-trips through [`write_trace`] / [`read_trace`]; the format is the
//! on-disk twin of the in-memory [`Trace`].

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut};
use charisma_ipsc::SimTime;

use crate::builder::{Block, Trace};
use crate::codec::{self, DecodeError};

/// Errors raised while reading a trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed trace contents.
    Decode(DecodeError),
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

impl From<DecodeError> for TraceFileError {
    fn from(e: DecodeError) -> Self {
        TraceFileError::Decode(e)
    }
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file I/O error: {e}"),
            TraceFileError::Decode(e) => write!(f, "trace file corrupt: {e}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

/// Serialize a trace to a writer.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    let mut buf = Vec::with_capacity(1 << 16);
    codec::encode_header(&trace.header, &mut buf);
    buf.put_u64_le(trace.blocks.len() as u64);
    w.write_all(&buf)?;
    for block in &trace.blocks {
        buf.clear();
        buf.put_u16_le(block.node);
        buf.put_u64_le(block.send_local.as_micros());
        buf.put_u64_le(block.recv_service.as_micros());
        buf.put_u32_le(block.events.len() as u32);
        for e in &block.events {
            codec::encode_event(e, &mut buf);
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Deserialize a trace from a reader.
pub fn read_trace<R: Read>(mut r: R) -> Result<Trace, TraceFileError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = raw.as_slice();
    let header = codec::decode_header(&mut buf)?;
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated.into());
    }
    let nblocks = buf.get_u64_le() as usize;
    let mut blocks = Vec::with_capacity(nblocks.min(1 << 20));
    for _ in 0..nblocks {
        if buf.remaining() < 2 + 8 + 8 + 4 {
            return Err(DecodeError::Truncated.into());
        }
        let node = buf.get_u16_le();
        let send_local = SimTime::from_micros(buf.get_u64_le());
        let recv_service = SimTime::from_micros(buf.get_u64_le());
        let count = buf.get_u32_le() as usize;
        let mut events = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            events.push(codec::decode_event(&mut buf)?);
        }
        blocks.push(Block {
            node,
            send_local,
            recv_service,
            events,
        });
    }
    Ok(Trace { header, blocks })
}

/// A trace salvaged by [`read_trace_tolerant`], with the damage report.
#[derive(Debug)]
pub struct TolerantTrace {
    /// Everything that could be recovered.
    pub trace: Trace,
    /// What was lost along the way.
    pub stats: codec::DecodeStats,
}

/// Deserialize a trace, salvaging past corrupt records instead of
/// aborting.
///
/// The header must be intact (there is nothing to salvage without one);
/// after that, a corrupt record resynchronizes via the codec's
/// chain-validated scan, a corrupt region is charged to
/// [`codec::DecodeStats`], and a file that ends mid-structure returns
/// every block recovered so far with `stats.truncated` set.
pub fn read_trace_tolerant<R: Read>(mut r: R) -> Result<TolerantTrace, TraceFileError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = raw.as_slice();
    let header = codec::decode_header(&mut buf)?;
    let mut stats = codec::DecodeStats::default();
    let mut blocks = Vec::new();
    if buf.remaining() < 8 {
        stats.truncated = true;
        return Ok(TolerantTrace {
            trace: Trace { header, blocks },
            stats,
        });
    }
    let nblocks = buf.get_u64_le() as usize;
    'blocks: for _ in 0..nblocks {
        if buf.remaining() < 2 + 8 + 8 + 4 {
            stats.truncated = true;
            break;
        }
        let node = buf.get_u16_le();
        let send_local = SimTime::from_micros(buf.get_u64_le());
        let recv_service = SimTime::from_micros(buf.get_u64_le());
        let count = buf.get_u32_le() as usize;
        let mut events = Vec::with_capacity(count.min(1 << 16));
        // A corrupt region inside a block is assumed to hide one record
        // (in-place corruption); `consumed` tracks decoded + skipped so
        // the block still ends where its record count says it does.
        let mut consumed = 0usize;
        while consumed < count {
            let before = buf;
            match codec::decode_event(&mut buf) {
                Ok(e) => {
                    events.push(e);
                    stats.records_decoded += 1;
                    consumed += 1;
                }
                Err(err) => {
                    let mut resumed = false;
                    for skip in 1..before.len() {
                        if codec::chain_validates(&before[skip..]) {
                            stats.records_skipped += 1;
                            stats.bytes_skipped += skip as u64;
                            buf = &before[skip..];
                            consumed += 1;
                            resumed = true;
                            break;
                        }
                    }
                    if !resumed {
                        stats.bytes_skipped += before.len() as u64;
                        if matches!(err, DecodeError::Truncated) {
                            stats.truncated = true;
                        } else {
                            stats.records_skipped += 1;
                        }
                        blocks.push(Block {
                            node,
                            send_local,
                            recv_service,
                            events,
                        });
                        break 'blocks;
                    }
                }
            }
        }
        blocks.push(Block {
            node,
            send_local,
            recv_service,
            events,
        });
    }
    Ok(TolerantTrace {
        trace: Trace { header, blocks },
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::record::{EventBody, TraceHeader};
    use charisma_ipsc::{DriftClock, Duration};

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new(
            TraceHeader {
                version: TraceHeader::VERSION,
                compute_nodes: 2,
                io_nodes: 1,
                block_bytes: 4096,
                seed: 77,
            },
            vec![DriftClock::new(20.0, 100.0), DriftClock::new(-20.0, -100.0)],
            DriftClock::PERFECT,
            vec![Duration::from_micros(200); 2],
        );
        b.log_service(
            SimTime::from_micros(1),
            EventBody::JobStart {
                job: 1,
                nodes: 2,
                traced: true,
            },
        );
        for i in 0..500u64 {
            b.log(
                (i % 2) as usize,
                SimTime::from_micros(10 + i * 7),
                EventBody::Write {
                    session: 5,
                    offset: i * 100,
                    bytes: 100,
                },
            );
        }
        b.log_service(SimTime::from_micros(10_000), EventBody::JobEnd { job: 1 });
        b.finish(SimTime::from_secs(1))
    }

    #[test]
    fn round_trips_exactly() {
        let t = sample_trace();
        let mut bytes = Vec::new();
        write_trace(&t, &mut bytes).unwrap();
        let back = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn truncated_file_is_an_error() {
        let t = sample_trace();
        let mut bytes = Vec::new();
        write_trace(&t, &mut bytes).unwrap();
        for cut in [10, bytes.len() / 2, bytes.len() - 1] {
            assert!(read_trace(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace {
            header: TraceHeader {
                version: TraceHeader::VERSION,
                compute_nodes: 0,
                io_nodes: 0,
                block_bytes: 4096,
                seed: 0,
            },
            blocks: Vec::new(),
        };
        let mut bytes = Vec::new();
        write_trace(&t, &mut bytes).unwrap();
        assert_eq!(read_trace(bytes.as_slice()).unwrap(), t);
    }

    #[test]
    fn garbage_is_rejected_not_panicking() {
        assert!(read_trace(&b"not a trace at all"[..]).is_err());
        assert!(read_trace(&[][..]).is_err());
    }
}

/// Streaming trace reader: yields one block at a time from any `Read`
/// without materializing the whole trace — the way a real analysis tool
/// walks a multi-hundred-megabyte trace file.
pub struct TraceStream<R: Read> {
    reader: R,
    /// The trace's self-descriptive header.
    pub header: crate::record::TraceHeader,
    blocks_left: u64,
}

impl<R: Read> TraceStream<R> {
    /// Open a stream, parsing the header eagerly.
    pub fn open(mut reader: R) -> Result<Self, TraceFileError> {
        // Header (8-byte magic + 4x u32 + u64 seed = 32 bytes), then the
        // block count (8 bytes).
        let mut head = [0u8; 32];
        reader.read_exact(&mut head).map_err(TraceFileError::Io)?;
        let mut slice = &head[..];
        let header = codec::decode_header(&mut slice)?;
        let mut count = [0u8; 8];
        reader.read_exact(&mut count).map_err(TraceFileError::Io)?;
        let blocks_left = u64::from_le_bytes(count);
        Ok(TraceStream {
            reader,
            header,
            blocks_left,
        })
    }

    /// Number of blocks not yet read.
    pub fn blocks_remaining(&self) -> u64 {
        self.blocks_left
    }

    /// Read the next block, or `None` at end of trace.
    pub fn next_block(&mut self) -> Result<Option<Block>, TraceFileError> {
        if self.blocks_left == 0 {
            return Ok(None);
        }
        self.blocks_left -= 1;
        let mut head = [0u8; 2 + 8 + 8 + 4];
        self.reader
            .read_exact(&mut head)
            .map_err(TraceFileError::Io)?;
        let mut slice = &head[..];
        let node = slice.get_u16_le();
        let send_local = SimTime::from_micros(slice.get_u64_le());
        let recv_service = SimTime::from_micros(slice.get_u64_le());
        let count = slice.get_u32_le() as usize;
        // Events are variable-length; read them one at a time through a
        // small buffer (records are <= 32 bytes on the wire).
        let mut events = Vec::with_capacity(count.min(1 << 16));
        let mut buf = Vec::new();
        for _ in 0..count {
            // Tag + timestamp first, then the tag-dependent payload.
            let mut fixed = [0u8; 9];
            self.reader
                .read_exact(&mut fixed)
                .map_err(TraceFileError::Io)?;
            let payload_len = codec::payload_len(fixed[0]).ok_or(DecodeError::BadTag(fixed[0]))?;
            buf.clear();
            buf.extend_from_slice(&fixed);
            let start = buf.len();
            buf.resize(start + payload_len, 0);
            self.reader
                .read_exact(&mut buf[start..])
                .map_err(TraceFileError::Io)?;
            let mut slice = buf.as_slice();
            events.push(codec::decode_event(&mut slice)?);
        }
        Ok(Some(Block {
            node,
            send_local,
            recv_service,
            events,
        }))
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::record::{EventBody, TraceHeader};
    use charisma_ipsc::{DriftClock, Duration};

    fn sample() -> Trace {
        let mut b = TraceBuilder::new(
            TraceHeader {
                version: TraceHeader::VERSION,
                compute_nodes: 3,
                io_nodes: 2,
                block_bytes: 4096,
                seed: 42,
            },
            vec![DriftClock::PERFECT; 3],
            DriftClock::PERFECT,
            vec![Duration::from_micros(100); 3],
        );
        for i in 0..700u64 {
            b.log(
                (i % 3) as usize,
                SimTime::from_micros(i * 5),
                EventBody::Write {
                    session: i as u32,
                    offset: i * 64,
                    bytes: 64,
                },
            );
        }
        b.finish(SimTime::from_secs(1))
    }

    #[test]
    fn stream_yields_identical_blocks() {
        let t = sample();
        let mut bytes = Vec::new();
        write_trace(&t, &mut bytes).unwrap();
        let mut stream = TraceStream::open(bytes.as_slice()).unwrap();
        assert_eq!(stream.header, t.header);
        assert_eq!(stream.blocks_remaining(), t.blocks.len() as u64);
        let mut got = Vec::new();
        while let Some(block) = stream.next_block().unwrap() {
            got.push(block);
        }
        assert_eq!(got, t.blocks);
        assert_eq!(stream.blocks_remaining(), 0);
    }

    #[test]
    fn stream_rejects_truncation_mid_block() {
        let t = sample();
        let mut bytes = Vec::new();
        write_trace(&t, &mut bytes).unwrap();
        bytes.truncate(bytes.len() * 2 / 3);
        let mut stream = TraceStream::open(bytes.as_slice()).unwrap();
        let mut result = Ok(());
        while let Some(r) = stream.next_block().transpose() {
            if let Err(e) = r {
                result = Err(e);
                break;
            }
        }
        assert!(result.is_err(), "mid-block truncation must surface");
    }

    #[test]
    fn stream_rejects_bad_header() {
        assert!(
            TraceStream::open(&b"definitely not a trace file...................."[..]).is_err()
        );
    }
}
