//! Deterministic k-way merge of per-shard rectified event streams.
//!
//! Sharded generation produces one rectified (clock-corrected, sorted)
//! stream per shard. This module merges them into a single globally
//! ordered stream whose order is a pure function of the shard streams —
//! never of thread scheduling — so a parallel run is bit-identical to a
//! serial run over the same shard plan.
//!
//! The total order is the lexicographic key
//! `(rectified_time, node, shard, seq)`, where `shard` is the shard's
//! index in the input slice and `seq` the event's position within its
//! shard stream. Time orders the stream; `node` groups simultaneous
//! records the way the collector's arrival order tended to; `(shard,
//! seq)` is an arbitrary-but-fixed tiebreak that makes the order total.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use charisma_obs::{Counter, MetricsRegistry};

use crate::postprocess::OrderedEvent;

/// Metric handles a [`MergedEvents`] reports through once attached with
/// [`MergedEvents::attach_metrics`].
#[derive(Clone, Debug, Default)]
pub struct MergeMetrics {
    /// Events emitted by the merge.
    pub records_merged: Counter,
    /// Heap operations performed (pops plus refill pushes) — the merge's
    /// comparison workload, O(total × log shards).
    pub heap_ops: Counter,
}

impl MergeMetrics {
    /// Handles registered under the `merge.` prefix of `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        MergeMetrics {
            records_merged: registry.counter("merge.records_merged"),
            heap_ops: registry.counter("merge.heap_ops"),
        }
    }
}

/// The total-order key of one merged event: `(time, node, shard, seq)`.
pub type MergeKey = (u64, u16, usize, usize);

/// The merge key of one event: `(time, node, shard, seq)`.
///
/// Exposed so property tests can assert the merged stream is sorted by
/// exactly this key.
pub fn merge_key(e: &OrderedEvent, shard: usize, seq: usize) -> MergeKey {
    (e.time.as_micros(), e.node, shard, seq)
}

/// A streaming k-way merge over per-shard event streams.
///
/// Yields every event of every shard exactly once, globally ordered by
/// [`merge_key`]. Construction sorts each shard stream by `(time, node)`
/// (stable, so the `seq` tiebreak preserves each shard's residual order);
/// after that the merge itself is O(total log shards) and streams — the
/// analyzer can consume it without materializing the merged vector.
pub struct MergedEvents {
    shards: Vec<Vec<OrderedEvent>>,
    /// Next unconsumed position in each shard stream.
    cursor: Vec<usize>,
    /// Min-heap over the head of every non-exhausted stream.
    heap: BinaryHeap<Reverse<(MergeKey, usize)>>,
    remaining: usize,
    metrics: Option<MergeMetrics>,
    #[cfg(feature = "invariants")]
    last_key: Option<MergeKey>,
}

impl MergedEvents {
    /// Build a merge over `shards` (one rectified stream per shard).
    pub fn new(mut shards: Vec<Vec<OrderedEvent>>) -> Self {
        for stream in &mut shards {
            // `postprocess` sorts by time alone; the merge key also orders
            // by node within a timestamp, so re-sort (stable: the shard's
            // own residual order is the final tiebreak via `seq`).
            stream.sort_by_key(|e| (e.time, e.node));
        }
        let remaining = shards.iter().map(Vec::len).sum();
        let cursor = vec![0; shards.len()];
        let mut heap = BinaryHeap::with_capacity(shards.len());
        for (shard, stream) in shards.iter().enumerate() {
            if let Some(e) = stream.first() {
                heap.push(Reverse((merge_key(e, shard, 0), shard)));
            }
        }
        MergedEvents {
            shards,
            cursor,
            heap,
            remaining,
            metrics: None,
            #[cfg(feature = "invariants")]
            last_key: None,
        }
    }

    /// Report merge throughput and heap workload through `metrics` from
    /// now on.
    pub fn attach_metrics(&mut self, metrics: MergeMetrics) {
        self.metrics = Some(metrics);
    }

    /// Total events still to be yielded.
    pub fn len(&self) -> usize {
        self.remaining
    }

    /// Whether the merge is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }
}

impl Iterator for MergedEvents {
    type Item = OrderedEvent;

    fn next(&mut self) -> Option<OrderedEvent> {
        let Reverse((key, shard)) = self.heap.pop()?;
        #[cfg(feature = "invariants")]
        {
            charisma_ipsc::invariant!(
                self.last_key.is_none_or(|prev| prev <= key),
                "k-way merge emitted keys out of order: {key:?} after {:?}",
                self.last_key
            );
            self.last_key = Some(key);
        }
        #[cfg(not(feature = "invariants"))]
        let _ = key;
        let pos = self.cursor[shard];
        let event = self.shards[shard][pos];
        self.cursor[shard] = pos + 1;
        let mut heap_ops = 1u64;
        if let Some(next) = self.shards[shard].get(pos + 1) {
            self.heap
                .push(Reverse((merge_key(next, shard, pos + 1), shard)));
            heap_ops += 1;
        }
        if let Some(m) = &self.metrics {
            m.records_merged.inc();
            m.heap_ops.add(heap_ops);
        }
        self.remaining -= 1;
        Some(event)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for MergedEvents {}

/// Merge per-shard rectified streams into one materialized ordered stream.
///
/// Convenience over [`MergedEvents`] for callers that want the vector.
pub fn merge_shards(shards: Vec<Vec<OrderedEvent>>) -> Vec<OrderedEvent> {
    MergedEvents::new(shards).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::EventBody;
    use charisma_ipsc::SimTime;

    fn ev(us: u64, node: u16, session: u32) -> OrderedEvent {
        OrderedEvent {
            time: SimTime::from_micros(us),
            node,
            body: EventBody::Read {
                session,
                offset: 0,
                bytes: 1,
            },
        }
    }

    fn session(e: &OrderedEvent) -> u32 {
        match e.body {
            EventBody::Read { session, .. } => session,
            _ => unreachable!("tests only build reads"),
        }
    }

    #[test]
    fn merges_in_time_order() {
        let a = vec![ev(1, 0, 0), ev(5, 0, 1), ev(9, 0, 2)];
        let b = vec![ev(2, 1, 10), ev(3, 1, 11), ev(20, 1, 12)];
        let merged = merge_shards(vec![a, b]);
        let times: Vec<u64> = merged.iter().map(|e| e.time.as_micros()).collect();
        assert_eq!(times, vec![1, 2, 3, 5, 9, 20]);
    }

    #[test]
    fn ties_break_by_node_then_shard() {
        let t = 7;
        let a = vec![ev(t, 3, 0)];
        let b = vec![ev(t, 1, 10), ev(t, 3, 11)];
        let merged = merge_shards(vec![a, b]);
        let ids: Vec<u32> = merged.iter().map(session).collect();
        // node 1 first; among node 3, shard 0 before shard 1.
        assert_eq!(ids, vec![10, 0, 11]);
    }

    #[test]
    fn merge_is_invariant_to_shard_stream_shape() {
        // The same events split differently across shards merge to the
        // same multiset, and each sorting key is respected.
        let all: Vec<OrderedEvent> = (0..100u64)
            .map(|i| ev(i % 13, (i % 3) as u16, i as u32))
            .collect();
        let one = merge_shards(vec![all.clone()]);
        let four = merge_shards(
            (0..4)
                .map(|k| all.iter().skip(k).step_by(4).copied().collect())
                .collect(),
        );
        let mut s1: Vec<u32> = one.iter().map(session).collect();
        let mut s4: Vec<u32> = four.iter().map(session).collect();
        s1.sort_unstable();
        s4.sort_unstable();
        assert_eq!(s1, s4, "merge is a permutation regardless of sharding");
        for w in four.windows(2) {
            assert!((w[0].time, w[0].node) <= (w[1].time, w[1].node));
        }
    }

    #[test]
    fn exact_size_iterator_counts_down() {
        let mut m = MergedEvents::new(vec![vec![ev(1, 0, 0)], vec![ev(2, 0, 1), ev(3, 0, 2)]]);
        assert_eq!(m.len(), 3);
        m.next();
        assert_eq!(m.len(), 2);
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn attached_metrics_count_merge_work() {
        let registry = MetricsRegistry::new();
        let mut m = MergedEvents::new(vec![vec![ev(1, 0, 0), ev(4, 0, 1)], vec![ev(2, 0, 2)]]);
        m.attach_metrics(MergeMetrics::register(&registry));
        let merged: Vec<_> = m.collect();
        assert_eq!(merged.len(), 3);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["merge.records_merged"], 3);
        // 3 pops + 1 refill push (shard 0 has a successor after its head).
        assert_eq!(snap.counters["merge.heap_ops"], 4);
    }

    #[test]
    fn empty_shards_are_fine() {
        assert!(merge_shards(Vec::new()).is_empty());
        assert_eq!(merge_shards(vec![Vec::new(), vec![ev(1, 0, 0)]]).len(), 1);
    }
}
