//! The CHARISMA trace format and collection pipeline.
//!
//! The paper's instrumentation lived in the user-level CFS library: every
//! I/O call appended an event record to a 4 KB buffer on the calling compute
//! node; full buffers were sent to a data collector on the service node,
//! which wrote them to a central trace file. Job starts and ends were
//! recorded through a separate mechanism. Because node clocks drift, each
//! buffer was timestamped once when it left the node (node clock) and again
//! on receipt (collector clock), and a postprocessing pass used the pairs to
//! approximately rectify event order.
//!
//! This crate reproduces that pipeline:
//!
//! * [`record`] — the event-record vocabulary (open/close/read/write/...);
//! * [`codec`] — a compact binary encoding with a self-descriptive header;
//! * [`builder`] — per-node 4 KB buffering plus the service-node collector;
//! * [`postprocess`] — drift estimation and chronological rectification;
//! * [`merge`] — deterministic k-way merge of per-shard rectified streams;
//! * [`file`] — writing and reading trace files.

pub mod builder;
pub mod codec;
pub mod file;
pub mod merge;
pub mod postprocess;
pub mod record;

pub use builder::{Block, Trace, TraceBuilder};
pub use codec::{decode_events_tolerant, DecodeStats};
pub use file::{read_trace, read_trace_tolerant, write_trace, TolerantTrace, TraceFileError};
pub use merge::{merge_shards, MergeMetrics, MergedEvents};
pub use postprocess::{postprocess, OrderedEvent};
pub use record::{
    AccessKind, Event, EventBody, FileId, JobId, SessionId, TraceHeader, SERVICE_NODE,
};
