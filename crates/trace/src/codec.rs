//! Binary encoding of records and headers.
//!
//! Little-endian, fixed-width fields behind a one-byte tag. The encoding is
//! deliberately boring: the point of the real format was that the file be
//! self-descriptive and portable across the CHARISMA sites, not clever.

use bytes::{Buf, BufMut};
use charisma_ipsc::SimTime;

use crate::record::{AccessKind, Event, EventBody, TraceHeader};

/// Magic bytes opening every trace file.
pub const MAGIC: &[u8; 8] = b"CHARISMA";

/// Errors raised while decoding a trace.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended mid-record.
    Truncated,
    /// An unknown record tag was encountered.
    BadTag(u8),
    /// An unknown access-kind code was encountered.
    BadAccess(u8),
    /// The file does not start with the CHARISMA magic.
    BadMagic,
    /// The format version is unsupported.
    BadVersion(u32),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "trace truncated mid-record"),
            DecodeError::BadTag(t) => write!(f, "unknown record tag {t}"),
            DecodeError::BadAccess(a) => write!(f, "unknown access kind {a}"),
            DecodeError::BadMagic => write!(f, "missing CHARISMA magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode the trace header.
pub fn encode_header(h: &TraceHeader, out: &mut Vec<u8>) {
    out.put_slice(MAGIC);
    out.put_u32_le(h.version);
    out.put_u32_le(h.compute_nodes);
    out.put_u32_le(h.io_nodes);
    out.put_u32_le(h.block_bytes);
    out.put_u64_le(h.seed);
}

/// Decode the trace header, advancing `buf`.
pub fn decode_header(buf: &mut &[u8]) -> Result<TraceHeader, DecodeError> {
    if buf.remaining() < MAGIC.len() + 24 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != TraceHeader::VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    Ok(TraceHeader {
        version,
        compute_nodes: buf.get_u32_le(),
        io_nodes: buf.get_u32_le(),
        block_bytes: buf.get_u32_le(),
        seed: buf.get_u64_le(),
    })
}

/// Encode one event record.
pub fn encode_event(e: &Event, out: &mut Vec<u8>) {
    out.put_u8(e.body.tag());
    out.put_u64_le(e.local_time.as_micros());
    match e.body {
        EventBody::JobStart { job, nodes, traced } => {
            out.put_u32_le(job);
            out.put_u16_le(nodes);
            out.put_u8(u8::from(traced));
        }
        EventBody::JobEnd { job } => out.put_u32_le(job),
        EventBody::Open {
            job,
            file,
            session,
            mode,
            access,
            created,
        } => {
            out.put_u32_le(job);
            out.put_u32_le(file);
            out.put_u32_le(session);
            out.put_u8(mode);
            out.put_u8(access.code());
            out.put_u8(u8::from(created));
        }
        EventBody::Close { session, size } => {
            out.put_u32_le(session);
            out.put_u64_le(size);
        }
        EventBody::Read {
            session,
            offset,
            bytes,
        }
        | EventBody::Write {
            session,
            offset,
            bytes,
        } => {
            out.put_u32_le(session);
            out.put_u64_le(offset);
            out.put_u32_le(bytes);
        }
        EventBody::Delete { job, file } => {
            out.put_u32_le(job);
            out.put_u32_le(file);
        }
    }
}

/// Decode one event record, advancing `buf`.
pub fn decode_event(buf: &mut &[u8]) -> Result<Event, DecodeError> {
    if buf.remaining() < 9 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    let local_time = SimTime::from_micros(buf.get_u64_le());
    let need = |buf: &&[u8], n: usize| {
        if buf.remaining() < n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    };
    let body = match tag {
        1 => {
            need(buf, 7)?;
            EventBody::JobStart {
                job: buf.get_u32_le(),
                nodes: buf.get_u16_le(),
                traced: buf.get_u8() != 0,
            }
        }
        2 => {
            need(buf, 4)?;
            EventBody::JobEnd {
                job: buf.get_u32_le(),
            }
        }
        3 => {
            need(buf, 15)?;
            EventBody::Open {
                job: buf.get_u32_le(),
                file: buf.get_u32_le(),
                session: buf.get_u32_le(),
                mode: buf.get_u8(),
                access: {
                    let code = buf.get_u8();
                    AccessKind::from_code(code).ok_or(DecodeError::BadAccess(code))?
                },
                created: buf.get_u8() != 0,
            }
        }
        4 => {
            need(buf, 12)?;
            EventBody::Close {
                session: buf.get_u32_le(),
                size: buf.get_u64_le(),
            }
        }
        5 | 6 => {
            need(buf, 16)?;
            let session = buf.get_u32_le();
            let offset = buf.get_u64_le();
            let bytes = buf.get_u32_le();
            if tag == 5 {
                EventBody::Read {
                    session,
                    offset,
                    bytes,
                }
            } else {
                EventBody::Write {
                    session,
                    offset,
                    bytes,
                }
            }
        }
        7 => {
            need(buf, 8)?;
            EventBody::Delete {
                job: buf.get_u32_le(),
                file: buf.get_u32_le(),
            }
        }
        t => return Err(DecodeError::BadTag(t)),
    };
    Ok(Event { local_time, body })
}

/// Encoded size of one event, in bytes (used to model the 4 KB node buffer).
pub fn encoded_len(e: &Event) -> usize {
    9 + e.body.payload_len()
}

/// Bytes of payload following the 9-byte (tag + timestamp) prefix, per
/// record tag; `None` for unknown tags. Used by the streaming reader to
/// size its reads.
pub fn payload_len(tag: u8) -> Option<usize> {
    match tag {
        1 => Some(7),      // JobStart: job u32 + nodes u16 + traced u8
        2 => Some(4),      // JobEnd: job u32
        3 => Some(15),     // Open: job + file + session + mode + access + created
        4 => Some(12),     // Close: session u32 + size u64
        5 | 6 => Some(16), // Read/Write: session u32 + offset u64 + bytes u32
        7 => Some(8),      // Delete: job u32 + file u32
        _ => None,
    }
}

/// Outcome counters of a tolerant decode pass ([`decode_events_tolerant`]
/// and `file::read_trace_tolerant`): what was recovered, what was lost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Records successfully decoded.
    pub records_decoded: u64,
    /// Corrupt regions skipped (each region may hide one or more records).
    pub records_skipped: u64,
    /// Total bytes discarded while resynchronizing.
    pub bytes_skipped: u64,
    /// The input ended mid-record (or mid-structure) and the tail was
    /// unrecoverable.
    pub truncated: bool,
}

impl DecodeStats {
    /// Fold another pass's counters into this one.
    pub fn merge(&mut self, other: &DecodeStats) {
        self.records_decoded += other.records_decoded;
        self.records_skipped += other.records_skipped;
        self.bytes_skipped += other.bytes_skipped;
        self.truncated |= other.truncated;
    }
}

/// Records a resync candidate must chain-decode before we accept it. One
/// lucky byte can masquerade as a tag; three consecutive well-formed
/// records starting from a wrong offset is vanishingly unlikely.
const RESYNC_CHAIN: usize = 3;

pub(crate) fn chain_validates(mut buf: &[u8]) -> bool {
    for _ in 0..RESYNC_CHAIN {
        if buf.is_empty() {
            return true;
        }
        if decode_event(&mut buf).is_err() {
            return false;
        }
    }
    true
}

/// Decode a flat record stream, resynchronizing past corrupt bytes
/// instead of aborting.
///
/// On a record error the decoder scans forward one byte at a time until
/// it finds an offset where [`RESYNC_CHAIN`] consecutive records (or the
/// clean end of the buffer) parse, then resumes there. Every uncorrupted
/// record downstream of a corrupt region is therefore recovered; the
/// region itself is reported in [`DecodeStats`], never silently dropped.
pub fn decode_events_tolerant(mut buf: &[u8]) -> (Vec<Event>, DecodeStats) {
    let mut events = Vec::new();
    let mut stats = DecodeStats::default();
    while !buf.is_empty() {
        let before = buf;
        match decode_event(&mut buf) {
            Ok(e) => {
                events.push(e);
                stats.records_decoded += 1;
            }
            Err(err) => {
                let mut resumed = false;
                for skip in 1..before.len() {
                    if chain_validates(&before[skip..]) {
                        stats.records_skipped += 1;
                        stats.bytes_skipped += skip as u64;
                        buf = &before[skip..];
                        resumed = true;
                        break;
                    }
                }
                if !resumed {
                    // Nothing decodable remains; charge the tail.
                    stats.bytes_skipped += before.len() as u64;
                    if matches!(err, DecodeError::Truncated) {
                        stats.truncated = true;
                    } else {
                        stats.records_skipped += 1;
                    }
                    buf = &[];
                }
            }
        }
    }
    (events, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        let t = SimTime::from_micros;
        vec![
            Event {
                local_time: t(0),
                body: EventBody::JobStart {
                    job: 7,
                    nodes: 64,
                    traced: true,
                },
            },
            Event {
                local_time: t(10),
                body: EventBody::Open {
                    job: 7,
                    file: 3,
                    session: 12,
                    mode: 0,
                    access: AccessKind::ReadWrite,
                    created: true,
                },
            },
            Event {
                local_time: t(20),
                body: EventBody::Read {
                    session: 12,
                    offset: u64::MAX - 5,
                    bytes: u32::MAX,
                },
            },
            Event {
                local_time: t(30),
                body: EventBody::Write {
                    session: 12,
                    offset: 4096,
                    bytes: 512,
                },
            },
            Event {
                local_time: t(40),
                body: EventBody::Close {
                    session: 12,
                    size: 1 << 40,
                },
            },
            Event {
                local_time: t(50),
                body: EventBody::Delete { job: 7, file: 3 },
            },
            Event {
                local_time: t(60),
                body: EventBody::JobEnd { job: 7 },
            },
        ]
    }

    #[test]
    fn events_round_trip() {
        for e in sample_events() {
            let mut buf = Vec::new();
            encode_event(&e, &mut buf);
            let mut slice = buf.as_slice();
            let back = decode_event(&mut slice).unwrap();
            assert_eq!(back, e);
            assert!(slice.is_empty(), "no trailing bytes");
        }
    }

    #[test]
    fn stream_of_events_round_trips() {
        let events = sample_events();
        let mut buf = Vec::new();
        for e in &events {
            encode_event(e, &mut buf);
        }
        let mut slice = buf.as_slice();
        let mut back = Vec::new();
        while !slice.is_empty() {
            back.push(decode_event(&mut slice).unwrap());
        }
        assert_eq!(back, events);
    }

    #[test]
    fn header_round_trips() {
        let h = TraceHeader {
            version: TraceHeader::VERSION,
            compute_nodes: 128,
            io_nodes: 10,
            block_bytes: 4096,
            seed: 4994,
        };
        let mut buf = Vec::new();
        encode_header(&h, &mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(decode_header(&mut slice).unwrap(), h);
        assert!(slice.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = vec![b'X'; 40];
        let mut slice = buf.as_mut_slice() as &[u8];
        assert_eq!(decode_header(&mut slice), Err(DecodeError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let e = sample_events()[2];
        let mut buf = Vec::new();
        encode_event(&e, &mut buf);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert_eq!(decode_event(&mut slice), Err(DecodeError::Truncated));
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf = vec![99u8];
        buf.extend_from_slice(&[0u8; 8]);
        let mut slice = buf.as_slice();
        assert_eq!(decode_event(&mut slice), Err(DecodeError::BadTag(99)));
    }

    #[test]
    fn tolerant_decode_of_clean_stream_is_lossless() {
        let events = sample_events();
        let mut buf = Vec::new();
        for e in &events {
            encode_event(e, &mut buf);
        }
        let (decoded, stats) = decode_events_tolerant(&buf);
        assert_eq!(decoded, events);
        assert_eq!(
            stats,
            DecodeStats {
                records_decoded: events.len() as u64,
                ..DecodeStats::default()
            }
        );
    }

    #[test]
    fn tolerant_decode_resyncs_past_a_clobbered_record() {
        let events = sample_events();
        let mut buf = Vec::new();
        let mut offsets = vec![0usize];
        for e in &events {
            encode_event(e, &mut buf);
            offsets.push(buf.len());
        }
        // Clobber the middle record entirely (0xFF is never a valid tag).
        let victim = events.len() / 2;
        for b in &mut buf[offsets[victim]..offsets[victim + 1]] {
            *b = 0xFF;
        }
        let (decoded, stats) = decode_events_tolerant(&buf);
        let survivors: Vec<Event> = events
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != victim)
            .map(|(_, e)| *e)
            .collect();
        assert_eq!(decoded, survivors, "all uncorrupted records recovered");
        assert_eq!(stats.records_skipped, 1);
        assert_eq!(
            stats.bytes_skipped,
            (offsets[victim + 1] - offsets[victim]) as u64
        );
        assert!(!stats.truncated);
    }

    #[test]
    fn tolerant_decode_reports_truncation() {
        let events = sample_events();
        let mut buf = Vec::new();
        for e in &events {
            encode_event(e, &mut buf);
        }
        buf.truncate(buf.len() - 3);
        let (decoded, stats) = decode_events_tolerant(&buf);
        assert_eq!(decoded.len(), events.len() - 1);
        assert!(stats.truncated);
    }

    #[test]
    fn tolerant_decode_never_panics_on_garbage() {
        let garbage: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let (_, stats) = decode_events_tolerant(&garbage);
        assert!(stats.records_decoded + stats.records_skipped > 0 || stats.bytes_skipped > 0);
    }

    #[test]
    fn payload_len_matches_actual_encoding() {
        for e in sample_events() {
            let mut v = Vec::new();
            encode_event(&e, &mut v);
            assert_eq!(v.len(), encoded_len(&e), "{e:?}");
            assert_eq!(
                v.len() - 9,
                payload_len(e.body.tag()).expect("valid tag"),
                "{e:?}"
            );
        }
        assert_eq!(payload_len(0), None);
        assert_eq!(payload_len(99), None);
    }

    #[test]
    fn records_are_compact_on_the_wire() {
        // The paper buffered ~170 records per 4 KB block; our encoding must
        // be in the same regime for the buffering model to be faithful.
        for e in sample_events() {
            assert!(encoded_len(&e) <= 32, "record too large: {e:?}");
        }
    }
}
