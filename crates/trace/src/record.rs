//! Event records.
//!
//! The CHARISMA record set was designed to suit both SIMD and MIMD systems
//! (paper §3.1 and its technical-report companion). We keep the subset the
//! iPSC study actually used: job starts/ends, opens, closes, reads, writes,
//! and deletions, plus a self-descriptive trace header.
//!
//! Identity model:
//! * a [`FileId`] names a *path* — stable across jobs, used for cross-job
//!   sharing detection and as cache-block identity;
//! * a [`SessionId`] names one parallel open of a file by one job — the
//!   paper's operational unit of "a file" in its per-file statistics (a
//!   path opened by two different jobs counts twice in the census);
//! * `(SessionId, node)` names one node's open instance — the unit of the
//!   per-node sequentiality analysis.

use charisma_ipsc::SimTime;

/// Identifies a job (one `NQS` submission / program run).
pub type JobId = u32;

/// Identifies a file path, stable for the whole trace.
pub type FileId = u32;

/// Identifies one job-level open session of a file.
pub type SessionId = u32;

/// Pseudo-node index used for records generated on the service node (job
/// starts and ends, which the paper recorded "through a separate mechanism").
pub const SERVICE_NODE: u16 = u16::MAX;

/// How an open intends to use the file. CFS, like Unix, took open flags;
/// the trace records them so analyses can distinguish an open-for-read from
/// an open-for-write even when no requests follow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Open for reading only.
    Read,
    /// Open for writing only.
    Write,
    /// Open for both.
    ReadWrite,
}

impl AccessKind {
    /// Stable wire code.
    pub fn code(self) -> u8 {
        match self {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
            AccessKind::ReadWrite => 2,
        }
    }

    /// Decode a wire code.
    pub fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(AccessKind::Read),
            1 => Some(AccessKind::Write),
            2 => Some(AccessKind::ReadWrite),
            _ => None,
        }
    }
}

/// The payload of one event record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventBody {
    /// A job began, on `nodes` compute nodes. `traced` distinguishes jobs
    /// whose CFS library was instrumented from jobs (system programs, stale
    /// binaries) that only appear via the job-start/end mechanism.
    JobStart {
        /// Job identity.
        job: JobId,
        /// Number of compute nodes allocated (a power of two on the iPSC).
        nodes: u16,
        /// Whether the job's file I/O is present in the trace.
        traced: bool,
    },
    /// A job ended.
    JobEnd {
        /// Job identity.
        job: JobId,
    },
    /// One node opened a file. All nodes of a parallel open share the
    /// `session` id.
    Open {
        /// The job performing the open.
        job: JobId,
        /// Path identity.
        file: FileId,
        /// Job-level open-session identity.
        session: SessionId,
        /// CFS I/O mode (0-3).
        mode: u8,
        /// Open flags.
        access: AccessKind,
        /// True if this open created the file (used to identify temporary
        /// files: created and deleted by the same job).
        created: bool,
    },
    /// One node closed its open instance.
    Close {
        /// Session being closed.
        session: SessionId,
        /// File size, in bytes, observed at close (Figure 3's metric).
        size: u64,
    },
    /// One read request.
    Read {
        /// Session the request belongs to.
        session: SessionId,
        /// Starting file offset of the request.
        offset: u64,
        /// Request length in bytes.
        bytes: u32,
    },
    /// One write request.
    Write {
        /// Session the request belongs to.
        session: SessionId,
        /// Starting file offset of the request.
        offset: u64,
        /// Request length in bytes.
        bytes: u32,
    },
    /// A file was deleted.
    Delete {
        /// The job performing the deletion.
        job: JobId,
        /// Path identity.
        file: FileId,
    },
}

impl EventBody {
    /// Wire tag for the codec.
    pub fn tag(&self) -> u8 {
        match self {
            EventBody::JobStart { .. } => 1,
            EventBody::JobEnd { .. } => 2,
            EventBody::Open { .. } => 3,
            EventBody::Close { .. } => 4,
            EventBody::Read { .. } => 5,
            EventBody::Write { .. } => 6,
            EventBody::Delete { .. } => 7,
        }
    }

    /// The same event with its session and file identifiers rebased by
    /// `base`.
    ///
    /// Sharded generation runs each shard on an independent CFS whose
    /// session/file counters all start at zero; rebasing by a per-shard
    /// base (shard id in the high bits) keeps identities globally unique
    /// in the merged stream. Job identifiers come from the global mix and
    /// are already unique, so they are left untouched.
    #[must_use]
    pub fn with_id_base(self, base: u32) -> EventBody {
        match self {
            EventBody::Open {
                job,
                file,
                session,
                mode,
                access,
                created,
            } => EventBody::Open {
                job,
                file: file + base,
                session: session + base,
                mode,
                access,
                created,
            },
            EventBody::Close { session, size } => EventBody::Close {
                session: session + base,
                size,
            },
            EventBody::Read {
                session,
                offset,
                bytes,
            } => EventBody::Read {
                session: session + base,
                offset,
                bytes,
            },
            EventBody::Write {
                session,
                offset,
                bytes,
            } => EventBody::Write {
                session: session + base,
                offset,
                bytes,
            },
            EventBody::Delete { job, file } => EventBody::Delete {
                job,
                file: file + base,
            },
            job_event @ (EventBody::JobStart { .. } | EventBody::JobEnd { .. }) => job_event,
        }
    }

    /// Bytes of payload following the 9-byte (tag + timestamp) prefix.
    /// Total by construction, unlike [`crate::codec::payload_len`] which
    /// must handle arbitrary on-disk tags.
    pub fn payload_len(&self) -> usize {
        match self {
            EventBody::JobStart { .. } => 7,
            EventBody::JobEnd { .. } => 4,
            EventBody::Open { .. } => 15,
            EventBody::Close { .. } => 12,
            EventBody::Read { .. } | EventBody::Write { .. } => 16,
            EventBody::Delete { .. } => 8,
        }
    }
}

/// One record: when (on the recording node's own drifting clock) and what.
/// The recording node's identity is kept at the enclosing block level, as in
/// the real format (records from one node share a buffer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Node-local timestamp (the value of the node's drifting clock).
    pub local_time: SimTime,
    /// What happened.
    pub body: EventBody,
}

/// Self-descriptive trace-file header, "containing enough information to
/// make the file self-descriptive" (paper §3.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version.
    pub version: u32,
    /// Number of compute nodes on the traced machine.
    pub compute_nodes: u32,
    /// Number of I/O nodes on the traced machine.
    pub io_nodes: u32,
    /// File-system block size in bytes (4096 for CFS).
    pub block_bytes: u32,
    /// RNG seed used by the synthetic workload generator (provenance).
    pub seed: u64,
}

impl TraceHeader {
    /// Current format version.
    pub const VERSION: u32 = 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_codes_round_trip() {
        for k in [AccessKind::Read, AccessKind::Write, AccessKind::ReadWrite] {
            assert_eq!(AccessKind::from_code(k.code()), Some(k));
        }
        assert_eq!(AccessKind::from_code(9), None);
    }

    #[test]
    fn tags_are_distinct() {
        let bodies = [
            EventBody::JobStart {
                job: 0,
                nodes: 1,
                traced: true,
            },
            EventBody::JobEnd { job: 0 },
            EventBody::Open {
                job: 0,
                file: 0,
                session: 0,
                mode: 0,
                access: AccessKind::Read,
                created: false,
            },
            EventBody::Close {
                session: 0,
                size: 0,
            },
            EventBody::Read {
                session: 0,
                offset: 0,
                bytes: 0,
            },
            EventBody::Write {
                session: 0,
                offset: 0,
                bytes: 0,
            },
            EventBody::Delete { job: 0, file: 0 },
        ];
        let mut tags: Vec<u8> = bodies.iter().map(|b| b.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), bodies.len());
    }

    #[test]
    fn event_is_compact() {
        // Millions of events are held in memory; keep the struct small.
        assert!(std::mem::size_of::<Event>() <= 32);
    }
}
