//! Trace collection: per-node buffering and the service-node collector.
//!
//! "Since large messages on the iPSC are broken into 4 KB blocks, we chose
//! to create a buffer of that size on each node to hold local event records.
//! This buffer allowed us to reduce the number of messages sent by over
//! 90%." (paper §3.1). Each flushed block carries two timestamps — the
//! node's clock when the block left the node and the collector's clock when
//! it arrived — which postprocessing uses to estimate per-node clock drift.

use charisma_ipsc::{DriftClock, Duration, SimTime};

use crate::codec;
use crate::record::{Event, EventBody, TraceHeader, SERVICE_NODE};

/// Size of each node's record buffer, bytes (one iPSC packet).
pub const NODE_BUFFER_BYTES: usize = 4096;

/// One flushed buffer of records from one node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Recording node (or [`SERVICE_NODE`]).
    pub node: u16,
    /// Node-clock timestamp stamped as the block left the node.
    pub send_local: SimTime,
    /// Collector-clock timestamp stamped on receipt.
    pub recv_service: SimTime,
    /// The records, in the order the node generated them.
    pub events: Vec<Event>,
}

/// A complete collected trace: header plus blocks in arrival order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Self-descriptive header.
    pub header: TraceHeader,
    /// Blocks in the order the collector received them.
    pub blocks: Vec<Block>,
}

impl Trace {
    /// Total number of event records in the trace.
    pub fn event_count(&self) -> usize {
        self.blocks.iter().map(|b| b.events.len()).sum()
    }

    /// Iterate over `(node, event)` pairs in collector-arrival order (the
    /// "partially ordered" raw order the paper describes).
    pub fn raw_events(&self) -> impl Iterator<Item = (u16, &Event)> {
        self.blocks
            .iter()
            .flat_map(|b| b.events.iter().map(move |e| (b.node, e)))
    }
}

struct NodeBuffer {
    events: Vec<Event>,
    used_bytes: usize,
}

impl NodeBuffer {
    fn new() -> Self {
        NodeBuffer {
            events: Vec::new(),
            used_bytes: 0,
        }
    }
}

/// Builds a [`Trace`] during simulation, reproducing the collection path:
/// records buffer per node and flush to the collector when 4 KB fills up.
pub struct TraceBuilder {
    header: TraceHeader,
    node_clocks: Vec<DriftClock>,
    service_clock: DriftClock,
    /// Modeled network latency of a flush message, per node (precomputed by
    /// the caller from the machine's topology).
    flush_latency: Vec<Duration>,
    buffers: Vec<NodeBuffer>,
    service_buffer: NodeBuffer,
    blocks: Vec<Block>,
    messages_saved: u64,
    messages_sent: u64,
}

impl TraceBuilder {
    /// Create a builder.
    ///
    /// `node_clocks[i]` is compute node `i`'s clock; `flush_latency[i]` the
    /// modeled delay of its 4 KB flush message to the service node.
    pub fn new(
        header: TraceHeader,
        node_clocks: Vec<DriftClock>,
        service_clock: DriftClock,
        flush_latency: Vec<Duration>,
    ) -> Self {
        assert_eq!(
            node_clocks.len(),
            flush_latency.len(),
            "one flush latency per node"
        );
        let buffers = (0..node_clocks.len()).map(|_| NodeBuffer::new()).collect();
        TraceBuilder {
            header,
            node_clocks,
            service_clock,
            flush_latency,
            buffers,
            service_buffer: NodeBuffer::new(),
            blocks: Vec::new(),
            messages_saved: 0,
            messages_sent: 0,
        }
    }

    /// Record an event generated on compute node `node` at true time
    /// `true_time`. The stored timestamp is the *node clock's* reading.
    pub fn log(&mut self, node: usize, true_time: SimTime, body: EventBody) {
        let local_time = self.node_clocks[node].local_time(true_time);
        let event = Event { local_time, body };
        let len = codec::encoded_len(&event);
        if self.buffers[node].used_bytes + len > NODE_BUFFER_BYTES {
            self.flush(node, true_time);
        }
        let buf = &mut self.buffers[node];
        buf.events.push(event);
        buf.used_bytes += len;
        self.messages_saved += 1;
    }

    /// Record an event generated on the service node (job starts/ends).
    pub fn log_service(&mut self, true_time: SimTime, body: EventBody) {
        let local_time = self.service_clock.local_time(true_time);
        self.service_buffer.events.push(Event { local_time, body });
    }

    /// Flush node `node`'s buffer to the collector at true time `true_time`.
    fn flush(&mut self, node: usize, true_time: SimTime) {
        let buf = &mut self.buffers[node];
        if buf.events.is_empty() {
            return;
        }
        let send_local = self.node_clocks[node].local_time(true_time);
        let recv_true = true_time + self.flush_latency[node];
        let recv_service = self.service_clock.local_time(recv_true);
        self.blocks.push(Block {
            node: node as u16,
            send_local,
            recv_service,
            events: std::mem::take(&mut buf.events),
        });
        buf.used_bytes = 0;
        self.messages_sent += 1;
        self.messages_saved = self.messages_saved.saturating_sub(1);
    }

    /// Fraction of messages avoided by buffering (the paper reports >90 %).
    pub fn message_reduction(&self) -> f64 {
        let total = self.messages_saved + self.messages_sent;
        if total == 0 {
            0.0
        } else {
            self.messages_saved as f64 / total as f64
        }
    }

    /// Flush every remaining buffer (at `end_time`) and assemble the trace.
    pub fn finish(mut self, end_time: SimTime) -> Trace {
        for node in 0..self.buffers.len() {
            self.flush(node, end_time);
        }
        if !self.service_buffer.events.is_empty() {
            let send_local = self.service_clock.local_time(end_time);
            self.blocks.push(Block {
                node: SERVICE_NODE,
                send_local,
                recv_service: send_local,
                events: std::mem::take(&mut self.service_buffer.events),
            });
        }
        Trace {
            header: self.header,
            blocks: self.blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AccessKind;

    fn header() -> TraceHeader {
        TraceHeader {
            version: TraceHeader::VERSION,
            compute_nodes: 4,
            io_nodes: 1,
            block_bytes: 4096,
            seed: 1,
        }
    }

    fn builder(nodes: usize) -> TraceBuilder {
        TraceBuilder::new(
            header(),
            vec![DriftClock::PERFECT; nodes],
            DriftClock::PERFECT,
            vec![Duration::from_micros(100); nodes],
        )
    }

    fn read_event(session: u32, offset: u64) -> EventBody {
        EventBody::Read {
            session,
            offset,
            bytes: 512,
        }
    }

    #[test]
    fn events_buffer_until_4k() {
        let enc = crate::codec::encoded_len(&Event {
            local_time: SimTime::ZERO,
            body: read_event(0, 0),
        });
        let capacity = (NODE_BUFFER_BYTES / enc) as u64;
        let mut b = builder(1);
        for i in 0..capacity {
            b.log(0, SimTime::from_micros(i), read_event(0, i * 512));
        }
        assert!(b.blocks.is_empty(), "nothing flushed below 4 KB");
        b.log(0, SimTime::from_micros(999), read_event(0, 0));
        assert_eq!(b.blocks.len(), 1, "overflow record forces a flush");
        assert_eq!(b.blocks[0].events.len(), capacity as usize);
    }

    #[test]
    fn finish_flushes_stragglers() {
        let mut b = builder(2);
        b.log(0, SimTime::from_micros(1), read_event(0, 0));
        b.log(1, SimTime::from_micros(2), read_event(1, 0));
        let t = b.finish(SimTime::from_secs(1));
        assert_eq!(t.blocks.len(), 2);
        assert_eq!(t.event_count(), 2);
    }

    #[test]
    fn block_timestamps_use_the_right_clocks() {
        let node_clock = DriftClock::new(100.0, 1000.0);
        let mut b = TraceBuilder::new(
            header(),
            vec![node_clock],
            DriftClock::PERFECT,
            vec![Duration::from_micros(250)],
        );
        let t0 = SimTime::from_secs(100);
        b.log(0, t0, read_event(0, 0));
        let trace = b.finish(t0);
        let blk = &trace.blocks[0];
        assert_eq!(blk.send_local, node_clock.local_time(t0));
        assert_eq!(
            blk.recv_service,
            t0 + Duration::from_micros(250),
            "collector stamps arrival on its own (perfect) clock"
        );
        assert_eq!(blk.events[0].local_time, node_clock.local_time(t0));
    }

    #[test]
    fn message_reduction_exceeds_90_percent() {
        // The headline instrumentation claim: buffering cut messages >90 %.
        let mut b = builder(1);
        for i in 0..10_000u64 {
            b.log(0, SimTime::from_micros(i), read_event(0, i));
        }
        assert!(
            b.message_reduction() > 0.9,
            "reduction {}",
            b.message_reduction()
        );
    }

    #[test]
    fn service_events_collect_separately() {
        let mut b = builder(1);
        b.log_service(
            SimTime::from_micros(5),
            EventBody::JobStart {
                job: 1,
                nodes: 4,
                traced: true,
            },
        );
        b.log(
            0,
            SimTime::from_micros(6),
            EventBody::Open {
                job: 1,
                file: 0,
                session: 0,
                mode: 0,
                access: AccessKind::Read,
                created: false,
            },
        );
        let t = b.finish(SimTime::from_secs(1));
        assert_eq!(t.event_count(), 2);
        assert!(t.blocks.iter().any(|b| b.node == SERVICE_NODE));
    }

    #[test]
    fn raw_events_preserve_per_node_order() {
        let mut b = builder(1);
        for i in 0..500u64 {
            b.log(0, SimTime::from_micros(i), read_event(0, i * 10));
        }
        let t = b.finish(SimTime::from_secs(1));
        let offsets: Vec<u64> = t
            .raw_events()
            .filter_map(|(_, e)| match e.body {
                EventBody::Read { offset, .. } => Some(offset),
                _ => None,
            })
            .collect();
        assert_eq!(offsets.len(), 500);
        assert!(offsets.windows(2).all(|w| w[0] < w[1]));
    }
}
