//! Trace postprocessing: clock rectification and chronological sorting.
//!
//! "We partially compensated for the asynchrony by timestamping each block
//! of records when it left the node and again when it was received at the
//! data collector. From the difference between the two we could
//! approximately adjust the event order … Nonetheless, it is still an
//! approximation, so much of our analysis is based on spatial, rather than
//! temporal, information." (paper §3.2)
//!
//! For each node we fit a linear model `collector_time ≈ a + b·local_time`
//! by least squares over that node's (send, receive) block-timestamp pairs,
//! then map every record timestamp into the collector frame and merge-sort.
//! The network flush latency biases `a` upward by a roughly constant amount
//! for every node, which shifts all estimates together and is harmless for
//! ordering — the same property the paper relied on.

use charisma_ipsc::SimTime;

use crate::builder::Trace;
use crate::record::{EventBody, SERVICE_NODE};

/// An event in the rectified, globally ordered stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrderedEvent {
    /// Estimated collector-frame timestamp.
    pub time: SimTime,
    /// Recording node ([`SERVICE_NODE`] for job start/end records).
    pub node: u16,
    /// The record payload.
    pub body: EventBody,
}

/// Per-node linear clock-correction model.
#[derive(Clone, Copy, Debug)]
pub struct ClockFit {
    /// Intercept: collector time at node-local time zero, µs.
    pub a: f64,
    /// Slope: collector µs per node-local µs (1 + relative drift).
    pub b: f64,
}

impl ClockFit {
    /// Identity correction.
    pub const IDENTITY: ClockFit = ClockFit { a: 0.0, b: 1.0 };

    /// Map a node-local timestamp into the collector frame.
    pub fn correct(&self, local: SimTime) -> SimTime {
        let t = self.a + self.b * local.as_micros() as f64;
        SimTime::from_micros(t.max(0.0).round() as u64)
    }
}

/// Fit `recv ≈ a + b·send` by ordinary least squares.
///
/// With fewer than two distinct send timestamps the slope is pinned at 1
/// and only the offset is estimated (the paper's fallback for nodes that
/// flushed rarely).
pub fn fit_clock(pairs: &[(SimTime, SimTime)]) -> ClockFit {
    if pairs.is_empty() {
        return ClockFit::IDENTITY;
    }
    let n = pairs.len() as f64;
    let mean_x = pairs.iter().map(|p| p.0.as_micros() as f64).sum::<f64>() / n;
    let mean_y = pairs.iter().map(|p| p.1.as_micros() as f64).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (x, y) in pairs {
        let dx = x.as_micros() as f64 - mean_x;
        let dy = y.as_micros() as f64 - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
    }
    if sxx < 1e-9 {
        // One distinct timestamp: offset-only correction.
        return ClockFit {
            a: mean_y - mean_x,
            b: 1.0,
        };
    }
    let b = sxy / sxx;
    // Guard against degenerate fits on adversarial block spacing: a real
    // clock's rate error is tiny, so clamp the slope near 1.
    let b = b.clamp(0.99, 1.01);
    ClockFit {
        a: mean_y - b * mean_x,
        b,
    }
}

/// Estimate per-node clock corrections from a trace's block timestamps.
///
/// Returns one [`ClockFit`] per compute node (indexed by node id).
pub fn fit_all_clocks(trace: &Trace) -> Vec<ClockFit> {
    let nodes = trace.header.compute_nodes as usize;
    let mut pairs: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); nodes];
    for block in &trace.blocks {
        if block.node != SERVICE_NODE {
            pairs[block.node as usize].push((block.send_local, block.recv_service));
        }
    }
    pairs.iter().map(|p| fit_clock(p)).collect()
}

/// Rectify and chronologically sort a collected trace.
///
/// The sort is stable with per-node record order preserved (a node's own
/// records are genuinely ordered; only cross-node order is estimated).
pub fn postprocess(trace: &Trace) -> Vec<OrderedEvent> {
    let fits = fit_all_clocks(trace);
    let mut out = Vec::with_capacity(trace.event_count());
    for block in &trace.blocks {
        let fit = if block.node == SERVICE_NODE {
            ClockFit::IDENTITY
        } else {
            fits[block.node as usize]
        };
        for e in &block.events {
            out.push(OrderedEvent {
                time: fit.correct(e.local_time),
                node: block.node,
                body: e.body,
            });
        }
    }
    // Stable sort keeps per-node order for equal timestamps; blocks of one
    // node were already appended in generation order.
    out.sort_by_key(|e| e.time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::record::TraceHeader;
    use charisma_ipsc::{DriftClock, Duration};

    fn header(nodes: u32) -> TraceHeader {
        TraceHeader {
            version: TraceHeader::VERSION,
            compute_nodes: nodes,
            io_nodes: 1,
            block_bytes: 4096,
            seed: 1,
        }
    }

    #[test]
    fn fit_recovers_drift_exactly_without_noise() {
        let clock = DriftClock::new(60.0, 2000.0);
        let pairs: Vec<_> = (1..20u64)
            .map(|i| {
                let true_t = SimTime::from_secs(i * 500);
                (clock.local_time(true_t), true_t)
            })
            .collect();
        let fit = fit_clock(&pairs);
        // Inverting the clock: b should be ~1/(1+60ppm), a ~ -offset/(1+d).
        assert!((fit.b - 1.0 / 1.000060).abs() < 1e-6, "b={}", fit.b);
        for (local, true_t) in pairs {
            let err = fit.correct(local).as_micros().abs_diff(true_t.as_micros());
            assert!(err <= 2, "correction error {err}us");
        }
    }

    #[test]
    fn fit_single_point_is_offset_only() {
        let fit = fit_clock(&[(SimTime::from_secs(10), SimTime::from_secs(11))]);
        assert_eq!(fit.b, 1.0);
        assert_eq!(fit.correct(SimTime::from_secs(10)), SimTime::from_secs(11));
    }

    #[test]
    fn fit_empty_is_identity() {
        let fit = fit_clock(&[]);
        let t = SimTime::from_secs(42);
        assert_eq!(fit.correct(t), t);
    }

    #[test]
    fn postprocess_restores_cross_node_order() {
        // Two nodes with strong opposite drifts interleave writes; raw trace
        // order (by arrival) and local timestamps disagree with true order.
        let clocks = vec![
            DriftClock::new(90.0, 4000.0),
            DriftClock::new(-90.0, -4000.0),
        ];
        let mut b = TraceBuilder::new(
            header(2),
            clocks,
            DriftClock::PERFECT,
            vec![Duration::from_micros(300); 2],
        );
        let mut truth = Vec::new();
        // Alternate events between nodes, 10 s apart so drift accumulates.
        for i in 0..400u64 {
            let node = (i % 2) as usize;
            let t = SimTime::from_secs(10 + i * 10);
            b.log(
                node,
                t,
                EventBody::Read {
                    session: i as u32,
                    offset: 0,
                    bytes: 1,
                },
            );
            truth.push(i as u32);
        }
        let trace = b.finish(SimTime::from_secs(100_000));
        let ordered = postprocess(&trace);
        let sessions: Vec<u32> = ordered
            .iter()
            .filter_map(|e| match e.body {
                EventBody::Read { session, .. } => Some(session),
                _ => None,
            })
            .collect();
        // The estimated order should match the true order almost everywhere
        // (the paper only claims a "closer approximation").
        let misplaced = sessions.iter().zip(&truth).filter(|(a, b)| a != b).count();
        assert!(
            misplaced * 20 <= sessions.len(),
            "{misplaced}/{} events misordered",
            sessions.len()
        );
    }

    #[test]
    fn postprocess_is_a_permutation() {
        let mut b = TraceBuilder::new(
            header(3),
            vec![DriftClock::new(10.0, 0.0); 3],
            DriftClock::PERFECT,
            vec![Duration::from_micros(100); 3],
        );
        for i in 0..300u64 {
            b.log(
                (i % 3) as usize,
                SimTime::from_micros(i * 1000),
                EventBody::Write {
                    session: i as u32,
                    offset: i,
                    bytes: 8,
                },
            );
        }
        let trace = b.finish(SimTime::from_secs(10));
        let ordered = postprocess(&trace);
        assert_eq!(ordered.len(), trace.event_count());
        let mut seen: Vec<u32> = ordered
            .iter()
            .filter_map(|e| match e.body {
                EventBody::Write { session, .. } => Some(session),
                _ => None,
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn per_node_order_is_preserved() {
        let mut b = TraceBuilder::new(
            header(1),
            vec![DriftClock::new(-50.0, 12345.0)],
            DriftClock::PERFECT,
            vec![Duration::from_micros(100)],
        );
        for i in 0..1000u64 {
            b.log(
                0,
                SimTime::from_micros(i * 17),
                EventBody::Read {
                    session: 0,
                    offset: i,
                    bytes: 1,
                },
            );
        }
        let ordered = postprocess(&b.finish(SimTime::from_secs(1)));
        let offsets: Vec<u64> = ordered
            .iter()
            .filter_map(|e| match e.body {
                EventBody::Read { offset, .. } => Some(offset),
                _ => None,
            })
            .collect();
        assert!(
            offsets.windows(2).all(|w| w[0] < w[1]),
            "single node's order must survive postprocessing"
        );
    }
}
