//! Property tests for the trace format and postprocessing pipeline.

use charisma_ipsc::{DriftClock, Duration, SimTime};
use charisma_trace::builder::TraceBuilder;
use charisma_trace::codec;
use charisma_trace::file::{read_trace, write_trace};
use charisma_trace::merge::merge_shards;
use charisma_trace::postprocess::postprocess;
use charisma_trace::record::{AccessKind, Event, EventBody, TraceHeader};
use charisma_trace::OrderedEvent;
use proptest::prelude::*;

fn arb_body() -> impl Strategy<Value = EventBody> {
    prop_oneof![
        (any::<u32>(), any::<u16>(), any::<bool>())
            .prop_map(|(job, nodes, traced)| { EventBody::JobStart { job, nodes, traced } }),
        any::<u32>().prop_map(|job| EventBody::JobEnd { job }),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            0u8..4,
            0u8..3,
            any::<bool>()
        )
            .prop_map(|(job, file, session, mode, acc, created)| EventBody::Open {
                job,
                file,
                session,
                mode,
                access: AccessKind::from_code(acc).expect("0..3"),
                created,
            }),
        (any::<u32>(), any::<u64>()).prop_map(|(session, size)| EventBody::Close { session, size }),
        (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(session, offset, bytes)| {
            EventBody::Read {
                session,
                offset,
                bytes,
            }
        }),
        (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(session, offset, bytes)| {
            EventBody::Write {
                session,
                offset,
                bytes,
            }
        }),
        (any::<u32>(), any::<u32>()).prop_map(|(job, file)| EventBody::Delete { job, file }),
    ]
}

fn arb_event() -> impl Strategy<Value = Event> {
    (any::<u64>(), arb_body()).prop_map(|(t, body)| Event {
        local_time: SimTime::from_micros(t),
        body,
    })
}

proptest! {
    /// Every possible record encodes and decodes identically, and the
    /// modeled size matches the actual encoding.
    #[test]
    fn any_event_round_trips(e in arb_event()) {
        let mut buf = Vec::new();
        codec::encode_event(&e, &mut buf);
        prop_assert_eq!(buf.len(), codec::encoded_len(&e));
        let mut slice = buf.as_slice();
        prop_assert_eq!(codec::decode_event(&mut slice).unwrap(), e);
        prop_assert!(slice.is_empty());
    }

    /// Arbitrary byte soup never panics the decoder — it errors.
    #[test]
    fn decoder_rejects_garbage_gracefully(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut slice = bytes.as_slice();
        let _ = codec::decode_event(&mut slice); // must not panic
        let _ = read_trace(bytes.as_slice()); // must not panic
    }

    /// A trace built through the buffering pipeline always survives the
    /// file format round trip exactly.
    #[test]
    fn built_traces_round_trip(
        drift_ppm in -100f64..100.0,
        offsets in proptest::collection::vec((0u16..4, 0u64..1_000_000, any::<u32>()), 0..300),
    ) {
        let header = TraceHeader {
            version: TraceHeader::VERSION,
            compute_nodes: 4,
            io_nodes: 2,
            block_bytes: 4096,
            seed: 7,
        };
        let clocks = (0..4)
            .map(|i| DriftClock::new(drift_ppm * (i as f64 - 1.5), 100.0 * i as f64))
            .collect();
        let mut b = TraceBuilder::new(
            header,
            clocks,
            DriftClock::PERFECT,
            vec![Duration::from_micros(150); 4],
        );
        for (i, &(node, t, bytes)) in offsets.iter().enumerate() {
            b.log(
                node as usize,
                SimTime::from_micros(t),
                EventBody::Read {
                    session: i as u32,
                    offset: t,
                    bytes,
                },
            );
        }
        let trace = b.finish(SimTime::from_secs(10));
        let mut bytes_out = Vec::new();
        write_trace(&trace, &mut bytes_out).unwrap();
        prop_assert_eq!(read_trace(bytes_out.as_slice()).unwrap(), trace);
    }

    /// Postprocessing is a permutation (no records gained or lost) and
    /// preserves each node's internal order, regardless of clock drift.
    #[test]
    fn postprocess_permutes_and_keeps_node_order(
        drifts in proptest::collection::vec(-90f64..90.0, 3),
        steps in proptest::collection::vec((0u16..3, 1u64..100_000), 1..400),
    ) {
        let header = TraceHeader {
            version: TraceHeader::VERSION,
            compute_nodes: 3,
            io_nodes: 1,
            block_bytes: 4096,
            seed: 1,
        };
        let clocks = drifts.iter().map(|&d| DriftClock::new(d, d * 10.0)).collect();
        let mut b = TraceBuilder::new(
            header,
            clocks,
            DriftClock::PERFECT,
            vec![Duration::from_micros(200); 3],
        );
        // Each node gets strictly increasing true times.
        let mut node_clocks = [0u64; 3];
        let mut expected_per_node: Vec<Vec<u32>> = vec![Vec::new(); 3];
        for (i, &(node, dt)) in steps.iter().enumerate() {
            node_clocks[node as usize] += dt;
            b.log(
                node as usize,
                SimTime::from_micros(node_clocks[node as usize]),
                EventBody::Read { session: i as u32, offset: 0, bytes: 1 },
            );
            expected_per_node[node as usize].push(i as u32);
        }
        let trace = b.finish(SimTime::from_secs(100));
        let ordered = postprocess(&trace);
        prop_assert_eq!(ordered.len(), steps.len());
        // Per-node order preserved.
        let mut got_per_node: Vec<Vec<u32>> = vec![Vec::new(); 3];
        for e in &ordered {
            if let EventBody::Read { session, .. } = e.body {
                got_per_node[e.node as usize].push(session);
            }
        }
        prop_assert_eq!(got_per_node, expected_per_node);
    }

    /// The k-way shard merge is a *stable total order*: against adversarial
    /// shard timings (heavy ties in both time and node), its output equals
    /// an independent sort-based oracle — each shard stable-sorted by
    /// `(time, node)`, then globally ordered by `(time, node, shard, seq)`.
    /// Heap pop order vs. comparison sort is exactly the kind of
    /// equivalence that silently breaks when a tiebreak is dropped.
    #[test]
    fn merge_matches_sort_oracle(
        shards in proptest::collection::vec(
            proptest::collection::vec((0u64..16, 0u16..4, any::<u32>()), 0..60),
            0..6,
        ),
    ) {
        let shards: Vec<Vec<OrderedEvent>> = shards
            .into_iter()
            .map(|stream| {
                stream
                    .into_iter()
                    .map(|(t, node, session)| OrderedEvent {
                        time: SimTime::from_micros(t),
                        node,
                        body: EventBody::Read { session, offset: 0, bytes: 1 },
                    })
                    .collect()
            })
            .collect();

        let mut oracle = Vec::new();
        for (shard, stream) in shards.iter().enumerate() {
            let mut sorted = stream.clone();
            sorted.sort_by_key(|e| (e.time, e.node));
            for (seq, e) in sorted.into_iter().enumerate() {
                oracle.push(((e.time, e.node, shard, seq), e));
            }
        }
        oracle.sort_by_key(|entry| entry.0);
        let oracle: Vec<OrderedEvent> = oracle.into_iter().map(|(_, e)| e).collect();

        let merged = merge_shards(shards);
        prop_assert_eq!(merged, oracle);
    }

    /// Tolerant decoding recovers *every* uncorrupted record, in order,
    /// from a buffer whose records are clobbered in-place at arbitrary
    /// positions — and its accounting is exact: skipped bytes equal the
    /// clobbered bytes, and skipped-record count equals the number of
    /// contiguous clobbered runs (a resync can only tell a corrupt
    /// *region* apart, not the records inside it).
    ///
    /// Corrupt runs are kept ≥ 3 intact records apart: resync demands a
    /// chain of [`codec`]'s `RESYNC_CHAIN` parseable records (or a clean
    /// end of buffer) before trusting a candidate offset, so runs closer
    /// than the chain length legitimately swallow the records between
    /// them. Within that contract, recovery must be *exact*.
    #[test]
    fn tolerant_decode_recovers_all_uncorrupted_records(
        events in proptest::collection::vec(arb_event(), 1..40),
        mask_seed in any::<u64>(),
    ) {
        let mut buf = Vec::new();
        let mut spans = Vec::with_capacity(events.len());
        for e in &events {
            let start = buf.len();
            codec::encode_event(e, &mut buf);
            spans.push((start, buf.len()));
        }
        // Derive the clobber mask from a seed (splitmix-style) so the
        // shrinker works on one scalar. A record may extend the current
        // corrupt run, or start a new one only after 3 intact records.
        let mut clobbered = vec![false; events.len()];
        let mut intact_since_run = usize::MAX;
        for i in 0..events.len() {
            let mut z = mask_seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            let want = z & 3 == 0; // ~1 in 4 records
            let extends_run = i > 0 && clobbered[i - 1];
            if want && (extends_run || intact_since_run >= 3) {
                clobbered[i] = true;
                intact_since_run = 0;
            } else {
                intact_since_run = intact_since_run.saturating_add(1);
            }
        }
        let mut kept = Vec::new();
        let mut clobbered_bytes = 0u64;
        let mut runs = 0u64;
        for (i, e) in events.iter().enumerate() {
            if clobbered[i] {
                let (s, t) = spans[i];
                for b in &mut buf[s..t] {
                    *b = 0xFF;
                }
                clobbered_bytes += (t - s) as u64;
                if i == 0 || !clobbered[i - 1] {
                    runs += 1;
                }
            } else {
                kept.push(*e);
            }
        }
        let (decoded, stats) = codec::decode_events_tolerant(&buf);
        prop_assert_eq!(&decoded, &kept, "every uncorrupted record survives");
        prop_assert_eq!(stats.records_decoded, kept.len() as u64);
        prop_assert_eq!(stats.records_skipped, runs);
        prop_assert_eq!(stats.bytes_skipped, clobbered_bytes);
        prop_assert!(!stats.truncated, "in-place corruption is not truncation");
    }
}
