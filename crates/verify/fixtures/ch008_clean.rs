// Fixture: CH008 stays quiet on exact-zero guards, integer equality, and
// tolerance comparisons.
pub fn rate(sum: f64, n: u64) -> f64 {
    if sum == 0.0 {
        return 0.0;
    }
    let close = (sum - 1.0).abs() < 1e-9;
    if n == 3 && close {
        return 1.0;
    }
    sum / n as f64
}
