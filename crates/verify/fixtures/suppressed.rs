// Fixture: an inline allow directive silences exactly the named rule on
// exactly that line.
use std::collections::HashMap; // charisma-verify: allow(CH001, interned upstream type alias)

pub fn make() -> HashMap<u32, u32> {
    HashMap::new()
}
