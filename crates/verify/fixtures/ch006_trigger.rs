// Fixture: CH006 must fire on static mut, unsafe blocks, and transmute.
pub static mut COUNTER: u64 = 0;

pub fn peek(bytes: [u8; 4]) -> u32 {
    unsafe { core::mem::transmute::<[u8; 4], u32>(bytes) }
}
