// Fixture: CH004 must fire on wall clocks and ambient entropy.
pub fn stamp() -> u128 {
    let t0 = std::time::Instant::now();
    let wall = std::time::SystemTime::now();
    let mut rng = rand::thread_rng();
    let _ = (t0, wall, &mut rng);
    0
}
