// Fixture: CH009 — a suppression that stops suppressing is itself an
// error, as is a directive naming an unknown rule code.
use std::collections::BTreeMap; // charisma-verify: allow(CH001, nothing fires here)

pub fn make() -> BTreeMap<u32, u32> {
    BTreeMap::new() // charisma-verify: allow(CH999, bogus code)
}
