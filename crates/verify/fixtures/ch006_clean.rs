// Fixture: CH006 stays quiet on safe, explicit encoding.
pub static LIMIT: u64 = 4096;

pub fn peek(bytes: [u8; 4]) -> u32 {
    u32::from_le_bytes(bytes)
}
