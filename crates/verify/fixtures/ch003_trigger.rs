// Fixture: CH003 must count every panicking call in library code.
pub fn first_three(xs: &[u32]) -> (u32, u32, u32) {
    let a = xs.first().unwrap();
    let b = xs.get(1).expect("need a second element");
    let Some(c) = xs.get(2) else {
        panic!("need a third element");
    };
    (*a, *b, *c)
}
