// Fixture: CH005 must fire on truncating narrow-integer casts in the
// store's encode/decode paths.
pub fn encode_index(idx: usize, out: &mut Vec<u8>) {
    out.push(idx as u8);
}

pub fn rows_field(n: usize) -> u32 {
    n as u32
}
