// Fixture: CH008 must fire on placeholder panics and nonzero f64
// equality comparisons.
pub fn service_time(x: f64) -> f64 {
    if x == 1.5 {
        return todo!();
    }
    unreachable!()
}
