// Fixture: the sanctioned claiming pattern — scoped threads claiming work
// off an atomic cursor, results tagged with their index and reassembled
// deterministically — may use its coordination Mutex.
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub fn scan(items: &[u64]) -> Vec<u64> {
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        s.spawn(|| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(&x) = items.get(i) else { break };
            let mut guard = results.lock().unwrap_or_else(|e| e.into_inner());
            guard.push((i, x * 2));
        });
    });
    let mut tagged = results.into_inner().unwrap_or_else(|e| e.into_inner());
    tagged.sort_unstable();
    tagged.into_iter().map(|(_, x)| x).collect()
}
