// Fixture: CH002 must fire on raw f64 comparison of simulation times.
pub fn deadline_passed(now: SimTime, deadline: SimTime) -> bool {
    now.as_secs_f64() > deadline.as_secs_f64()
}
