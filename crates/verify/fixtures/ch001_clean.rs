// Fixture: CH001 must stay quiet on ordered containers, on mentions in
// comments and strings, and on hash containers confined to test code.
// A HashMap mentioned in a comment is not a violation.
use std::collections::BTreeMap;

pub fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let msg = "HashMap is only named inside this string literal";
    let _ = msg;
    let mut counts = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0u32) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_space_may_hash() {
        let mut scratch = std::collections::HashMap::new();
        scratch.insert(1, 2);
        assert_eq!(scratch.len(), 1);
    }
}
