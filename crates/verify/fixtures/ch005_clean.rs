// Fixture: CH005 stays quiet on checked conversions, widening casts, and
// float casts.
pub fn encode_index(idx: usize, out: &mut Vec<u8>) -> Result<(), ()> {
    out.push(u8::try_from(idx).map_err(|_| ())?);
    Ok(())
}

pub fn widen(x: u32) -> u64 {
    x as u64
}

pub fn ratio(x: u32) -> f64 {
    f64::from(x) / 2.0
}
