// Fixture: CH002 must stay quiet when as_secs_f64 is used for reporting
// and when integer microseconds are compared.
pub fn report(now: SimTime, deadline: SimTime) -> String {
    let late = now.as_micros() > deadline.as_micros();
    format!("t={}s late={late}", now.as_secs_f64())
}
