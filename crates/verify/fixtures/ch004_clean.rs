// Fixture: CH004 must stay quiet on explicitly seeded generators and on
// simulation time.
pub fn jitter(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let at = SimTime::from_micros(rng.next_u64() % 1000);
    at.as_micros()
}
