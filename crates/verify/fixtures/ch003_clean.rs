// Fixture: CH003 must stay quiet on typed errors, on test-only panics, and
// on idents that merely embed the words (unwrap_or, expected).
pub fn first(xs: &[u32]) -> Result<u32, &'static str> {
    let fallback = xs.len().checked_sub(1).unwrap_or(0);
    let _ = fallback;
    xs.first().copied().ok_or("empty input")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let expected = super::first(&[7]).unwrap();
        assert_eq!(expected, 7);
    }
}
