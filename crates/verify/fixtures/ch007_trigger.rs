// Fixture: CH007 must fire on detached threads, RwLock, mpsc, and a
// Mutex in a file with no thread::scope claiming pattern.
use std::sync::{mpsc, Mutex, RwLock};

pub fn run() -> i32 {
    let cell = Mutex::new(0);
    let handle = std::thread::spawn(move || 1 + 1);
    drop(cell);
    handle.join().unwrap_or(0)
}
