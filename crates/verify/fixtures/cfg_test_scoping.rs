// Fixture: a #[cfg(test)] attribute on a semicolon-terminated item, or
// stacked with further attributes, scopes exactly that item — the library
// code after it stays visible to the rules.
#[cfg(test)]
use std::collections::HashMap;

#[cfg(test)]
#[allow(dead_code)]
mod helpers {
    pub fn fill() {
        let _ = std::collections::HashMap::<u8, u8>::new();
    }
}

pub fn lib_code() -> usize {
    let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    m.len()
}
