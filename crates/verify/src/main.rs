//! `charisma-verify` — the workspace's correctness gate.
//!
//! ```text
//! charisma-verify lint [--root DIR] [--json]
//! charisma-verify determinism [--seed N] [--scale F] [--shards N]
//! charisma-verify metrics [--seed N] [--scale F] [--shards N]
//!                         [--fixture PATH] [--write]
//! charisma-verify chaos [--seed N] [--scale F] [--shards N]
//!                       [--fixture PATH] [--plan PATH] [--write]
//! charisma-verify archive [--seed N] [--scale F] [--workers N]
//!                         [--fixture PATH] [--write]
//! charisma-verify serve [--seed N] [--scale F] [--tenants N]
//! charisma-verify bench [--seed N] [--scale F] [--workers N]
//!                       [--pr N] [--out PATH] [--compare PREV.json]
//! ```
//!
//! With `--shards N`, the determinism check runs the sharded pipeline on
//! `N` worker threads — twice for repeatability, and once against the
//! serial (1-worker) run to prove worker count does not change the output.
//!
//! The metrics check diffs the run's deterministic metrics core against
//! the checked-in fixture (and, with `--shards N`, proves the `N`-worker
//! merged metrics equal the serial run's); `--write` regenerates the
//! fixture instead.
//!
//! The chaos check replays the determinism and metrics gates under the
//! canonical fault-injection plan: the plan fixture must match the
//! builtin, the faulted stream must be repeatable and worker-count
//! invariant, the fault counters must show the chaos machinery engaged,
//! and the chaos metrics core must match its own fixture.
//!
//! The serve check proves the multi-tenant archive service keeps those
//! promises live: per-tenant catalog bytes identical across every ingest
//! worker count and interleave seed, mid-ingest snapshots equal to serial
//! replays of their pinned prefix, federated scans equal to the
//! concat-and-stable-sort oracle, and pipeline serve-sink bytes equal to
//! the memory-sink container.
//!
//! The archive check proves the columnar trace archive's three promises:
//! canonical bytes (worker-count invariant and matching the checked-in
//! hash fixture), exact round trip (all-pass query ≡ in-memory stream and
//! report), and conservative pruning (a time-window query prunes segments
//! yet returns exactly the filtered stream, serially and in parallel);
//! `--write` regenerates the hash fixture.
//!
//! All subcommands exit 0 on success and 1 on violation/divergence, so the
//! binary slots directly into CI.

use std::path::PathBuf;
use std::process::ExitCode;

use charisma_verify::{
    archive_fixture_line, chaos_metrics_json, chaos_plan, check_archive_gate,
    check_chaos_determinism, check_chaos_shard_equivalence, check_fault_activity,
    check_metrics_shard_equivalence, check_pipeline_determinism, check_serve_gate,
    check_shard_equivalence, check_sharded_determinism, compare_bench, core_metrics_json,
    diff_json, diff_plan, findings_to_json, lint_workspace, run_bench, LintConfig,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: charisma-verify <command>\n\n\
         commands:\n\
           lint         [--root DIR] [--json]   run the CH001-CH010 static pass;\n\
                        --json emits findings as a JSON array for CI annotation\n\
           determinism  [--seed N] [--scale F] [--shards N]\n\
                        prove two same-seed pipeline runs agree; with --shards,\n\
                        run sharded on N workers and also diff against serial\n\
           metrics      [--seed N] [--scale F] [--shards N] [--fixture PATH] [--write]\n\
                        diff the deterministic metrics core against the fixture;\n\
                        with --shards, also prove N-worker metrics merge to the\n\
                        serial values; --write regenerates the fixture\n\
           chaos        [--seed N] [--scale F] [--shards N] [--fixture PATH]\n\
                        [--plan PATH] [--write]\n\
                        rerun the determinism and metrics gates under the\n\
                        canonical fault-injection plan; --write regenerates the\n\
                        plan and chaos-metrics fixtures\n\
           archive      [--seed N] [--scale F] [--workers N] [--fixture PATH]\n\
                        [--write]\n\
                        prove the columnar trace archive is canonical (worker-\n\
                        count invariant, hash fixture), round-trips exactly, and\n\
                        prunes without changing results; --write regenerates\n\
                        the hash fixture\n\
           serve        [--seed N] [--scale F] [--tenants N]\n\
                        prove the multi-tenant archive service publishes\n\
                        byte-identical catalogs under every ingest schedule,\n\
                        snapshots replay exactly their pinned prefix, and\n\
                        federated scans match the concat-and-sort oracle\n\
           bench        [--seed N] [--scale F] [--workers N] [--pr N] [--out PATH]\n\
                        [--compare PREV.json]\n\
                        run the pinned pipeline once, time generation plus\n\
                        full-archive and pruned scans, and print (or write) a\n\
                        BENCH_N.json perf record; with --compare, diff it\n\
                        against a committed predecessor — deterministic\n\
                        regressions >25% fail, wall-clock deltas warn"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("determinism") => run_determinism(&args[1..]),
        Some("metrics") => run_metrics(&args[1..]),
        Some("chaos") => run_chaos(&args[1..]),
        Some("archive") => run_archive(&args[1..]),
        Some("serve") => run_serve(&args[1..]),
        Some("bench") => run_bench_cmd(&args[1..]),
        _ => usage(),
    }
}

/// Locate the workspace root: walk upward from the current directory to the
/// first directory holding a `Cargo.toml` with a `[workspace]` table.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn run_lint(args: &[String]) -> ExitCode {
    let root = flag_value(args, "--root")
        .map(PathBuf::from)
        .unwrap_or_else(find_workspace_root);
    let json = args.iter().any(|a| a == "--json");
    let cfg = LintConfig::new(root);
    match lint_workspace(&cfg) {
        Ok(findings) if findings.is_empty() => {
            if json {
                print!("{}", findings_to_json(&findings));
            } else {
                println!("charisma-verify lint: clean");
            }
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            if json {
                print!("{}", findings_to_json(&findings));
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("charisma-verify lint: {} violation(s)", findings.len());
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("charisma-verify lint: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_bench_cmd(args: &[String]) -> ExitCode {
    let (seed, scale, workers, pr) = match (
        parsed_flag(args, "--seed", 4994u64),
        parsed_flag(args, "--scale", 0.05f64),
        parsed_flag(args, "--workers", 4usize),
        parsed_flag(args, "--pr", 0u64),
    ) {
        (Ok(seed), Ok(scale), Ok(workers), Ok(pr)) => (seed, scale, workers, pr),
        (Err(e), _, _, _) | (_, Err(e), _, _) | (_, _, Err(e), _) | (_, _, _, Err(e)) => {
            eprintln!("charisma-verify bench: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "charisma-verify bench: seed={seed} scale={scale} workers={workers}, \
         timing generate + scan..."
    );
    let record = match run_bench(seed, scale, workers) {
        Ok(record) => record,
        Err(e) => {
            eprintln!("charisma-verify bench: {e}");
            return ExitCode::from(2);
        }
    };
    let json = record.to_json(pr);
    match flag_value(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("charisma-verify bench: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("bench record written: {path}");
        }
        None => print!("{json}"),
    }

    // The perf-trajectory gate: diff this record against a committed
    // predecessor. Deterministic regressions fail; wall-clock ones warn.
    if let Some(prev_path) = flag_value(args, "--compare") {
        let prev = match std::fs::read_to_string(prev_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("charisma-verify bench: cannot read {prev_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let cmp = compare_bench(&record, &prev);
        for s in &cmp.skipped {
            println!("bench compare: skipped {s}");
        }
        for w in &cmp.warnings {
            println!("bench compare WARNING: {w}");
        }
        if !cmp.failures.is_empty() {
            for f in &cmp.failures {
                println!("bench compare REGRESSION: {f}");
            }
            println!(
                "bench COMPARE FAILED against {prev_path}: {} deterministic regression(s)",
                cmp.failures.len()
            );
            return ExitCode::FAILURE;
        }
        println!("bench compare passed against {prev_path}");
    }
    ExitCode::SUCCESS
}

/// Parse an optional flag, distinguishing "absent" (use the default) from
/// "present but malformed" (a usage error, not a silent fallback).
fn parsed_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value for {flag}: {raw:?}")),
    }
}

fn run_determinism(args: &[String]) -> ExitCode {
    let (seed, scale, shards) = match (
        parsed_flag(args, "--seed", 4994u64),
        parsed_flag(args, "--scale", 0.05f64),
        parsed_flag(args, "--shards", 0usize),
    ) {
        (Ok(seed), Ok(scale), Ok(shards)) => (seed, scale, shards),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
            eprintln!("charisma-verify determinism: {e}");
            return ExitCode::from(2);
        }
    };

    if shards == 0 {
        println!(
            "charisma-verify determinism: seed={seed} scale={scale}, running pipeline twice..."
        );
        return report_outcome("pipeline", &check_pipeline_determinism(seed, scale));
    }

    println!(
        "charisma-verify determinism: seed={seed} scale={scale} shards={shards}, \
         running sharded pipeline twice..."
    );
    if !print_outcome("sharded", &check_sharded_determinism(seed, scale, shards)) {
        return ExitCode::FAILURE;
    }
    println!("comparing {shards}-worker run against the serial run...");
    if !print_outcome(
        "serial-vs-sharded",
        &check_shard_equivalence(seed, scale, shards),
    ) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Default fixture location: `crates/verify/fixtures/metrics_snapshot.json`
/// under the workspace root.
fn default_fixture() -> PathBuf {
    find_workspace_root().join("crates/verify/fixtures/metrics_snapshot.json")
}

fn run_metrics(args: &[String]) -> ExitCode {
    let (seed, scale, shards) = match (
        parsed_flag(args, "--seed", 4994u64),
        parsed_flag(args, "--scale", 0.05f64),
        parsed_flag(args, "--shards", 1usize),
    ) {
        (Ok(seed), Ok(scale), Ok(shards)) => (seed, scale, shards),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
            eprintln!("charisma-verify metrics: {e}");
            return ExitCode::from(2);
        }
    };
    let fixture = flag_value(args, "--fixture")
        .map(PathBuf::from)
        .unwrap_or_else(default_fixture);

    println!(
        "charisma-verify metrics: seed={seed} scale={scale} shards={shards}, \
         rendering the deterministic metrics core..."
    );
    let core = match core_metrics_json(seed, scale, shards) {
        Ok(core) => core,
        Err(e) => {
            eprintln!("charisma-verify metrics: pipeline error: {e}");
            return ExitCode::from(2);
        }
    };

    if args.iter().any(|a| a == "--write") {
        if let Err(e) = std::fs::write(&fixture, &core) {
            eprintln!(
                "charisma-verify metrics: cannot write {}: {e}",
                fixture.display()
            );
            return ExitCode::from(2);
        }
        println!("fixture regenerated: {}", fixture.display());
        return ExitCode::SUCCESS;
    }

    let expected = match std::fs::read_to_string(&fixture) {
        Ok(text) => text,
        Err(e) => {
            eprintln!(
                "charisma-verify metrics: cannot read {}: {e}\n\
                 (regenerate with: charisma-verify metrics --write)",
                fixture.display()
            );
            return ExitCode::from(2);
        }
    };
    let diffs = diff_json(&expected, &core);
    if !diffs.is_empty() {
        for d in diffs.iter().take(20) {
            println!("  {d}");
        }
        println!(
            "metrics SNAPSHOT MISMATCH: {} line(s) differ from {}\n\
             (if the change is intended, regenerate with: charisma-verify metrics --write)",
            diffs.len(),
            fixture.display()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "metrics core matches the fixture ({} lines)",
        core.lines().count()
    );

    if shards > 1 {
        println!("comparing {shards}-worker merged metrics against the serial run...");
        match check_metrics_shard_equivalence(seed, scale, shards) {
            Ok(diffs) if diffs.is_empty() => {
                println!("metrics merge is worker-count invariant");
            }
            Ok(diffs) => {
                for d in diffs.iter().take(20) {
                    println!("  {d}");
                }
                println!(
                    "metrics MERGE DIVERGENCE: {} line(s) differ between serial \
                     and {shards}-worker runs",
                    diffs.len()
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("charisma-verify metrics: pipeline error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}

/// Default chaos-metrics fixture:
/// `crates/verify/fixtures/metrics_snapshot_chaos.json`.
fn default_chaos_fixture() -> PathBuf {
    find_workspace_root().join("crates/verify/fixtures/metrics_snapshot_chaos.json")
}

/// Default chaos-plan fixture: `crates/verify/fixtures/fault_plan_chaos.txt`.
fn default_plan_fixture() -> PathBuf {
    find_workspace_root().join("crates/verify/fixtures/fault_plan_chaos.txt")
}

fn run_chaos(args: &[String]) -> ExitCode {
    let (seed, scale, shards) = match (
        parsed_flag(args, "--seed", 4994u64),
        parsed_flag(args, "--scale", 0.05f64),
        parsed_flag(args, "--shards", 4usize),
    ) {
        (Ok(seed), Ok(scale), Ok(shards)) => (seed, scale, shards),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
            eprintln!("charisma-verify chaos: {e}");
            return ExitCode::from(2);
        }
    };
    let fixture = flag_value(args, "--fixture")
        .map(PathBuf::from)
        .unwrap_or_else(default_chaos_fixture);
    let plan_path = flag_value(args, "--plan")
        .map(PathBuf::from)
        .unwrap_or_else(default_plan_fixture);
    let write = args.iter().any(|a| a == "--write");

    println!(
        "charisma-verify chaos: seed={seed} scale={scale} shards={shards}, \
         invariants {}",
        if charisma_verify::INVARIANTS_ENABLED {
            "ENABLED"
        } else {
            "disabled (build with --features invariants for the full gate)"
        }
    );

    // 1. The checked-in plan fixture must match the builtin chaos plan.
    if write {
        if let Err(e) = std::fs::write(&plan_path, chaos_plan().encode()) {
            eprintln!(
                "charisma-verify chaos: cannot write {}: {e}",
                plan_path.display()
            );
            return ExitCode::from(2);
        }
        println!("plan fixture regenerated: {}", plan_path.display());
    } else {
        let text = match std::fs::read_to_string(&plan_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "charisma-verify chaos: cannot read {}: {e}\n\
                     (regenerate with: charisma-verify chaos --write)",
                    plan_path.display()
                );
                return ExitCode::from(2);
            }
        };
        let parsed = match charisma_ipsc::FaultPlan::parse(&text) {
            Ok(plan) => plan,
            Err(e) => {
                println!("chaos PLAN FIXTURE UNPARSEABLE: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(divergence) = diff_plan(&parsed) {
            println!("chaos PLAN FIXTURE MISMATCH: {divergence}");
            return ExitCode::FAILURE;
        }
        println!("plan fixture matches the builtin chaos plan");
    }

    // 2. Repeatability: two faulted runs on the same worker count agree.
    println!("running the chaos pipeline twice on {shards} worker(s)...");
    if !print_outcome("chaos", &check_chaos_determinism(seed, scale, shards)) {
        return ExitCode::FAILURE;
    }

    // 3. Worker-count invariance under faults.
    if shards > 1 {
        println!("comparing the {shards}-worker chaos run against the serial run...");
        if !print_outcome(
            "chaos serial-vs-sharded",
            &check_chaos_shard_equivalence(seed, scale, shards),
        ) {
            return ExitCode::FAILURE;
        }
    }

    // 4. Fault-metrics snapshot: the chaos core JSON, faults.* included.
    println!("rendering the chaos metrics core...");
    let core = match chaos_metrics_json(seed, scale, shards) {
        Ok(core) => core,
        Err(e) => {
            eprintln!("charisma-verify chaos: pipeline error: {e}");
            return ExitCode::from(2);
        }
    };
    let complaints = check_fault_activity(&core);
    if !complaints.is_empty() {
        for c in &complaints {
            println!("  {c}");
        }
        println!(
            "chaos FAULT ACTIVITY MISSING: {} complaint(s)",
            complaints.len()
        );
        return ExitCode::FAILURE;
    }
    println!("fault counters show the chaos machinery engaged");

    if write {
        if let Err(e) = std::fs::write(&fixture, &core) {
            eprintln!(
                "charisma-verify chaos: cannot write {}: {e}",
                fixture.display()
            );
            return ExitCode::from(2);
        }
        println!("chaos metrics fixture regenerated: {}", fixture.display());
        return ExitCode::SUCCESS;
    }
    let expected = match std::fs::read_to_string(&fixture) {
        Ok(text) => text,
        Err(e) => {
            eprintln!(
                "charisma-verify chaos: cannot read {}: {e}\n\
                 (regenerate with: charisma-verify chaos --write)",
                fixture.display()
            );
            return ExitCode::from(2);
        }
    };
    let diffs = diff_json(&expected, &core);
    if !diffs.is_empty() {
        for d in diffs.iter().take(20) {
            println!("  {d}");
        }
        println!(
            "chaos SNAPSHOT MISMATCH: {} line(s) differ from {}\n\
             (if the change is intended, regenerate with: charisma-verify chaos --write)",
            diffs.len(),
            fixture.display()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "chaos metrics core matches the fixture ({} lines)",
        core.lines().count()
    );
    ExitCode::SUCCESS
}

/// Default archive-hash fixture: `crates/verify/fixtures/archive_hash.txt`.
fn default_archive_fixture() -> PathBuf {
    find_workspace_root().join("crates/verify/fixtures/archive_hash.txt")
}

fn run_archive(args: &[String]) -> ExitCode {
    let (seed, scale, workers) = match (
        parsed_flag(args, "--seed", 4994u64),
        parsed_flag(args, "--scale", 0.05f64),
        parsed_flag(args, "--workers", 8usize),
    ) {
        (Ok(seed), Ok(scale), Ok(workers)) => (seed, scale, workers),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
            eprintln!("charisma-verify archive: {e}");
            return ExitCode::from(2);
        }
    };
    let fixture = flag_value(args, "--fixture")
        .map(PathBuf::from)
        .unwrap_or_else(default_archive_fixture);

    if args.iter().any(|a| a == "--write") {
        println!("charisma-verify archive: seed={seed} scale={scale}, writing archive...");
        let line = match archive_fixture_line(seed, scale) {
            Ok(line) => line,
            Err(e) => {
                eprintln!("charisma-verify archive: pipeline error: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&fixture, &line) {
            eprintln!(
                "charisma-verify archive: cannot write {}: {e}",
                fixture.display()
            );
            return ExitCode::from(2);
        }
        print!("fixture regenerated: {}\n  {line}", fixture.display());
        return ExitCode::SUCCESS;
    }

    println!(
        "charisma-verify archive: seed={seed} scale={scale} workers={workers}, \
         writing and re-scanning the archive..."
    );
    let report = match check_archive_gate(seed, scale, workers) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("charisma-verify archive: pipeline error: {e}");
            return ExitCode::from(2);
        }
    };
    if !report.complaints.is_empty() {
        for c in &report.complaints {
            println!("  {c}");
        }
        println!(
            "archive GATE FAILED: {} complaint(s)",
            report.complaints.len()
        );
        return ExitCode::FAILURE;
    }
    println!("archive bytes canonical, round trip exact, pruning conservative");

    let expected = match std::fs::read_to_string(&fixture) {
        Ok(text) => text,
        Err(e) => {
            eprintln!(
                "charisma-verify archive: cannot read {}: {e}\n\
                 (regenerate with: charisma-verify archive --write)",
                fixture.display()
            );
            return ExitCode::from(2);
        }
    };
    if expected != report.fixture_line {
        println!(
            "archive HASH MISMATCH:\n  fixture:  {}\n  observed: {}\n\
             (if the format change is intended, regenerate with: \
             charisma-verify archive --write)",
            expected.trim_end(),
            report.fixture_line.trim_end()
        );
        return ExitCode::FAILURE;
    }
    print!(
        "archive hash matches the fixture:\n  {}",
        report.fixture_line
    );
    ExitCode::SUCCESS
}

fn run_serve(args: &[String]) -> ExitCode {
    let (seed, scale, tenants) = match (
        parsed_flag(args, "--seed", 4994u64),
        parsed_flag(args, "--scale", 0.05f64),
        parsed_flag(args, "--tenants", 4usize),
    ) {
        (Ok(seed), Ok(scale), Ok(tenants)) => (seed, scale, tenants),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
            eprintln!("charisma-verify serve: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "charisma-verify serve: seed={seed} scale={scale} tenants={tenants}, \
         ingesting under every (workers × interleave) schedule..."
    );
    let report = match check_serve_gate(seed, scale, tenants) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("charisma-verify serve: pipeline error: {e}");
            return ExitCode::from(2);
        }
    };
    if !report.complaints.is_empty() {
        for c in &report.complaints {
            println!("  {c}");
        }
        println!(
            "serve GATE FAILED: {} complaint(s)",
            report.complaints.len()
        );
        return ExitCode::FAILURE;
    }
    let hashes: Vec<String> = report
        .catalog_hashes
        .iter()
        .map(|h| format!("{h:#018x}"))
        .collect();
    println!(
        "serve gate passed: {} rows across {} tenants, catalogs schedule-\
         invariant, snapshots prefix-exact, federation matches the oracle\n  \
         catalog fnv1a: {}",
        report.rows,
        report.tenants,
        hashes.join(" ")
    );
    ExitCode::SUCCESS
}

fn report_outcome(label: &str, report: &charisma_verify::DeterminismReport) -> ExitCode {
    if print_outcome(label, report) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Print a determinism report; `true` means the streams agreed.
fn print_outcome(label: &str, report: &charisma_verify::DeterminismReport) -> bool {
    match &report.divergence {
        None => {
            println!(
                "{label} deterministic: {} records, stream hash {:#018x}",
                report.records_checked, report.stream_hash
            );
            true
        }
        Some(d) => {
            println!("{label} DIVERGENCE at record {}:", d.index);
            println!("  run 1: {}", truncated(&d.first));
            println!("  run 2: {}", truncated(&d.second));
            println!(
                "({} records agreed before the divergence)",
                report.records_checked
            );
            false
        }
    }
}

fn truncated(hex: &str) -> &str {
    if hex.is_empty() {
        "<stream ended>"
    } else if hex.len() > 128 {
        &hex[..128]
    } else {
        hex
    }
}
