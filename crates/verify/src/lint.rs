//! Project-specific static lint pass.
//!
//! `charisma-verify lint` walks every workspace crate and enforces the
//! determinism rules the simulation depends on:
//!
//! | rule    | scope                              | what it forbids |
//! |---------|------------------------------------|-----------------|
//! | `CH001` | `ipsc`, `cfs`, `cachesim`, `trace`, `obs`, `store` | `HashMap`/`HashSet` — hash iteration order is nondeterministic; use `BTreeMap`/`BTreeSet` or sort explicitly |
//! | `CH002` | `ipsc`, `cfs`, `cachesim`, `trace`, `obs`, `store` | comparing simulated time as raw `f64` (`as_secs_f64()` next to a comparison) outside `crates/ipsc/src/time.rs` — compare `SimTime`/`Duration` in integer microseconds |
//! | `CH003` | `ipsc`, `cfs`, `trace`, `obs`, `store` | `.unwrap()` / `.expect(..)` / `panic!` in non-test library code — propagate typed errors; grandfathered sites live in a budgeted allowlist that may only shrink |
//! | `CH004` | `ipsc`, `cfs`, `cachesim`, `trace`, `workload`, `store` | wall clocks (`Instant`, `SystemTime`) and ambient entropy (`thread_rng`, `from_entropy`) — all randomness must flow from a seeded RNG |
//!
//! The scanner is a purpose-built lexer, not a full parser: the build
//! environment is offline, so `syn` is unavailable. It strips comments,
//! string/char literals and `#[cfg(test)]` regions with line fidelity, then
//! matches identifier tokens — precise enough for these rules, and the
//! fixture suite in `tests/lint_fixtures.rs` pins the exact semantics.
//!
//! Suppressions: a `// charisma-verify: allow(CHxxx, reason)` comment on the
//! offending line disables that one rule for that line. `CH003` additionally
//! reads a per-file budget allowlist (`crates/verify/allowlist_ch003.txt`);
//! a budget larger than the actual count is itself an error, which is what
//! makes the allowlist monotonically shrink.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// The lint rules, `CH001`–`CH004`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Hash-ordered collections in simulation crates.
    Ch001,
    /// Raw `f64` simulation-time comparison outside the `SimTime` abstraction.
    Ch002,
    /// Panicking calls in non-test library code.
    Ch003,
    /// Wall clocks or ambient entropy in simulation crates.
    Ch004,
}

impl Rule {
    /// The rule's code, e.g. `"CH001"`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::Ch001 => "CH001",
            Rule::Ch002 => "CH002",
            Rule::Ch003 => "CH003",
            Rule::Ch004 => "CH004",
        }
    }

    fn parse(code: &str) -> Option<Rule> {
        match code {
            "CH001" => Some(Rule::Ch001),
            "CH002" => Some(Rule::Ch002),
            "CH003" => Some(Rule::Ch003),
            "CH004" => Some(Rule::Ch004),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One lint violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Human explanation of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}: {}\n    {}",
            self.rule, self.file, self.line, self.message, self.snippet
        )
    }
}

/// Which rules apply to a file; derived from the owning crate.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileScope {
    pub ch001: bool,
    pub ch002: bool,
    pub ch003: bool,
    pub ch004: bool,
}

/// Crates whose trace output must be hash-order free (`CH001`/`CH002`/`CH004`).
/// `store` is held to every rule: its canonical-bytes promise dies the
/// moment any encoding iterates a hash map or reads a clock.
const SIM_CRATES: &[&str] = &["ipsc", "cfs", "cachesim", "trace", "obs", "store"];
/// Crates whose library code must not panic (`CH003`).
const NO_PANIC_CRATES: &[&str] = &["ipsc", "cfs", "trace", "obs", "store"];
/// `CH004` additionally covers the workload generator: its randomness must
/// be seeded too. `obs` is deliberately absent: span timings legitimately
/// read the monotonic clock, and the snapshot quarantines them in its
/// nondeterministic section instead.
const SEEDED_RNG_CRATES: &[&str] = &["ipsc", "cfs", "cachesim", "trace", "workload", "store"];

/// Scope for a file at `rel` (workspace-relative, `/`-separated).
pub fn scope_for(rel: &str) -> FileScope {
    let mut scope = FileScope::default();
    let Some(krate) = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
    else {
        return scope;
    };
    // Only library sources are linted; integration tests/benches/examples
    // may panic and use whatever containers they like.
    if !rel.contains("/src/") {
        return scope;
    }
    scope.ch001 = SIM_CRATES.contains(&krate);
    scope.ch002 = SIM_CRATES.contains(&krate) && rel != "crates/ipsc/src/time.rs";
    scope.ch003 = NO_PANIC_CRATES.contains(&krate);
    scope.ch004 = SEEDED_RNG_CRATES.contains(&krate);
    scope
}

/// Lint configuration.
pub struct LintConfig {
    /// Workspace root (the directory holding the top-level `Cargo.toml`).
    pub workspace_root: PathBuf,
    /// `CH003` allowlist path; defaults to `crates/verify/allowlist_ch003.txt`
    /// under the root.
    pub allowlist: Option<PathBuf>,
}

impl LintConfig {
    /// Configuration rooted at `root` with the default allowlist.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LintConfig {
            workspace_root: root.into(),
            allowlist: None,
        }
    }

    fn allowlist_path(&self) -> PathBuf {
        self.allowlist.clone().unwrap_or_else(|| {
            self.workspace_root
                .join("crates/verify/allowlist_ch003.txt")
        })
    }
}

/// Lint every workspace crate. Returns all findings (empty = clean).
pub fn lint_workspace(cfg: &LintConfig) -> Result<Vec<Finding>, std::io::Error> {
    let mut files = Vec::new();
    let crates_dir = cfg.workspace_root.join("crates");
    if !crates_dir.is_dir() {
        // A missing crates/ means a wrong --root; "clean" would be a lie.
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!(
                "no crates/ directory under {}",
                cfg.workspace_root.display()
            ),
        ));
    }
    collect_rs_files(&crates_dir, &mut files)?;
    files.sort();

    let mut findings = Vec::new();
    let mut ch003_findings: BTreeMap<String, Vec<Finding>> = BTreeMap::new();

    for path in &files {
        let rel = path
            .strip_prefix(&cfg.workspace_root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let scope = scope_for(&rel);
        if !(scope.ch001 || scope.ch002 || scope.ch003 || scope.ch004) {
            continue;
        }
        let source = std::fs::read_to_string(path)?;
        for finding in scan_source(&rel, &source, scope) {
            if finding.rule == Rule::Ch003 {
                ch003_findings.entry(rel.clone()).or_default().push(finding);
            } else {
                findings.push(finding);
            }
        }
    }

    // Apply the CH003 budget allowlist.
    let budgets = load_allowlist(&cfg.allowlist_path())?;
    let mut actual_counts: BTreeMap<String, usize> = BTreeMap::new();
    for (file, file_findings) in &ch003_findings {
        actual_counts.insert(file.clone(), file_findings.len());
        let budget = budgets.get(file.as_str()).copied().unwrap_or(0);
        if file_findings.len() > budget {
            findings.extend(file_findings.iter().cloned().map(|mut f| {
                f.message = format!(
                    "{} ({} sites in file, allowlist budget {budget})",
                    f.message,
                    file_findings.len()
                );
                f
            }));
        }
    }
    // A stale (over-generous) budget is an error: the allowlist may only
    // shrink, and tightening it is part of removing a panic site.
    for (file, &budget) in &budgets {
        let actual = actual_counts.get(file).copied().unwrap_or(0);
        if actual < budget {
            findings.push(Finding {
                rule: Rule::Ch003,
                file: file.clone(),
                line: 0,
                snippet: format!("allowlist budget {budget}, actual panic sites {actual}"),
                message: format!(
                    "stale CH003 allowlist entry: tighten the budget for {file} to {actual}"
                ),
            });
        }
    }

    findings.sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), std::io::Error> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().to_string();
        if path.is_dir() {
            // Skip build output and the lint fixtures themselves.
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Parse the CH003 allowlist: `path = budget` lines, `#` comments.
pub fn load_allowlist(path: &Path) -> Result<BTreeMap<String, usize>, std::io::Error> {
    let mut budgets = BTreeMap::new();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(budgets),
        Err(e) => return Err(e),
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((file, count)) = line.split_once('=') {
            if let Ok(n) = count.trim().parse::<usize>() {
                budgets.insert(file.trim().to_string(), n);
            }
        }
    }
    Ok(budgets)
}

// ---------------------------------------------------------------------------
// Source scanning
// ---------------------------------------------------------------------------

/// Artifacts of the cleaning pass.
struct CleanSource {
    /// Source with comments, strings and char literals blanked to spaces
    /// (same line structure as the input).
    code: String,
    /// `allow(rule)` directives found in comments, per 1-based line.
    allows: BTreeMap<usize, Vec<Rule>>,
}

/// Scan one file's source under `scope`. Public so the fixture tests can pin
/// rule semantics without touching the filesystem layout.
pub fn scan_source(rel: &str, source: &str, scope: FileScope) -> Vec<Finding> {
    let clean = clean_source(source);
    let test_spans = test_region_spans(&clean.code);
    let mut findings = Vec::new();

    let mut offset = 0usize;
    for (idx, (raw_line, clean_line)) in source.lines().zip(clean.code.lines()).enumerate() {
        let lineno = idx + 1;
        let in_test = test_spans
            .iter()
            .any(|&(start, end)| offset >= start && offset < end);
        offset += clean_line.len() + 1;
        if in_test {
            continue;
        }
        let allowed = |rule: Rule| {
            clean
                .allows
                .get(&lineno)
                .is_some_and(|rules| rules.contains(&rule))
        };
        let mut push = |rule: Rule, message: String| {
            if !allowed(rule) {
                findings.push(Finding {
                    rule,
                    file: rel.to_string(),
                    line: lineno,
                    snippet: raw_line.trim().to_string(),
                    message,
                });
            }
        };

        if scope.ch001 {
            for ident in ["HashMap", "HashSet"] {
                if has_ident(clean_line, ident) {
                    push(
                        Rule::Ch001,
                        format!(
                            "{ident} in a simulation crate: iteration order is \
                             nondeterministic; use BTreeMap/BTreeSet or sort explicitly"
                        ),
                    );
                }
            }
        }
        if scope.ch002 && has_ident(clean_line, "as_secs_f64") && has_comparison(clean_line) {
            push(
                Rule::Ch002,
                "raw f64 time comparison: compare SimTime/Duration in integer \
                 microseconds (as_secs_f64 is for reporting only)"
                    .to_string(),
            );
        }
        if scope.ch003 {
            for _ in 0..count_panic_sites(clean_line) {
                push(
                    Rule::Ch003,
                    "panicking call in library code: propagate a typed error".to_string(),
                );
            }
        }
        if scope.ch004 {
            for ident in ["Instant", "SystemTime", "thread_rng", "from_entropy"] {
                if has_ident(clean_line, ident) {
                    push(
                        Rule::Ch004,
                        format!(
                            "{ident} in a simulation crate: wall clocks and ambient \
                             entropy break reproducibility; use SimTime and a seeded RNG"
                        ),
                    );
                }
            }
        }
    }
    findings
}

/// Blank out comments, strings and char literals, preserving line structure;
/// harvest `charisma-verify: allow(CHxxx)` directives from comments.
fn clean_source(source: &str) -> CleanSource {
    let bytes = source.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut allows: BTreeMap<usize, Vec<Rule>> = BTreeMap::new();
    let mut line = 1usize;
    let mut i = 0usize;

    fn record_allow(allows: &mut BTreeMap<usize, Vec<Rule>>, text: &str, line: usize) {
        let mut rest = text;
        while let Some(pos) = rest.find("charisma-verify: allow(") {
            let after = &rest[pos + "charisma-verify: allow(".len()..];
            if let Some(rule) = after.get(..5).and_then(Rule::parse) {
                allows.entry(line).or_default().push(rule);
            }
            rest = after;
        }
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                out.push(b'\n');
                line += 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: blank to end of line.
                let end = source[i..].find('\n').map(|p| i + p).unwrap_or(bytes.len());
                record_allow(&mut allows, &source[i..end], line);
                out.resize(out.len() + (end - i), b' ');
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, possibly nested.
                let start_line = line;
                let mut depth = 1;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        if bytes[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                record_allow(&mut allows, &source[i..j.min(bytes.len())], start_line);
                for &b in &bytes[i..j.min(bytes.len())] {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                }
                i = j;
            }
            b'"' => {
                // String literal. Raw strings are caught by the `r` branch
                // below before we ever see their quote.
                out.push(b' ');
                let mut j = i + 1;
                while j < bytes.len() {
                    match bytes[j] {
                        b'\\' => {
                            out.extend_from_slice(b"  ");
                            j += 2;
                        }
                        b'"' => {
                            out.push(b' ');
                            j += 1;
                            break;
                        }
                        b'\n' => {
                            out.push(b'\n');
                            line += 1;
                            j += 1;
                        }
                        _ => {
                            out.push(b' ');
                            j += 1;
                        }
                    }
                }
                i = j;
            }
            b'r' if is_raw_string_start(bytes, i) => {
                let (end, newlines) = skip_raw_string(bytes, i);
                for &b in &bytes[i..end] {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                }
                line += newlines;
                i = end;
            }
            b'\'' => {
                if bytes.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: blank to the closing quote.
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    let end = (j + 1).min(bytes.len());
                    out.resize(out.len() + (end - i), b' ');
                    i = end;
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    // Plain char literal like 'x'.
                    out.extend_from_slice(b"   ");
                    i += 3;
                } else {
                    // Lifetime tick: keep and continue.
                    out.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }

    CleanSource {
        code: String::from_utf8_lossy(&out).into_owned(),
        allows,
    }
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 && is_ident_char(bytes[i - 1]) {
        return false;
    }
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

fn skip_raw_string(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut hashes = 0usize;
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let mut newlines = 0usize;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            newlines += 1;
        }
        if bytes[j] == b'"' {
            let end_hashes = bytes[j + 1..]
                .iter()
                .take(hashes)
                .take_while(|&&b| b == b'#')
                .count();
            if end_hashes == hashes {
                return (j + 1 + hashes, newlines);
            }
        }
        j += 1;
    }
    (bytes.len(), newlines)
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Does `line` contain `ident` as a standalone identifier token?
fn has_ident(line: &str, ident: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0usize;
    while let Some(pos) = line[start..].find(ident) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let after = at + ident.len();
        let after_ok = after >= bytes.len() || !is_ident_char(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        start = at + ident.len();
    }
    false
}

/// Does `line` contain a comparison operator (excluding `->`, `=>`, shifts)?
fn has_comparison(line: &str) -> bool {
    let b = line.as_bytes();
    for i in 0..b.len() {
        match b[i] {
            // `==` but not the tail of `<=`/`>=`/`!=`/`==` already counted.
            b'=' if b.get(i + 1) == Some(&b'=')
                && (i == 0 || !matches!(b[i - 1], b'<' | b'>' | b'!' | b'=')) =>
            {
                return true;
            }
            b'!' if b.get(i + 1) == Some(&b'=') => return true,
            b'<' => {
                if b.get(i + 1) == Some(&b'<') || (i > 0 && b[i - 1] == b'<') {
                    continue; // shift
                }
                return true;
            }
            b'>' => {
                if i > 0 && matches!(b[i - 1], b'-' | b'=' | b'>') {
                    continue; // -> or => or shift tail
                }
                if b.get(i + 1) == Some(&b'>') {
                    continue; // shift head
                }
                return true;
            }
            _ => {}
        }
    }
    line.contains(".partial_cmp(") || line.contains(".total_cmp(")
}

/// Count `.unwrap()`, `.expect(` and `panic!` sites on one cleaned line.
fn count_panic_sites(line: &str) -> usize {
    let mut n = 0usize;
    let mut rest = line;
    while let Some(pos) = rest.find(".unwrap()") {
        n += 1;
        rest = &rest[pos + ".unwrap()".len()..];
    }
    let mut rest = line;
    while let Some(pos) = rest.find(".expect(") {
        n += 1;
        rest = &rest[pos + ".expect(".len()..];
    }
    let mut start = 0usize;
    while let Some(pos) = line[start..].find("panic!") {
        let at = start + pos;
        if at == 0 || !is_ident_char(line.as_bytes()[at - 1]) {
            n += 1;
        }
        start = at + "panic!".len();
    }
    n
}

/// Byte spans (into the cleaned source) of `#[cfg(test)]` items.
fn test_region_spans(clean: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let bytes = clean.as_bytes();
    let mut search = 0usize;
    while let Some(pos) = clean[search..].find("#[cfg(test)]") {
        let attr_at = search + pos;
        // The guarded item runs from the attribute to the close of the first
        // brace block after it.
        let Some(open_rel) = clean[attr_at..].find('{') else {
            break;
        };
        let open = attr_at + open_rel;
        let mut depth = 0usize;
        let mut end = bytes.len();
        for (j, &b) in bytes.iter().enumerate().skip(open) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        spans.push((attr_at, end));
        search = end.max(attr_at + 1);
    }
    spans
}
