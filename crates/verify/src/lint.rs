//! Project-specific static lint pass.
//!
//! `charisma-verify lint` walks every workspace crate and enforces the
//! determinism rules the simulation depends on:
//!
//! | rule    | scope                              | what it forbids |
//! |---------|------------------------------------|-----------------|
//! | `CH001` | `ipsc`, `cfs`, `cachesim`, `trace`, `obs`, `store` | `HashMap`/`HashSet` — hash iteration order is nondeterministic; use `BTreeMap`/`BTreeSet` or sort explicitly |
//! | `CH002` | `ipsc`, `cfs`, `cachesim`, `trace`, `obs`, `store` | comparing simulated time as raw `f64` (`as_secs_f64()` next to a comparison) outside `crates/ipsc/src/time.rs` — compare `SimTime`/`Duration` in integer microseconds |
//! | `CH003` | `ipsc`, `cfs`, `trace`, `obs`, `store` | `.unwrap()` / `.expect(..)` / `panic!` in non-test library code — propagate typed errors; grandfathered sites live in a budgeted allowlist that may only shrink |
//! | `CH004` | `ipsc`, `cfs`, `cachesim`, `trace`, `workload`, `store` | wall clocks (`Instant`, `SystemTime`) and ambient entropy (`thread_rng`, `from_entropy`) — all randomness must flow from a seeded RNG |
//! | `CH005` | `store`, `serve`                   | truncating `as` casts to narrow integers in encode/decode paths — including the batched-decode loops (`codec.rs` `_into` decoders, `scan.rs` late materialization), where a silent wraparound changes canonical archive bytes or decoded values; use `try_from` and surface the error. Grandfathered sites live in `allowlist_ch005.txt`, budgeted and shrink-only like CH003 |
//! | `CH006` | `ipsc`, `cfs`, `cachesim`, `trace`, `obs`, `store`, `workload` | `unsafe`, `static mut`, `transmute` — the simulators make no claims the borrow checker can't see |
//! | `CH007` | `ipsc`, `cfs`, `cachesim`, `trace`, `workload`, `store` | nondeterministic concurrency primitives (`std::thread::spawn`, `Mutex`, `RwLock`, `mpsc`) outside the sanctioned `std::thread::scope` claiming pattern; `obs` is exempt (its registry is interior-mutable by design and merge order is pinned elsewhere) |
//! | `CH008` | `ipsc`, `cfs`, `cachesim`, `trace`, `obs`, `store` | `todo!`/`unimplemented!`/`unreachable!` in library code, and `f64` equality comparisons (except against an exact-zero literal, the one bit-exact guard) |
//! | `CH009` | any scoped file                    | stale suppressions: a `charisma-verify: allow(CHxxx)` directive on a line where that rule no longer fires — suppressions must disappear with the violation they excused |
//! | `CH010` | all simulation + workload crates   | cross-artifact drift: a metric name registered in code but missing from the `metrics_snapshot*.json` fixtures, or pinned in a fixture but no longer registered anywhere |
//!
//! The scanner is a purpose-built token lexer ([`crate::lex`]), not a full
//! parser: the build environment is offline, so `syn` is unavailable. The
//! lexer produces identifier/punct streams with line fidelity; item-scope
//! tracking resolves `#[cfg(test)]` regions (including attribute stacks
//! and semicolon-terminated items), and an angle-bracket matcher keeps
//! generics like `Vec<SimTime>` from reading as comparisons. The fixture
//! suite in `tests/lint_fixtures.rs` pins the exact semantics.
//!
//! Suppressions: a `// charisma-verify: allow(CHxxx, reason)` comment on the
//! offending line disables that one rule for that line — and `CH009` flags
//! the directive the moment it stops suppressing anything. `CH003` and
//! `CH005` additionally read per-file budget allowlists
//! (`crates/verify/allowlist_ch003.txt`, `allowlist_ch005.txt`); a budget
//! larger than the actual count is itself an error, which is what makes the
//! allowlists monotonically shrink.
//!
//! The workspace walk is parallel: worker threads claim files off an atomic
//! cursor under `std::thread::scope` (the same claiming idiom the store's
//! scan uses) and results are reassembled in path order, so findings are
//! deterministic regardless of thread count.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::consistency::{self, MetricReg};
use crate::lex::{lex, test_item_ranges, Tok, TokKind};

/// The lint rules, `CH001`–`CH010`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Hash-ordered collections in simulation crates.
    Ch001,
    /// Raw `f64` simulation-time comparison outside the `SimTime` abstraction.
    Ch002,
    /// Panicking calls in non-test library code.
    Ch003,
    /// Wall clocks or ambient entropy in simulation crates.
    Ch004,
    /// Truncating `as` casts to narrow integers in the store's codec paths,
    /// batched-decode loops included.
    Ch005,
    /// `unsafe`, `static mut`, or `transmute` in simulation crates.
    Ch006,
    /// Unsanctioned concurrency primitives (outside `thread::scope` claiming).
    Ch007,
    /// Placeholder panics and `f64` equality in library code.
    Ch008,
    /// A suppression directive that no longer suppresses anything.
    Ch009,
    /// Code/fixture metric-name drift (cross-artifact consistency).
    Ch010,
}

impl Rule {
    /// The rule's code, e.g. `"CH001"`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::Ch001 => "CH001",
            Rule::Ch002 => "CH002",
            Rule::Ch003 => "CH003",
            Rule::Ch004 => "CH004",
            Rule::Ch005 => "CH005",
            Rule::Ch006 => "CH006",
            Rule::Ch007 => "CH007",
            Rule::Ch008 => "CH008",
            Rule::Ch009 => "CH009",
            Rule::Ch010 => "CH010",
        }
    }

    pub(crate) fn parse(code: &str) -> Option<Rule> {
        match code {
            "CH001" => Some(Rule::Ch001),
            "CH002" => Some(Rule::Ch002),
            "CH003" => Some(Rule::Ch003),
            "CH004" => Some(Rule::Ch004),
            "CH005" => Some(Rule::Ch005),
            "CH006" => Some(Rule::Ch006),
            "CH007" => Some(Rule::Ch007),
            "CH008" => Some(Rule::Ch008),
            "CH009" => Some(Rule::Ch009),
            "CH010" => Some(Rule::Ch010),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One lint violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Human explanation of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}: {}\n    {}",
            self.rule, self.file, self.line, self.message, self.snippet
        )
    }
}

/// Render findings as a JSON array for machine consumers (CI annotation).
///
/// The schema is one object per finding: `rule`, `file`, `line`, `message`,
/// `snippet` — keys in that fixed order, findings in the same deterministic
/// `(rule, file, line)` order the text output uses.
pub fn findings_to_json(findings: &[Finding]) -> String {
    fn esc(out: &mut String, s: &str) {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
    }
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("  {\"rule\": \"");
        out.push_str(f.rule.code());
        out.push_str("\", \"file\": \"");
        esc(&mut out, &f.file);
        out.push_str(&format!("\", \"line\": {}, \"message\": \"", f.line));
        esc(&mut out, &f.message);
        out.push_str("\", \"snippet\": \"");
        esc(&mut out, &f.snippet);
        out.push_str("\"}");
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Which rules apply to a file; derived from the owning crate.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileScope {
    pub ch001: bool,
    pub ch002: bool,
    pub ch003: bool,
    pub ch004: bool,
    pub ch005: bool,
    pub ch006: bool,
    pub ch007: bool,
    pub ch008: bool,
    /// Metric registrations in this file participate in the CH010
    /// cross-artifact consistency check.
    pub metrics: bool,
}

impl FileScope {
    /// Is any token-level rule (CH001–CH008) enabled? CH009 stale-suppression
    /// checking piggybacks on this: a file no rule watches has no live
    /// suppressions to go stale.
    pub fn any_rule(&self) -> bool {
        self.ch001
            || self.ch002
            || self.ch003
            || self.ch004
            || self.ch005
            || self.ch006
            || self.ch007
            || self.ch008
    }
}

/// Crates whose trace output must be hash-order free (`CH001`/`CH002`/`CH008`).
/// `store` and `serve` are held to every rule: their canonical-bytes
/// promise dies the moment any encoding iterates a hash map or reads a
/// clock.
const SIM_CRATES: &[&str] = &["ipsc", "cfs", "cachesim", "trace", "obs", "store", "serve"];
/// Crates whose library code must not panic (`CH003`).
const NO_PANIC_CRATES: &[&str] = &["ipsc", "cfs", "trace", "obs", "store", "serve"];
/// `CH004` additionally covers the workload generator: its randomness must
/// be seeded too. `obs` is deliberately absent: span timings legitimately
/// read the monotonic clock, and the snapshot quarantines them in its
/// nondeterministic section instead.
const SEEDED_RNG_CRATES: &[&str] = &[
    "ipsc", "cfs", "cachesim", "trace", "workload", "store", "serve",
];
/// `CH006` (no `unsafe`) covers every crate that touches the pipeline,
/// workload generator included.
const NO_UNSAFE_CRATES: &[&str] = &[
    "ipsc", "cfs", "cachesim", "trace", "obs", "store", "workload", "serve",
];
/// `CH007` (sanctioned concurrency only). `obs` is exempt: the metrics
/// registry is interior-mutable (`Mutex<BTreeMap<..>>`) by design, and its
/// determinism is proven by the snapshot merge gates, not by construction.
const SCOPED_CONCURRENCY_CRATES: &[&str] = &[
    "ipsc", "cfs", "cachesim", "trace", "workload", "store", "serve",
];
/// Crates whose metric registrations are pinned by the snapshot fixtures
/// (`CH010`).
const METRIC_CRATES: &[&str] = &[
    "ipsc", "cfs", "cachesim", "trace", "obs", "store", "workload", "serve",
];

/// Scope for a file at `rel` (workspace-relative, `/`-separated).
pub fn scope_for(rel: &str) -> FileScope {
    let mut scope = FileScope::default();
    let Some(krate) = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
    else {
        return scope;
    };
    // Only library sources are linted; integration tests/benches/examples
    // may panic and use whatever containers they like.
    if !rel.contains("/src/") {
        return scope;
    }
    scope.ch001 = SIM_CRATES.contains(&krate);
    scope.ch002 = SIM_CRATES.contains(&krate) && rel != "crates/ipsc/src/time.rs";
    scope.ch003 = NO_PANIC_CRATES.contains(&krate);
    scope.ch004 = SEEDED_RNG_CRATES.contains(&krate);
    scope.ch005 = matches!(krate, "store" | "serve");
    scope.ch006 = NO_UNSAFE_CRATES.contains(&krate);
    scope.ch007 = SCOPED_CONCURRENCY_CRATES.contains(&krate);
    scope.ch008 = SIM_CRATES.contains(&krate);
    scope.metrics = METRIC_CRATES.contains(&krate);
    scope
}

/// Lint configuration.
pub struct LintConfig {
    /// Workspace root (the directory holding the top-level `Cargo.toml`).
    pub workspace_root: PathBuf,
    /// `CH003` allowlist path; defaults to `crates/verify/allowlist_ch003.txt`
    /// under the root.
    pub allowlist: Option<PathBuf>,
    /// `CH005` allowlist path; defaults to `crates/verify/allowlist_ch005.txt`
    /// under the root.
    pub allowlist_ch005: Option<PathBuf>,
    /// Worker-thread count for the file walk; `None` sizes from
    /// `available_parallelism`. Findings are identical either way.
    pub workers: Option<usize>,
}

impl LintConfig {
    /// Configuration rooted at `root` with the default allowlists.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LintConfig {
            workspace_root: root.into(),
            allowlist: None,
            allowlist_ch005: None,
            workers: None,
        }
    }

    fn allowlist_path(&self, rule: Rule) -> PathBuf {
        let (over, default) = match rule {
            Rule::Ch005 => (&self.allowlist_ch005, "crates/verify/allowlist_ch005.txt"),
            _ => (&self.allowlist, "crates/verify/allowlist_ch003.txt"),
        };
        over.clone()
            .unwrap_or_else(|| self.workspace_root.join(default))
    }
}

/// Recover a mutex guard even if a worker panicked while holding it; the
/// protected data (claimed indices, collected findings) stays coherent.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Lint every workspace crate. Returns all findings (empty = clean).
pub fn lint_workspace(cfg: &LintConfig) -> Result<Vec<Finding>, std::io::Error> {
    let mut files = Vec::new();
    let crates_dir = cfg.workspace_root.join("crates");
    if !crates_dir.is_dir() {
        // A missing crates/ means a wrong --root; "clean" would be a lie.
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!(
                "no crates/ directory under {}",
                cfg.workspace_root.display()
            ),
        ));
    }
    collect_rs_files(&crates_dir, &mut files)?;
    files.sort();

    // Parallel scan: workers claim files off an atomic cursor, results are
    // collected with their file index and reassembled in order below — the
    // same claiming idiom as the store's segment scan, so the output is
    // independent of scheduling.
    let workers = cfg
        .workers
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .clamp(1, 8)
        .min(files.len().max(1));
    let cursor = AtomicUsize::new(0);
    type FileResult = (usize, Vec<Finding>, Vec<MetricReg>);
    let results: Mutex<Vec<FileResult>> = Mutex::new(Vec::new());
    let first_error: Mutex<Option<(usize, std::io::Error)>> = Mutex::new(None);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= files.len() {
                    break;
                }
                let path = &files[idx];
                let rel = path
                    .strip_prefix(&cfg.workspace_root)
                    .unwrap_or(path)
                    .to_string_lossy()
                    .replace('\\', "/");
                let scope = scope_for(&rel);
                if !scope.any_rule() && !scope.metrics {
                    continue;
                }
                match std::fs::read_to_string(path) {
                    Ok(source) => {
                        let mut found = if scope.any_rule() {
                            scan_source(&rel, &source, scope)
                        } else {
                            Vec::new()
                        };
                        let regs = if scope.metrics {
                            let (regs, reg_findings) =
                                consistency::extract_metric_registrations(&rel, &source);
                            found.extend(reg_findings);
                            regs
                        } else {
                            Vec::new()
                        };
                        lock(&results).push((idx, found, regs));
                    }
                    Err(e) => {
                        // Lowest file index wins, so the reported error does
                        // not depend on which worker hit it first.
                        let mut slot = lock(&first_error);
                        if slot.as_ref().is_none_or(|(i, _)| idx < *i) {
                            *slot = Some((idx, e));
                        }
                    }
                }
            });
        }
    });
    if let Some((_, e)) = lock(&first_error).take() {
        return Err(e);
    }
    let mut per_file = results.into_inner().unwrap_or_else(|e| e.into_inner());
    per_file.sort_by_key(|(idx, _, _)| *idx);

    let mut findings = Vec::new();
    let mut budgeted: BTreeMap<Rule, BTreeMap<String, Vec<Finding>>> = BTreeMap::new();
    let mut regs: Vec<MetricReg> = Vec::new();
    for (_, file_findings, file_regs) in per_file {
        for finding in file_findings {
            if matches!(finding.rule, Rule::Ch003 | Rule::Ch005) {
                budgeted
                    .entry(finding.rule)
                    .or_default()
                    .entry(finding.file.clone())
                    .or_default()
                    .push(finding);
            } else {
                findings.push(finding);
            }
        }
        regs.extend(file_regs);
    }

    // Apply the CH003 and CH005 budget allowlists.
    for rule in [Rule::Ch003, Rule::Ch005] {
        let grouped = budgeted.remove(&rule).unwrap_or_default();
        apply_budget(rule, &cfg.allowlist_path(rule), &grouped, &mut findings)?;
    }

    // Cross-artifact consistency: the union of the two snapshot fixtures
    // (plain + chaos) must cover every registered metric name, and carry
    // nothing that is no longer registered.
    let mut fixture_names: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for fixture_rel in [
        "crates/verify/fixtures/metrics_snapshot.json",
        "crates/verify/fixtures/metrics_snapshot_chaos.json",
    ] {
        let text = std::fs::read_to_string(cfg.workspace_root.join(fixture_rel))?;
        for (name, line) in consistency::fixture_metric_names(&text) {
            fixture_names
                .entry(name)
                .or_insert((fixture_rel.to_string(), line));
        }
    }
    findings.extend(consistency::check_metric_consistency(&regs, &fixture_names));

    findings.sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    Ok(findings)
}

/// Apply one rule's per-file budget allowlist: findings under budget are
/// swallowed, over-budget files report every site, and an over-generous
/// budget is itself an error so the list can only shrink.
fn apply_budget(
    rule: Rule,
    path: &Path,
    grouped: &BTreeMap<String, Vec<Finding>>,
    findings: &mut Vec<Finding>,
) -> Result<(), std::io::Error> {
    let budgets = load_allowlist(path)?;
    let mut actual_counts: BTreeMap<String, usize> = BTreeMap::new();
    for (file, file_findings) in grouped {
        actual_counts.insert(file.clone(), file_findings.len());
        let budget = budgets.get(file.as_str()).copied().unwrap_or(0);
        if file_findings.len() > budget {
            findings.extend(file_findings.iter().cloned().map(|mut f| {
                f.message = format!(
                    "{} ({} sites in file, allowlist budget {budget})",
                    f.message,
                    file_findings.len()
                );
                f
            }));
        }
    }
    for (file, &budget) in &budgets {
        let actual = actual_counts.get(file).copied().unwrap_or(0);
        if actual < budget {
            findings.push(Finding {
                rule,
                file: file.clone(),
                line: 0,
                snippet: format!("allowlist budget {budget}, actual sites {actual}"),
                message: format!(
                    "stale {} allowlist entry: tighten the budget for {file} to {actual}",
                    rule.code()
                ),
            });
        }
    }
    Ok(())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), std::io::Error> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().to_string();
        if path.is_dir() {
            // Skip build output and the lint fixtures themselves.
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Parse a budget allowlist: `path = budget` lines, `#` comments.
pub fn load_allowlist(path: &Path) -> Result<BTreeMap<String, usize>, std::io::Error> {
    let mut budgets = BTreeMap::new();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(budgets),
        Err(e) => return Err(e),
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((file, count)) = line.split_once('=') {
            if let Ok(n) = count.trim().parse::<usize>() {
                budgets.insert(file.trim().to_string(), n);
            }
        }
    }
    Ok(budgets)
}

// ---------------------------------------------------------------------------
// Token-level scanning
// ---------------------------------------------------------------------------

/// Shared per-file emit state: pushes findings, honors inline allows, and
/// remembers which allows actually suppressed something (CH009 needs the
/// complement).
struct Emitter<'a> {
    rel: &'a str,
    lines: Vec<&'a str>,
    allows: &'a BTreeMap<usize, Vec<String>>,
    consumed: BTreeSet<(usize, String)>,
    findings: Vec<Finding>,
}

impl Emitter<'_> {
    fn push(&mut self, rule: Rule, line: usize, message: String) {
        let code = rule.code();
        if self
            .allows
            .get(&line)
            .is_some_and(|codes| codes.iter().any(|c| c == code))
        {
            self.consumed.insert((line, code.to_string()));
            return;
        }
        self.findings.push(Finding {
            rule,
            file: self.rel.to_string(),
            line,
            snippet: self
                .lines
                .get(line.wrapping_sub(1))
                .map_or_else(String::new, |l| l.trim().to_string()),
            message,
        });
    }
}

/// Mark every token index covered by a `#[cfg(test)]` item range.
pub(crate) fn mark_test_tokens(len: usize, ranges: &[(usize, usize)]) -> Vec<bool> {
    let mut in_test = vec![false; len];
    for &(start, end) in ranges {
        for flag in in_test.iter_mut().take(end.min(len)).skip(start) {
            *flag = true;
        }
    }
    in_test
}

/// Does the non-test token stream contain the adjacent ident/punct sequence
/// `thread :: scope`? Files that use the claiming pattern are allowed their
/// coordination `Mutex`es (CH007).
fn has_thread_scope(toks: &[Tok], in_test: &[bool]) -> bool {
    toks.windows(3).enumerate().any(|(i, w)| {
        !in_test[i] && w[0].is_ident("thread") && w[1].is_punct("::") && w[2].is_ident("scope")
    })
}

/// Narrow integer targets whose `as` casts silently truncate (CH005).
/// `u64`/`i64`/`usize` are wide enough for every quantity the codec
/// handles; `f64` casts are value-preserving for the 32-bit ids involved.
const NARROW_CAST_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Is `t` a floating-point operand: a literal with a decimal point or an
/// `f32`/`f64` suffix, or the type name itself (as in `x as f64 == y`)?
fn is_float_operand(t: &Tok) -> bool {
    match t.kind {
        TokKind::Num => t.text.contains('.') || t.text.ends_with("f64") || t.text.ends_with("f32"),
        TokKind::Ident => t.text == "f64" || t.text == "f32",
        _ => false,
    }
}

/// Is `t` an exact-zero float literal (`0.0`, `0.0f64`, ...)? Comparing
/// against exact zero is the one legitimate bit-exact float guard (e.g. a
/// "did anything accumulate" check), so CH008 exempts it.
fn is_zero_float(t: &Tok) -> bool {
    if t.kind != TokKind::Num || !t.text.contains('.') {
        return false;
    }
    let digits = t
        .text
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .replace('_', "");
    digits.chars().all(|c| c == '0' || c == '.')
}

/// Classify every `<`/`>` token as generic bracket, shift half, or
/// comparison; return the 1-based lines holding a comparison operator
/// (`<`, `>`, `<=`, `>=`, `==`, `!=`, or a `.partial_cmp(`/`.total_cmp(`
/// call).
///
/// The matcher is a heuristic stack: `<` after an identifier or `::` opens
/// a *candidate* generic; a later `>` pairs with it, while any token that
/// cannot appear in a type argument list (braces, semicolons at bracket
/// depth zero, string literals, logical/comparison operators, `.`)
/// retroactively demotes every open candidate to a comparison. `if a < b`
/// therefore still reads as a comparison — the `{` gives it away — while
/// `Vec<SimTime>` pairs up and stays silent.
fn comparison_lines(toks: &[Tok]) -> BTreeSet<usize> {
    let mut is_cmp = vec![false; toks.len()];
    let mut stack: Vec<usize> = Vec::new();
    let mut square = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Str {
            for idx in stack.drain(..) {
                is_cmp[idx] = true;
            }
            i += 1;
            continue;
        }
        if t.kind != TokKind::Punct {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "<" => {
                // Byte-adjacent pair = `<<` shift: skip both halves.
                if toks
                    .get(i + 1)
                    .is_some_and(|n| n.is_punct("<") && n.pos == t.pos + 1)
                {
                    i += 2;
                    continue;
                }
                let candidate =
                    i > 0 && (toks[i - 1].kind == TokKind::Ident || toks[i - 1].is_punct("::"));
                if candidate {
                    stack.push(i);
                } else {
                    is_cmp[i] = true;
                }
            }
            // The pop side effect in the guard is the point: a `>` that
            // closes an open generic candidate consumes it and is silent.
            ">" if stack.pop().is_none() => {
                // Byte-adjacent pair = `>>` shift: skip both halves.
                if toks
                    .get(i + 1)
                    .is_some_and(|n| n.is_punct(">") && n.pos == t.pos + 1)
                {
                    i += 2;
                    continue;
                }
                is_cmp[i] = true;
            }
            "==" | "!=" | "<=" | ">=" => {
                is_cmp[i] = true;
                for idx in stack.drain(..) {
                    is_cmp[idx] = true;
                }
            }
            "[" => square += 1,
            "]" => square = square.saturating_sub(1),
            "{" | "}" | "&&" | "||" | "." => {
                for idx in stack.drain(..) {
                    is_cmp[idx] = true;
                }
            }
            ";" if square == 0 => {
                for idx in stack.drain(..) {
                    is_cmp[idx] = true;
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Candidates never closed are comparisons after all.
    for idx in stack {
        is_cmp[idx] = true;
    }

    let mut lines: BTreeSet<usize> = toks
        .iter()
        .zip(&is_cmp)
        .filter(|(_, &c)| c)
        .map(|(t, _)| t.line)
        .collect();
    for w in toks.windows(3) {
        if w[0].is_punct(".")
            && (w[1].is_ident("partial_cmp") || w[1].is_ident("total_cmp"))
            && w[2].is_punct("(")
        {
            lines.insert(w[1].line);
        }
    }
    lines
}

/// Scan one file's source under `scope`. Public so the fixture tests can pin
/// rule semantics without touching the filesystem layout.
pub fn scan_source(rel: &str, source: &str, scope: FileScope) -> Vec<Finding> {
    let lexed = lex(source);
    let toks = &lexed.tokens;
    let ranges = test_item_ranges(toks);
    let in_test = mark_test_tokens(toks.len(), &ranges);
    let mutex_sanctioned = has_thread_scope(toks, &in_test);
    let cmp_lines = if scope.ch002 {
        comparison_lines(toks)
    } else {
        BTreeSet::new()
    };

    let mut em = Emitter {
        rel,
        lines: source.lines().collect(),
        allows: &lexed.allows,
        consumed: BTreeSet::new(),
        findings: Vec::new(),
    };
    // CH001/CH004 report once per (ident, line), matching the historical
    // line-based counts the fixtures pin.
    let mut line_seen: BTreeSet<(&str, usize)> = BTreeSet::new();

    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        let next = toks.get(i + 1);
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                name @ ("HashMap" | "HashSet")
                    if scope.ch001 && line_seen.insert((name, t.line)) =>
                {
                    em.push(
                        Rule::Ch001,
                        t.line,
                        format!(
                            "{name} in a simulation crate: iteration order is \
                             nondeterministic; use BTreeMap/BTreeSet or sort explicitly"
                        ),
                    );
                }
                "as_secs_f64"
                    if scope.ch002
                        && cmp_lines.contains(&t.line)
                        && line_seen.insert(("as_secs_f64", t.line)) =>
                {
                    em.push(
                        Rule::Ch002,
                        t.line,
                        "raw f64 time comparison: compare SimTime/Duration in integer \
                         microseconds (as_secs_f64 is for reporting only)"
                            .to_string(),
                    );
                }
                "unwrap"
                    if scope.ch003
                        && prev.is_some_and(|p| p.is_punct("."))
                        && next.is_some_and(|n| n.is_punct("("))
                        && toks.get(i + 2).is_some_and(|n| n.is_punct(")")) =>
                {
                    em.push(
                        Rule::Ch003,
                        t.line,
                        "panicking call in library code: propagate a typed error".to_string(),
                    );
                }
                "expect"
                    if scope.ch003
                        && prev.is_some_and(|p| p.is_punct("."))
                        && next.is_some_and(|n| n.is_punct("(")) =>
                {
                    em.push(
                        Rule::Ch003,
                        t.line,
                        "panicking call in library code: propagate a typed error".to_string(),
                    );
                }
                "panic" if scope.ch003 && next.is_some_and(|n| n.is_punct("!")) => {
                    em.push(
                        Rule::Ch003,
                        t.line,
                        "panicking call in library code: propagate a typed error".to_string(),
                    );
                }
                name @ ("Instant" | "SystemTime" | "thread_rng" | "from_entropy")
                    if scope.ch004 && line_seen.insert((name, t.line)) =>
                {
                    em.push(
                        Rule::Ch004,
                        t.line,
                        format!(
                            "{name} in a simulation crate: wall clocks and ambient \
                             entropy break reproducibility; use SimTime and a seeded RNG"
                        ),
                    );
                }
                "as" if scope.ch005 => {
                    if let Some(target) = next
                        .filter(|n| n.kind == TokKind::Ident)
                        .map(|n| n.text.as_str())
                        .filter(|ty| NARROW_CAST_TARGETS.contains(ty))
                    {
                        em.push(
                            Rule::Ch005,
                            t.line,
                            format!(
                                "truncating `as {target}` cast in a canonical encode/decode \
                                 path: silent wraparound changes archive bytes; use \
                                 {target}::try_from and surface the error"
                            ),
                        );
                    }
                }
                "unsafe" if scope.ch006 => {
                    em.push(
                        Rule::Ch006,
                        t.line,
                        "unsafe block in a simulation crate: the determinism contract \
                         only covers code the borrow checker can see"
                            .to_string(),
                    );
                }
                "transmute" if scope.ch006 => {
                    em.push(
                        Rule::Ch006,
                        t.line,
                        "transmute in a simulation crate: reinterpretation casts are \
                         endianness- and layout-dependent; encode explicitly"
                            .to_string(),
                    );
                }
                "static" if scope.ch006 && next.is_some_and(|n| n.is_ident("mut")) => {
                    em.push(
                        Rule::Ch006,
                        t.line,
                        "static mut in a simulation crate: global mutable state breaks \
                         run isolation and worker-count invariance"
                            .to_string(),
                    );
                }
                "thread"
                    if scope.ch007
                        && next.is_some_and(|n| n.is_punct("::"))
                        && toks.get(i + 2).is_some_and(|n| n.is_ident("spawn")) =>
                {
                    em.push(
                        Rule::Ch007,
                        t.line,
                        "thread::spawn in a simulation crate: detached threads have no \
                         deterministic join point; use the std::thread::scope claiming \
                         pattern"
                            .to_string(),
                    );
                }
                name @ ("RwLock" | "mpsc") if scope.ch007 => {
                    em.push(
                        Rule::Ch007,
                        t.line,
                        format!(
                            "{name} in a simulation crate: arrival/wake order is \
                             scheduler-dependent; use the std::thread::scope claiming \
                             pattern with index-ordered reassembly"
                        ),
                    );
                }
                "Mutex" if scope.ch007 && !mutex_sanctioned => {
                    em.push(
                        Rule::Ch007,
                        t.line,
                        "Mutex outside the sanctioned claiming pattern: lock order is \
                         scheduler-dependent; pair it with std::thread::scope and \
                         index-ordered reassembly"
                            .to_string(),
                    );
                }
                name @ ("todo" | "unimplemented" | "unreachable")
                    if scope.ch008 && next.is_some_and(|n| n.is_punct("!")) =>
                {
                    em.push(
                        Rule::Ch008,
                        t.line,
                        format!(
                            "{name}! in library code: placeholder panics must not ship \
                             in the simulators; return a typed error or finish the path"
                        ),
                    );
                }
                _ => {}
            },
            TokKind::Punct if scope.ch008 && (t.text == "==" || t.text == "!=") => {
                let float_side =
                    prev.is_some_and(is_float_operand) || next.is_some_and(is_float_operand);
                let zero_side = prev.is_some_and(is_zero_float) || next.is_some_and(is_zero_float);
                if float_side && !zero_side {
                    em.push(
                        Rule::Ch008,
                        t.line,
                        "f64 equality comparison: exact float equality is \
                         rounding-fragile; compare integer microseconds/counts, or an \
                         explicit tolerance (only exact-zero guards are exempt)"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }

    // CH009: every allow directive must have suppressed something above.
    // Directives inside #[cfg(test)] items are ignored along with the code
    // they annotate.
    if scope.any_rule() {
        let test_lines: Vec<(usize, usize)> = ranges
            .iter()
            .filter(|&&(s, e)| s < toks.len() && e > s)
            .map(|&(s, e)| (toks[s].line, toks[e - 1].line))
            .collect();
        let consumed = std::mem::take(&mut em.consumed);
        for (&line, codes) in em.allows {
            if test_lines.iter().any(|&(s, e)| line >= s && line <= e) {
                continue;
            }
            for code in codes {
                let message = match Rule::parse(code) {
                    None => format!(
                        "unknown rule code {code} in suppression directive: \
                         nothing is suppressed; fix or remove it"
                    ),
                    Some(_) if !consumed.contains(&(line, code.clone())) => format!(
                        "stale suppression: allow({code}) on a line where {code} does \
                         not fire; remove the directive"
                    ),
                    Some(_) => continue,
                };
                // Emitted directly: a stale-suppression finding cannot
                // itself be suppressed away.
                let snippet = em
                    .lines
                    .get(line.wrapping_sub(1))
                    .map_or_else(String::new, |l| l.trim().to_string());
                em.findings.push(Finding {
                    rule: Rule::Ch009,
                    file: rel.to_string(),
                    line,
                    snippet,
                    message,
                });
            }
        }
    }

    em.findings
}
