//! The chaos gate: determinism and observability under fault injection.
//!
//! The fault layer's central claim is that injecting faults does not cost
//! determinism: every fault decision is a pure hash of the plan seed and
//! stable event identities (never of evaluation order or thread timing),
//! so a chaos run must be exactly as repeatable and worker-count-invariant
//! as a clean one. `charisma-verify chaos` turns that into a gate:
//!
//! 1. **Plan fixture** — the canonical chaos plan
//!    ([`FaultPlan::chaos_fixture`]) is checked in as
//!    `crates/verify/fixtures/fault_plan_chaos.txt`. The gate parses the
//!    fixture and compares it field-for-field against the builtin, so any
//!    drift in either the plan or its text codec is visible in review.
//! 2. **Repeatability** — the sharded pipeline runs twice under the plan
//!    on `N` workers; the record streams must be byte-identical.
//! 3. **Worker-count invariance** — the `N`-worker chaos stream must be
//!    byte-identical to the serial one.
//! 4. **Fault-metrics snapshot** — the chaos run's deterministic metrics
//!    core (which now includes the `faults.*` counters) is diffed against
//!    `crates/verify/fixtures/metrics_snapshot_chaos.json`, pinning the
//!    exact number of injected faults, retries, timeouts, and degraded
//!    serves at the gate's seed and scale.
//!
//! Run the binary with `--features invariants` (CI does) and every
//! `invariant!` assertion in the simulation crates is live while the
//! faults fire.

use charisma::Pipeline;
use charisma_ipsc::FaultPlan;

use crate::determinism::{check_determinism, sharded_record_stream_with_faults, DeterminismReport};

/// The canonical chaos plan the gate runs under — a moderately hostile
/// environment: disk transients, one I/O node lost an hour in, service
/// stalls, message delay/drop/duplication, and clock jumps.
pub fn chaos_plan() -> FaultPlan {
    FaultPlan::chaos_fixture()
}

/// Run the sharded pipeline twice under the chaos plan on `workers`
/// threads and diff the record streams.
pub fn check_chaos_determinism(seed: u64, scale: f64, workers: usize) -> DeterminismReport {
    check_determinism(
        sharded_record_stream_with_faults(seed, scale, workers, chaos_plan()),
        sharded_record_stream_with_faults(seed, scale, workers, chaos_plan()),
    )
}

/// Diff the serial chaos run against a `workers`-thread chaos run: fault
/// injection must not make worker count observable.
pub fn check_chaos_shard_equivalence(seed: u64, scale: f64, workers: usize) -> DeterminismReport {
    check_determinism(
        sharded_record_stream_with_faults(seed, scale, 1, chaos_plan()),
        sharded_record_stream_with_faults(seed, scale, workers, chaos_plan()),
    )
}

/// Render the deterministic metrics core of a chaos-plan pipeline run.
pub fn chaos_metrics_json(
    seed: u64,
    scale: f64,
    workers: usize,
) -> Result<String, charisma::Error> {
    let out = Pipeline::new()
        .seed(seed)
        .scale(scale)
        .shards(workers)
        .faults(chaos_plan())
        .run()?;
    Ok(out.metrics.to_core_json())
}

/// Sanity-check a chaos run's metrics core: problems with the fault
/// counters that no fixture diff would name clearly.
///
/// Returns human-readable complaints; empty means the chaos layer was
/// demonstrably active and the recovery machinery demonstrably engaged.
pub fn check_fault_activity(core_json: &str) -> Vec<String> {
    let mut complaints = Vec::new();
    let mut require = |key: &str| {
        let value = counter_value(core_json, key);
        match value {
            None => complaints.push(format!("`{key}` missing from the chaos metrics core")),
            Some(0) => complaints.push(format!(
                "`{key}` is zero: the chaos fixture must exercise it"
            )),
            Some(_) => {}
        }
    };
    require("faults.injected");
    require("faults.disk_transient");
    require("faults.retried");
    require("faults.degraded");
    require("faults.msg_delayed");
    require("faults.clock_jumps");
    complaints
}

/// Extract a `"key": value` counter from the canonical core JSON.
fn counter_value(core_json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = core_json.find(&needle)?;
    let rest = &core_json[at + needle.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Compare a parsed plan fixture against the builtin chaos plan.
///
/// Returns `None` on match, or a description of the first field-level
/// divergence (via the plans' `Debug` forms, which name every field).
pub fn diff_plan(fixture: &FaultPlan) -> Option<String> {
    let builtin = chaos_plan();
    if *fixture == builtin {
        return None;
    }
    Some(format!(
        "fixture plan != builtin chaos plan\n  fixture: {fixture:?}\n  builtin: {builtin:?}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_round_trips_through_the_text_codec() {
        let encoded = chaos_plan().encode();
        let parsed = FaultPlan::parse(&encoded).expect("canonical plan parses");
        assert_eq!(diff_plan(&parsed), None);
    }

    #[test]
    fn diff_plan_names_a_divergence() {
        let mut tweaked = chaos_plan();
        tweaked.disk_transient_ppm += 1;
        let complaint = diff_plan(&tweaked).expect("divergence detected");
        assert!(complaint.contains("disk_transient_ppm"), "{complaint}");
    }

    #[test]
    fn counter_extraction_reads_canonical_json() {
        let json = "{\n  \"counters\": {\n    \"faults.injected\": 42,\n    \"x\": 0\n  }\n}";
        assert_eq!(counter_value(json, "faults.injected"), Some(42));
        assert_eq!(counter_value(json, "x"), Some(0));
        assert_eq!(counter_value(json, "missing"), None);
        let complaints = check_fault_activity(json);
        assert!(
            complaints.iter().any(|c| c.contains("faults.retried")),
            "missing counters are named: {complaints:?}"
        );
    }
}
