//! The archive-service gate: proof that `charisma-serve` keeps the
//! store's canonical-bytes promise in a live multi-tenant setting.
//!
//! The serve layer claims each tenant's published catalog is a **pure
//! function of its admitted batch sequence** — ingest worker counts,
//! claim interleavings, and queue-pressure timing are execution details.
//! This gate turns the claim into four checks over one pinned workload
//! (the pipeline's merged stream, round-robin partitioned into tenant
//! feeds):
//!
//! 1. **Schedule invariance** — every `(workers, interleave seed)` cell
//!    of the matrix must publish byte-identical catalogs for all tenants.
//! 2. **Snapshot isolation** — a snapshot taken after every submitted
//!    batch must equal a serial replay of exactly the prefix it pinned,
//!    and the post-flush snapshot must equal the tenant's full stream.
//! 3. **Federated oracle** — a federated scan must equal the tenant-order
//!    concatenation of serial per-tenant scans, stable-sorted by the
//!    canonical `(time, node)` key, for all-pass and pruned queries
//!    alike, at every fan-out width.
//! 4. **Sink parity** — a pipeline run delivered through
//!    `ArchiveSink::Serve` must publish the same bytes as the same run's
//!    `ArchiveSink::Memory` container (the build/serve split cannot leak
//!    into the format).

use charisma::serve::{Service, ServiceConfig, TenantFeed};
use charisma::store::Query;
use charisma::trace::OrderedEvent;
use charisma::{ArchiveSink, Pipeline, ServeSink};

use crate::determinism::fnv1a_hash;

/// Rows per submitted batch in the gate's feeds: deliberately off the
/// segment size so sealing happens mid-batch.
const GATE_BATCH_ROWS: usize = 700;

/// Ingest worker counts the schedule-invariance matrix covers.
const GATE_WORKERS: &[usize] = &[1, 2, 4];

/// Interleave seeds the schedule-invariance matrix covers (on top of the
/// seed-0 baseline).
const GATE_INTERLEAVES: &[u64] = &[1, 2];

/// What one serve-gate run observed.
#[derive(Clone, Debug)]
pub struct ServeGateReport {
    /// Human-readable violations; empty means the gate passed.
    pub complaints: Vec<String>,
    /// Tenants the service hosted.
    pub tenants: usize,
    /// Total rows across all tenant feeds.
    pub rows: u64,
    /// FNV-1a hash of each tenant's published catalog bytes (baseline
    /// schedule), for the log line.
    pub catalog_hashes: Vec<u64>,
}

/// Round-robin partition of the merged stream into `tenants` feeds.
/// Subsequences of a `(time, node)`-ordered stream stay ordered, so each
/// feed is a valid archive input.
fn partition(events: &[OrderedEvent], tenants: usize) -> Vec<Vec<OrderedEvent>> {
    let mut streams = vec![Vec::new(); tenants.max(1)];
    for (i, e) in events.iter().enumerate() {
        streams[i % tenants.max(1)].push(*e);
    }
    streams
}

fn feeds_from(streams: &[Vec<OrderedEvent>]) -> Vec<TenantFeed> {
    streams
        .iter()
        .enumerate()
        .map(|(tenant, events)| TenantFeed {
            tenant,
            batches: events.chunks(GATE_BATCH_ROWS).map(<[_]>::to_vec).collect(),
        })
        .collect()
}

/// Ingest the feeds on one schedule and return each tenant's published
/// catalog bytes.
fn publish(
    config: &ServiceConfig,
    feeds: &[TenantFeed],
    workers: usize,
    interleave: u64,
) -> Result<Vec<Vec<u8>>, charisma::Error> {
    let service = Service::new(*config);
    service.run_ingest(feeds, workers, interleave)?;
    Ok(service
        .snapshot_all()
        .iter()
        .map(charisma::serve::Snapshot::to_bytes)
        .collect())
}

/// Run the full serve gate at `seed`/`scale` with `tenants` tenants.
pub fn check_serve_gate(
    seed: u64,
    scale: f64,
    tenants: usize,
) -> Result<ServeGateReport, charisma::Error> {
    let mut complaints = Vec::new();
    let tenants = tenants.max(1);

    // One pipeline run supplies the pinned workload.
    let out = Pipeline::new().seed(seed).scale(scale).run()?;
    let streams = partition(&out.events, tenants);
    let feeds = feeds_from(&streams);
    let config = ServiceConfig {
        seed,
        scale,
        tenants,
        ..ServiceConfig::default()
    };

    // 1. Schedule invariance: the (workers × interleave) matrix must agree
    // with the serial seed-0 baseline, byte for byte, per tenant.
    let baseline = publish(&config, &feeds, 1, 0)?;
    for &workers in GATE_WORKERS {
        for &interleave in GATE_INTERLEAVES {
            let got = publish(&config, &feeds, workers, interleave)?;
            for (tenant, (a, b)) in baseline.iter().zip(&got).enumerate() {
                if a != b {
                    complaints.push(format!(
                        "tenant {tenant} catalog bytes under workers={workers} \
                         interleave={interleave} differ from the serial baseline \
                         ({} vs {} bytes, fnv1a {:#018x} vs {:#018x})",
                        b.len(),
                        a.len(),
                        fnv1a_hash(b),
                        fnv1a_hash(a),
                    ));
                }
            }
        }
    }

    // 2. Snapshot isolation: after every submitted batch, the snapshot
    // must be a serial replay of exactly the prefix it pinned.
    let service = Service::new(config);
    let probe_tenant = tenants - 1;
    let stream = &streams[probe_tenant];
    for (batch_no, batch) in stream.chunks(GATE_BATCH_ROWS).enumerate() {
        service.submit(probe_tenant, batch)?;
        let snap = service.snapshot(probe_tenant)?;
        let rows = usize::try_from(snap.rows()).unwrap_or(usize::MAX);
        if rows > stream.len() {
            complaints.push(format!(
                "mid-ingest snapshot after batch {batch_no} claims {rows} rows, \
                 more than the {} submitted so far",
                stream.len()
            ));
            break;
        }
        let replay = snap.events()?;
        if replay != stream[..rows] {
            complaints.push(format!(
                "mid-ingest snapshot after batch {batch_no} ({rows} rows) is not \
                 a serial replay of the pinned prefix"
            ));
            break;
        }
    }
    service.flush(probe_tenant)?;
    let final_snap = service.snapshot(probe_tenant)?;
    if final_snap.events()? != *stream {
        complaints.push(format!(
            "post-flush snapshot ({} rows) does not equal the tenant's full \
             {}-row stream",
            final_snap.rows(),
            stream.len()
        ));
    }

    // 3. Federated oracle: all-pass and pruned queries, every fan-out.
    let service = Service::new(config);
    service.run_ingest(&feeds, 2, 0)?;
    let queries = [Query::all(), pruning_query(&out.events)];
    for query in queries {
        let mut want = Vec::new();
        for tenant in 0..tenants {
            let snap = service.snapshot(tenant)?;
            want.extend(snap.query(query.clone()).events()?);
        }
        want.sort_by_key(|e| (e.time, e.node)); // stable: ties keep tenant order
        for &workers in GATE_WORKERS {
            let got = service.federated(query.clone()).workers(workers).events()?;
            if got != want {
                complaints.push(format!(
                    "federated scan (workers={workers}, query={query:?}) returned \
                     {} rows where the concat-and-stable-sort oracle has {}",
                    got.len(),
                    want.len()
                ));
            }
        }
    }

    // 4. Sink parity: a serve-sink pipeline run publishes the same bytes
    // as the memory-sink container.
    let mem = Pipeline::new()
        .seed(seed)
        .scale(scale)
        .sink(ArchiveSink::Memory)
        .run()?;
    let sink_service = std::sync::Arc::new(Service::new(ServiceConfig {
        seed,
        scale,
        tenants: 1,
        ..ServiceConfig::default()
    }));
    let served = Pipeline::new()
        .seed(seed)
        .scale(scale)
        .shards(2)
        .sink(ArchiveSink::Serve(ServeSink::new(
            std::sync::Arc::clone(&sink_service),
            0,
        )))
        .run()?;
    if served.archive != mem.archive {
        complaints.push(format!(
            "serve-sink pipeline bytes ({:?}) differ from the memory-sink \
             container ({:?})",
            served.archive.as_ref().map(Vec::len),
            mem.archive.as_ref().map(Vec::len),
        ));
    }

    Ok(ServeGateReport {
        complaints,
        tenants,
        rows: out.events.len() as u64,
        catalog_hashes: baseline.iter().map(|b| fnv1a_hash(b)).collect(),
    })
}

/// A time-window query over the middle third of the trace: wide enough to
/// match rows, narrow enough that zone maps prune segments.
fn pruning_query(events: &[OrderedEvent]) -> Query {
    let (t0, t1) = match (events.first(), events.last()) {
        (Some(a), Some(b)) => (a.time.as_micros(), b.time.as_micros()),
        _ => (0, 0),
    };
    let span = t1.saturating_sub(t0);
    Query::all().time_window(
        charisma::ipsc::SimTime::from_micros(t0 + span / 3),
        charisma::ipsc::SimTime::from_micros(t0 + 2 * span / 3),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_gate_passes_at_small_scale() {
        let report = check_serve_gate(4994, 0.01, 3).expect("gate runs");
        assert!(
            report.complaints.is_empty(),
            "first complaint: {}",
            report.complaints[0]
        );
        assert_eq!(report.tenants, 3);
        assert!(report.rows > 1000);
        assert_eq!(report.catalog_hashes.len(), 3);
    }

    #[test]
    fn partition_preserves_per_stream_order() {
        let out = Pipeline::new().scale(0.01).run().expect("runs");
        for stream in partition(&out.events, 4) {
            for w in stream.windows(2) {
                assert!((w[0].time, w[0].node) <= (w[1].time, w[1].node));
            }
        }
    }
}
