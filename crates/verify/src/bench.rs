//! The perf-trajectory record: one small JSON document per PR
//! (`BENCH_N.json`) capturing generate and scan throughput plus archive
//! density, emitted by `charisma-verify bench`.
//!
//! This is deliberately not a statistics harness — criterion-style
//! benchmarking lives in `crates/bench`. The record exists so the CI
//! bench-smoke job leaves a comparable breadcrumb per PR: same seed, same
//! scale, wall-clock timed once. The *deterministic* fields (records,
//! rows, bytes per record, columns decoded per row) double as a sanity
//! check that the measured run matched the pinned workload; the
//! throughput fields are machine-relative and only meaningful as a
//! trajectory on comparable runners.
//!
//! [`compare`] turns the trajectory into a CI gate: diff a fresh record
//! against the committed predecessor, fail on >25% regression in the
//! deterministic counters (which no runner noise can excuse), and warn —
//! only warn — on wall-clock deltas.

use std::time::Instant;

use charisma::ipsc::SimTime;
use charisma::obs::MetricsRegistry;
use charisma::serve::{Service, ServiceConfig, TenantFeed};
use charisma::store::{Archive, OpSet, Query, StoreMetrics};
use charisma::Pipeline;

/// Tenants the federated-scan timing spreads the workload across.
const BENCH_TENANTS: usize = 4;

/// One perf record, rendered to `BENCH_N.json`.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Seed the pipeline ran with.
    pub seed: u64,
    /// Workload scale factor.
    pub scale: f64,
    /// Worker threads for generation shards and scan.
    pub workers: usize,
    /// Trace records produced by the pipeline (deterministic).
    pub records: u64,
    /// Archive size in bytes (deterministic).
    pub archive_bytes: u64,
    /// Bytes per archived record (deterministic).
    pub bytes_per_record: f64,
    /// Pipeline records generated per wall-clock second.
    pub generate_records_per_sec: f64,
    /// Archive rows scanned per wall-clock second (all-pass query).
    pub scan_rows_per_sec: f64,
    /// Rows returned per wall-clock second by a federated all-pass scan
    /// over a 4-tenant archive service holding the same workload.
    pub federated_scan_rows_per_sec: f64,
    /// Archive rows processed per wall-clock second by the pruned scan:
    /// a middle-third time window over request records, i.e. a
    /// two-predicate-column query through the predicate-first decode
    /// path. "Processed" counts every archive row — pruned, skipped, and
    /// matched — so this is directly comparable to `scan_rows_per_sec`.
    pub pruned_scan_rows_per_sec: f64,
    /// Rows the pruned scan matched (deterministic).
    pub pruned_rows_matched: u64,
    /// Column values decoded per row scanned during the pruned scan
    /// (deterministic; a full-decode engine scores 10.0).
    pub cols_decoded_per_row: f64,
}

impl BenchRecord {
    /// Render as a small stable-keyed JSON document.
    pub fn to_json(&self, pr: u64) -> String {
        format!(
            "{{\n  \"pr\": {pr},\n  \"seed\": {},\n  \"scale\": {},\n  \"workers\": {},\n  \
             \"records\": {},\n  \"archive_bytes\": {},\n  \"bytes_per_record\": {:.2},\n  \
             \"generate_records_per_sec\": {:.0},\n  \"scan_rows_per_sec\": {:.0},\n  \
             \"federated_scan_rows_per_sec\": {:.0},\n  \"pruned_scan_rows_per_sec\": {:.0},\n  \
             \"pruned_rows_matched\": {},\n  \"cols_decoded_per_row\": {:.2}\n}}\n",
            self.seed,
            self.scale,
            self.workers,
            self.records,
            self.archive_bytes,
            self.bytes_per_record,
            self.generate_records_per_sec,
            self.scan_rows_per_sec,
            self.federated_scan_rows_per_sec,
            self.pruned_scan_rows_per_sec,
            self.pruned_rows_matched,
            self.cols_decoded_per_row,
        )
    }
}

/// Outcome of diffing a fresh [`BenchRecord`] against a committed
/// predecessor: hard failures (deterministic counters) and soft warnings
/// (wall-clock throughputs).
#[derive(Clone, Debug, Default)]
pub struct BenchComparison {
    /// Deterministic-counter regressions beyond the 25% budget — CI fails.
    pub failures: Vec<String>,
    /// Wall-clock regressions beyond the 25% budget — reported, not fatal.
    pub warnings: Vec<String>,
    /// Fields the predecessor record does not carry (older schema) —
    /// reported so a silently shrinking comparison is visible.
    pub skipped: Vec<String>,
}

/// Relative budget before a delta counts as a regression.
const REGRESSION_BUDGET: f64 = 0.25;

/// Extract a numeric field from a `BENCH_N.json` document. The records
/// are emitted by [`BenchRecord::to_json`] with one `"key": value` pair
/// per line, so a line-wise scan is a complete parser for them.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &doc[doc.find(&pat)? + pat.len()..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Diff `current` against the JSON text of a predecessor record.
///
/// Deterministic counters gate hard: `records` and `pruned_rows_matched`
/// must not shrink by more than the budget, `bytes_per_record` and
/// `cols_decoded_per_row` must not grow by more than it — runner speed
/// cannot move any of them, so a breach is a real regression. Wall-clock
/// throughputs only warn: they are machine-relative by design.
pub fn compare(current: &BenchRecord, prev_json: &str) -> BenchComparison {
    let mut cmp = BenchComparison::default();
    // (key, current value, true when larger-is-better)
    let deterministic = [
        ("records", current.records as f64, true),
        ("bytes_per_record", current.bytes_per_record, false),
        (
            "pruned_rows_matched",
            current.pruned_rows_matched as f64,
            true,
        ),
        ("cols_decoded_per_row", current.cols_decoded_per_row, false),
    ];
    let wall_clock = [
        ("generate_records_per_sec", current.generate_records_per_sec),
        ("scan_rows_per_sec", current.scan_rows_per_sec),
        (
            "federated_scan_rows_per_sec",
            current.federated_scan_rows_per_sec,
        ),
        ("pruned_scan_rows_per_sec", current.pruned_scan_rows_per_sec),
    ];
    for (key, now, larger_is_better) in deterministic {
        let Some(prev) = json_number(prev_json, key) else {
            cmp.skipped
                .push(format!("{key}: not in predecessor record"));
            continue;
        };
        let regressed = if larger_is_better {
            now < prev * (1.0 - REGRESSION_BUDGET)
        } else {
            now > prev * (1.0 + REGRESSION_BUDGET)
        };
        if regressed {
            cmp.failures.push(format!(
                "{key}: {now:.2} vs {prev:.2} (deterministic, budget 25%)"
            ));
        }
    }
    for (key, now) in wall_clock {
        let Some(prev) = json_number(prev_json, key) else {
            cmp.skipped
                .push(format!("{key}: not in predecessor record"));
            continue;
        };
        if now < prev * (1.0 - REGRESSION_BUDGET) {
            cmp.warnings.push(format!(
                "{key}: {now:.0} vs {prev:.0} (wall-clock, advisory)"
            ));
        }
    }
    cmp
}

/// Run the pinned pipeline once with an in-memory archive sink and time
/// generation and a full-archive scan.
pub fn run_bench(seed: u64, scale: f64, workers: usize) -> Result<BenchRecord, String> {
    let gen_start = Instant::now();
    let out = Pipeline::new()
        .seed(seed)
        .scale(scale)
        .shards(workers)
        .sink(charisma::ArchiveSink::Memory)
        .run()
        .map_err(|e| format!("pipeline error: {e}"))?;
    let gen_secs = gen_start.elapsed().as_secs_f64().max(1e-9);

    let records = out.events.len() as u64;
    let bytes = out
        .archive
        .ok_or_else(|| "pipeline produced no archive".to_string())?;
    let archive_bytes = bytes.len() as u64;

    let archive = Archive::from_bytes(bytes).map_err(|e| format!("archive error: {e:?}"))?;
    let scan_start = Instant::now();
    let events = archive
        .query(Query::all())
        .workers(workers)
        .events()
        .map_err(|e| format!("scan error: {e:?}"))?;
    let scan_secs = scan_start.elapsed().as_secs_f64().max(1e-9);
    let rows = events.len() as u64;
    if rows != records {
        return Err(format!(
            "scan returned {rows} rows for {records} generated records"
        ));
    }

    // Federated scan: the same workload spread across BENCH_TENANTS
    // tenants of an archive service, one all-pass fan-out.
    let service = Service::new(ServiceConfig {
        seed,
        scale,
        tenants: BENCH_TENANTS,
        ..ServiceConfig::default()
    });
    let mut streams = vec![Vec::new(); BENCH_TENANTS];
    for (i, e) in out.events.iter().enumerate() {
        streams[i % BENCH_TENANTS].push(*e);
    }
    let feeds: Vec<TenantFeed> = streams
        .into_iter()
        .enumerate()
        .map(|(tenant, events)| TenantFeed {
            tenant,
            batches: events.chunks(4096).map(<[_]>::to_vec).collect(),
        })
        .collect();
    service
        .run_ingest(&feeds, workers, 0)
        .map_err(|e| format!("serve ingest error: {e}"))?;
    let fed_start = Instant::now();
    let fed = service
        .federated(Query::all())
        .workers(workers)
        .events()
        .map_err(|e| format!("federated scan error: {e}"))?;
    let fed_secs = fed_start.elapsed().as_secs_f64().max(1e-9);
    if fed.len() as u64 != records {
        return Err(format!(
            "federated scan returned {} rows for {records} generated records",
            fed.len()
        ));
    }

    // Pruned scan: the middle third of the trace *by row position*
    // restricted to request records — a two-predicate-column query
    // (time + op) that exercises zone-map pruning, predicate-first
    // decode, and late materialization together. Row-position bounds
    // (rather than a third of the wall-clock span) keep the matched set
    // non-degenerate at every scale: activity lulls cannot empty it.
    let third = |i: usize| out.events.get(i).map_or(SimTime::ZERO, |e| e.time);
    let n = out.events.len();
    let window = Query::all()
        .time_window(third(n / 3), third(2 * n / 3))
        .ops(OpSet::requests());
    let registry = MetricsRegistry::new();
    let pruned_start = Instant::now();
    let matched = archive
        .query(window)
        .workers(workers)
        .attach_metrics(StoreMetrics::register(&registry))
        .events()
        .map_err(|e| format!("pruned scan error: {e:?}"))?;
    let pruned_secs = pruned_start.elapsed().as_secs_f64().max(1e-9);
    let snap = registry.snapshot();
    let cols_decoded = snap
        .counters
        .get("store.cols_decoded")
        .copied()
        .unwrap_or(0);
    let rows_scanned = snap
        .counters
        .get("store.rows_scanned")
        .copied()
        .unwrap_or(0);

    Ok(BenchRecord {
        seed,
        scale,
        workers,
        records,
        archive_bytes,
        bytes_per_record: archive_bytes as f64 / (records.max(1)) as f64,
        generate_records_per_sec: records as f64 / gen_secs,
        scan_rows_per_sec: rows as f64 / scan_secs,
        federated_scan_rows_per_sec: records as f64 / fed_secs,
        pruned_scan_rows_per_sec: records as f64 / pruned_secs,
        pruned_rows_matched: matched.len() as u64,
        cols_decoded_per_row: cols_decoded as f64 / rows_scanned.max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_record_round_trips_the_pinned_workload() {
        let rec = run_bench(4994, 0.01, 2).expect("bench runs");
        assert!(rec.records > 0);
        assert!(rec.archive_bytes > 0);
        assert!(rec.bytes_per_record > 0.0);
        assert!(rec.federated_scan_rows_per_sec > 0.0);
        assert!(rec.pruned_scan_rows_per_sec > 0.0);
        assert!(rec.pruned_rows_matched > 0);
        // The whole point of the predicate-first scan: the pruned query
        // touches far fewer than the schema's ten cells per row.
        assert!(
            rec.cols_decoded_per_row < 10.0,
            "pruned scan decoded {:.2} cols/row",
            rec.cols_decoded_per_row
        );
        let json = rec.to_json(7);
        assert!(json.contains("\"pr\": 7"));
        assert!(json.contains("\"records\": "));
        assert!(json.contains("\"federated_scan_rows_per_sec\": "));
        assert!(json.contains("\"pruned_scan_rows_per_sec\": "));
        assert!(json.contains("\"cols_decoded_per_row\": "));
    }

    fn sample_record() -> BenchRecord {
        BenchRecord {
            seed: 4994,
            scale: 0.05,
            workers: 2,
            records: 1000,
            archive_bytes: 15_000,
            bytes_per_record: 15.0,
            generate_records_per_sec: 1e6,
            scan_rows_per_sec: 5e6,
            federated_scan_rows_per_sec: 4e6,
            pruned_scan_rows_per_sec: 2e7,
            pruned_rows_matched: 300,
            cols_decoded_per_row: 3.5,
        }
    }

    #[test]
    fn compare_passes_against_an_equal_predecessor() {
        let rec = sample_record();
        let cmp = compare(&rec, &rec.to_json(7));
        assert!(cmp.failures.is_empty(), "{:?}", cmp.failures);
        assert!(cmp.warnings.is_empty(), "{:?}", cmp.warnings);
        assert!(cmp.skipped.is_empty(), "{:?}", cmp.skipped);
    }

    #[test]
    fn compare_fails_on_deterministic_regressions_only() {
        let mut rec = sample_record();
        let prev = rec.to_json(7);
        // 30% density regression: hard failure.
        rec.bytes_per_record *= 1.3;
        // Wall-clock collapse: advisory only.
        rec.scan_rows_per_sec /= 10.0;
        let cmp = compare(&rec, &prev);
        assert_eq!(cmp.failures.len(), 1, "{:?}", cmp.failures);
        assert!(cmp.failures[0].contains("bytes_per_record"));
        assert_eq!(cmp.warnings.len(), 1, "{:?}", cmp.warnings);
        assert!(cmp.warnings[0].contains("scan_rows_per_sec"));
    }

    #[test]
    fn compare_tolerates_deltas_inside_the_budget() {
        let mut rec = sample_record();
        let prev = rec.to_json(7);
        rec.bytes_per_record *= 1.2; // within 25%
        rec.pruned_rows_matched = 290; // within 25%
        let cmp = compare(&rec, &prev);
        assert!(cmp.failures.is_empty(), "{:?}", cmp.failures);
    }

    #[test]
    fn compare_skips_fields_an_older_record_lacks() {
        let rec = sample_record();
        // A PR-7-era record: no pruned-scan fields at all.
        let prev = "{\n  \"pr\": 7,\n  \"records\": 1000,\n  \"bytes_per_record\": 15.00,\n  \
                    \"scan_rows_per_sec\": 5000000\n}\n";
        let cmp = compare(&rec, prev);
        assert!(cmp.failures.is_empty(), "{:?}", cmp.failures);
        // Two deterministic and three wall-clock fields are post-PR-7.
        assert_eq!(cmp.skipped.len(), 5, "{:?}", cmp.skipped);
    }
}
