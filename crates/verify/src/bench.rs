//! The perf-trajectory record: one small JSON document per PR
//! (`BENCH_N.json`) capturing generate and scan throughput plus archive
//! density, emitted by `charisma-verify bench`.
//!
//! This is deliberately not a statistics harness — criterion-style
//! benchmarking lives in `crates/bench`. The record exists so the CI
//! bench-smoke job leaves a comparable breadcrumb per PR: same seed, same
//! scale, wall-clock timed once. The *deterministic* fields (records,
//! rows, bytes per record) double as a sanity check that the measured run
//! matched the pinned workload; the throughput fields are machine-relative
//! and only meaningful as a trajectory on comparable runners.

use std::time::Instant;

use charisma::serve::{Service, ServiceConfig, TenantFeed};
use charisma::store::{Archive, Query};
use charisma::Pipeline;

/// Tenants the federated-scan timing spreads the workload across.
const BENCH_TENANTS: usize = 4;

/// One perf record, rendered to `BENCH_N.json`.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Seed the pipeline ran with.
    pub seed: u64,
    /// Workload scale factor.
    pub scale: f64,
    /// Worker threads for generation shards and scan.
    pub workers: usize,
    /// Trace records produced by the pipeline (deterministic).
    pub records: u64,
    /// Archive size in bytes (deterministic).
    pub archive_bytes: u64,
    /// Bytes per archived record (deterministic).
    pub bytes_per_record: f64,
    /// Pipeline records generated per wall-clock second.
    pub generate_records_per_sec: f64,
    /// Archive rows scanned per wall-clock second (all-pass query).
    pub scan_rows_per_sec: f64,
    /// Rows returned per wall-clock second by a federated all-pass scan
    /// over a 4-tenant archive service holding the same workload.
    pub federated_scan_rows_per_sec: f64,
}

impl BenchRecord {
    /// Render as a small stable-keyed JSON document.
    pub fn to_json(&self, pr: u64) -> String {
        format!(
            "{{\n  \"pr\": {pr},\n  \"seed\": {},\n  \"scale\": {},\n  \"workers\": {},\n  \
             \"records\": {},\n  \"archive_bytes\": {},\n  \"bytes_per_record\": {:.2},\n  \
             \"generate_records_per_sec\": {:.0},\n  \"scan_rows_per_sec\": {:.0},\n  \
             \"federated_scan_rows_per_sec\": {:.0}\n}}\n",
            self.seed,
            self.scale,
            self.workers,
            self.records,
            self.archive_bytes,
            self.bytes_per_record,
            self.generate_records_per_sec,
            self.scan_rows_per_sec,
            self.federated_scan_rows_per_sec,
        )
    }
}

/// Run the pinned pipeline once with an in-memory archive sink and time
/// generation and a full-archive scan.
pub fn run_bench(seed: u64, scale: f64, workers: usize) -> Result<BenchRecord, String> {
    let gen_start = Instant::now();
    let out = Pipeline::new()
        .seed(seed)
        .scale(scale)
        .shards(workers)
        .sink(charisma::ArchiveSink::Memory)
        .run()
        .map_err(|e| format!("pipeline error: {e}"))?;
    let gen_secs = gen_start.elapsed().as_secs_f64().max(1e-9);

    let records = out.events.len() as u64;
    let bytes = out
        .archive
        .ok_or_else(|| "pipeline produced no archive".to_string())?;
    let archive_bytes = bytes.len() as u64;

    let archive = Archive::from_bytes(bytes).map_err(|e| format!("archive error: {e:?}"))?;
    let scan_start = Instant::now();
    let events = archive
        .query(Query::all())
        .workers(workers)
        .events()
        .map_err(|e| format!("scan error: {e:?}"))?;
    let scan_secs = scan_start.elapsed().as_secs_f64().max(1e-9);
    let rows = events.len() as u64;
    if rows != records {
        return Err(format!(
            "scan returned {rows} rows for {records} generated records"
        ));
    }

    // Federated scan: the same workload spread across BENCH_TENANTS
    // tenants of an archive service, one all-pass fan-out.
    let service = Service::new(ServiceConfig {
        seed,
        scale,
        tenants: BENCH_TENANTS,
        ..ServiceConfig::default()
    });
    let mut streams = vec![Vec::new(); BENCH_TENANTS];
    for (i, e) in out.events.iter().enumerate() {
        streams[i % BENCH_TENANTS].push(*e);
    }
    let feeds: Vec<TenantFeed> = streams
        .into_iter()
        .enumerate()
        .map(|(tenant, events)| TenantFeed {
            tenant,
            batches: events.chunks(4096).map(<[_]>::to_vec).collect(),
        })
        .collect();
    service
        .run_ingest(&feeds, workers, 0)
        .map_err(|e| format!("serve ingest error: {e}"))?;
    let fed_start = Instant::now();
    let fed = service
        .federated(Query::all())
        .workers(workers)
        .events()
        .map_err(|e| format!("federated scan error: {e}"))?;
    let fed_secs = fed_start.elapsed().as_secs_f64().max(1e-9);
    if fed.len() as u64 != records {
        return Err(format!(
            "federated scan returned {} rows for {records} generated records",
            fed.len()
        ));
    }

    Ok(BenchRecord {
        seed,
        scale,
        workers,
        records,
        archive_bytes,
        bytes_per_record: archive_bytes as f64 / (records.max(1)) as f64,
        generate_records_per_sec: records as f64 / gen_secs,
        scan_rows_per_sec: rows as f64 / scan_secs,
        federated_scan_rows_per_sec: records as f64 / fed_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_record_round_trips_the_pinned_workload() {
        let rec = run_bench(4994, 0.01, 2).expect("bench runs");
        assert!(rec.records > 0);
        assert!(rec.archive_bytes > 0);
        assert!(rec.bytes_per_record > 0.0);
        assert!(rec.federated_scan_rows_per_sec > 0.0);
        let json = rec.to_json(7);
        assert!(json.contains("\"pr\": 7"));
        assert!(json.contains("\"records\": "));
        assert!(json.contains("\"federated_scan_rows_per_sec\": "));
    }
}
