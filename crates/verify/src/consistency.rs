//! Cross-artifact consistency: code-side metric registrations vs the
//! checked-in snapshot fixtures.
//!
//! The metrics-snapshot gate (`charisma-verify metrics`) catches drift by
//! *running* the pipeline; this module catches the same drift statically.
//! Every `registry.counter("…")` / `.gauge` / `.histogram` /
//! `.set_counter` call in the simulation and workload crates is extracted
//! from the token stream, dynamic names built with `format!` become glob
//! patterns (`cfs.requests.mode{m}` → `cfs.requests.mode*`), and the
//! resulting set is reconciled against the union of
//! `metrics_snapshot.json` and `metrics_snapshot_chaos.json`:
//!
//! * a registered name no fixture pins → `CH010` at the registration site
//!   (the fixture is stale; regenerate with `charisma-verify metrics
//!   --write` / `chaos --write`);
//! * a fixture name no registration produces → `CH010` at the fixture
//!   line (dead weight in the pinned namespace);
//! * a registration whose name the lexer cannot resolve to a string
//!   literal → `CH010` at the call site, because a name the analyzer
//!   cannot see is a name no gate can pin.
//!
//! Two escape hatches, both deliberately narrow and listed here rather
//! than in any config file, so widening them is a reviewed code change:
//! [`OPTIONAL_METRICS`] and [`OPTIONAL_METRIC_PREFIXES`].

use std::collections::BTreeMap;

use crate::lex::{lex, test_item_ranges, TokKind};
use crate::lint::{mark_test_tokens, Finding, Rule};

/// Registration methods on the metrics registry/snapshot whose first
/// string argument is a metric name. `set_rate` is deliberately absent:
/// rates live in the snapshot's nondeterministic section, which no
/// fixture pins.
const REGISTRATION_METHODS: &[&str] = &["counter", "gauge", "histogram", "set_counter"];

/// Metrics registered only on paths the canonical gate runs never take,
/// so they legitimately appear in no fixture:
///
/// * `faults.shard_retries` — written only when a shard worker actually
///   panics and is retried; the canonical chaos plan injects I/O and
///   message faults, not worker deaths.
pub const OPTIONAL_METRICS: &[&str] = &["faults.shard_retries"];

/// Metric-name prefixes exempt from the fixture-coverage requirement:
///
/// * `cachesim.` — the cache simulators expose `record_metrics` as an
///   opt-in sink; the pinned pipeline characterizes the trace without
///   running them, so their namespace is exercised by unit tests instead
///   of the snapshot fixtures.
pub const OPTIONAL_METRIC_PREFIXES: &[&str] = &["cachesim."];

/// One metric registration site found in code.
#[derive(Clone, Debug)]
pub struct MetricReg {
    /// Workspace-relative path of the registering file.
    pub file: String,
    /// 1-based line of the registration call.
    pub line: usize,
    /// The metric name, with `format!` holes replaced by `*`.
    pub pattern: String,
    /// Whether `pattern` contains a wildcard.
    pub wildcard: bool,
}

/// Turn a (possibly `format!`) name literal into a match pattern:
/// `{…}` holes become `*`.
fn globify(name: &str) -> (String, bool) {
    let mut out = String::new();
    let mut wildcard = false;
    let mut depth = 0usize;
    for c in name.chars() {
        match c {
            '{' => {
                depth += 1;
                if depth == 1 {
                    out.push('*');
                    wildcard = true;
                }
            }
            '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    (out, wildcard)
}

/// Does `text` match `pattern`, where `*` spans any (possibly empty)
/// substring?
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let mut parts = pattern.split('*');
    let Some(first) = parts.next() else {
        return pattern == text;
    };
    if !text.starts_with(first) {
        return false;
    }
    let mut pos = first.len();
    let mut rest: Vec<&str> = parts.collect();
    let Some(last) = rest.pop() else {
        // No `*` in the pattern: exact match required.
        return text.len() == pos;
    };
    for mid in rest {
        match text[pos..].find(mid) {
            Some(p) => pos += p + mid.len(),
            None => return false,
        }
    }
    text.len() >= pos + last.len() && text.ends_with(last)
}

/// Extract every metric registration from one file's source.
///
/// Returns the registrations plus any `CH010` findings for calls whose
/// name is not statically extractable (no string literal among the first
/// argument tokens).
pub fn extract_metric_registrations(rel: &str, source: &str) -> (Vec<MetricReg>, Vec<Finding>) {
    let lexed = lex(source);
    let toks = &lexed.tokens;
    let in_test = mark_test_tokens(toks.len(), &test_item_ranges(toks));
    let lines: Vec<&str> = source.lines().collect();
    let mut regs = Vec::new();
    let mut findings = Vec::new();

    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || !REGISTRATION_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        // Method call position only: `.counter(` — a definition site has
        // `fn` before it, a standalone function lacks the dot.
        if i == 0 || !toks[i - 1].is_punct(".") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        // The name is the first string literal in the argument head; a
        // window of 6 tokens covers both `("lit"` and `(&format!("lit…"`.
        match toks[i + 2..]
            .iter()
            .take(6)
            .find(|n| n.kind == TokKind::Str)
        {
            Some(s) => {
                let (pattern, wildcard) = globify(&s.text);
                regs.push(MetricReg {
                    file: rel.to_string(),
                    line: t.line,
                    pattern,
                    wildcard,
                });
            }
            None => findings.push(Finding {
                rule: Rule::Ch010,
                file: rel.to_string(),
                line: t.line,
                snippet: lines
                    .get(t.line.wrapping_sub(1))
                    .map_or_else(String::new, |l| l.trim().to_string()),
                message: format!(
                    "metric name passed to .{}() is not statically extractable: \
                     a name the analyzer cannot see is a name no snapshot fixture \
                     can pin; use a string literal or format! with a literal template",
                    t.text
                ),
            }),
        }
    }
    (regs, findings)
}

/// Metric names pinned by one canonical snapshot fixture, with the
/// 1-based line each name sits on.
///
/// The fixtures are canonical JSON from `obs`'s writer: section keys
/// (`"counters"`, `"gauges"`, `"histograms"`) at 2-space indent, metric
/// names at 4-space indent inside them, histogram bucket keys deeper —
/// so a line-shape parse is exact, no JSON parser needed.
pub fn fixture_metric_names(json: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (idx, line) in json.lines().enumerate() {
        if let Some(rest) = line.strip_prefix("  \"") {
            let name = rest.split('"').next().unwrap_or("");
            in_section = matches!(name, "counters" | "gauges" | "histograms");
        } else if in_section {
            if let Some(rest) = line.strip_prefix("    \"") {
                if let Some(name) = rest.split('"').next() {
                    out.push((name.to_string(), idx + 1));
                }
            } else if !line.starts_with("    ") && !line.starts_with("      ") {
                // Dedent past the metric level: the section is over.
                in_section = false;
            }
        }
    }
    out
}

fn is_optional(pattern: &str) -> bool {
    OPTIONAL_METRICS.contains(&pattern)
        || OPTIONAL_METRIC_PREFIXES
            .iter()
            .any(|px| pattern.starts_with(px))
}

/// Reconcile code registrations against the fixture-name union
/// (`name → (fixture file, line)`); every disagreement is a `CH010`.
pub fn check_metric_consistency(
    regs: &[MetricReg],
    fixture_names: &BTreeMap<String, (String, usize)>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for reg in regs {
        if is_optional(&reg.pattern) {
            continue;
        }
        let covered = if reg.wildcard {
            fixture_names.keys().any(|n| glob_match(&reg.pattern, n))
        } else {
            fixture_names.contains_key(&reg.pattern)
        };
        if !covered {
            findings.push(Finding {
                rule: Rule::Ch010,
                file: reg.file.clone(),
                line: reg.line,
                snippet: format!("registers `{}`", reg.pattern),
                message: format!(
                    "metric `{}` is registered in code but pinned by no snapshot \
                     fixture; regenerate with `charisma-verify metrics --write` \
                     (or `chaos --write` for faults.*)",
                    reg.pattern
                ),
            });
        }
    }
    for (name, (file, line)) in fixture_names {
        let covered = regs.iter().any(|r| {
            if r.wildcard {
                glob_match(&r.pattern, name)
            } else {
                &r.pattern == name
            }
        });
        if !covered {
            findings.push(Finding {
                rule: Rule::Ch010,
                file: file.clone(),
                line: *line,
                snippet: format!("pins `{name}`"),
                message: format!(
                    "metric `{name}` is pinned by the fixture but no longer \
                     registered anywhere in code; regenerate the fixture"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globify_replaces_format_holes() {
        assert_eq!(
            globify("cfs.requests.mode{m}"),
            ("cfs.requests.mode*".into(), true)
        );
        assert_eq!(
            globify("workload.shard{shard:02}.jobs"),
            ("workload.shard*.jobs".into(), true)
        );
        assert_eq!(globify("plain.name"), ("plain.name".into(), false));
    }

    #[test]
    fn glob_match_spans_holes() {
        assert!(glob_match("cfs.requests.mode*", "cfs.requests.mode3"));
        assert!(glob_match("workload.shard*.jobs", "workload.shard07.jobs"));
        assert!(!glob_match(
            "workload.shard*.jobs",
            "workload.shard07.requests"
        ));
        assert!(glob_match("exact.name", "exact.name"));
        assert!(!glob_match("exact.name", "exact.name.more"));
    }

    #[test]
    fn fixture_parse_reads_metric_level_only() {
        let json = "{\n  \"counters\": {\n    \"a.b\": 1,\n    \"c.d\": 2\n  },\n  \
                    \"histograms\": {\n    \"h.x\": {\n      \"0\": 3\n    }\n  },\n  \
                    \"other\": {\n    \"ignored\": 0\n  }\n}\n";
        let names: Vec<String> = fixture_metric_names(json)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, ["a.b", "c.d", "h.x"]);
    }
}
