//! The metrics-snapshot gate.
//!
//! The observability layer (`charisma-obs`) claims its counters, gauges,
//! and histograms are a **pure function of the configuration and seed** —
//! wall-clock artifacts are quarantined in the snapshot's nondeterministic
//! section and never reach [`MetricsSnapshot::to_core_json`]. This module
//! turns that claim into a CI gate with two checks:
//!
//! 1. **Snapshot diff** — run the pipeline, render the deterministic core
//!    as canonical JSON, and diff it line-by-line against the checked-in
//!    fixture (`crates/verify/fixtures/metrics_snapshot.json`). Any new,
//!    removed, or changed metric fails the gate until the fixture is
//!    regenerated with `--write` — which forces metric changes to be
//!    visible in review.
//! 2. **Shard equivalence** — the metrics of an `N`-worker run must merge
//!    to byte-identical core JSON as the serial run. This is the
//!    observability companion to `charisma-verify determinism`: worker
//!    count is an execution detail, and the merge algebra (saturating
//!    counter sums, gauge maxima, bucket-wise histogram sums) must keep it
//!    that way.
//!
//! [`MetricsSnapshot::to_core_json`]: charisma::obs::MetricsSnapshot::to_core_json

use charisma::obs::MetricsRegistry;
use charisma::serve::{ServeMetrics, Service, ServiceConfig, TenantFeed};
use charisma::store::Query;
use charisma::Pipeline;

/// One line-level disagreement between fixture and observed core JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonDiff {
    /// 1-based line number in the fixture (or past-the-end for additions).
    pub line: usize,
    /// The fixture's line, if any.
    pub expected: Option<String>,
    /// The observed line, if any.
    pub actual: Option<String>,
}

impl std::fmt::Display for JsonDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.expected, &self.actual) {
            (Some(e), Some(a)) => {
                write!(f, "line {}: fixture `{}` vs observed `{}`", self.line, e, a)
            }
            (Some(e), None) => write!(f, "line {}: fixture `{}` missing from run", self.line, e),
            (None, Some(a)) => write!(f, "line {}: run added `{}`", self.line, a),
            (None, None) => write!(f, "line {}: <no difference>", self.line),
        }
    }
}

/// Render the deterministic metrics core for one pipeline run.
///
/// `workers` is the thread count handed to [`Pipeline::shards`]; the
/// workload is always partitioned into the same logical shards, so the
/// core must not depend on it.
///
/// The run writes its archive to an in-memory sink so the `store.*`
/// counters (segments/rows/bytes written, plus the zero-valued scan-side
/// counters) are part of the pinned namespace — an encoding change that
/// moves `store.bytes_written` fails this gate, not just the archive one.
///
/// The merged stream is then pushed through a small `charisma-serve`
/// exercise (two tenants, one federated scan) so the `serve.*` counters
/// are pinned too. Serve counters are per-tenant deterministic sums, so
/// the exercise — like everything else in the core — is a pure function
/// of `(seed, scale)` and independent of `workers`.
pub fn core_metrics_json(seed: u64, scale: f64, workers: usize) -> Result<String, charisma::Error> {
    let out = Pipeline::new()
        .seed(seed)
        .scale(scale)
        .shards(workers)
        .sink(charisma::ArchiveSink::Memory)
        .run()?;

    let registry = MetricsRegistry::new();
    let mut service = Service::new(ServiceConfig {
        seed,
        scale,
        tenants: 2,
        ..ServiceConfig::default()
    });
    service.attach_metrics(ServeMetrics::register(&registry));
    let mut streams = vec![Vec::new(); 2];
    for (i, e) in out.events.iter().enumerate() {
        streams[i % 2].push(*e);
    }
    let feeds: Vec<TenantFeed> = streams
        .into_iter()
        .enumerate()
        .map(|(tenant, events)| TenantFeed {
            tenant,
            batches: events.chunks(512).map(<[_]>::to_vec).collect(),
        })
        .collect();
    service.run_ingest(&feeds, 2, 0)?;
    service.federated(Query::all()).workers(2).events()?;

    let mut metrics = out.metrics;
    metrics.merge(&registry.snapshot());
    Ok(metrics.to_core_json())
}

/// Line-by-line diff of two JSON documents, fixture first.
///
/// Canonical JSON (BTreeMap key order, fixed indentation) makes a plain
/// line diff exact: every metric lives on its own line, so each [`JsonDiff`]
/// names the metric that changed.
pub fn diff_json(expected: &str, actual: &str) -> Vec<JsonDiff> {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut diffs = Vec::new();
    for i in 0..exp.len().max(act.len()) {
        let e = exp.get(i).copied();
        let a = act.get(i).copied();
        if e != a {
            diffs.push(JsonDiff {
                line: i + 1,
                expected: e.map(str::to_owned),
                actual: a.map(str::to_owned),
            });
        }
    }
    diffs
}

/// Check that an `N`-worker run's merged metrics equal the serial run's.
///
/// Returns the line diffs between the serial core JSON and the `workers`-
/// thread core JSON — empty means the merge algebra held.
pub fn check_metrics_shard_equivalence(
    seed: u64,
    scale: f64,
    workers: usize,
) -> Result<Vec<JsonDiff>, charisma::Error> {
    let serial = core_metrics_json(seed, scale, 1)?;
    let sharded = core_metrics_json(seed, scale, workers)?;
    Ok(diff_json(&serial, &sharded))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_documents_have_no_diff() {
        assert!(diff_json("{\n  \"a\": 1\n}\n", "{\n  \"a\": 1\n}\n").is_empty());
    }

    #[test]
    fn changed_added_and_removed_lines_are_localized() {
        let diffs = diff_json("a\nb\nc\n", "a\nB\nc\nd\n");
        assert_eq!(diffs.len(), 2);
        assert_eq!(diffs[0].line, 2);
        assert_eq!(diffs[0].expected.as_deref(), Some("b"));
        assert_eq!(diffs[0].actual.as_deref(), Some("B"));
        assert_eq!(diffs[1].line, 4);
        assert_eq!(diffs[1].expected, None);
        assert_eq!(diffs[1].actual.as_deref(), Some("d"));
        assert!(diffs[1].to_string().contains("run added"));
    }

    #[test]
    fn core_json_is_stable_across_runs_and_workers() {
        let a = core_metrics_json(4994, 0.01, 1).expect("runs");
        let b = core_metrics_json(4994, 0.01, 1).expect("runs");
        assert_eq!(a, b, "same seed, same core");
        let diffs = check_metrics_shard_equivalence(4994, 0.01, 3).expect("runs");
        assert!(diffs.is_empty(), "first diff: {}", diffs[0]);
    }
}
